/**
 * @file
 * Ablation: instruction-window scaling — the paper's core motivation.
 * "By eliminating the associative search from the load queue, we
 * remove one of the factors that limits the size of a processor's
 * instruction window." This sweep grows the ROB while (a) the
 * baseline's load queue stays pinned at the largest single-cycle CAM
 * a 5 GHz clock allows per the Table 2 model (the clock-constrained
 * design point), versus (b) value-based replay whose FIFO scales with
 * the window for free.
 */

#include "harness.hpp"

#include "cam/cam_model.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();

    CamModel cam;
    // At 5 GHz nothing fits in one cycle; take the largest CAM that
    // fits in TWO cycles as the generous clock-constrained size.
    unsigned constrained_lq = 8;
    for (unsigned n = 8; n <= 512; n *= 2)
        if (cam.searchCycles({n, 3, 2}, 5.0) <= 2)
            constrained_lq = n;

    std::printf("Ablation: window scaling. Clock-constrained baseline "
                "LQ at 5 GHz (<=2-cycle search): %u entries\n",
                constrained_lq);
    std::printf("scale=%.2f; IPC on load-queue-pressure workloads\n\n",
                scale);

    TextTable table;
    table.header({"workload", "rob", "baseline_lq" +
                      std::to_string(constrained_lq),
                  "value_replay", "vbr_advantage"});

    const unsigned robs[] = {64u, 128u, 256u, 512u};
    const char *wl_names[] = {"art", "apsi", "mcf", "vortex"};

    JobList jobs;
    for (const char *name : wl_names) {
        WorkloadSpec wl = uniprocessorWorkload(name, scale);
        for (unsigned rob : robs) {
            MachineConfig base{"b", CoreConfig::baseline()};
            base.core.robEntries = rob;
            base.core.lqEntries = constrained_lq;
            base.core.sqEntries = std::min(64u, rob / 2);
            base.core.iqEntries = std::min(64u, rob / 4);

            MachineConfig vbr_cfg{
                "v", CoreConfig::valueReplay(
                         ReplayFilterConfig::recentSnoopPlusNus())};
            vbr_cfg.core.robEntries = rob;
            vbr_cfg.core.lqEntries = rob; // FIFO scales with window
            vbr_cfg.core.sqEntries = std::min(64u, rob / 2);
            vbr_cfg.core.iqEntries = std::min(64u, rob / 4);

            jobs.uni(wl, base);
            jobs.uni(wl, vbr_cfg);
        }
    }

    SweepResults results = jobs.run();
    results.printSummary("ablation_window_scaling");

    BenchReport rep("ablation_window_scaling");
    rep.meta("scale", scale);
    rep.meta("constrained_lq", constrained_lq);

    std::size_t k = 0;
    for (const char *name : wl_names) {
        for (unsigned rob : robs) {
            if (!results.hasAll({k, k + 1})) {
                k += 2; // other shard owns part of this pair
                continue;
            }
            const RunStats &b = results[k++];
            const RunStats &v = results[k++];
            JsonValue row = runStatsToJson(b);
            row.set("rob", rob);
            rep.addRow(std::move(row));
            JsonValue vrow = runStatsToJson(v);
            vrow.set("rob", rob);
            rep.addRow(std::move(vrow));
            table.row({name, std::to_string(rob),
                       TextTable::fmt(b.ipc, 3),
                       TextTable::fmt(v.ipc, 3),
                       TextTable::pct(v.ipc / b.ipc - 1.0, 1)});
        }
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("expectation: the CAM-constrained baseline stops "
                "profiting from larger windows once the load queue "
                "fills; the replay FIFO keeps scaling\n");
    rep.write();
    return 0;
}
