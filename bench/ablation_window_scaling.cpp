/**
 * @file
 * Ablation: instruction-window scaling — the paper's core motivation.
 * "By eliminating the associative search from the load queue, we
 * remove one of the factors that limits the size of a processor's
 * instruction window." This sweep grows the ROB while (a) the
 * baseline's load queue stays pinned at the largest single-cycle CAM
 * a 5 GHz clock allows per the Table 2 model (the clock-constrained
 * design point), versus (b) value-based replay whose FIFO scales with
 * the window for free.
 */

#include "harness.hpp"

#include "cam/cam_model.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();

    CamModel cam;
    // At 5 GHz nothing fits in one cycle; take the largest CAM that
    // fits in TWO cycles as the generous clock-constrained size.
    unsigned constrained_lq = 8;
    for (unsigned n = 8; n <= 512; n *= 2)
        if (cam.searchCycles({n, 3, 2}, 5.0) <= 2)
            constrained_lq = n;

    std::printf("Ablation: window scaling. Clock-constrained baseline "
                "LQ at 5 GHz (<=2-cycle search): %u entries\n",
                constrained_lq);
    std::printf("scale=%.2f; IPC on load-queue-pressure workloads\n\n",
                scale);

    TextTable table;
    table.header({"workload", "rob", "baseline_lq" +
                      std::to_string(constrained_lq),
                  "value_replay", "vbr_advantage"});

    for (const char *name : {"art", "apsi", "mcf", "vortex"}) {
        WorkloadSpec wl = uniprocessorWorkload(name, scale);
        for (unsigned rob : {64u, 128u, 256u, 512u}) {
            MachineConfig base{"b", CoreConfig::baseline()};
            base.core.robEntries = rob;
            base.core.lqEntries = constrained_lq;
            base.core.sqEntries = std::min(64u, rob / 2);
            base.core.iqEntries = std::min(64u, rob / 4);

            MachineConfig vbr_cfg{
                "v", CoreConfig::valueReplay(
                         ReplayFilterConfig::recentSnoopPlusNus())};
            vbr_cfg.core.robEntries = rob;
            vbr_cfg.core.lqEntries = rob; // FIFO scales with window
            vbr_cfg.core.sqEntries = std::min(64u, rob / 2);
            vbr_cfg.core.iqEntries = std::min(64u, rob / 4);

            RunStats b = runUni(wl, base);
            RunStats v = runUni(wl, vbr_cfg);
            table.row({name, std::to_string(rob),
                       TextTable::fmt(b.ipc, 3),
                       TextTable::fmt(v.ipc, 3),
                       TextTable::pct(v.ipc / b.ipc - 1.0, 1)});
        }
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("expectation: the CAM-constrained baseline stops "
                "profiting from larger windows once the load queue "
                "fills; the replay FIFO keeps scaling\n");
    return 0;
}
