/**
 * @file
 * Ablation: exclusive store prefetch at address generation. Both
 * machines normally acquire line ownership speculatively when a store
 * generates its address so the commit-stage drain hits an owned line;
 * without it every store miss stalls in-order commit for the full
 * coherence latency. This quantifies how much the paper's "stores
 * perform their cache access at commit" design depends on it.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();

    std::printf("Ablation: exclusive store prefetch at agen (IPC)\n");
    std::printf("scale=%.2f\n\n", scale);

    TextTable table;
    table.header({"workload", "base+prefetch", "base, no prefetch",
                  "replay+prefetch", "replay, no prefetch"});

    for (const auto &wl : uniprocessorSuite(scale)) {
        MachineConfig base_on = baselineConfig();
        MachineConfig base_off = baselineConfig();
        base_off.core.exclusiveStorePrefetch = false;

        MachineConfig vbr_on{
            "v", CoreConfig::valueReplay(
                     ReplayFilterConfig::recentSnoopPlusNus())};
        MachineConfig vbr_off = vbr_on;
        vbr_off.core.exclusiveStorePrefetch = false;

        table.row({wl.name,
                   TextTable::fmt(runUni(wl, base_on).ipc, 3),
                   TextTable::fmt(runUni(wl, base_off).ipc, 3),
                   TextTable::fmt(runUni(wl, vbr_on).ipc, 3),
                   TextTable::fmt(runUni(wl, vbr_off).ipc, 3)});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("replay is hit harder without the prefetch: replay "
                "loads wait for ALL prior stores to drain, so a "
                "store's ownership miss also delays every younger "
                "load's replay\n");
    return 0;
}
