/**
 * @file
 * Ablation: exclusive store prefetch at address generation. Both
 * machines normally acquire line ownership speculatively when a store
 * generates its address so the commit-stage drain hits an owned line;
 * without it every store miss stalls in-order commit for the full
 * coherence latency. This quantifies how much the paper's "stores
 * perform their cache access at commit" design depends on it.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();

    std::printf("Ablation: exclusive store prefetch at agen (IPC)\n");
    std::printf("scale=%.2f\n\n", scale);

    TextTable table;
    table.header({"workload", "base+prefetch", "base, no prefetch",
                  "replay+prefetch", "replay, no prefetch"});

    MachineConfig base_on = baselineConfig();
    MachineConfig base_off = baselineConfig();
    base_off.name = "baseline-noprefetch"; // distinct in the JSON rows
    base_off.core.exclusiveStorePrefetch = false;

    MachineConfig vbr_on{
        "v", CoreConfig::valueReplay(
                 ReplayFilterConfig::recentSnoopPlusNus())};
    MachineConfig vbr_off = vbr_on;
    vbr_off.name = "v-noprefetch";
    vbr_off.core.exclusiveStorePrefetch = false;

    const std::vector<MachineConfig> machines{base_on, base_off,
                                             vbr_on, vbr_off};

    JobList jobs;
    std::vector<std::string> names;
    for (const auto &wl : uniprocessorSuite(scale)) {
        names.push_back(wl.name);
        for (const auto &m : machines)
            jobs.uni(wl, m);
    }

    SweepResults results = jobs.run();
    results.printSummary("ablation_store_prefetch");

    BenchReport rep("ablation_store_prefetch");
    rep.meta("scale", scale);
    for (std::size_t i = 0; i < results.size(); ++i)
        if (results.has(i))
            rep.addRun(results[i]);

    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row{names[w]};
        bool full = true;
        for (std::size_t m = 0; m < machines.size(); ++m)
            full = full && results.has(w * machines.size() + m);
        if (!full)
            continue; // other shard owns part of this row
        for (std::size_t m = 0; m < machines.size(); ++m)
            row.push_back(TextTable::fmt(
                results[w * machines.size() + m].ipc, 3));
        table.row(row);
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("replay is hit harder without the prefetch: replay "
                "loads wait for ALL prior stores to drain, so a "
                "store's ownership miss also delays every younger "
                "load's replay\n");
    rep.write();
    return 0;
}
