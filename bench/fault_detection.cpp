/**
 * @file
 * Fault-detection coverage harness. Injects seeded bit flips into load
 * writebacks and store-forwarded values (plus optional snoop/fill
 * faults via VBR_FAULTS) across the uniprocessor suite, under the
 * baseline CAM machine and the four value-based replay configurations,
 * and attributes every corruption to a fate:
 *
 *   detected_by_compare  the replay/compare stage caught it
 *   caught_by_cam        a CAM-triggered squash covered it
 *   squashed_recovered   any squash erased it before retirement
 *   silently_committed   it retired architecturally
 *
 * Headline: value-based replay detects and recovers from corrupted
 * premature values (the compare stage is an end-to-end check), while
 * the baseline CAM machine — which re-checks ordering, never values —
 * silently commits them; only the architectural constraint-graph
 * checker notices. Replay filters reintroduce a tunable window
 * (filtered loads skip the compare), quantified per config.
 *
 * The harness also demos the failure-isolating sweep: a deliberately
 * deadlocking job and a throwing job run alongside a healthy one; the
 * sweep completes, quarantines both with FAIL_*.json artifacts, and
 * still returns the healthy result.
 */

#include "harness.hpp"

#include <filesystem>
#include <memory>
#include <stdexcept>

#include "check/constraint_graph.hpp"

using namespace vbr;
using namespace vbr::bench;

namespace
{

/** Default injection plan (VBR_FAULTS overrides): value corruptions
 * only, so with versions tracked every silent commit of a live value
 * is also visible to the architectural checker. */
constexpr const char *kDefaultSpec = "seed=42,loadflip=5e-5,fwdflip=2e-4";

struct FaultRun
{
    RunStats stats;
    FaultOutcomes fo;
    std::uint64_t inFlight = 0;
    bool consistent = true;
    std::uint64_t checkerErrors = 0;
};

struct ConfigTotals
{
    std::uint64_t injected = 0;
    std::uint64_t detected = 0;
    std::uint64_t caughtByCam = 0;
    std::uint64_t recovered = 0;
    std::uint64_t silent = 0;
    std::uint64_t inFlight = 0;
    std::uint64_t wild = 0;
    std::uint64_t checkerViolations = 0; ///< runs failing the SC check
};

} // namespace

int
main()
{
    double scale = envScale();
    const char *env_spec = std::getenv("VBR_FAULTS");
    FaultConfig faults =
        FaultConfig::parse(env_spec ? env_spec : kDefaultSpec);
    bool default_spec = env_spec == nullptr;

    std::printf("Fault-detection coverage: seeded corruption of load "
                "writebacks and store forwards\n");
    std::printf("scale=%.2f, faults=%s\n\n", scale,
                faults.render().c_str());

    std::vector<MachineConfig> machines;
    machines.push_back(baselineConfig());
    for (auto &cfg : replayConfigs())
        machines.push_back(std::move(cfg));

    auto suite = uniprocessorSuite(scale);

    // ---- detection grid (guarded: a fault-crashed job quarantines
    // instead of killing the harness) -----------------------------
    std::vector<GuardedJob<FaultRun>> jobs;
    for (const auto &wl : suite) {
        for (const auto &machine : machines) {
            GuardedRunOptions opts;
            opts.faults = faults;
            opts.jobName = wl.name + "-" + machine.name;
            opts.trackVersions = true;
            jobs.push_back(
                {opts.jobName, [wl, machine, opts] {
                     auto checker = std::make_shared<ScChecker>();
                     return runUniGuarded<FaultRun>(
                         wl, machine, opts,
                         [checker](System &sys) {
                             sys.setObserver(checker.get());
                         },
                         [&](System &sys, const RunResult &r) {
                             FaultRun out;
                             out.stats = collectRunStats(
                                 sys, r, wl.name, machine.name);
                             if (const FaultInjector *fi =
                                     sys.faultInjector()) {
                                 out.fo = fi->outcomes();
                                 out.inFlight = fi->inFlight();
                             }
                             CheckResult cr = checker->check();
                             out.consistent = cr.consistent;
                             out.checkerErrors = cr.errors.size();
                             return out;
                         });
                 }});
        }
    }

    SweepRunner runner;
    SweepOutcome<FaultRun> grid = runner.runGuarded(std::move(jobs));

    std::vector<ConfigTotals> totals(machines.size());
    std::size_t slot = 0;
    for (std::size_t w = 0; w < suite.size(); ++w) {
        for (std::size_t m = 0; m < machines.size(); ++m, ++slot) {
            if (!grid.ok[slot])
                continue;
            const FaultRun &fr = grid.results[slot];
            ConfigTotals &t = totals[m];
            t.injected += fr.fo.corruptionsInjected();
            t.detected += fr.fo.detectedByCompare;
            t.caughtByCam += fr.fo.caughtByCam;
            t.recovered += fr.fo.squashedRecovered;
            t.silent += fr.fo.silentlyCommitted;
            t.inFlight += fr.inFlight;
            t.wild += fr.fo.wildStores + fr.fo.wildLoads;
            if (!fr.consistent || fr.checkerErrors > 0)
                ++t.checkerViolations;
        }
    }

    TextTable table;
    table.header({"config", "injected", "detected", "caught_by_cam",
                  "recovered", "silent", "in_flight",
                  "checker_viol_runs"});
    for (std::size_t m = 0; m < machines.size(); ++m) {
        const ConfigTotals &t = totals[m];
        table.row({machines[m].name, std::to_string(t.injected),
                   std::to_string(t.detected),
                   std::to_string(t.caughtByCam),
                   std::to_string(t.recovered),
                   std::to_string(t.silent),
                   std::to_string(t.inFlight),
                   std::to_string(t.checkerViolations)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("detected+recovered+silent+in_flight = injected per "
                "config; a corruption can be both detected and "
                "recovered-by-squash only once\n\n");

    // ---- resilience demo: the sweep survives hostile jobs --------
    std::vector<GuardedJob<FaultRun>> demo;
    {
        WorkloadSpec wl = suite.front();
        GuardedRunOptions opts;
        opts.jobName = "demo-deadlock";
        // A threshold below the first-commit latency makes the
        // watchdog fire deterministically.
        opts.deadlockThreshold = 10;
        MachineConfig machine = baselineConfig();
        demo.push_back({opts.jobName, [wl, machine, opts] {
                            FaultRun out;
                            out.stats = runUniGuarded(wl, machine, opts);
                            return out;
                        }});
        demo.push_back({"demo-throw", []() -> FaultRun {
                            throw std::runtime_error(
                                "deliberate failure (resilience demo)");
                        }});
        GuardedRunOptions healthy;
        healthy.jobName = "demo-healthy";
        demo.push_back({healthy.jobName, [wl, machine, healthy] {
                            FaultRun out;
                            out.stats =
                                runUniGuarded(wl, machine, healthy);
                            return out;
                        }});
    }
    // Demo artifacts are deliberate failures, not regressions: keep
    // them out of the results directory (where FAIL_*.json means a
    // real quarantined job) and park them under the host temp dir.
    GuardOptions demo_opts;
    demo_opts.artifactDir =
        (std::filesystem::temp_directory_path() / "vbr_fault_demo")
            .string();
    SweepOutcome<FaultRun> demo_out =
        runner.runGuarded(std::move(demo), demo_opts);

    std::printf("resilience demo: %zu/3 jobs quarantined (want 2), "
                "healthy job ok=%d\n",
                demo_out.quarantined.size(), demo_out.ok[2] ? 1 : 0);
    for (const SweepFailure &f : demo_out.quarantined)
        std::printf("  quarantined %-14s kind=%-12s attempts=%u "
                    "artifact=%s\n",
                    f.name.c_str(), f.kind.c_str(), f.attempts,
                    f.artifactPath.c_str());
    if (demo_out.quarantined.size() != 2 || !demo_out.ok[2])
        fatal("resilience demo: expected exactly the deadlocking and "
              "throwing jobs quarantined with the healthy job intact");
    for (const SweepFailure &f : demo_out.quarantined)
        if (f.artifactPath.empty())
            fatal("resilience demo: quarantined job " + f.name +
                  " has no failure artifact");

    // ---- acceptance gate at the canonical operating point --------
    if (scale == 1.0 && default_spec) {
        const ConfigTotals &base = totals[0];   // baseline CAM
        const ConfigTotals &replay = totals[1]; // replay-all
        if (replay.silent != 0 || replay.detected == 0)
            fatal("fault-detection gate: replay-all must detect all "
                  "corruptions (silent=" +
                  std::to_string(replay.silent) +
                  ", detected=" + std::to_string(replay.detected) + ")");
        if (base.silent == 0)
            fatal("fault-detection gate: baseline CAM is expected to "
                  "silently commit corrupted values (silent=0)");
        if (base.checkerViolations == 0)
            fatal("fault-detection gate: baseline silent corruptions "
                  "must be visible to the architectural checker");
        std::printf("[fault-smoke] replay-all: 0 silent corruptions "
                    "(%llu detected); baseline: %llu silent, caught "
                    "only by the architectural checker\n\n",
                    static_cast<unsigned long long>(replay.detected),
                    static_cast<unsigned long long>(base.silent));
    }

    // ---- machine-readable report ---------------------------------
    BenchReport rep("fault_detection");
    rep.meta("scale", scale)
        .meta("fault_spec", faults.render())
        .meta("default_spec", default_spec);
    slot = 0;
    for (std::size_t w = 0; w < suite.size(); ++w) {
        for (std::size_t m = 0; m < machines.size(); ++m, ++slot) {
            if (!grid.ok[slot])
                continue;
            const FaultRun &fr = grid.results[slot];
            JsonValue row = runStatsToJson(fr.stats);
            row.set("fault_injected", fr.fo.corruptionsInjected());
            row.set("fault_detected_by_compare",
                    fr.fo.detectedByCompare);
            row.set("fault_caught_by_cam", fr.fo.caughtByCam);
            row.set("fault_squashed_recovered", fr.fo.squashedRecovered);
            row.set("fault_silently_committed",
                    fr.fo.silentlyCommitted);
            row.set("fault_in_flight", fr.inFlight);
            row.set("checker_consistent", fr.consistent);
            row.set("checker_errors", fr.checkerErrors);
            rep.addRow(std::move(row));
        }
    }
    JsonValue summary = JsonValue::array();
    for (std::size_t m = 0; m < machines.size(); ++m) {
        const ConfigTotals &t = totals[m];
        JsonValue j = JsonValue::object();
        j.set("config", machines[m].name);
        j.set("injected", t.injected);
        j.set("detected_by_compare", t.detected);
        j.set("caught_by_cam", t.caughtByCam);
        j.set("squashed_recovered", t.recovered);
        j.set("silently_committed", t.silent);
        j.set("in_flight", t.inFlight);
        j.set("wild_accesses", t.wild);
        j.set("checker_violation_runs", t.checkerViolations);
        summary.push(std::move(j));
    }
    rep.metric("summary", std::move(summary));
    JsonValue quarantine = JsonValue::array();
    for (const SweepFailure &f : demo_out.quarantined) {
        JsonValue j = JsonValue::object();
        j.set("name", f.name);
        j.set("kind", f.kind);
        j.set("attempts", f.attempts);
        j.set("artifact", f.artifactPath);
        quarantine.push(std::move(j));
    }
    rep.metric("quarantined", std::move(quarantine));
    rep.metric("grid_jobs",
               static_cast<std::uint64_t>(grid.ok.size()));
    rep.metric("grid_quarantined",
               static_cast<std::uint64_t>(grid.quarantined.size()));
    rep.write();
    return 0;
}
