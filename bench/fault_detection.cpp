/**
 * @file
 * Fault-detection coverage harness. Injects seeded bit flips into load
 * writebacks and store-forwarded values (plus optional snoop/fill
 * faults via VBR_FAULTS) across the uniprocessor suite, under the
 * baseline CAM machine and the four value-based replay configurations,
 * and attributes every corruption to a fate:
 *
 *   detected_by_compare  the replay/compare stage caught it
 *   caught_by_cam        a CAM-triggered squash covered it
 *   squashed_recovered   any squash erased it before retirement
 *   silently_committed   it retired architecturally
 *
 * Headline: value-based replay detects and recovers from corrupted
 * premature values (the compare stage is an end-to-end check), while
 * the baseline CAM machine — which re-checks ordering, never values —
 * silently commits them; only the architectural constraint-graph
 * checker notices. Replay filters reintroduce a tunable window
 * (filtered loads skip the compare), quantified per config.
 *
 * The harness also demos the failure-isolating sweep: a deliberately
 * deadlocking job and a throwing job run alongside a healthy one; the
 * sweep completes, quarantines both with FAIL_*.json artifacts, and
 * still returns the healthy result.
 */

#include "harness.hpp"

#include <filesystem>
#include <stdexcept>

using namespace vbr;
using namespace vbr::bench;

namespace
{

/** Default injection plan (VBR_FAULTS overrides): value corruptions
 * only, so with versions tracked every silent commit of a live value
 * is also visible to the architectural checker. */
constexpr const char *kDefaultSpec = "seed=42,loadflip=5e-5,fwdflip=2e-4";

struct ConfigTotals
{
    std::uint64_t injected = 0;
    std::uint64_t detected = 0;
    std::uint64_t caughtByCam = 0;
    std::uint64_t recovered = 0;
    std::uint64_t silent = 0;
    std::uint64_t inFlight = 0;
    std::uint64_t wild = 0;
    std::uint64_t checkerViolations = 0; ///< runs failing the SC check
};

} // namespace

int
main()
{
    double scale = envScale();
    const char *env_spec = std::getenv("VBR_FAULTS");
    FaultConfig faults =
        FaultConfig::parse(env_spec ? env_spec : kDefaultSpec);
    bool default_spec = env_spec == nullptr;

    std::printf("Fault-detection coverage: seeded corruption of load "
                "writebacks and store forwards\n");
    std::printf("scale=%.2f, faults=%s\n\n", scale,
                faults.render().c_str());

    std::vector<MachineConfig> machines;
    machines.push_back(baselineConfig());
    for (auto &cfg : replayConfigs())
        machines.push_back(std::move(cfg));

    auto suite = uniprocessorSuite(scale);

    // ---- detection grid (guarded: a fault-crashed job quarantines
    // instead of killing the harness). Fault outcomes and the SC
    // checker's verdict ride as harvested extras, so a cache hit
    // restores the full taxonomy, not just RunStats. --------------
    JobList jobs;
    for (const auto &wl : suite) {
        for (const auto &machine : machines) {
            GuardedRunOptions opts;
            opts.faults = faults;
            opts.jobName = wl.name + "-" + machine.name;
            opts.trackVersions = true;
            std::size_t idx = jobs.uni(wl, machine);
            SimJobSpec &s = jobs.spec(idx);
            s.system = guardedSystemConfig(machine, opts, 1);
            s.attachScChecker = true;
        }
    }

    SweepResults grid = jobs.runGuarded();
    grid.printSummary("fault_detection");

    std::vector<ConfigTotals> totals(machines.size());
    std::size_t slot = 0;
    for (std::size_t w = 0; w < suite.size(); ++w) {
        for (std::size_t m = 0; m < machines.size(); ++m, ++slot) {
            if (!grid.has(slot))
                continue;
            const SimJobResult &fr = grid.job(slot);
            ConfigTotals &t = totals[m];
            t.injected += extraStat(fr, "fault:load_flips") +
                          extraStat(fr, "fault:forward_flips");
            t.detected += extraStat(fr, "fault:detected_by_compare");
            t.caughtByCam += extraStat(fr, "fault:caught_by_cam");
            t.recovered += extraStat(fr, "fault:squashed_recovered");
            t.silent += extraStat(fr, "fault:silently_committed");
            t.inFlight += extraStat(fr, "fault:in_flight");
            t.wild += extraStat(fr, "fault:wild_stores") +
                      extraStat(fr, "fault:wild_loads");
            if (extraStat(fr, "checker:consistent") == 0 ||
                extraStat(fr, "checker:errors") > 0)
                ++t.checkerViolations;
        }
    }

    TextTable table;
    table.header({"config", "injected", "detected", "caught_by_cam",
                  "recovered", "silent", "in_flight",
                  "checker_viol_runs"});
    for (std::size_t m = 0; m < machines.size(); ++m) {
        const ConfigTotals &t = totals[m];
        table.row({machines[m].name, std::to_string(t.injected),
                   std::to_string(t.detected),
                   std::to_string(t.caughtByCam),
                   std::to_string(t.recovered),
                   std::to_string(t.silent),
                   std::to_string(t.inFlight),
                   std::to_string(t.checkerViolations)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("detected+recovered+silent+in_flight = injected per "
                "config; a corruption can be both detected and "
                "recovered-by-squash only once\n\n");

    // ---- resilience demo: the sweep survives hostile jobs. Stays
    // on the opaque-lambda runGuarded path (and out of the cache):
    // two of the jobs exist to fail. ------------------------------
    std::vector<GuardedJob<RunStats>> demo;
    {
        WorkloadSpec wl = suite.front();
        GuardedRunOptions opts;
        opts.jobName = "demo-deadlock";
        // A threshold below the first-commit latency makes the
        // watchdog fire deterministically.
        opts.deadlockThreshold = 10;
        MachineConfig machine = baselineConfig();
        demo.push_back({opts.jobName, [wl, machine, opts] {
                            return runUniGuarded(wl, machine, opts);
                        }});
        demo.push_back({"demo-throw", []() -> RunStats {
                            throw std::runtime_error(
                                "deliberate failure (resilience demo)");
                        }});
        GuardedRunOptions healthy;
        healthy.jobName = "demo-healthy";
        demo.push_back({healthy.jobName, [wl, machine, healthy] {
                            return runUniGuarded(wl, machine, healthy);
                        }});
    }
    // Demo artifacts are deliberate failures, not regressions: keep
    // them out of the results directory (where FAIL_*.json means a
    // real quarantined job) and park them under the host temp dir.
    GuardOptions demo_opts;
    demo_opts.artifactDir =
        (std::filesystem::temp_directory_path() / "vbr_fault_demo")
            .string();
    SweepRunner runner;
    SweepOutcome<RunStats> demo_out =
        runner.runGuarded(std::move(demo), demo_opts);

    std::printf("resilience demo: %zu/3 jobs quarantined (want 2), "
                "healthy job ok=%d\n",
                demo_out.quarantined.size(), demo_out.ok[2] ? 1 : 0);
    for (const SweepFailure &f : demo_out.quarantined)
        std::printf("  quarantined %-14s kind=%-12s attempts=%u "
                    "artifact=%s\n",
                    f.name.c_str(), f.kind.c_str(), f.attempts,
                    f.artifactPath.c_str());
    if (demo_out.quarantined.size() != 2 || !demo_out.ok[2])
        fatal("resilience demo: expected exactly the deadlocking and "
              "throwing jobs quarantined with the healthy job intact");
    for (const SweepFailure &f : demo_out.quarantined)
        if (f.artifactPath.empty())
            fatal("resilience demo: quarantined job " + f.name +
                  " has no failure artifact");

    // ---- acceptance gate at the canonical operating point --------
    // (needs the whole grid: a sharded partial run can't total it)
    if (scale == 1.0 && default_spec && grid.complete()) {
        const ConfigTotals &base = totals[0];   // baseline CAM
        const ConfigTotals &replay = totals[1]; // replay-all
        if (replay.silent != 0 || replay.detected == 0)
            fatal("fault-detection gate: replay-all must detect all "
                  "corruptions (silent=" +
                  std::to_string(replay.silent) +
                  ", detected=" + std::to_string(replay.detected) + ")");
        if (base.silent == 0)
            fatal("fault-detection gate: baseline CAM is expected to "
                  "silently commit corrupted values (silent=0)");
        if (base.checkerViolations == 0)
            fatal("fault-detection gate: baseline silent corruptions "
                  "must be visible to the architectural checker");
        std::printf("[fault-smoke] replay-all: 0 silent corruptions "
                    "(%llu detected); baseline: %llu silent, caught "
                    "only by the architectural checker\n\n",
                    static_cast<unsigned long long>(replay.detected),
                    static_cast<unsigned long long>(base.silent));
    }

    // ---- machine-readable report ---------------------------------
    BenchReport rep("fault_detection");
    rep.meta("scale", scale)
        .meta("fault_spec", faults.render())
        .meta("default_spec", default_spec);
    slot = 0;
    for (std::size_t w = 0; w < suite.size(); ++w) {
        for (std::size_t m = 0; m < machines.size(); ++m, ++slot) {
            if (!grid.has(slot))
                continue;
            const SimJobResult &fr = grid.job(slot);
            JsonValue row = runStatsToJson(fr.stats);
            row.set("fault_injected",
                    extraStat(fr, "fault:load_flips") +
                        extraStat(fr, "fault:forward_flips"));
            row.set("fault_detected_by_compare",
                    extraStat(fr, "fault:detected_by_compare"));
            row.set("fault_caught_by_cam",
                    extraStat(fr, "fault:caught_by_cam"));
            row.set("fault_squashed_recovered",
                    extraStat(fr, "fault:squashed_recovered"));
            row.set("fault_silently_committed",
                    extraStat(fr, "fault:silently_committed"));
            row.set("fault_in_flight",
                    extraStat(fr, "fault:in_flight"));
            row.set("checker_consistent",
                    extraStat(fr, "checker:consistent") != 0);
            row.set("checker_errors",
                    extraStat(fr, "checker:errors"));
            rep.addRow(std::move(row));
        }
    }
    JsonValue summary = JsonValue::array();
    for (std::size_t m = 0; m < machines.size(); ++m) {
        const ConfigTotals &t = totals[m];
        JsonValue j = JsonValue::object();
        j.set("config", machines[m].name);
        j.set("injected", t.injected);
        j.set("detected_by_compare", t.detected);
        j.set("caught_by_cam", t.caughtByCam);
        j.set("squashed_recovered", t.recovered);
        j.set("silently_committed", t.silent);
        j.set("in_flight", t.inFlight);
        j.set("wild_accesses", t.wild);
        j.set("checker_violation_runs", t.checkerViolations);
        summary.push(std::move(j));
    }
    rep.metric("summary", std::move(summary));
    JsonValue quarantine = JsonValue::array();
    for (const SweepFailure &f : demo_out.quarantined) {
        JsonValue j = JsonValue::object();
        j.set("name", f.name);
        j.set("kind", f.kind);
        j.set("attempts", f.attempts);
        j.set("artifact", f.artifactPath);
        quarantine.push(std::move(j));
    }
    rep.metric("quarantined", std::move(quarantine));
    rep.metric("grid_jobs", static_cast<std::uint64_t>(grid.size()));
    rep.metric("grid_quarantined",
               static_cast<std::uint64_t>(
                   grid.outcome().quarantined.size()));
    rep.write();
    return 0;
}
