/**
 * @file
 * §5.1 squash-elimination statistics: value-based replay avoids the
 * squashes a conventional CAM performs when the premature load
 * actually read the correct value (store value locality, false
 * sharing, silent stores).
 *
 * Paper shape: ~59% of uniprocessor RAW dependence-misspeculation
 * squashes are eliminated because the replay value matches, and ~95%
 * of multiprocessor consistency squashes are eliminated; both event
 * classes are rare enough that performance is barely affected.
 *
 * Method: in value-replay mode the core keeps shadow (non-
 * architectural) CAM statistics — what a conventional LQ *would* have
 * squashed — alongside the actual replay-mismatch squashes.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();
    unsigned mp_cores = envMpCores();

    MachineConfig vbr_cfg{
        "value-replay",
        CoreConfig::valueReplay(
            ReplayFilterConfig::recentSnoopPlusNus())};

    std::printf("Section 5.1: squashes avoided by value-based replay\n");
    std::printf("scale=%.2f, mp_cores=%u\n\n", scale, mp_cores);

    struct Group
    {
        std::string name;
        std::size_t base, vr;
    };
    JobList jobs;
    std::vector<Group> uni_groups, mp_groups;

    for (const auto &wl : uniprocessorSuite(scale)) {
        uni_groups.push_back({wl.name, jobs.uni(wl, baselineConfig()),
                              jobs.uni(wl, vbr_cfg)});
    }
    for (const auto &wl : multiprocessorSuite(mp_cores, scale)) {
        mp_groups.push_back({wl.name, jobs.mp(wl, baselineConfig()),
                             jobs.mp(wl, vbr_cfg)});
    }

    SweepResults results = jobs.run();
    results.printSummary("sec51_squash_elimination");

    BenchReport rep("sec51_squash_elimination");
    rep.meta("scale", scale).meta("mp_cores", mp_cores);
    for (std::size_t i = 0; i < results.size(); ++i)
        if (results.has(i))
            rep.addRun(results[i]);

    // --- uniprocessor RAW squashes --------------------------------------
    std::printf("Uniprocessor RAW dependence misspeculations:\n");
    TextTable uni;
    uni.header({"workload", "baseline_squashes", "value_equal",
                "replay_squashes", "wouldbe(vbr)", "eliminated"});
    std::uint64_t tot_wouldbe = 0, tot_replay_squash = 0;
    for (const Group &g : uni_groups) {
        if (!results.hasAll({g.base, g.vr}))
            continue; // other shard owns part of this row
        const RunStats &base = results[g.base];
        const RunStats &vr = results[g.vr];
        tot_wouldbe += vr.wouldbeRaw;
        tot_replay_squash += vr.squashReplay;
        double eliminated =
            vr.wouldbeRaw == 0
                ? 0.0
                : 1.0 - static_cast<double>(vr.squashReplay) /
                            static_cast<double>(vr.wouldbeRaw);
        uni.row({g.name, std::to_string(base.squashLqRaw),
                 std::to_string(base.squashLqRawUnnec),
                 std::to_string(vr.squashReplay),
                 std::to_string(vr.wouldbeRaw),
                 TextTable::pct(eliminated, 1)});
    }
    std::printf("%s", uni.render().c_str());
    double uni_elim =
        tot_wouldbe == 0
            ? 0.0
            : 1.0 - static_cast<double>(tot_replay_squash) /
                        static_cast<double>(tot_wouldbe);
    std::printf("overall: %llu would-be RAW squashes, %llu actual "
                "replay squashes -> %.1f%% eliminated "
                "(paper: ~59%%)\n\n",
                (unsigned long long)tot_wouldbe,
                (unsigned long long)tot_replay_squash,
                uni_elim * 100.0);

    // --- multiprocessor consistency squashes ----------------------------
    std::printf("Multiprocessor consistency squashes:\n");
    TextTable mp;
    mp.header({"workload", "baseline_snoop_squashes", "value_equal",
               "replay_squashes", "eliminated_vs_baseline"});
    std::uint64_t tot_base_snoop = 0, tot_mp_replay = 0;
    for (const Group &g : mp_groups) {
        if (!results.hasAll({g.base, g.vr}))
            continue; // other shard owns part of this row
        const RunStats &base = results[g.base];
        const RunStats &vr = results[g.vr];
        tot_base_snoop += base.squashLqSnoop;
        tot_mp_replay += vr.squashReplay;
        double eliminated =
            base.squashLqSnoop == 0
                ? 0.0
                : 1.0 - static_cast<double>(vr.squashReplay) /
                            static_cast<double>(base.squashLqSnoop);
        mp.row({g.name, std::to_string(base.squashLqSnoop),
                std::to_string(base.squashLqSnoopUnnec),
                std::to_string(vr.squashReplay),
                TextTable::pct(eliminated, 1)});
    }
    std::printf("%s", mp.render().c_str());
    double mp_elim =
        tot_base_snoop == 0
            ? 0.0
            : 1.0 - static_cast<double>(tot_mp_replay) /
                        static_cast<double>(tot_base_snoop);
    std::printf("overall: %llu baseline snoop squashes vs %llu replay "
                "squashes -> %.1f%% eliminated (paper: ~95%%)\n",
                (unsigned long long)tot_base_snoop,
                (unsigned long long)tot_mp_replay, mp_elim * 100.0);

    rep.metric("uni_raw_squashes_eliminated", uni_elim);
    rep.metric("mp_snoop_squashes_eliminated", mp_elim);
    rep.write();
    return 0;
}
