/**
 * @file
 * Ablation: replay bandwidth. The paper limits replay to one load per
 * cycle through the single commit-stage port and notes that "in very
 * aggressive machines, multiple load replays per cycle may be
 * necessary". This sweep runs replay-all (the worst case for replay
 * bandwidth) with 1, 2, and 4 commit-stage ports/replays-per-cycle
 * and reports IPC relative to baseline — showing how much of
 * replay-all's loss in Figure 5 is pure back-end port contention.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();

    std::printf("Ablation: replay bandwidth (replay-all, IPC relative "
                "to baseline)\n");
    std::printf("scale=%.2f\n\n", scale);

    TextTable table;
    table.header({"workload", "base_ipc", "1 port", "2 ports",
                  "4 ports"});

    std::vector<std::vector<double>> ratios(3);
    const unsigned ports[3] = {1, 2, 4};

    JobList jobs;
    std::vector<std::string> names;
    for (const auto &wl : uniprocessorSuite(scale)) {
        names.push_back(wl.name);
        jobs.uni(wl, baselineConfig());
        for (unsigned i = 0; i < 3; ++i) {
            MachineConfig cfg{
                "replay-all-p" + std::to_string(ports[i]),
                CoreConfig::valueReplay(
                    ReplayFilterConfig::replayAll())};
            cfg.core.commitPorts = ports[i];
            cfg.core.replaysPerCycle = ports[i];
            jobs.uni(wl, cfg);
        }
    }

    SweepResults results = jobs.run();
    results.printSummary("ablation_replay_bandwidth");

    BenchReport rep("ablation_replay_bandwidth");
    rep.meta("scale", scale);
    for (std::size_t i = 0; i < results.size(); ++i)
        if (results.has(i))
            rep.addRun(results[i]);

    for (std::size_t w = 0; w < names.size(); ++w) {
        if (!results.hasAll(
                {w * 4, w * 4 + 1, w * 4 + 2, w * 4 + 3}))
            continue; // other shard owns part of this row
        const RunStats &base = results[w * 4];
        std::vector<std::string> row{names[w],
                                     TextTable::fmt(base.ipc, 3)};
        for (unsigned i = 0; i < 3; ++i) {
            const RunStats &run = results[w * 4 + 1 + i];
            ratios[i].push_back(run.ipc / base.ipc);
            row.push_back(TextTable::fmt(run.ipc / base.ipc, 3));
        }
        table.row(row);
    }

    std::vector<std::string> avg{"geomean", ""};
    for (unsigned i = 0; i < 3; ++i) {
        double g = geomean(ratios[i]);
        avg.push_back(TextTable::fmt(g, 3));
        rep.metric("geomean_ipc_ratio_ports" + std::to_string(ports[i]),
                   g);
    }
    table.row(avg);

    std::printf("%s\n", table.render().c_str());
    std::printf("expectation: extra back-end ports recover most of "
                "replay-all's loss; the filtered configurations get "
                "the same effect without any extra port\n");
    rep.write();
    return 0;
}
