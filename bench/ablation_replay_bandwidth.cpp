/**
 * @file
 * Ablation: replay bandwidth. The paper limits replay to one load per
 * cycle through the single commit-stage port and notes that "in very
 * aggressive machines, multiple load replays per cycle may be
 * necessary". This sweep runs replay-all (the worst case for replay
 * bandwidth) with 1, 2, and 4 commit-stage ports/replays-per-cycle
 * and reports IPC relative to baseline — showing how much of
 * replay-all's loss in Figure 5 is pure back-end port contention.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();

    std::printf("Ablation: replay bandwidth (replay-all, IPC relative "
                "to baseline)\n");
    std::printf("scale=%.2f\n\n", scale);

    TextTable table;
    table.header({"workload", "base_ipc", "1 port", "2 ports",
                  "4 ports"});

    std::vector<std::vector<double>> ratios(3);
    const unsigned ports[3] = {1, 2, 4};

    for (const auto &wl : uniprocessorSuite(scale)) {
        RunStats base = runUni(wl, baselineConfig());
        std::vector<std::string> row{wl.name,
                                     TextTable::fmt(base.ipc, 3)};
        for (unsigned i = 0; i < 3; ++i) {
            MachineConfig cfg{
                "replay-all-p" + std::to_string(ports[i]),
                CoreConfig::valueReplay(
                    ReplayFilterConfig::replayAll())};
            cfg.core.commitPorts = ports[i];
            cfg.core.replaysPerCycle = ports[i];
            RunStats run = runUni(wl, cfg);
            ratios[i].push_back(run.ipc / base.ipc);
            row.push_back(TextTable::fmt(run.ipc / base.ipc, 3));
        }
        table.row(row);
    }

    std::vector<std::string> avg{"geomean", ""};
    for (auto &r : ratios)
        avg.push_back(TextTable::fmt(geomean(r), 3));
    table.row(avg);

    std::printf("%s\n", table.render().c_str());
    std::printf("expectation: extra back-end ports recover most of "
                "replay-all's loss; the filtered configurations get "
                "the same effect without any extra port\n");
    return 0;
}
