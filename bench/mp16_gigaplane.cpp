/**
 * @file
 * 16-core Gigaplane-XB-style system run (the paper's large MP target,
 * Table 1): the multiprocessor suite plus the busy-neighbor schedule
 * on a 16-processor machine, baseline snooping LQ vs the paper's best
 * replay filter (no-recent-snoop + no-unresolved-store).
 *
 * Beyond the IPC comparison this harness reports what the per-core
 * slack fast-forward buys at 16 cores: skipped vs ticked core-cycles
 * per workload. The busy-neighbor row is the interesting one — the
 * spinner core keeps the system from ever being all-quiescent, so the
 * whole-system skip finds (almost) nothing, while per-core sleep hides
 * each loader's full memory round trips.
 *
 * Honors VBR_FASTFWD / VBR_FASTFWD_PERCORE / VBR_MP_THREADS through
 * the SystemConfig env defaults, so the same binary measures any
 * combination of the skip and intra-simulation parallelism knobs.
 * skipped/ticked cycles are masked fields in BENCH json comparison —
 * everything else must stay bitwise-identical across those knobs.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();
    constexpr unsigned kCores = 16;

    std::printf("16-core Gigaplane-XB-style system: baseline vs "
                "no-recent-snoop replay\n");
    std::printf("skip columns: per-core fast-forward win under the "
                "replay machine\n");
    std::printf("scale=%.2f, cores=%u\n\n", scale, kCores);

    MachineConfig base = baselineConfig();
    MachineConfig replay = {
        "no-recent-snoop",
        CoreConfig::valueReplay(ReplayFilterConfig::recentSnoopPlusNus())};

    std::vector<MpWorkloadSpec> suite = multiprocessorSuite(kCores, scale);
    {
        MpParams p;
        p.threads = kCores;
        p.iterations =
            std::max(1u, static_cast<unsigned>(40 * scale));
        suite.push_back({"busy_neighbor", makeBusyNeighbor(p), kCores});
    }

    struct Row
    {
        std::string name;
        bool busy = false;
        std::size_t base = 0;
        std::size_t replay = 0;
    };
    JobList jobs;
    std::vector<Row> rows;
    for (const auto &wl : suite) {
        Row row;
        row.name = wl.name;
        row.busy = wl.name == "busy_neighbor";
        row.base = jobs.mp(wl, base);
        row.replay = jobs.mp(wl, replay);
        if (row.busy) {
            // Prefetching off: each loader iteration pays the full
            // memory round trip — the idle window per-core sleep
            // hides. The hierarchy override lives in the spec, so it
            // is part of the job's content key.
            jobs.spec(row.base)
                .system.hierarchy.prefetcher.enabled = false;
            jobs.spec(row.replay)
                .system.hierarchy.prefetcher.enabled = false;
        }
        rows.push_back(std::move(row));
    }

    SweepResults results = jobs.run();
    results.printSummary("mp16_gigaplane");

    BenchReport rep("mp16_gigaplane");
    rep.meta("scale", scale).meta("cores", kCores);
    for (std::size_t i = 0; i < results.size(); ++i)
        if (results.has(i))
            rep.addRun(results[i]);

    TextTable table;
    table.header({"workload", "base-ipc", "replay-ipc", "ratio",
                  "skipped-cyc", "ticked-cyc", "skip-frac"});

    std::vector<double> ratios;
    for (const Row &row : rows) {
        if (!results.hasAll({row.base, row.replay}))
            continue; // other shard owns part of this row
        const RunStats &b = results[row.base];
        const RunStats &r = results[row.replay];
        double ratio = b.ipc > 0.0 ? r.ipc / b.ipc : 0.0;
        ratios.push_back(ratio);
        double span =
            static_cast<double>(r.skippedCycles + r.tickedCycles);
        double frac = span > 0.0 ? r.skippedCycles / span : 0.0;
        table.row({row.name, TextTable::fmt(b.ipc),
                   TextTable::fmt(r.ipc), TextTable::fmt(ratio),
                   std::to_string(r.skippedCycles),
                   std::to_string(r.tickedCycles),
                   TextTable::pct(frac, 1)});
        // Note: the skip fraction stays out of the json metrics — it
        // varies with the fast-forward knobs, and compare_bench.py
        // only masks the per-run skipped/ticked fields.
        (void)row.busy;
    }
    rep.metric("geomean_ipc_ratio", geomean(ratios));

    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: value-based replay within ~1%% of "
                "the baseline IPC at 16 processors (Fig. 5)\n");
    rep.write();
    return 0;
}
