/**
 * @file
 * 16-core Gigaplane-XB-style system run (the paper's large MP target,
 * Table 1): the multiprocessor suite plus the busy-neighbor schedule
 * on a 16-processor machine, baseline snooping LQ vs the paper's best
 * replay filter (no-recent-snoop + no-unresolved-store).
 *
 * Beyond the IPC comparison this harness reports what the per-core
 * slack fast-forward buys at 16 cores: skipped vs ticked core-cycles
 * per workload. The busy-neighbor row is the interesting one — the
 * spinner core keeps the system from ever being all-quiescent, so the
 * whole-system skip finds (almost) nothing, while per-core sleep hides
 * each loader's full memory round trips.
 *
 * Honors VBR_FASTFWD / VBR_FASTFWD_PERCORE / VBR_MP_THREADS through
 * the SystemConfig env defaults, so the same binary measures any
 * combination of the skip and intra-simulation parallelism knobs.
 * skipped/ticked cycles are masked fields in BENCH json comparison —
 * everything else must stay bitwise-identical across those knobs.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

namespace
{

/** Busy-neighbor run with prefetching off: each loader iteration pays
 * the full memory round trip — the idle window per-core sleep hides.
 * (JobList::add because runMp uses the default hierarchy.) */
RunStats
runBusyNeighbor(const MpWorkloadSpec &spec, const MachineConfig &machine)
{
    SystemConfig cfg;
    cfg.cores = spec.threads;
    cfg.core = machine.core;
    cfg.hierarchy.prefetcher.enabled = false;
    System sys(cfg, spec.prog);
    RunResult r = sys.run();
    if (!r.allHalted)
        fatal("MP workload " + spec.name + " did not halt under " +
              machine.name);
    return collectRunStats(sys, r, spec.name, machine.name);
}

} // namespace

int
main()
{
    double scale = envScale();
    constexpr unsigned kCores = 16;

    std::printf("16-core Gigaplane-XB-style system: baseline vs "
                "no-recent-snoop replay\n");
    std::printf("skip columns: per-core fast-forward win under the "
                "replay machine\n");
    std::printf("scale=%.2f, cores=%u\n\n", scale, kCores);

    MachineConfig base = baselineConfig();
    MachineConfig replay = {
        "no-recent-snoop",
        CoreConfig::valueReplay(ReplayFilterConfig::recentSnoopPlusNus())};

    std::vector<MpWorkloadSpec> suite = multiprocessorSuite(kCores, scale);
    {
        MpParams p;
        p.threads = kCores;
        p.iterations =
            std::max(1u, static_cast<unsigned>(40 * scale));
        suite.push_back({"busy_neighbor", makeBusyNeighbor(p), kCores});
    }

    struct Row
    {
        std::string name;
        bool busy = false;
        std::size_t base = 0;
        std::size_t replay = 0;
    };
    JobList jobs;
    std::vector<Row> rows;
    for (const auto &wl : suite) {
        Row row;
        row.name = wl.name;
        row.busy = wl.name == "busy_neighbor";
        if (row.busy) {
            row.base = jobs.add(
                [wl, base] { return runBusyNeighbor(wl, base); });
            row.replay = jobs.add(
                [wl, replay] { return runBusyNeighbor(wl, replay); });
        } else {
            row.base = jobs.mp(wl, base);
            row.replay = jobs.mp(wl, replay);
        }
        rows.push_back(std::move(row));
    }

    std::vector<RunStats> results = jobs.run();

    BenchReport rep("mp16_gigaplane");
    rep.meta("scale", scale).meta("cores", kCores);
    for (const RunStats &s : results)
        rep.addRun(s);

    TextTable table;
    table.header({"workload", "base-ipc", "replay-ipc", "ratio",
                  "skipped-cyc", "ticked-cyc", "skip-frac"});

    std::vector<double> ratios;
    for (const Row &row : rows) {
        const RunStats &b = results[row.base];
        const RunStats &r = results[row.replay];
        double ratio = b.ipc > 0.0 ? r.ipc / b.ipc : 0.0;
        ratios.push_back(ratio);
        double span =
            static_cast<double>(r.skippedCycles + r.tickedCycles);
        double frac = span > 0.0 ? r.skippedCycles / span : 0.0;
        table.row({row.name, TextTable::fmt(b.ipc),
                   TextTable::fmt(r.ipc), TextTable::fmt(ratio),
                   std::to_string(r.skippedCycles),
                   std::to_string(r.tickedCycles),
                   TextTable::pct(frac, 1)});
        // Note: the skip fraction stays out of the json metrics — it
        // varies with the fast-forward knobs, and compare_bench.py
        // only masks the per-run skipped/ticked fields.
        (void)row.busy;
    }
    rep.metric("geomean_ipc_ratio", geomean(ratios));

    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: value-based replay within ~1%% of "
                "the baseline IPC at 16 processors (Fig. 5)\n");
    rep.write();
    return 0;
}
