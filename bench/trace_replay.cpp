/**
 * @file
 * Trace-driven replay tier harness: runs the fig5 grid (uni + MP
 * suites x baseline + four replay configurations) through the full
 * simulator with trace capture on, then replays every captured trace
 * through the ordering-only tier, and gates — in process, fatally —
 * that both tiers produce identical ordering verdicts: replay splits,
 * squash totals, committed loads, consistency-checker outcome, and
 * the final memory image digest.
 *
 * Besides the main BENCH_trace_replay.json (replay-tier rows +
 * full_ms/replay_ms/replay_speedup metrics, all three masked), the
 * harness writes the same ordering-verdict projection of both tiers
 * to <bench_dir>/verdict_full/ and <bench_dir>/verdict_replay/ so CI
 * can re-state the equivalence gate as a tools/compare_bench.py run.
 *
 * Both passes go through the sweep service, so trace-tier jobs are
 * cached (keyed on the trace content digest), sharded, and counted in
 * the [sweep] summary like any other job. A warm rerun simulates 0
 * jobs in both passes and reuses the traces persisted under
 * <bench_dir>/traces (or $VBR_TRACE_DIR when set).
 */

#include <chrono>
#include <filesystem>

#include "common/atomic_file.hpp"
#include "harness.hpp"
#include "trace/trace_format.hpp"

using namespace vbr;
using namespace vbr::bench;

namespace
{

std::string
benchDir()
{
    const char *d = std::getenv("VBR_BENCH_DIR");
    return d != nullptr && *d != '\0' ? d : ".";
}

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** The ordering-verdict projection both tiers must agree on. */
struct Verdict
{
    std::string workload;
    std::string config;
    std::uint64_t committedLoads = 0;
    std::uint64_t replaysUnresolved = 0;
    std::uint64_t replaysConsistency = 0;
    std::uint64_t replaysFiltered = 0;
    std::uint64_t squashLqRaw = 0;
    std::uint64_t squashLqRawUnnec = 0;
    std::uint64_t squashLqSnoop = 0;
    std::uint64_t squashLqSnoopUnnec = 0;
    std::uint64_t squashReplay = 0;
    std::uint64_t checkerConsistent = 0;
    std::uint64_t checkerErrors = 0;
    std::uint64_t memDigest = 0;

    bool
    operator==(const Verdict &o) const
    {
        return workload == o.workload && config == o.config &&
               committedLoads == o.committedLoads &&
               replaysUnresolved == o.replaysUnresolved &&
               replaysConsistency == o.replaysConsistency &&
               replaysFiltered == o.replaysFiltered &&
               squashLqRaw == o.squashLqRaw &&
               squashLqRawUnnec == o.squashLqRawUnnec &&
               squashLqSnoop == o.squashLqSnoop &&
               squashLqSnoopUnnec == o.squashLqSnoopUnnec &&
               squashReplay == o.squashReplay &&
               checkerConsistent == o.checkerConsistent &&
               checkerErrors == o.checkerErrors &&
               memDigest == o.memDigest;
    }
};

Verdict
verdictOf(const SimJobResult &r, std::uint64_t mem_digest)
{
    Verdict v;
    v.workload = r.stats.workload;
    v.config = r.stats.config;
    v.committedLoads = r.stats.committedLoads;
    v.replaysUnresolved = r.stats.replaysUnresolved;
    v.replaysConsistency = r.stats.replaysConsistency;
    v.replaysFiltered = r.stats.replaysFiltered;
    v.squashLqRaw = r.stats.squashLqRaw;
    v.squashLqRawUnnec = r.stats.squashLqRawUnnec;
    v.squashLqSnoop = r.stats.squashLqSnoop;
    v.squashLqSnoopUnnec = r.stats.squashLqSnoopUnnec;
    v.squashReplay = r.stats.squashReplay;
    v.checkerConsistent = extraStat(r, "checker:consistent");
    v.checkerErrors = extraStat(r, "checker:errors");
    v.memDigest = mem_digest;
    return v;
}

JsonValue
verdictRow(const Verdict &v)
{
    JsonValue o = JsonValue::object();
    o.set("workload", v.workload);
    o.set("config", v.config);
    o.set("committed_loads", v.committedLoads);
    o.set("replays_unresolved", v.replaysUnresolved);
    o.set("replays_consistency", v.replaysConsistency);
    o.set("replays_filtered", v.replaysFiltered);
    o.set("squash_lq_raw", v.squashLqRaw);
    o.set("squash_lq_raw_unnec", v.squashLqRawUnnec);
    o.set("squash_lq_snoop", v.squashLqSnoop);
    o.set("squash_lq_snoop_unnec", v.squashLqSnoopUnnec);
    o.set("squash_replay", v.squashReplay);
    o.set("checker_consistent", v.checkerConsistent);
    o.set("checker_errors", v.checkerErrors);
    char dg[24];
    std::snprintf(dg, sizeof(dg), "%016llx",
                  static_cast<unsigned long long>(v.memDigest));
    o.set("mem_digest", dg);
    return o;
}

void
writeVerdictReport(const std::string &subdir,
                   const std::vector<Verdict> &verdicts, double scale,
                   unsigned mp_cores)
{
    BenchReport rep("trace_replay_verdict");
    rep.meta("scale", scale).meta("mp_cores", mp_cores);
    for (const Verdict &v : verdicts)
        rep.addRow(verdictRow(v));
    std::string dir = benchDir() + "/" + subdir;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string path = dir + "/BENCH_trace_replay_verdict.json";
    if (!atomicWriteFile(path, rep.render()))
        fatal("cannot write " + path);
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main()
{
    double scale = envScale();
    unsigned mp_cores = envMpCores();

    const char *env_traces = std::getenv("VBR_TRACE_DIR");
    std::string traces_dir = env_traces != nullptr && *env_traces != '\0'
                                 ? env_traces
                                 : benchDir() + "/traces";

    std::printf("Trace-driven replay tier: full-sim capture vs "
                "ordering-only replay\n");
    std::printf("scale=%.2f, mp_cores=%u, traces=%s\n\n", scale,
                mp_cores, traces_dir.c_str());

    std::vector<MachineConfig> machines;
    machines.push_back(baselineConfig());
    for (const auto &cfg : replayConfigs())
        machines.push_back(cfg);

    // --- pass 1: full simulation with trace capture -------------------
    JobList full_jobs;
    for (const auto &wl : uniprocessorSuite(scale))
        for (const auto &m : machines)
            full_jobs.uni(wl, m);
    for (const auto &wl : multiprocessorSuite(mp_cores, scale))
        for (const auto &m : machines)
            full_jobs.mp(wl, m);
    for (std::size_t i = 0; i < full_jobs.size(); ++i) {
        SimJobSpec &spec = full_jobs.spec(i);
        spec.system.trackVersions = true;
        spec.system.traceDir = traces_dir;
        spec.attachScChecker = true;
    }

    auto t0 = std::chrono::steady_clock::now();
    SweepResults full = full_jobs.run();
    double full_ms = msSince(t0);
    full.printSummary("trace_replay_full");

    // --- ensure every trace exists (cache hits skip the simulation
    // that would have captured it; regenerate those inline) ----------
    std::vector<std::string> trace_paths(full_jobs.size());
    std::vector<std::uint64_t> trace_digests(full_jobs.size(), 0);
    std::size_t recaptured = 0;
    for (std::size_t i = 0; i < full_jobs.size(); ++i) {
        if (!full.has(i))
            continue; // another shard's slot: no trace, no replay job
        trace_paths[i] = traceFilePath(full_jobs.spec(i));
        try {
            trace_digests[i] = traceFileDigest(trace_paths[i]);
        } catch (const TraceError &) {
            runSimJob(full_jobs.spec(i), /*guarded=*/false);
            trace_digests[i] = traceFileDigest(trace_paths[i]);
            ++recaptured;
        }
    }
    if (recaptured != 0)
        std::printf("[trace-replay] recaptured %zu missing trace(s)\n",
                    recaptured);

    // --- pass 2: ordering-only replay of every captured trace ---------
    JobList replay_jobs;
    std::vector<std::size_t> replay_idx(full_jobs.size(), SIZE_MAX);
    for (std::size_t i = 0; i < full_jobs.size(); ++i) {
        if (!full.has(i))
            continue;
        SimJobSpec spec = full_jobs.spec(i);
        spec.mode = SimJobMode::TraceReplay;
        spec.tracePath = trace_paths[i];
        spec.traceDigest = trace_digests[i];
        spec.system.traceDir.clear();
        spec.system.jobName += "-replay";
        replay_idx[i] = replay_jobs.add(std::move(spec));
    }

    auto t1 = std::chrono::steady_clock::now();
    SweepResults replay = replay_jobs.run();
    double replay_ms = msSince(t1);
    replay.printSummary("trace_replay");

    // --- the equivalence gate ----------------------------------------
    std::vector<Verdict> full_verdicts;
    std::vector<Verdict> replay_verdicts;
    std::size_t compared = 0;
    for (std::size_t i = 0; i < full_jobs.size(); ++i) {
        if (!full.has(i) || replay_idx[i] == SIZE_MAX ||
            !replay.has(replay_idx[i]))
            continue;
        const SimJobResult &fr = full.job(i);
        const SimJobResult &rr = replay.job(replay_idx[i]);
        // The full tier's final-image digest is the one its capture
        // recorded in the trailer; the replay tier recomputed its own
        // from the write frames (and verified it internally).
        std::string contents;
        if (!readFileToString(trace_paths[i], contents))
            fatal("trace vanished mid-harness: " + trace_paths[i]);
        std::vector<std::uint8_t> bytes(contents.begin(),
                                        contents.end());
        TraceHeader th;
        TraceTrailer tt;
        readTraceSummary(bytes, th, tt);
        Verdict fv = verdictOf(fr, tt.finalMemDigest);
        Verdict rv =
            verdictOf(rr, extraStat(rr, "trace:final_mem_digest"));
        if (!(fv == rv))
            fatal("trace-replay verdict divergence on " +
                  fr.stats.workload + "/" + fr.stats.config +
                  ": the ordering-only tier does not reproduce the "
                  "full simulation");
        if (fr.stats.instructions != rr.stats.instructions ||
            fr.stats.cycles != rr.stats.cycles)
            fatal("trace-replay instruction/cycle totals diverge on " +
                  fr.stats.workload + "/" + fr.stats.config);
        full_verdicts.push_back(std::move(fv));
        replay_verdicts.push_back(std::move(rv));
        ++compared;
    }
    std::printf("[trace-replay] verdicts identical across %zu jobs "
                "(full %.0f ms, replay %.0f ms, speedup %.1fx)\n\n",
                compared, full_ms, replay_ms,
                replay_ms > 0.0 ? full_ms / replay_ms : 0.0);

    // --- stdout table: per-config replay-tier totals ------------------
    TextTable table;
    table.header({"config", "committed_loads", "replays", "filtered",
                  "squashes", "checker_errors"});
    for (const auto &m : machines) {
        std::uint64_t loads = 0, replays = 0, filtered = 0,
                      squashes = 0, errors = 0;
        for (const Verdict &v : replay_verdicts) {
            if (v.config != m.name)
                continue;
            loads += v.committedLoads;
            replays += v.replaysUnresolved + v.replaysConsistency;
            filtered += v.replaysFiltered;
            squashes += v.squashLqRaw + v.squashLqSnoop +
                        v.squashReplay;
            errors += v.checkerErrors;
        }
        table.row({m.name, std::to_string(loads),
                   std::to_string(replays), std::to_string(filtered),
                   std::to_string(squashes), std::to_string(errors)});
    }
    std::printf("%s\n", table.render().c_str());

    // --- reports ------------------------------------------------------
    writeVerdictReport("verdict_full", full_verdicts, scale, mp_cores);
    writeVerdictReport("verdict_replay", replay_verdicts, scale,
                       mp_cores);

    BenchReport rep("trace_replay");
    rep.meta("scale", scale).meta("mp_cores", mp_cores);
    for (std::size_t i = 0; i < replay_jobs.size(); ++i)
        if (replay.has(i))
            rep.addRun(replay[i]);
    rep.metric("jobs_compared", compared)
        .metric("full_ms", full_ms)
        .metric("replay_ms", replay_ms)
        .metric("replay_speedup",
                replay_ms > 0.0 ? full_ms / replay_ms : 0.0);
    rep.write();
    return 0;
}
