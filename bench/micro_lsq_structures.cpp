/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own queue
 * structures, demonstrating in software what the paper argues in
 * hardware: associative load-queue searches scale with occupancy,
 * while the value-based FIFO's operations are O(1) regardless of
 * size. Also covers store-queue search cost and CAM-model evaluation.
 */

#include <benchmark/benchmark.h>

#include "cam/cam_model.hpp"
#include "lsq/assoc_load_queue.hpp"
#include "lsq/replay_queue.hpp"
#include "lsq/store_queue.hpp"
#include "sys/bench_json.hpp"

using namespace vbr;

namespace
{

void
BM_AssocLqStoreAgenSearch(benchmark::State &state)
{
    const std::size_t entries = static_cast<std::size_t>(state.range(0));
    AssocLoadQueue lq(entries, LqMode::Snooping);
    for (std::size_t i = 0; i < entries; ++i) {
        lq.dispatch(i + 1, static_cast<std::uint32_t>(i), 8);
        lq.recordIssue(i + 1, 0x1000 + i * 64, 0);
    }
    SeqNum store_seq = 0;
    for (auto _ : state) {
        // Search for an address that matches nothing: full scan.
        auto squash = lq.storeAgenSearch(store_seq, 0xdead0000, 8);
        benchmark::DoNotOptimize(squash);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(entries));
}

void
BM_ReplayQueueDispatchRetire(benchmark::State &state)
{
    const std::size_t entries = static_cast<std::size_t>(state.range(0));
    ReplayQueue rq(entries);
    SeqNum seq = 1;
    for (auto _ : state) {
        // Steady-state FIFO churn: O(1) per op, independent of size.
        if (rq.full()) {
            SeqNum head = rq.head()->seq;
            rq.retire(head);
        }
        rq.dispatch(seq, 0, 8);
        ReplayLoadInfo info;
        rq.recordIssue(seq, 0x1000, 42, false, info);
        ++seq;
    }
}

void
BM_StoreQueueLoadSearch(benchmark::State &state)
{
    const std::size_t entries = static_cast<std::size_t>(state.range(0));
    StoreQueue sq(entries);
    for (std::size_t i = 0; i < entries; ++i) {
        sq.dispatch(i + 1, 0, 8);
        sq.setAddress(i + 1, 0x2000 + i * 8);
        sq.setData(i + 1, i);
    }
    for (auto _ : state) {
        auto res = sq.searchForLoad(entries + 10, 0x2000, 8);
        benchmark::DoNotOptimize(res);
    }
}

void
BM_CamModelEstimate(benchmark::State &state)
{
    CamModel model;
    unsigned entries = 16;
    for (auto _ : state) {
        CamEstimate e = model.estimate({entries, 3, 2});
        benchmark::DoNotOptimize(e);
        entries = entries >= 512 ? 16 : entries * 2;
    }
}

BENCHMARK(BM_AssocLqStoreAgenSearch)->Arg(16)->Arg(32)->Arg(128)->Arg(512);
BENCHMARK(BM_ReplayQueueDispatchRetire)->Arg(16)->Arg(128)->Arg(512);
BENCHMARK(BM_StoreQueueLoadSearch)->Arg(16)->Arg(64);
BENCHMARK(BM_CamModelEstimate);

/** Console output as usual, plus each run mirrored into the shared
 * BENCH_<name>.json emitter. */
class ReportingConsole : public benchmark::ConsoleReporter
{
  public:
    explicit ReportingConsole(BenchReport &rep) : rep_(rep) {}

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const Run &r : runs) {
            JsonValue row = JsonValue::object();
            row.set("name", r.benchmark_name());
            row.set("iterations",
                    static_cast<std::int64_t>(r.iterations));
            row.set("real_time_ns", r.GetAdjustedRealTime());
            row.set("cpu_time_ns", r.GetAdjustedCPUTime());
            auto it = r.counters.find("items_per_second");
            if (it != r.counters.end())
                row.set("items_per_second",
                        static_cast<double>(it->second));
            rep_.addRow(std::move(row));
        }
    }

  private:
    BenchReport &rep_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    BenchReport rep("micro_lsq_structures");
    ReportingConsole reporter(rep);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    rep.write();
    return 0;
}
