/**
 * @file
 * Figure 8 reproduction: baseline machines whose associative load
 * queue is constrained by clock cycle time (16 and 32 entries),
 * relative to value-based replay with the no-recent-snoop +
 * no-unresolved-store filters (whose FIFO stays large because it
 * needs no CAM).
 *
 * Paper shape: against the 32-entry baseline, value-based replay is
 * ~1% faster on average (art and ocean markedly faster, 7%/15%);
 * against the 16-entry baseline it averages ~8% faster, up to 34%.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();
    unsigned mp_cores = envMpCores();

    std::printf("Figure 8: constrained baseline LQ sizes, performance "
                "relative to value-based replay (NRS+NUS)\n");
    std::printf("values < 1.0 mean the constrained baseline is "
                "slower\n");
    std::printf("scale=%.2f, mp_cores=%u\n\n", scale, mp_cores);

    MachineConfig vbr_cfg{
        "value-replay",
        CoreConfig::valueReplay(
            ReplayFilterConfig::recentSnoopPlusNus())};

    MachineConfig lq16{"lq16", CoreConfig::baseline()};
    lq16.core.lqEntries = 16;
    MachineConfig lq32{"lq32", CoreConfig::baseline()};
    lq32.core.lqEntries = 32;

    TextTable table;
    table.header({"workload", "vbr_ipc", "lq16/vbr", "lq32/vbr"});
    std::vector<double> r16, r32;

    struct Group
    {
        std::string name;
        std::size_t vbr, lq16, lq32;
    };
    JobList jobs;
    std::vector<Group> groups;

    for (const auto &wl : uniprocessorSuite(scale)) {
        groups.push_back({wl.name, jobs.uni(wl, vbr_cfg),
                          jobs.uni(wl, lq16), jobs.uni(wl, lq32)});
    }
    for (const auto &wl : multiprocessorSuite(mp_cores, scale)) {
        groups.push_back(
            {wl.name + "-" + std::to_string(mp_cores) + "p",
             jobs.mp(wl, vbr_cfg), jobs.mp(wl, lq16),
             jobs.mp(wl, lq32)});
    }

    SweepResults results = jobs.run();
    results.printSummary("fig8_constrained_lq");

    BenchReport rep("fig8_constrained_lq");
    rep.meta("scale", scale).meta("mp_cores", mp_cores);
    for (std::size_t i = 0; i < results.size(); ++i)
        if (results.has(i))
            rep.addRun(results[i]);

    for (const Group &g : groups) {
        if (!results.hasAll({g.vbr, g.lq16, g.lq32}))
            continue; // other shard owns part of this row
        const RunStats &vbr_run = results[g.vbr];
        r16.push_back(results[g.lq16].ipc / vbr_run.ipc);
        r32.push_back(results[g.lq32].ipc / vbr_run.ipc);
        table.row({g.name, TextTable::fmt(vbr_run.ipc, 3),
                   TextTable::fmt(r16.back(), 3),
                   TextTable::fmt(r32.back(), 3)});
    }

    double g16 = geomean(r16), g32 = geomean(r32);
    table.row({"geomean", "", TextTable::fmt(g16, 3),
               TextTable::fmt(g32, 3)});
    rep.metric("geomean_lq16_over_vbr", g16);
    rep.metric("geomean_lq32_over_vbr", g32);
    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: lq32 ~0.99 of value-based on "
                "average; lq16 ~0.92, as low as 0.75 for LQ-pressure "
                "workloads\n");
    rep.write();
    return 0;
}
