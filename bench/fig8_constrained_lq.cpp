/**
 * @file
 * Figure 8 reproduction: baseline machines whose associative load
 * queue is constrained by clock cycle time (16 and 32 entries),
 * relative to value-based replay with the no-recent-snoop +
 * no-unresolved-store filters (whose FIFO stays large because it
 * needs no CAM).
 *
 * Paper shape: against the 32-entry baseline, value-based replay is
 * ~1% faster on average (art and ocean markedly faster, 7%/15%);
 * against the 16-entry baseline it averages ~8% faster, up to 34%.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();
    unsigned mp_cores = envMpCores();

    std::printf("Figure 8: constrained baseline LQ sizes, performance "
                "relative to value-based replay (NRS+NUS)\n");
    std::printf("values < 1.0 mean the constrained baseline is "
                "slower\n");
    std::printf("scale=%.2f, mp_cores=%u\n\n", scale, mp_cores);

    MachineConfig vbr_cfg{
        "value-replay",
        CoreConfig::valueReplay(
            ReplayFilterConfig::recentSnoopPlusNus())};

    MachineConfig lq16{"lq16", CoreConfig::baseline()};
    lq16.core.lqEntries = 16;
    MachineConfig lq32{"lq32", CoreConfig::baseline()};
    lq32.core.lqEntries = 32;

    TextTable table;
    table.header({"workload", "vbr_ipc", "lq16/vbr", "lq32/vbr"});
    std::vector<double> r16, r32;

    auto report = [&](const std::string &name, const RunStats &vbr_run,
                      const RunStats &run16, const RunStats &run32) {
        r16.push_back(run16.ipc / vbr_run.ipc);
        r32.push_back(run32.ipc / vbr_run.ipc);
        table.row({name, TextTable::fmt(vbr_run.ipc, 3),
                   TextTable::fmt(r16.back(), 3),
                   TextTable::fmt(r32.back(), 3)});
    };

    for (const auto &wl : uniprocessorSuite(scale)) {
        report(wl.name, runUni(wl, vbr_cfg), runUni(wl, lq16),
               runUni(wl, lq32));
    }
    for (const auto &wl : multiprocessorSuite(mp_cores, scale)) {
        report(wl.name + "-" + std::to_string(mp_cores) + "p",
               runMp(wl, vbr_cfg), runMp(wl, lq16), runMp(wl, lq32));
    }

    table.row({"geomean", "", TextTable::fmt(geomean(r16), 3),
               TextTable::fmt(geomean(r32), 3)});
    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: lq32 ~0.99 of value-based on "
                "average; lq16 ~0.92, as low as 0.75 for LQ-pressure "
                "workloads\n");
    return 0;
}
