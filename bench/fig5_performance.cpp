/**
 * @file
 * Figure 5 reproduction: performance of value-based replay relative to
 * the baseline machine (unconstrained load/store queue, store-set
 * predictor), for the four filter configurations, across the
 * uniprocessor suite and the multiprocessor suite.
 *
 * Paper shape: replay-all loses ~3% on average; the filtered configs
 * (no-recent-miss/no-recent-snoop + no-unresolved-store) are within
 * ~1% of baseline; individual benchmarks vary (apsi suffers from the
 * simpler dependence predictor, art benefits from it).
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();
    unsigned mp_cores = envMpCores();

    std::printf("Figure 5: value-based replay performance relative to "
                "baseline (IPC ratio)\n");
    std::printf("scale=%.2f, mp_cores=%u\n\n", scale, mp_cores);

    TextTable table;
    table.header({"workload", "base_ipc", "replay-all", "no-reorder",
                  "no-recent-miss", "no-recent-snoop"});

    auto replay_cfgs = replayConfigs();
    std::vector<std::vector<double>> ratios(replay_cfgs.size());

    auto report = [&](const std::string &name, const RunStats &base,
                      const std::vector<RunStats> &runs) {
        std::vector<std::string> row{name,
                                     TextTable::fmt(base.ipc, 3)};
        for (std::size_t i = 0; i < runs.size(); ++i) {
            double ratio = runs[i].ipc / base.ipc;
            ratios[i].push_back(ratio);
            row.push_back(TextTable::fmt(ratio, 3));
        }
        table.row(row);
    };

    for (const auto &wl : uniprocessorSuite(scale)) {
        RunStats base = runUni(wl, baselineConfig());
        std::vector<RunStats> runs;
        for (const auto &cfg : replay_cfgs)
            runs.push_back(runUni(wl, cfg));
        report(wl.name, base, runs);
    }

    for (const auto &wl : multiprocessorSuite(mp_cores, scale)) {
        RunStats base = runMp(wl, baselineConfig());
        std::vector<RunStats> runs;
        for (const auto &cfg : replay_cfgs)
            runs.push_back(runMp(wl, cfg));
        report(wl.name + "-" + std::to_string(mp_cores) + "p", base,
               runs);
    }

    std::vector<std::string> avg{"geomean", ""};
    for (auto &r : ratios)
        avg.push_back(TextTable::fmt(geomean(r), 3));
    table.row(avg);

    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: replay-all ~0.97, filtered configs "
                "~0.99 of baseline on average\n");
    return 0;
}
