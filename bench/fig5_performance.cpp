/**
 * @file
 * Figure 5 reproduction: performance of value-based replay relative to
 * the baseline machine (unconstrained load/store queue, store-set
 * predictor), for the four filter configurations, across the
 * uniprocessor suite and the multiprocessor suite.
 *
 * Paper shape: replay-all loses ~3% on average; the filtered configs
 * (no-recent-miss/no-recent-snoop + no-unresolved-store) are within
 * ~1% of baseline; individual benchmarks vary (apsi suffers from the
 * simpler dependence predictor, art benefits from it).
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();
    unsigned mp_cores = envMpCores();

    std::printf("Figure 5: value-based replay performance relative to "
                "baseline (IPC ratio)\n");
    std::printf("scale=%.2f, mp_cores=%u\n\n", scale, mp_cores);

    TextTable table;
    table.header({"workload", "base_ipc", "replay-all", "no-reorder",
                  "no-recent-miss", "no-recent-snoop"});

    auto replay_cfgs = replayConfigs();
    std::vector<std::vector<double>> ratios(replay_cfgs.size());

    // Queue the whole (workload x config) grid, then sweep it in
    // parallel; per-group result indices keep the table rows in the
    // original serial order.
    struct Group
    {
        std::string name;
        std::size_t base;
        std::vector<std::size_t> runs;
    };
    JobList jobs;
    std::vector<Group> groups;

    for (const auto &wl : uniprocessorSuite(scale)) {
        Group g;
        g.name = wl.name;
        g.base = jobs.uni(wl, baselineConfig());
        for (const auto &cfg : replay_cfgs)
            g.runs.push_back(jobs.uni(wl, cfg));
        groups.push_back(std::move(g));
    }
    for (const auto &wl : multiprocessorSuite(mp_cores, scale)) {
        Group g;
        g.name = wl.name + "-" + std::to_string(mp_cores) + "p";
        g.base = jobs.mp(wl, baselineConfig());
        for (const auto &cfg : replay_cfgs)
            g.runs.push_back(jobs.mp(wl, cfg));
        groups.push_back(std::move(g));
    }

    SweepResults results = jobs.run();
    results.printSummary("fig5_performance");

    // Refactor smoke check: per-scheme totals of squashes, replays,
    // and filter hits at the canonical operating point are pinned to
    // the pre-MemoryOrderingUnit-refactor goldens. The simulator is
    // deterministic, so any drift here means an ordering backend
    // changed behavior, not just structure. Requires every slot (a
    // sharded partial run can't total the grid).
    if (scale == 1.0 && mp_cores == 4 && results.complete()) {
        struct GoldenTotals
        {
            const char *config;
            std::uint64_t squashes; // lq_raw + lq_snoop + replay
            std::uint64_t replays;  // unresolved + consistency
            std::uint64_t filtered;
        };
        static constexpr GoldenTotals kGolden[] = {
            {"baseline", 15807, 0, 0},
            {"replay-all", 1901, 2162051, 1901},
            {"no-reorder", 144, 1024635, 1168231},
            {"no-recent-miss", 1939, 517096, 1664232},
            {"no-recent-snoop", 1935, 110062, 2089629},
        };
        for (const GoldenTotals &g : kGolden) {
            std::uint64_t squashes = 0, replays = 0, filtered = 0;
            for (std::size_t i = 0; i < results.size(); ++i) {
                const RunStats &s = results[i];
                if (s.config != g.config)
                    continue;
                squashes += s.squashLqRaw + s.squashLqSnoop +
                            s.squashReplay;
                replays += s.replaysUnresolved + s.replaysConsistency;
                filtered += s.replaysFiltered;
            }
            if (squashes != g.squashes || replays != g.replays ||
                filtered != g.filtered)
                fatal(std::string("fig5 golden drift for ") + g.config +
                      ": squashes " + std::to_string(squashes) + " (want " +
                      std::to_string(g.squashes) + "), replays " +
                      std::to_string(replays) + " (want " +
                      std::to_string(g.replays) + "), filtered " +
                      std::to_string(filtered) + " (want " +
                      std::to_string(g.filtered) + ")");
        }
        std::printf("[fig5-smoke] per-scheme squash/replay/filter "
                    "totals match pre-refactor goldens\n\n");
    }

    BenchReport rep("fig5_performance");
    rep.meta("scale", scale).meta("mp_cores", mp_cores);
    for (std::size_t i = 0; i < results.size(); ++i)
        if (results.has(i))
            rep.addRun(results[i]);

    auto groupReady = [&](const Group &g) {
        if (!results.has(g.base))
            return false;
        for (std::size_t idx : g.runs)
            if (!results.has(idx))
                return false;
        return true;
    };

    for (const Group &g : groups) {
        if (!groupReady(g))
            continue; // other shard owns part of this row
        const RunStats &base = results[g.base];
        std::vector<std::string> row{g.name,
                                     TextTable::fmt(base.ipc, 3)};
        for (std::size_t i = 0; i < g.runs.size(); ++i) {
            double ratio = results[g.runs[i]].ipc / base.ipc;
            ratios[i].push_back(ratio);
            row.push_back(TextTable::fmt(ratio, 3));
        }
        table.row(row);
    }

    std::vector<std::string> avg{"geomean", ""};
    for (std::size_t i = 0; i < ratios.size(); ++i) {
        double g = geomean(ratios[i]);
        avg.push_back(TextTable::fmt(g, 3));
        rep.metric("geomean_ipc_ratio_" + replay_cfgs[i].name, g);
    }
    table.row(avg);

    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: replay-all ~0.97, filtered configs "
                "~0.99 of baseline on average\n");
    rep.write();
    return 0;
}
