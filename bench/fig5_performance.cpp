/**
 * @file
 * Figure 5 reproduction: performance of value-based replay relative to
 * the baseline machine (unconstrained load/store queue, store-set
 * predictor), for the four filter configurations, across the
 * uniprocessor suite and the multiprocessor suite.
 *
 * Paper shape: replay-all loses ~3% on average; the filtered configs
 * (no-recent-miss/no-recent-snoop + no-unresolved-store) are within
 * ~1% of baseline; individual benchmarks vary (apsi suffers from the
 * simpler dependence predictor, art benefits from it).
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();
    unsigned mp_cores = envMpCores();

    std::printf("Figure 5: value-based replay performance relative to "
                "baseline (IPC ratio)\n");
    std::printf("scale=%.2f, mp_cores=%u\n\n", scale, mp_cores);

    TextTable table;
    table.header({"workload", "base_ipc", "replay-all", "no-reorder",
                  "no-recent-miss", "no-recent-snoop"});

    auto replay_cfgs = replayConfigs();
    std::vector<std::vector<double>> ratios(replay_cfgs.size());

    // Queue the whole (workload x config) grid, then sweep it in
    // parallel; per-group result indices keep the table rows in the
    // original serial order.
    struct Group
    {
        std::string name;
        std::size_t base;
        std::vector<std::size_t> runs;
    };
    JobList jobs;
    std::vector<Group> groups;

    for (const auto &wl : uniprocessorSuite(scale)) {
        Group g;
        g.name = wl.name;
        g.base = jobs.uni(wl, baselineConfig());
        for (const auto &cfg : replay_cfgs)
            g.runs.push_back(jobs.uni(wl, cfg));
        groups.push_back(std::move(g));
    }
    for (const auto &wl : multiprocessorSuite(mp_cores, scale)) {
        Group g;
        g.name = wl.name + "-" + std::to_string(mp_cores) + "p";
        g.base = jobs.mp(wl, baselineConfig());
        for (const auto &cfg : replay_cfgs)
            g.runs.push_back(jobs.mp(wl, cfg));
        groups.push_back(std::move(g));
    }

    std::vector<RunStats> results = jobs.run();

    BenchReport rep("fig5_performance");
    rep.meta("scale", scale).meta("mp_cores", mp_cores);
    for (const RunStats &s : results)
        rep.addRun(s);

    for (const Group &g : groups) {
        const RunStats &base = results[g.base];
        std::vector<std::string> row{g.name,
                                     TextTable::fmt(base.ipc, 3)};
        for (std::size_t i = 0; i < g.runs.size(); ++i) {
            double ratio = results[g.runs[i]].ipc / base.ipc;
            ratios[i].push_back(ratio);
            row.push_back(TextTable::fmt(ratio, 3));
        }
        table.row(row);
    }

    std::vector<std::string> avg{"geomean", ""};
    for (std::size_t i = 0; i < ratios.size(); ++i) {
        double g = geomean(ratios[i]);
        avg.push_back(TextTable::fmt(g, 3));
        rep.metric("geomean_ipc_ratio_" + replay_cfgs[i].name, g);
    }
    table.row(avg);

    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: replay-all ~0.97, filtered configs "
                "~0.99 of baseline on average\n");
    rep.write();
    return 0;
}
