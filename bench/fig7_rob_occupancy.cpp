/**
 * @file
 * Figure 7 reproduction: average reorder-buffer occupancy for the
 * baseline and the four value-based replay configurations.
 *
 * Paper shape: replay-all increases ROB occupancy (dramatically for
 * apsi and vortex) due to commit-port contention between replays and
 * stores; the filtered configurations bring occupancy back down.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();
    unsigned mp_cores = envMpCores();

    std::printf("Figure 7: average reorder buffer occupancy "
                "(256 entries total)\n");
    std::printf("scale=%.2f, mp_cores=%u\n\n", scale, mp_cores);

    TextTable table;
    table.header({"workload", "baseline", "replay-all", "no-reorder",
                  "no-recent-miss", "no-recent-snoop"});

    auto replay_cfgs = replayConfigs();

    auto report = [&](const std::string &name, const RunStats &base,
                      const std::vector<RunStats> &runs) {
        std::vector<std::string> row{
            name, TextTable::fmt(base.robOccupancy, 1)};
        for (const auto &r : runs)
            row.push_back(TextTable::fmt(r.robOccupancy, 1));
        table.row(row);
    };

    for (const auto &wl : uniprocessorSuite(scale)) {
        RunStats base = runUni(wl, baselineConfig());
        std::vector<RunStats> runs;
        for (const auto &cfg : replay_cfgs)
            runs.push_back(runUni(wl, cfg));
        report(wl.name, base, runs);
    }

    for (const auto &wl : multiprocessorSuite(mp_cores, scale)) {
        RunStats base = runMp(wl, baselineConfig());
        std::vector<RunStats> runs;
        for (const auto &cfg : replay_cfgs)
            runs.push_back(runMp(wl, cfg));
        report(wl.name + "-" + std::to_string(mp_cores) + "p", base,
               runs);
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: replay-all raises occupancy (most "
                "for high-ILP FP and store-heavy workloads); filters "
                "restore it\n");
    return 0;
}
