/**
 * @file
 * Figure 7 reproduction: average reorder-buffer occupancy for the
 * baseline and the four value-based replay configurations.
 *
 * Paper shape: replay-all increases ROB occupancy (dramatically for
 * apsi and vortex) due to commit-port contention between replays and
 * stores; the filtered configurations bring occupancy back down.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();
    unsigned mp_cores = envMpCores();

    std::printf("Figure 7: average reorder buffer occupancy "
                "(256 entries total)\n");
    std::printf("scale=%.2f, mp_cores=%u\n\n", scale, mp_cores);

    TextTable table;
    table.header({"workload", "baseline", "replay-all", "no-reorder",
                  "no-recent-miss", "no-recent-snoop"});

    auto replay_cfgs = replayConfigs();

    struct Group
    {
        std::string name;
        std::size_t base;
        std::vector<std::size_t> runs;
    };
    JobList jobs;
    std::vector<Group> groups;

    for (const auto &wl : uniprocessorSuite(scale)) {
        Group g;
        g.name = wl.name;
        g.base = jobs.uni(wl, baselineConfig());
        for (const auto &cfg : replay_cfgs)
            g.runs.push_back(jobs.uni(wl, cfg));
        groups.push_back(std::move(g));
    }
    for (const auto &wl : multiprocessorSuite(mp_cores, scale)) {
        Group g;
        g.name = wl.name + "-" + std::to_string(mp_cores) + "p";
        g.base = jobs.mp(wl, baselineConfig());
        for (const auto &cfg : replay_cfgs)
            g.runs.push_back(jobs.mp(wl, cfg));
        groups.push_back(std::move(g));
    }

    SweepResults results = jobs.run();
    results.printSummary("fig7_rob_occupancy");

    BenchReport rep("fig7_rob_occupancy");
    rep.meta("scale", scale).meta("mp_cores", mp_cores);
    for (std::size_t i = 0; i < results.size(); ++i)
        if (results.has(i))
            rep.addRun(results[i]);

    auto groupReady = [&](const Group &g) {
        if (!results.has(g.base))
            return false;
        for (std::size_t idx : g.runs)
            if (!results.has(idx))
                return false;
        return true;
    };

    for (const Group &g : groups) {
        if (!groupReady(g))
            continue; // other shard owns part of this row
        std::vector<std::string> row{
            g.name, TextTable::fmt(results[g.base].robOccupancy, 1)};
        for (std::size_t idx : g.runs)
            row.push_back(TextTable::fmt(results[idx].robOccupancy, 1));
        table.row(row);
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: replay-all raises occupancy (most "
                "for high-ILP FP and store-heavy workloads); filters "
                "restore it\n");
    rep.write();
    return 0;
}
