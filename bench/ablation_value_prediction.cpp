/**
 * @file
 * Ablation: value prediction on top of value-based replay. The
 * paper's contribution list points out that the replay mechanism
 * doubles as a safety net for value speculation (detecting the
 * consistency errors of Martin et al.); this bench enables a simple
 * last-value predictor for loads that would otherwise stall on a
 * blocking store, and reports prediction activity and IPC deltas.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

namespace
{

/** One sweep cell: the shared RunStats plus the VP-only counters
 * (zero for the non-VP runs). */
struct Cell
{
    RunStats stats;
    std::uint64_t predicted = 0;
    std::uint64_t committed = 0;
    std::uint64_t vpSquashes = 0;
};

} // namespace

int
main()
{
    double scale = envScale();

    std::printf("Ablation: last-value prediction over replay "
                "validation\n");
    std::printf("scale=%.2f\n\n", scale);

    MachineConfig off{"replay",
                      CoreConfig::valueReplay(
                          ReplayFilterConfig::recentSnoopPlusNus())};
    MachineConfig on = off;
    on.name = "replay+vp";
    on.core.enableValuePrediction = true;

    TextTable table;
    table.header({"workload", "ipc", "ipc+vp", "delta", "predicted",
                  "committed", "vp_squashes"});

    // Jobs alternate (base, vp) per workload; the VP run needs raw
    // counters on top of RunStats, so this sweep uses SweepRunner
    // directly with its own cell type.
    std::vector<std::function<Cell()>> jobs;
    std::vector<std::string> names;
    for (const auto &wl : uniprocessorSuite(scale)) {
        names.push_back(wl.name);
        jobs.push_back([wl, off] { return Cell{runUni(wl, off)}; });
        jobs.push_back([wl, on] {
            Program prog = makeSynthetic(wl.params);
            SystemConfig cfg;
            cfg.core = on.core;
            System sys(cfg, prog);
            RunResult r = sys.run();
            if (!r.allHalted)
                fatal("VP run did not halt: " + wl.name);
            Cell c;
            c.stats = collectRunStats(sys, r, wl.name, on.name);
            c.predicted = sys.totalStat("loads_value_predicted");
            c.committed =
                sys.totalStat("value_predictions_committed");
            c.vpSquashes = sys.totalStat("squashes_replay_mismatch");
            return c;
        });
    }

    SweepRunner runner;
    std::vector<Cell> results = runner.run(std::move(jobs));

    BenchReport rep("ablation_value_prediction");
    rep.meta("scale", scale);
    for (const Cell &c : results) {
        JsonValue row = runStatsToJson(c.stats);
        if (c.stats.config == on.name) {
            row.set("loads_value_predicted", c.predicted);
            row.set("value_predictions_committed", c.committed);
        }
        rep.addRow(std::move(row));
    }

    for (std::size_t w = 0; w < names.size(); ++w) {
        const Cell &base = results[w * 2];
        const Cell &vp = results[w * 2 + 1];
        table.row({names[w], TextTable::fmt(base.stats.ipc, 3),
                   TextTable::fmt(vp.stats.ipc, 3),
                   TextTable::pct(vp.stats.ipc / base.stats.ipc - 1.0,
                                  1),
                   std::to_string(vp.predicted),
                   std::to_string(vp.committed),
                   std::to_string(vp.vpSquashes)});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("prediction only replaces stalls on blocking stores, "
                "and every predicted load is replay-validated; wrong "
                "predictions appear as replay-mismatch squashes\n");
    rep.write();
    return 0;
}
