/**
 * @file
 * Ablation: value prediction on top of value-based replay. The
 * paper's contribution list points out that the replay mechanism
 * doubles as a safety net for value speculation (detecting the
 * consistency errors of Martin et al.); this bench enables a simple
 * last-value predictor for loads that would otherwise stall on a
 * blocking store, and reports prediction activity and IPC deltas.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();

    std::printf("Ablation: last-value prediction over replay "
                "validation\n");
    std::printf("scale=%.2f\n\n", scale);

    MachineConfig off{"replay",
                      CoreConfig::valueReplay(
                          ReplayFilterConfig::recentSnoopPlusNus())};
    MachineConfig on = off;
    on.name = "replay+vp";
    on.core.enableValuePrediction = true;

    TextTable table;
    table.header({"workload", "ipc", "ipc+vp", "delta", "predicted",
                  "committed", "vp_squashes"});

    // Jobs alternate (base, vp) per workload; the VP runs declare a
    // harvest plan so the raw predictor counters travel through the
    // sweep service (and its result cache) alongside RunStats.
    JobList jobs;
    std::vector<std::string> names;
    for (const auto &wl : uniprocessorSuite(scale)) {
        names.push_back(wl.name);
        jobs.uni(wl, off);
        std::size_t vi = jobs.uni(wl, on);
        jobs.spec(vi).harvestStats = {"loads_value_predicted",
                                      "value_predictions_committed",
                                      "squashes_replay_mismatch"};
    }

    SweepResults results = jobs.run();
    results.printSummary("ablation_value_prediction");

    BenchReport rep("ablation_value_prediction");
    rep.meta("scale", scale);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results.has(i))
            continue;
        const SimJobResult &r = results.job(i);
        JsonValue row = runStatsToJson(r.stats);
        if (r.stats.config == on.name) {
            row.set("loads_value_predicted",
                    extraStat(r, "stat:loads_value_predicted"));
            row.set(
                "value_predictions_committed",
                extraStat(r, "stat:value_predictions_committed"));
        }
        rep.addRow(std::move(row));
    }

    for (std::size_t w = 0; w < names.size(); ++w) {
        if (!results.hasAll({w * 2, w * 2 + 1}))
            continue; // other shard owns part of this pair
        const RunStats &base = results[w * 2];
        const SimJobResult &vp = results.job(w * 2 + 1);
        table.row(
            {names[w], TextTable::fmt(base.ipc, 3),
             TextTable::fmt(vp.stats.ipc, 3),
             TextTable::pct(vp.stats.ipc / base.ipc - 1.0, 1),
             std::to_string(
                 extraStat(vp, "stat:loads_value_predicted")),
             std::to_string(
                 extraStat(vp, "stat:value_predictions_committed")),
             std::to_string(
                 extraStat(vp, "stat:squashes_replay_mismatch"))});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("prediction only replaces stalls on blocking stores, "
                "and every predicted load is replay-validated; wrong "
                "predictions appear as replay-mismatch squashes\n");
    rep.write();
    return 0;
}
