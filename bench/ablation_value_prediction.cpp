/**
 * @file
 * Ablation: value prediction on top of value-based replay. The
 * paper's contribution list points out that the replay mechanism
 * doubles as a safety net for value speculation (detecting the
 * consistency errors of Martin et al.); this bench enables a simple
 * last-value predictor for loads that would otherwise stall on a
 * blocking store, and reports prediction activity and IPC deltas.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();

    std::printf("Ablation: last-value prediction over replay "
                "validation\n");
    std::printf("scale=%.2f\n\n", scale);

    MachineConfig off{"replay",
                      CoreConfig::valueReplay(
                          ReplayFilterConfig::recentSnoopPlusNus())};
    MachineConfig on = off;
    on.name = "replay+vp";
    on.core.enableValuePrediction = true;

    TextTable table;
    table.header({"workload", "ipc", "ipc+vp", "delta", "predicted",
                  "committed", "vp_squashes"});

    for (const auto &wl : uniprocessorSuite(scale)) {
        RunStats base = runUni(wl, off);

        Program prog = makeSynthetic(wl.params);
        SystemConfig cfg;
        cfg.core = on.core;
        System sys(cfg, prog);
        RunResult r = sys.run();
        if (!r.allHalted)
            fatal("VP run did not halt: " + wl.name);
        const StatSet &s = sys.core(0).stats();

        table.row({wl.name, TextTable::fmt(base.ipc, 3),
                   TextTable::fmt(r.ipc(), 3),
                   TextTable::pct(r.ipc() / base.ipc - 1.0, 1),
                   std::to_string(s.get("loads_value_predicted")),
                   std::to_string(
                       s.get("value_predictions_committed")),
                   std::to_string(s.get("squashes_replay_mismatch"))});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("prediction only replaces stalls on blocking stores, "
                "and every predicted load is replay-validated; wrong "
                "predictions appear as replay-mismatch squashes\n");
    return 0;
}
