/**
 * @file
 * Table 2 reproduction: associative load-queue CAM search latency
 * (ns) and energy (nJ) for 16..512 entries and four read/write port
 * configurations, from the Cacti-3.2-calibrated analytical model
 * (90 nm). The published points are reproduced exactly; the model
 * also prints its fitted estimates for configurations outside the
 * published grid, plus the single-cycle feasibility analysis that
 * motivates Figure 8's constrained load queues.
 */

#include <cstdio>

#include "cam/cam_model.hpp"
#include "common/table.hpp"
#include "sys/bench_json.hpp"

using namespace vbr;

int
main()
{
    CamModel model;
    BenchReport rep("table2_cam_model");

    std::printf("Table 2: associative load queue search latency (ns), "
                "energy (nJ), 0.09 micron\n\n");

    TextTable table;
    table.header({"entries", "2/2", "3/2", "4/4", "6/6"});
    for (unsigned entries : CamModel::publishedEntries()) {
        std::vector<std::string> row{std::to_string(entries)};
        for (auto [rp, wp] : CamModel::publishedPorts()) {
            CamEstimate e = model.estimate({entries, rp, wp});
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%.2f ns, %.2f nJ",
                          e.latencyNs, e.energyNj);
            row.push_back(buf);
            JsonValue jrow = JsonValue::object();
            jrow.set("entries", entries);
            jrow.set("read_ports", rp);
            jrow.set("write_ports", wp);
            jrow.set("latency_ns", e.latencyNs);
            jrow.set("energy_nj", e.energyNj);
            jrow.set("published", true);
            rep.addRow(std::move(jrow));
        }
        table.row(row);
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Model extrapolation (fitted, beyond published "
                "points):\n");
    TextTable fit;
    fit.header({"entries", "ports(r/w)", "latency_ns", "energy_nJ"});
    for (unsigned entries : {8u, 1024u}) {
        for (auto [rp, wp] :
             std::vector<std::pair<unsigned, unsigned>>{{2, 2},
                                                        {8, 8}}) {
            CamEstimate e = model.estimate({entries, rp, wp});
            fit.row({std::to_string(entries),
                     std::to_string(rp) + "/" + std::to_string(wp),
                     TextTable::fmt(e.latencyNs, 2),
                     TextTable::fmt(e.energyNj, 3)});
            JsonValue jrow = JsonValue::object();
            jrow.set("entries", entries);
            jrow.set("read_ports", rp);
            jrow.set("write_ports", wp);
            jrow.set("latency_ns", e.latencyNs);
            jrow.set("energy_nj", e.energyNj);
            jrow.set("published", false);
            rep.addRow(std::move(jrow));
        }
    }
    std::printf("%s\n", fit.render().c_str());

    std::printf("Single-cycle feasibility (motivation for Figure 8):\n");
    for (double ghz : {1.0, 2.0, 5.0}) {
        unsigned max22 = model.maxSingleCycleEntries(2, 2, ghz);
        unsigned cycles32 = model.searchCycles({32, 3, 2}, ghz);
        std::printf(
            "  at %.0f GHz: largest single-cycle 2r/2w CAM = %u "
            "entries; a 32-entry 3r/2w search takes %u cycles\n",
            ghz, max22, cycles32);
        char key[64];
        std::snprintf(key, sizeof(key),
                      "max_single_cycle_2r2w_entries_%.0fghz", ghz);
        rep.metric(key, max22);
        std::snprintf(key, sizeof(key),
                      "search_cycles_32x3r2w_%.0fghz", ghz);
        rep.metric(key, cycles32);
    }
    std::printf("\npaper reference: at 5 GHz (0.2 ns cycle) even a "
                "16-entry CAM search (0.6 ns) needs multiple cycles; "
                "energy grows linearly with entries and superlinearly "
                "with ports\n");
    rep.write();
    return 0;
}
