/**
 * @file
 * §5.3 power model: dynamic-energy comparison between value-based
 * replay and the associative load queue.
 *
 *   dE = (E_cache + E_cmp) * replays - E_ldqsearch * searches
 *        + overhead_replay            [per committed instruction]
 *
 * Replay and search rates are measured from simulation (no-recent-
 * snoop + no-unresolved-store filters vs. the baseline CAM), and the
 * CAM energy comes from the Table 2 model. Paper shape: with ~0.02
 * replays per committed instruction, value-based replay wins whenever
 * the CAM spends more than ~0.02 x (cache access + compare) energy
 * per instruction — which every 32-entry-or-larger multiported CAM
 * does.
 */

#include "harness.hpp"

#include "cam/cam_model.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();

    // Measure rates across the uniprocessor suite.
    MachineConfig vbr_cfg{
        "value-replay",
        CoreConfig::valueReplay(
            ReplayFilterConfig::recentSnoopPlusNus())};

    JobList jobs;
    for (const auto &wl : uniprocessorSuite(scale)) {
        jobs.uni(wl, vbr_cfg);
        jobs.uni(wl, baselineConfig());
    }
    SweepResults results = jobs.run();
    results.printSummary("sec53_power_model");

    BenchReport rep("sec53_power_model");
    rep.meta("scale", scale);
    for (std::size_t i = 0; i < results.size(); ++i)
        if (results.has(i))
            rep.addRun(results[i]);

    std::uint64_t replays = 0, instructions = 0, searches = 0,
                  base_instr = 0;
    for (std::size_t i = 0; i < results.size(); i += 2) {
        if (!results.hasAll({i, i + 1}))
            continue; // other shard owns part of this pair
        const RunStats &vr = results[i];
        const RunStats &base = results[i + 1];
        replays += vr.replaysUnresolved + vr.replaysConsistency;
        instructions += vr.instructions;
        searches += base.lqSearches;
        base_instr += base.instructions;
    }

    double replays_per_instr =
        instructions == 0
            ? 0.0
            : static_cast<double>(replays) / instructions;
    double searches_per_instr =
        base_instr == 0
            ? 0.0
            : static_cast<double>(searches) / base_instr;

    std::printf("Section 5.3 power model\n");
    std::printf("measured replay rate: %.4f replays/instr "
                "(paper: ~0.02)\n",
                replays_per_instr);
    std::printf("measured baseline CAM search rate: %.4f "
                "searches/instr\n\n",
                searches_per_instr);
    rep.metric("replays_per_instr", replays_per_instr);
    rep.metric("searches_per_instr", searches_per_instr);

    CamModel cam;
    ReplayPowerModel power({}, cam);

    TextTable table;
    table.header({"lq_cam", "search_nJ", "dE_nJ/instr", "winner"});
    for (unsigned entries : {16u, 32u, 64u, 128u, 256u, 512u}) {
        CamConfig cfg{entries, 3, 2};
        double de = power.deltaEnergyPerInstr(
            replays_per_instr, searches_per_instr, cfg);
        char name[32];
        std::snprintf(name, sizeof(name), "%u x 3r/2w", entries);
        table.row({name,
                   TextTable::fmt(cam.estimate(cfg).energyNj, 3),
                   TextTable::fmt(de, 4),
                   de < 0 ? "value-replay" : "assoc-LQ"});
        JsonValue row = JsonValue::object();
        row.set("lq_entries", entries);
        row.set("search_nj", cam.estimate(cfg).energyNj);
        row.set("delta_energy_nj_per_instr", de);
        row.set("winner", de < 0 ? "value-replay" : "assoc-LQ");
        rep.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());

    double breakeven =
        power.breakEvenCamEnergyPerInstr(replays_per_instr);
    std::printf("break-even CAM energy: %.4f nJ per committed "
                "instruction (paper: 0.02 x cache access + compare "
                "energy)\n",
                breakeven);
    rep.metric("breakeven_cam_energy_nj_per_instr", breakeven);
    rep.write();
    return 0;
}
