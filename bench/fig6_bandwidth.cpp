/**
 * @file
 * Figure 6 reproduction: increase in L1 data-cache references due to
 * load replay, for each of the four replay configurations, split into
 * replays required by the uniprocessor RAW axis (the load bypassed an
 * unresolved store address) and replays performed irrespective of
 * uniprocessor constraints (consistency axis).
 *
 * Paper shape: replay-all adds ~49% on average (range ~32-87%);
 * the no-reorder filter reduces that to ~31%; no-recent-miss +
 * no-unresolved-store to ~4.3%; no-recent-snoop + no-unresolved-store
 * to ~3.4%.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();
    unsigned mp_cores = envMpCores();

    std::printf("Figure 6: extra L1D bandwidth due to replay "
                "(%% of baseline L1D references)\n");
    std::printf("each cell: total (raw-axis + consistency-axis)\n");
    std::printf("scale=%.2f, mp_cores=%u\n\n", scale, mp_cores);

    TextTable table;
    table.header({"workload", "replay-all", "no-reorder",
                  "no-recent-miss", "no-recent-snoop"});

    auto replay_cfgs = replayConfigs();
    std::vector<std::vector<double>> totals(replay_cfgs.size());

    auto cell = [](const RunStats &run, const RunStats &base,
                   double &total_out) {
        double denom = static_cast<double>(base.l1dTotal());
        double raw = run.replaysUnresolved / denom;
        double cons = run.replaysConsistency / denom;
        total_out = raw + cons;
        return TextTable::pct(raw + cons, 1) + " (" +
               TextTable::pct(raw, 1) + "+" + TextTable::pct(cons, 1) +
               ")";
    };

    struct Group
    {
        std::string name;
        std::size_t base;
        std::vector<std::size_t> runs;
    };
    JobList jobs;
    std::vector<Group> groups;

    for (const auto &wl : uniprocessorSuite(scale)) {
        Group g;
        g.name = wl.name;
        g.base = jobs.uni(wl, baselineConfig());
        for (const auto &cfg : replay_cfgs)
            g.runs.push_back(jobs.uni(wl, cfg));
        groups.push_back(std::move(g));
    }
    for (const auto &wl : multiprocessorSuite(mp_cores, scale)) {
        Group g;
        g.name = wl.name + "-" + std::to_string(mp_cores) + "p";
        g.base = jobs.mp(wl, baselineConfig());
        for (const auto &cfg : replay_cfgs)
            g.runs.push_back(jobs.mp(wl, cfg));
        groups.push_back(std::move(g));
    }

    SweepResults results = jobs.run();
    results.printSummary("fig6_bandwidth");

    BenchReport rep("fig6_bandwidth");
    rep.meta("scale", scale).meta("mp_cores", mp_cores);
    for (std::size_t i = 0; i < results.size(); ++i)
        if (results.has(i))
            rep.addRun(results[i]);

    auto groupReady = [&](const Group &g) {
        if (!results.has(g.base))
            return false;
        for (std::size_t idx : g.runs)
            if (!results.has(idx))
                return false;
        return true;
    };

    for (const Group &g : groups) {
        if (!groupReady(g))
            continue; // other shard owns part of this row
        const RunStats &base = results[g.base];
        std::vector<std::string> row{g.name};
        for (std::size_t i = 0; i < g.runs.size(); ++i) {
            double t = 0.0;
            row.push_back(cell(results[g.runs[i]], base, t));
            totals[i].push_back(t);
        }
        table.row(row);
    }

    std::vector<std::string> avg{"average"};
    for (std::size_t i = 0; i < totals.size(); ++i) {
        double sum = 0.0;
        for (double x : totals[i])
            sum += x;
        double mean =
            totals[i].empty()
                ? 0.0
                : sum / static_cast<double>(totals[i].size());
        avg.push_back(TextTable::pct(mean, 1));
        rep.metric("avg_extra_l1d_" + replay_cfgs[i].name, mean);
    }
    table.row(avg);

    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: ~49%% / ~30.6%% / ~4.3%% / ~3.4%% "
                "on average\n");
    rep.write();
    return 0;
}
