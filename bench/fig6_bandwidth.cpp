/**
 * @file
 * Figure 6 reproduction: increase in L1 data-cache references due to
 * load replay, for each of the four replay configurations, split into
 * replays required by the uniprocessor RAW axis (the load bypassed an
 * unresolved store address) and replays performed irrespective of
 * uniprocessor constraints (consistency axis).
 *
 * Paper shape: replay-all adds ~49% on average (range ~32-87%);
 * the no-reorder filter reduces that to ~31%; no-recent-miss +
 * no-unresolved-store to ~4.3%; no-recent-snoop + no-unresolved-store
 * to ~3.4%.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();
    unsigned mp_cores = envMpCores();

    std::printf("Figure 6: extra L1D bandwidth due to replay "
                "(%% of baseline L1D references)\n");
    std::printf("each cell: total (raw-axis + consistency-axis)\n");
    std::printf("scale=%.2f, mp_cores=%u\n\n", scale, mp_cores);

    TextTable table;
    table.header({"workload", "replay-all", "no-reorder",
                  "no-recent-miss", "no-recent-snoop"});

    auto replay_cfgs = replayConfigs();
    std::vector<std::vector<double>> totals(replay_cfgs.size());

    auto cell = [](const RunStats &run, const RunStats &base,
                   double &total_out) {
        double denom = static_cast<double>(base.l1dTotal());
        double raw = run.replaysUnresolved / denom;
        double cons = run.replaysConsistency / denom;
        total_out = raw + cons;
        return TextTable::pct(raw + cons, 1) + " (" +
               TextTable::pct(raw, 1) + "+" + TextTable::pct(cons, 1) +
               ")";
    };

    auto report = [&](const std::string &name, const RunStats &base,
                      const std::vector<RunStats> &runs) {
        std::vector<std::string> row{name};
        for (std::size_t i = 0; i < runs.size(); ++i) {
            double t = 0.0;
            row.push_back(cell(runs[i], base, t));
            totals[i].push_back(t);
        }
        table.row(row);
    };

    for (const auto &wl : uniprocessorSuite(scale)) {
        RunStats base = runUni(wl, baselineConfig());
        std::vector<RunStats> runs;
        for (const auto &cfg : replay_cfgs)
            runs.push_back(runUni(wl, cfg));
        report(wl.name, base, runs);
    }

    for (const auto &wl : multiprocessorSuite(mp_cores, scale)) {
        RunStats base = runMp(wl, baselineConfig());
        std::vector<RunStats> runs;
        for (const auto &cfg : replay_cfgs)
            runs.push_back(runMp(wl, cfg));
        report(wl.name + "-" + std::to_string(mp_cores) + "p", base,
               runs);
    }

    std::vector<std::string> avg{"average"};
    for (auto &t : totals) {
        double sum = 0.0;
        for (double x : t)
            sum += x;
        avg.push_back(TextTable::pct(sum / t.size(), 1));
    }
    table.row(avg);

    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: ~49%% / ~30.6%% / ~4.3%% / ~3.4%% "
                "on average\n");
    return 0;
}
