/**
 * @file
 * Table 1 reproduction: load-queue attributes of four commercial
 * dynamically scheduled processors, with read/write port requirements
 * derived from each design's issue width and load-queue organization
 * (the same arithmetic the paper applies): one write port per load
 * issued per cycle; one read port per store agen (all designs), per
 * load agen in weakly-ordered insulated designs, and one extra for
 * external invalidations in snooping designs.
 */

#include <cstdio>

#include "common/table.hpp"
#include "lsq/assoc_load_queue.hpp"
#include "sys/bench_json.hpp"

using namespace vbr;

namespace
{

struct Survey
{
    const char *processor;
    const char *lqEntries;
    unsigned loadIssuePerCycle;
    unsigned storeAgenPerCycle;
    LqMode mode;
};

const Survey kSurvey[] = {
    // Alpha 21364: 32-entry LQ, 2 load-or-store agens/cycle; weakly
    // ordered insulated queue (21264-derived core).
    {"Compaq Alpha 21364", "32", 2, 2, LqMode::Insulated},
    // HAL SPARC64 V: size unknown, 2 loads + 2 store agens per cycle;
    // TSO with snooping queue.
    {"HAL SPARC64 V", "unknown", 2, 2, LqMode::Snooping},
    // IBM Power4: 32-entry LQ, 2 load-or-store agens; hybrid
    // (snoop-marking) design.
    {"IBM Power4", "32", 2, 2, LqMode::Hybrid},
    // Intel Pentium 4: 48-entry LQ, 1 load + 1 store agen; snooping.
    {"Intel Pentium 4", "48", 1, 1, LqMode::Snooping},
};

const char *
modeName(LqMode mode)
{
    switch (mode) {
      case LqMode::Snooping: return "snooping";
      case LqMode::Insulated: return "insulated";
      case LqMode::Hybrid: return "hybrid";
    }
    return "?";
}

unsigned
readPorts(const Survey &s)
{
    // Store agens always search; loads search in insulated/hybrid
    // designs; snooping/hybrid designs need an external snoop port.
    unsigned ports = s.storeAgenPerCycle;
    if (s.mode == LqMode::Insulated || s.mode == LqMode::Hybrid)
        ports += s.loadIssuePerCycle;
    if (s.mode == LqMode::Snooping || s.mode == LqMode::Hybrid)
        ports += 1;
    return ports;
}

} // namespace

int
main()
{
    std::printf("Table 1: load queue attributes of current "
                "dynamically scheduled processors\n\n");

    BenchReport rep("table1_lq_attributes");

    TextTable table;
    table.header({"processor", "lq_entries", "organization",
                  "est_read_ports", "est_write_ports"});
    for (const Survey &s : kSurvey) {
        table.row({s.processor, s.lqEntries, modeName(s.mode),
                   std::to_string(readPorts(s)),
                   std::to_string(s.loadIssuePerCycle)});
        JsonValue row = JsonValue::object();
        row.set("processor", s.processor);
        row.set("lq_entries", s.lqEntries);
        row.set("organization", modeName(s.mode));
        row.set("est_read_ports", readPorts(s));
        row.set("est_write_ports", s.loadIssuePerCycle);
        rep.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("write ports = loads issued/cycle (each records its "
                "address); read ports = store agens (+ load agens for "
                "insulated/hybrid, + snoop port for snooping/hybrid "
                "designs)\n");
    rep.write();
    return 0;
}
