/**
 * @file
 * Shared infrastructure for the figure/table reproduction harnesses:
 * the five evaluated machine configurations, job builders for the
 * parallel sweep engine, and small formatting utilities. RunStats
 * itself lives in src/sys/run_stats.hpp; the sweep engine in
 * src/sys/sweep_runner.hpp; BENCH_<name>.json emission in
 * src/sys/bench_json.hpp.
 *
 * Environment knobs:
 *   VBR_SCALE     multiplies workload iteration counts (default 1.0)
 *   VBR_MP_CORES  cores for multiprocessor workloads (default 4)
 *   VBR_THREADS   sweep worker threads (default: hardware concurrency)
 *   VBR_BENCH_DIR directory for BENCH_<name>.json (default: cwd)
 *
 * Usage pattern (identical table output to the old serial loops):
 *   JobList jobs;
 *   for (...) jobs.uni(wl, cfg);     // returns the job's index
 *   std::vector<RunStats> r = jobs.run();
 *   // consume r[] in the same order the jobs were added
 */

#ifndef VBR_BENCH_HARNESS_HPP
#define VBR_BENCH_HARNESS_HPP

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "sys/bench_json.hpp"
#include "sys/run_stats.hpp"
#include "sys/sweep_runner.hpp"
#include "sys/system.hpp"
#include "workload/multiproc.hpp"
#include "workload/synthetic.hpp"

namespace vbr::bench
{

inline double
envScale()
{
    const char *s = std::getenv("VBR_SCALE");
    return s ? std::atof(s) : 1.0;
}

inline unsigned
envMpCores()
{
    const char *s = std::getenv("VBR_MP_CORES");
    return s ? static_cast<unsigned>(std::atoi(s)) : 4;
}

/** One evaluated machine configuration (paper Figure 5 legend). */
struct MachineConfig
{
    std::string name;
    CoreConfig core;
};

/** Baseline: unconstrained LSQ + store-set predictor + snooping LQ. */
inline MachineConfig
baselineConfig()
{
    return {"baseline", CoreConfig::baseline()};
}

/** The paper's four value-based replay configurations. */
inline std::vector<MachineConfig>
replayConfigs()
{
    return {
        {"replay-all",
         CoreConfig::valueReplay(ReplayFilterConfig::replayAll())},
        {"no-reorder",
         [] {
             // The paper's no-reorder marking is scheduler-based; see
             // ReplayLoadInfo::issuedOutOfOrderSched for the caveat.
             auto f = ReplayFilterConfig::noReorderOnly();
             f.noReorderSchedulerSemantics = true;
             return CoreConfig::valueReplay(f);
         }()},
        {"no-recent-miss",
         CoreConfig::valueReplay(
             ReplayFilterConfig::recentMissPlusNus())},
        {"no-recent-snoop",
         CoreConfig::valueReplay(
             ReplayFilterConfig::recentSnoopPlusNus())},
    };
}

/** Run one uniprocessor workload under one machine configuration. */
inline RunStats
runUni(const WorkloadSpec &spec, const MachineConfig &machine)
{
    Program prog = makeSynthetic(spec.params);
    SystemConfig cfg;
    cfg.cores = 1;
    cfg.core = machine.core;
    System sys(cfg, prog);
    RunResult r = sys.run();
    if (!r.allHalted)
        fatal("workload " + spec.name + " did not halt under " +
              machine.name);
    return collectRunStats(sys, r, spec.name, machine.name);
}

/** Run one multiprocessor workload under one machine configuration. */
inline RunStats
runMp(const MpWorkloadSpec &spec, const MachineConfig &machine)
{
    SystemConfig cfg;
    cfg.cores = spec.threads;
    cfg.core = machine.core;
    System sys(cfg, spec.prog);
    RunResult r = sys.run();
    if (!r.allHalted)
        fatal("MP workload " + spec.name + " did not halt under " +
              machine.name);
    return collectRunStats(sys, r, spec.name, machine.name);
}

/** Knobs for guarded runs (fault injection / resilience harnesses). */
struct GuardedRunOptions
{
    FaultConfig faults;    ///< disabled by default (no injector)
    std::string jobName = "job"; ///< failure-artifact label
    Cycle cycleBudget = 0; ///< 0 = SystemConfig default maxCycles
    unsigned deadlockThreshold = 0; ///< 0 = machine default
    bool trackVersions = false;     ///< enable the SC checker's input
    AuditLevel audit = AuditLevel::Off; ///< faults violate invariants
};

inline SystemConfig
guardedSystemConfig(const MachineConfig &machine,
                    const GuardedRunOptions &opts, unsigned cores)
{
    SystemConfig cfg;
    cfg.cores = cores;
    cfg.core = machine.core;
    if (opts.deadlockThreshold)
        cfg.core.deadlockThreshold = opts.deadlockThreshold;
    if (opts.cycleBudget)
        cfg.maxCycles = opts.cycleBudget;
    cfg.faults = opts.faults;
    cfg.jobName = opts.jobName;
    cfg.trackVersions = opts.trackVersions;
    cfg.audit = opts.audit;
    return cfg;
}

/**
 * Like runUni, but built for hostile conditions: instead of fatal()ing
 * on a hung or budget-exhausted run it throws a SweepJobError carrying
 * a full failure artifact (config, fault summary, last-N commit
 * trace), so runGuarded can quarantine the job and keep the sweep
 * alive. @p preRun attaches observers before the run (may be null);
 * @p harvest extracts the job's result from the finished system.
 */
template <class R>
R
runUniGuarded(const WorkloadSpec &spec, const MachineConfig &machine,
              const GuardedRunOptions &opts,
              const std::function<void(System &)> &preRun,
              const std::function<R(System &, const RunResult &)>
                  &harvest)
{
    Program prog = makeSynthetic(spec.params);
    System sys(guardedSystemConfig(machine, opts, 1), prog);
    if (preRun)
        preRun(sys);
    RunResult r = sys.run();
    if (r.deadlocked)
        throw SweepJobError(sys.makeFailureArtifact(
            "deadlock", "workload " + spec.name + " deadlocked under " +
                            machine.name));
    if (!r.allHalted)
        throw SweepJobError(sys.makeFailureArtifact(
            "cycle-budget", "workload " + spec.name +
                                " exhausted its cycle budget under " +
                                machine.name));
    return harvest(sys, r);
}

/** RunStats-only convenience overload of runUniGuarded. */
inline RunStats
runUniGuarded(const WorkloadSpec &spec, const MachineConfig &machine,
              const GuardedRunOptions &opts)
{
    return runUniGuarded<RunStats>(
        spec, machine, opts, nullptr,
        [&](System &sys, const RunResult &r) {
            return collectRunStats(sys, r, spec.name, machine.name);
        });
}

/**
 * Ordered job grid for the sweep engine. Specs and configs are
 * captured by value so the list owns everything it needs; run()
 * executes the grid on sweepThreads() workers and returns results
 * indexed exactly as the jobs were added.
 */
class JobList
{
  public:
    /** Queue a uniprocessor run; returns its result index. */
    std::size_t
    uni(WorkloadSpec spec, MachineConfig machine)
    {
        jobs_.push_back(
            [spec = std::move(spec), machine = std::move(machine)] {
                return runUni(spec, machine);
            });
        return jobs_.size() - 1;
    }

    /** Queue a multiprocessor run; returns its result index. */
    std::size_t
    mp(MpWorkloadSpec spec, MachineConfig machine)
    {
        jobs_.push_back(
            [spec = std::move(spec), machine = std::move(machine)] {
                return runMp(spec, machine);
            });
        return jobs_.size() - 1;
    }

    /** Queue an arbitrary RunStats-producing job. */
    std::size_t
    add(std::function<RunStats()> job)
    {
        jobs_.push_back(std::move(job));
        return jobs_.size() - 1;
    }

    std::size_t size() const { return jobs_.size(); }

    /** Execute everything; result[i] belongs to the i-th queued job. */
    std::vector<RunStats>
    run()
    {
        SweepRunner runner;
        return runner.run(std::move(jobs_));
    }

  private:
    std::vector<std::function<RunStats()>> jobs_;
};

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace vbr::bench

#endif // VBR_BENCH_HARNESS_HPP
