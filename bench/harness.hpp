/**
 * @file
 * Shared infrastructure for the figure/table reproduction harnesses:
 * the five evaluated machine configurations, the spec-based job grid
 * for the sweep service, and small formatting utilities. RunStats
 * lives in src/sys/run_stats.hpp; job identity in src/sys/job_key.hpp;
 * the sweep engine + result cache in src/sys/sweep_runner.hpp and
 * src/sys/result_cache.hpp; BENCH_<name>.json emission in
 * src/sys/bench_json.hpp.
 *
 * Every job is a full SimJobSpec (machine config, built program,
 * harvest plan) rather than an opaque lambda, which is what lets the
 * service layers under JobList::run() cache, shard, and audit jobs by
 * content. Environment knobs:
 *   VBR_SCALE     multiplies workload iteration counts (default 1.0)
 *   VBR_MP_CORES  cores for multiprocessor workloads (default 4)
 *   VBR_THREADS   sweep worker threads (default: hardware concurrency)
 *   VBR_BENCH_DIR directory for BENCH_<name>.json (default: cwd)
 *   VBR_CACHE_DIR persistent result cache (default: disabled)
 *   VBR_SHARD     i/N deterministic job partition (default: 0/1)
 *
 * Usage pattern (identical table output to the old serial loops):
 *   JobList jobs;
 *   for (...) jobs.uni(wl, cfg);     // returns the job's index
 *   SweepResults r = jobs.run("harness_name");
 *   // consume r[i] in the same order the jobs were added; guard
 *   // with r.has(i) when running sharded (skipped slots fatal on
 *   // access), and gate goldens on r.complete().
 */

#ifndef VBR_BENCH_HARNESS_HPP
#define VBR_BENCH_HARNESS_HPP

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "sys/bench_json.hpp"
#include "sys/job_key.hpp"
#include "sys/result_cache.hpp"
#include "sys/run_stats.hpp"
#include "sys/sweep_runner.hpp"
#include "sys/system.hpp"
#include "workload/multiproc.hpp"
#include "workload/synthetic.hpp"

namespace vbr::bench
{

inline double
envScale()
{
    const char *s = std::getenv("VBR_SCALE");
    return s ? std::atof(s) : 1.0;
}

inline unsigned
envMpCores()
{
    const char *s = std::getenv("VBR_MP_CORES");
    return s ? static_cast<unsigned>(std::atoi(s)) : 4;
}

/** One evaluated machine configuration (paper Figure 5 legend). */
struct MachineConfig
{
    std::string name;
    CoreConfig core;
};

/** Baseline: unconstrained LSQ + store-set predictor + snooping LQ. */
inline MachineConfig
baselineConfig()
{
    return {"baseline", CoreConfig::baseline()};
}

/** The paper's four value-based replay configurations. */
inline std::vector<MachineConfig>
replayConfigs()
{
    return {
        {"replay-all",
         CoreConfig::valueReplay(ReplayFilterConfig::replayAll())},
        {"no-reorder",
         [] {
             // The paper's no-reorder marking is scheduler-based; see
             // ReplayLoadInfo::issuedOutOfOrderSched for the caveat.
             auto f = ReplayFilterConfig::noReorderOnly();
             f.noReorderSchedulerSemantics = true;
             return CoreConfig::valueReplay(f);
         }()},
        {"no-recent-miss",
         CoreConfig::valueReplay(
             ReplayFilterConfig::recentMissPlusNus())},
        {"no-recent-snoop",
         CoreConfig::valueReplay(
             ReplayFilterConfig::recentSnoopPlusNus())},
    };
}

/** Knobs for guarded runs (fault injection / resilience harnesses). */
struct GuardedRunOptions
{
    FaultConfig faults;    ///< disabled by default (no injector)
    std::string jobName = "job"; ///< failure-artifact label
    Cycle cycleBudget = 0; ///< 0 = SystemConfig default maxCycles
    unsigned deadlockThreshold = 0; ///< 0 = machine default
    bool trackVersions = false;     ///< enable the SC checker's input
    AuditLevel audit = AuditLevel::Off; ///< faults violate invariants
};

inline SystemConfig
guardedSystemConfig(const MachineConfig &machine,
                    const GuardedRunOptions &opts, unsigned cores)
{
    SystemConfig cfg;
    cfg.cores = cores;
    cfg.core = machine.core;
    if (opts.deadlockThreshold)
        cfg.core.deadlockThreshold = opts.deadlockThreshold;
    if (opts.cycleBudget)
        cfg.maxCycles = opts.cycleBudget;
    cfg.faults = opts.faults;
    cfg.jobName = opts.jobName;
    cfg.trackVersions = opts.trackVersions;
    cfg.audit = opts.audit;
    return cfg;
}

/**
 * Like the spec path, but for one ad-hoc hostile run (the resilience
 * demo): throws SweepJobError with a full failure artifact on
 * deadlock or cycle-budget exhaustion so runGuarded can quarantine
 * the job and keep the sweep alive.
 */
inline RunStats
runUniGuarded(const WorkloadSpec &spec, const MachineConfig &machine,
              const GuardedRunOptions &opts)
{
    SimJobSpec job;
    job.workload = spec.name;
    job.config = machine.name;
    job.system = guardedSystemConfig(machine, opts, 1);
    job.program =
        std::make_shared<Program>(makeSynthetic(spec.params));
    return runSimJob(job, /*guarded=*/true).stats;
}

/**
 * Results of a sweep, indexed exactly as the jobs were added. Thin
 * view over SpecSweepOutcome: [i] yields the RunStats, job(i) the
 * full SimJobResult (harvested extras), has(i) whether the slot
 * resolved at all — false only for jobs another shard owns that were
 * not in the cache, and for quarantined jobs of a guarded sweep.
 */
class SweepResults
{
  public:
    explicit SweepResults(SpecSweepOutcome outcome)
        : o_(std::move(outcome))
    {
    }

    std::size_t size() const { return o_.results.size(); }

    bool has(std::size_t i) const { return o_.ok[i] != 0; }

    bool
    hasAll(std::initializer_list<std::size_t> idx) const
    {
        for (std::size_t i : idx)
            if (!has(i))
                return false;
        return true;
    }

    /** Every slot resolved (always true unsharded and unguarded). */
    bool complete() const { return o_.complete(); }

    const RunStats &
    operator[](std::size_t i) const
    {
        return job(i).stats;
    }

    const SimJobResult &
    job(std::size_t i) const
    {
        if (!has(i))
            fatal("sweep job " + std::to_string(i) +
                  " has no result (skipped by VBR_SHARD or "
                  "quarantined) — guard accesses with has()");
        return o_.results[i];
    }

    const SpecSweepOutcome &outcome() const { return o_; }

    /** One-line service summary, grepped by tools/run_bench.sh and
     * the warm-cache CI gate. */
    void
    printSummary(const std::string &harness) const
    {
        // New fields append at the end: CI greps anchor on the
        // existing field order.
        std::printf("[sweep] %s: jobs=%zu simulated=%zu "
                    "cache_hits=%zu shard_skipped=%zu "
                    "quarantined=%zu store_failures=%zu\n",
                    harness.c_str(), size(), o_.simulated,
                    o_.cacheHits, o_.skipped,
                    o_.quarantined.size(), o_.storeFailures);
    }

  private:
    SpecSweepOutcome o_;
};

/**
 * Ordered job grid for the sweep service. Every job is submitted as
 * a full SimJobSpec (specs own their programs; one workload's program
 * is built once and shared across its machine configurations), so
 * run() can resolve jobs through the identity/cache/shard layers.
 * Results are indexed exactly as the jobs were added.
 */
class JobList
{
  public:
    /** Queue a uniprocessor run; returns its result index. */
    std::size_t
    uni(const WorkloadSpec &wl, const MachineConfig &machine)
    {
        SimJobSpec spec;
        spec.workload = wl.name;
        spec.config = machine.name;
        spec.system.cores = 1;
        spec.system.core = machine.core;
        // Distinct per-job artifact labels: quarantines of different
        // jobs must not overwrite each other's FAIL_<job>.json.
        spec.system.jobName = wl.name + "-" + machine.name;
        spec.program = uniProgram(wl);
        return add(std::move(spec));
    }

    /** Queue a multiprocessor run; returns its result index. */
    std::size_t
    mp(const MpWorkloadSpec &wl, const MachineConfig &machine)
    {
        SimJobSpec spec;
        spec.workload = wl.name;
        spec.config = machine.name;
        spec.system.cores = wl.threads;
        spec.system.core = machine.core;
        spec.system.jobName = wl.name + "-" + machine.name;
        spec.program = mpProgram(wl);
        return add(std::move(spec));
    }

    /** Queue an arbitrary prepared spec. */
    std::size_t
    add(SimJobSpec spec)
    {
        specs_.push_back(std::move(spec));
        return specs_.size() - 1;
    }

    /** Mutable access for post-submission tweaks (harvest plans,
     * hierarchy overrides, guarded-run system configs). */
    SimJobSpec &spec(std::size_t i) { return specs_[i]; }

    std::size_t size() const { return specs_.size(); }

    /** Execute everything through the service layers (cache from
     * VBR_CACHE_DIR, partition from VBR_SHARD); fatal on any
     * simulation failure. result[i] belongs to the i-th queued job.
     *
     * A VBR_JOB_TIMEOUT_MS budget promotes the run to guarded mode:
     * quarantine is the only machinery that can outlive a timed-out
     * job, so a daemon worker with a budget set survives a wedged
     * simulation (kind:"timeout" artifact + nonzero exit) instead of
     * hanging its lease forever. */
    SweepResults
    run() const
    {
        if (jobTimeoutMsFromEnv() > 0)
            return runWith(/*guarded=*/true, GuardOptions());
        return runWith(/*guarded=*/false, GuardOptions());
    }

    /** Failure-isolating variant: failing jobs quarantine with
     * FAIL_*.json artifacts instead of killing the harness, and are
     * never cached. */
    SweepResults
    runGuarded(const GuardOptions &guard = GuardOptions()) const
    {
        return runWith(/*guarded=*/true, guard);
    }

  private:
    SweepResults
    runWith(bool guarded, const GuardOptions &guard) const
    {
        ResultCache cache = ResultCache::fromEnv();
        SpecSweepOptions opts;
        opts.cache = &cache;
        opts.shard = ShardSpec::fromEnv();
        opts.guarded = guarded;
        opts.guard = guard;
        SweepRunner runner;
        return SweepResults(runner.runSpecs(specs_, opts));
    }

    /** Exact-match memo key so two same-named workloads with
     * different parameters can never alias one program. */
    static std::string
    synthKey(const SynthParams &p)
    {
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s|%llu|%u|%u|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%d|%u|"
            "%u|%.17g|%.17g|%u|%.17g|%.17g",
            p.name.c_str(),
            static_cast<unsigned long long>(p.seed), p.iterations,
            p.blockOps, p.loadFrac, p.storeFrac, p.branchFrac,
            p.fpFrac, p.mulFrac, p.divFrac,
            static_cast<int>(p.pattern), p.workingSetBytes,
            p.strideBytes, p.aliasHazardFrac, p.branchNoise,
            p.chainLength, p.coldMissFrac, p.callFrac);
        return buf;
    }

    std::shared_ptr<const Program>
    uniProgram(const WorkloadSpec &wl)
    {
        std::string key = synthKey(wl.params);
        auto it = uniPrograms_.find(key);
        if (it != uniPrograms_.end())
            return it->second;
        auto prog =
            std::make_shared<Program>(makeSynthetic(wl.params));
        uniPrograms_.emplace(std::move(key), prog);
        return prog;
    }

    std::shared_ptr<const Program>
    mpProgram(const MpWorkloadSpec &wl)
    {
        // MP programs arrive pre-built; dedupe by content digest so
        // repeated submissions of one suite entry share storage.
        std::uint64_t digest = programDigest(wl.prog);
        auto it = mpPrograms_.find(digest);
        if (it != mpPrograms_.end())
            return it->second;
        auto prog = std::make_shared<Program>(wl.prog);
        mpPrograms_.emplace(digest, prog);
        return prog;
    }

    std::vector<SimJobSpec> specs_;
    std::map<std::string, std::shared_ptr<const Program>>
        uniPrograms_;
    std::map<std::uint64_t, std::shared_ptr<const Program>>
        mpPrograms_;
};

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace vbr::bench

#endif // VBR_BENCH_HARNESS_HPP
