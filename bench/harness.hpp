/**
 * @file
 * Shared infrastructure for the figure/table reproduction harnesses:
 * the five evaluated machine configurations, run helpers returning the
 * statistics each figure needs, and small formatting utilities.
 *
 * Environment knobs:
 *   VBR_SCALE     multiplies workload iteration counts (default 1.0)
 *   VBR_MP_CORES  cores for multiprocessor workloads (default 4)
 */

#ifndef VBR_BENCH_HARNESS_HPP
#define VBR_BENCH_HARNESS_HPP

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "sys/system.hpp"
#include "workload/multiproc.hpp"
#include "workload/synthetic.hpp"

namespace vbr::bench
{

inline double
envScale()
{
    const char *s = std::getenv("VBR_SCALE");
    return s ? std::atof(s) : 1.0;
}

inline unsigned
envMpCores()
{
    const char *s = std::getenv("VBR_MP_CORES");
    return s ? static_cast<unsigned>(std::atoi(s)) : 4;
}

/** One evaluated machine configuration (paper Figure 5 legend). */
struct MachineConfig
{
    std::string name;
    CoreConfig core;
};

/** Baseline: unconstrained LSQ + store-set predictor + snooping LQ. */
inline MachineConfig
baselineConfig()
{
    return {"baseline", CoreConfig::baseline()};
}

/** The paper's four value-based replay configurations. */
inline std::vector<MachineConfig>
replayConfigs()
{
    return {
        {"replay-all",
         CoreConfig::valueReplay(ReplayFilterConfig::replayAll())},
        {"no-reorder",
         [] {
             // The paper's no-reorder marking is scheduler-based; see
             // ReplayLoadInfo::issuedOutOfOrderSched for the caveat.
             auto f = ReplayFilterConfig::noReorderOnly();
             f.noReorderSchedulerSemantics = true;
             return CoreConfig::valueReplay(f);
         }()},
        {"no-recent-miss",
         CoreConfig::valueReplay(
             ReplayFilterConfig::recentMissPlusNus())},
        {"no-recent-snoop",
         CoreConfig::valueReplay(
             ReplayFilterConfig::recentSnoopPlusNus())},
    };
}

/** Statistics extracted from one run. */
struct RunStats
{
    std::string workload;
    std::string config;
    double ipc = 0.0;
    std::uint64_t instructions = 0;
    Cycle cycles = 0;

    std::uint64_t l1dPremature = 0; ///< incl. wrong-path loads
    std::uint64_t l1dStoreCommit = 0;
    std::uint64_t l1dReplay = 0;
    std::uint64_t l1dSwap = 0;
    std::uint64_t replaysUnresolved = 0;
    std::uint64_t replaysConsistency = 0;
    std::uint64_t replaysFiltered = 0;
    std::uint64_t committedLoads = 0;

    double robOccupancy = 0.0;

    std::uint64_t lqSearches = 0;       ///< baseline CAM searches
    std::uint64_t squashLqRaw = 0;
    std::uint64_t squashLqRawUnnec = 0;
    std::uint64_t squashLqSnoop = 0;
    std::uint64_t squashLqSnoopUnnec = 0;
    std::uint64_t squashReplay = 0;
    std::uint64_t wouldbeRaw = 0;
    std::uint64_t wouldbeRawValueEq = 0;
    std::uint64_t wouldbeSnoop = 0;
    std::uint64_t wouldbeSnoopValueEq = 0;

    std::uint64_t
    l1dTotal() const
    {
        return l1dPremature + l1dStoreCommit + l1dReplay + l1dSwap;
    }
};

inline RunStats
collect(System &sys, const RunResult &result, const std::string &wl,
        const std::string &cfg)
{
    RunStats s;
    s.workload = wl;
    s.config = cfg;
    s.instructions = result.instructions;
    s.cycles = result.cycles;
    s.ipc = result.ipc();

    double occ_sum = 0.0;
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        const StatSet &st = sys.core(c).stats();
        s.l1dPremature += st.get("l1d_accesses_premature");
        s.l1dStoreCommit += st.get("l1d_accesses_store_commit");
        s.l1dReplay += st.get("l1d_accesses_replay");
        s.l1dSwap += st.get("l1d_accesses_swap");
        s.replaysUnresolved += st.get("replays_unresolved_store");
        s.replaysConsistency += st.get("replays_consistency");
        s.replaysFiltered += st.get("replays_filtered");
        s.committedLoads += st.get("committed_loads");
        s.squashLqRaw += st.get("squashes_lq_raw");
        s.squashLqRawUnnec += st.get("squashes_lq_raw_unnecessary");
        s.squashLqSnoop += st.get("squashes_lq_snoop");
        s.squashLqSnoopUnnec +=
            st.get("squashes_lq_snoop_unnecessary");
        s.squashReplay += st.get("squashes_replay_mismatch");
        s.wouldbeRaw += st.get("wouldbe_squashes_raw");
        s.wouldbeRawValueEq +=
            st.get("wouldbe_squashes_raw_value_equal");
        s.wouldbeSnoop += st.get("wouldbe_squashes_snoop");
        s.wouldbeSnoopValueEq +=
            st.get("wouldbe_squashes_snoop_value_equal");
        occ_sum += sys.core(c).stats().getMean("rob_occupancy");
        if (auto *lq = sys.core(c).assocLq())
            s.lqSearches += lq->searches();
    }
    s.robOccupancy = occ_sum / sys.numCores();
    return s;
}

/** Run one uniprocessor workload under one machine configuration. */
inline RunStats
runUni(const WorkloadSpec &spec, const MachineConfig &machine)
{
    Program prog = makeSynthetic(spec.params);
    SystemConfig cfg;
    cfg.cores = 1;
    cfg.core = machine.core;
    System sys(cfg, prog);
    RunResult r = sys.run();
    if (!r.allHalted)
        fatal("workload " + spec.name + " did not halt under " +
              machine.name);
    return collect(sys, r, spec.name, machine.name);
}

/** Run one multiprocessor workload under one machine configuration. */
inline RunStats
runMp(const MpWorkloadSpec &spec, const MachineConfig &machine)
{
    SystemConfig cfg;
    cfg.cores = spec.threads;
    cfg.core = machine.core;
    System sys(cfg, spec.prog);
    RunResult r = sys.run();
    if (!r.allHalted)
        fatal("MP workload " + spec.name + " did not halt under " +
              machine.name);
    return collect(sys, r, spec.name, machine.name);
}

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace vbr::bench

#endif // VBR_BENCH_HARNESS_HPP
