/**
 * @file
 * Ablation: dependence predictor choice. The paper pairs the baseline
 * with a store-set predictor and value-based replay with the simpler
 * Alpha-style wait table (because replay cannot identify the
 * conflicting store, §3), and attributes apsi's slowdown / art's
 * speedup to this difference. This sweep runs both machines with both
 * predictors to isolate that effect.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();

    std::printf("Ablation: dependence predictor (IPC)\n");
    std::printf("scale=%.2f\n\n", scale);

    MachineConfig base_ss = baselineConfig(); // store-set (paper)
    MachineConfig base_simple{"baseline+simple",
                              CoreConfig::baseline()};
    base_simple.core.depPredictor = DepPredictorKind::Simple;

    MachineConfig vbr_simple{
        "replay+simple",
        CoreConfig::valueReplay(
            ReplayFilterConfig::recentSnoopPlusNus())}; // paper
    MachineConfig vbr_ss{
        "replay+storeset",
        CoreConfig::valueReplay(
            ReplayFilterConfig::recentSnoopPlusNus())};
    vbr_ss.core.depPredictor = DepPredictorKind::StoreSet;

    TextTable table;
    table.header({"workload", "base+storeset", "base+simple",
                  "replay+simple", "replay+storeset"});

    for (const auto &wl : uniprocessorSuite(scale)) {
        table.row({wl.name,
                   TextTable::fmt(runUni(wl, base_ss).ipc, 3),
                   TextTable::fmt(runUni(wl, base_simple).ipc, 3),
                   TextTable::fmt(runUni(wl, vbr_simple).ipc, 3),
                   TextTable::fmt(runUni(wl, vbr_ss).ipc, 3)});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("note: replay+storeset trains with store pc unknown "
                "(degenerate), since replay cannot name the "
                "conflicting store — exactly the paper's argument for "
                "using the simple predictor.\n");
    return 0;
}
