/**
 * @file
 * Ablation: dependence predictor choice. The paper pairs the baseline
 * with a store-set predictor and value-based replay with the simpler
 * Alpha-style wait table (because replay cannot identify the
 * conflicting store, §3), and attributes apsi's slowdown / art's
 * speedup to this difference. This sweep runs both machines with both
 * predictors to isolate that effect.
 */

#include "harness.hpp"

using namespace vbr;
using namespace vbr::bench;

int
main()
{
    double scale = envScale();

    std::printf("Ablation: dependence predictor (IPC)\n");
    std::printf("scale=%.2f\n\n", scale);

    MachineConfig base_ss = baselineConfig(); // store-set (paper)
    MachineConfig base_simple{"baseline+simple",
                              CoreConfig::baseline()};
    base_simple.core.depPredictor = DepPredictorKind::Simple;

    MachineConfig vbr_simple{
        "replay+simple",
        CoreConfig::valueReplay(
            ReplayFilterConfig::recentSnoopPlusNus())}; // paper
    MachineConfig vbr_ss{
        "replay+storeset",
        CoreConfig::valueReplay(
            ReplayFilterConfig::recentSnoopPlusNus())};
    vbr_ss.core.depPredictor = DepPredictorKind::StoreSet;

    TextTable table;
    table.header({"workload", "base+storeset", "base+simple",
                  "replay+simple", "replay+storeset"});

    const std::vector<MachineConfig> machines{base_ss, base_simple,
                                             vbr_simple, vbr_ss};

    JobList jobs;
    std::vector<std::string> names;
    for (const auto &wl : uniprocessorSuite(scale)) {
        names.push_back(wl.name);
        for (const auto &m : machines)
            jobs.uni(wl, m);
    }

    SweepResults results = jobs.run();
    results.printSummary("ablation_dep_predictor");

    BenchReport rep("ablation_dep_predictor");
    rep.meta("scale", scale);
    for (std::size_t i = 0; i < results.size(); ++i)
        if (results.has(i))
            rep.addRun(results[i]);

    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row{names[w]};
        bool full = true;
        for (std::size_t m = 0; m < machines.size(); ++m)
            full = full && results.has(w * machines.size() + m);
        if (!full)
            continue; // other shard owns part of this row
        for (std::size_t m = 0; m < machines.size(); ++m)
            row.push_back(TextTable::fmt(
                results[w * machines.size() + m].ipc, 3));
        table.row(row);
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("note: replay+storeset trains with store pc unknown "
                "(degenerate), since replay cannot name the "
                "conflicting store — exactly the paper's argument for "
                "using the simple predictor.\n");
    rep.write();
    return 0;
}
