
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cam/cam_model.cpp" "src/CMakeFiles/vbr.dir/cam/cam_model.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/cam/cam_model.cpp.o.d"
  "/root/repo/src/check/constraint_graph.cpp" "src/CMakeFiles/vbr.dir/check/constraint_graph.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/check/constraint_graph.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/vbr.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/vbr.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/common/table.cpp.o.d"
  "/root/repo/src/core/ooo_core.cpp" "src/CMakeFiles/vbr.dir/core/ooo_core.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/core/ooo_core.cpp.o.d"
  "/root/repo/src/isa/assembler.cpp" "src/CMakeFiles/vbr.dir/isa/assembler.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/isa/assembler.cpp.o.d"
  "/root/repo/src/isa/functional_core.cpp" "src/CMakeFiles/vbr.dir/isa/functional_core.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/isa/functional_core.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/CMakeFiles/vbr.dir/isa/instruction.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/isa/instruction.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/CMakeFiles/vbr.dir/isa/opcode.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/isa/opcode.cpp.o.d"
  "/root/repo/src/lsq/assoc_load_queue.cpp" "src/CMakeFiles/vbr.dir/lsq/assoc_load_queue.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/lsq/assoc_load_queue.cpp.o.d"
  "/root/repo/src/lsq/replay_filters.cpp" "src/CMakeFiles/vbr.dir/lsq/replay_filters.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/lsq/replay_filters.cpp.o.d"
  "/root/repo/src/lsq/store_queue.cpp" "src/CMakeFiles/vbr.dir/lsq/store_queue.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/lsq/store_queue.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/vbr.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/coherence.cpp" "src/CMakeFiles/vbr.dir/mem/coherence.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/mem/coherence.cpp.o.d"
  "/root/repo/src/mem/hierarchy.cpp" "src/CMakeFiles/vbr.dir/mem/hierarchy.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/mem/hierarchy.cpp.o.d"
  "/root/repo/src/mem/memory_image.cpp" "src/CMakeFiles/vbr.dir/mem/memory_image.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/mem/memory_image.cpp.o.d"
  "/root/repo/src/mem/prefetcher.cpp" "src/CMakeFiles/vbr.dir/mem/prefetcher.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/mem/prefetcher.cpp.o.d"
  "/root/repo/src/predict/branch_predictor.cpp" "src/CMakeFiles/vbr.dir/predict/branch_predictor.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/predict/branch_predictor.cpp.o.d"
  "/root/repo/src/predict/dep_predictor.cpp" "src/CMakeFiles/vbr.dir/predict/dep_predictor.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/predict/dep_predictor.cpp.o.d"
  "/root/repo/src/sys/report.cpp" "src/CMakeFiles/vbr.dir/sys/report.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/sys/report.cpp.o.d"
  "/root/repo/src/sys/system.cpp" "src/CMakeFiles/vbr.dir/sys/system.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/sys/system.cpp.o.d"
  "/root/repo/src/workload/litmus.cpp" "src/CMakeFiles/vbr.dir/workload/litmus.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/workload/litmus.cpp.o.d"
  "/root/repo/src/workload/multiproc.cpp" "src/CMakeFiles/vbr.dir/workload/multiproc.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/workload/multiproc.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/CMakeFiles/vbr.dir/workload/synthetic.cpp.o" "gcc" "src/CMakeFiles/vbr.dir/workload/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
