# Empty compiler generated dependencies file for vbr.
# This may be replaced when dependencies are built.
