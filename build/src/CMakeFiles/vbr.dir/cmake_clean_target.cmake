file(REMOVE_RECURSE
  "libvbr.a"
)
