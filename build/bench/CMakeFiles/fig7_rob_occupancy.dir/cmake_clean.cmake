file(REMOVE_RECURSE
  "CMakeFiles/fig7_rob_occupancy.dir/fig7_rob_occupancy.cpp.o"
  "CMakeFiles/fig7_rob_occupancy.dir/fig7_rob_occupancy.cpp.o.d"
  "fig7_rob_occupancy"
  "fig7_rob_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rob_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
