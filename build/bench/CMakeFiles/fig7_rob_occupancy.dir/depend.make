# Empty dependencies file for fig7_rob_occupancy.
# This may be replaced when dependencies are built.
