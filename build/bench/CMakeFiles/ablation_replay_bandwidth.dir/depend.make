# Empty dependencies file for ablation_replay_bandwidth.
# This may be replaced when dependencies are built.
