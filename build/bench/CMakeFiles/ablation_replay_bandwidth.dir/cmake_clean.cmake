file(REMOVE_RECURSE
  "CMakeFiles/ablation_replay_bandwidth.dir/ablation_replay_bandwidth.cpp.o"
  "CMakeFiles/ablation_replay_bandwidth.dir/ablation_replay_bandwidth.cpp.o.d"
  "ablation_replay_bandwidth"
  "ablation_replay_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replay_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
