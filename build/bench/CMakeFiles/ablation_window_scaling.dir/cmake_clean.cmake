file(REMOVE_RECURSE
  "CMakeFiles/ablation_window_scaling.dir/ablation_window_scaling.cpp.o"
  "CMakeFiles/ablation_window_scaling.dir/ablation_window_scaling.cpp.o.d"
  "ablation_window_scaling"
  "ablation_window_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_window_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
