file(REMOVE_RECURSE
  "CMakeFiles/table1_lq_attributes.dir/table1_lq_attributes.cpp.o"
  "CMakeFiles/table1_lq_attributes.dir/table1_lq_attributes.cpp.o.d"
  "table1_lq_attributes"
  "table1_lq_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lq_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
