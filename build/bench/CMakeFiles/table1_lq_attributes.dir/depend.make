# Empty dependencies file for table1_lq_attributes.
# This may be replaced when dependencies are built.
