# Empty compiler generated dependencies file for fig8_constrained_lq.
# This may be replaced when dependencies are built.
