file(REMOVE_RECURSE
  "CMakeFiles/fig8_constrained_lq.dir/fig8_constrained_lq.cpp.o"
  "CMakeFiles/fig8_constrained_lq.dir/fig8_constrained_lq.cpp.o.d"
  "fig8_constrained_lq"
  "fig8_constrained_lq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_constrained_lq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
