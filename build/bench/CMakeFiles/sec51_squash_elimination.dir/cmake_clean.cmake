file(REMOVE_RECURSE
  "CMakeFiles/sec51_squash_elimination.dir/sec51_squash_elimination.cpp.o"
  "CMakeFiles/sec51_squash_elimination.dir/sec51_squash_elimination.cpp.o.d"
  "sec51_squash_elimination"
  "sec51_squash_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_squash_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
