# Empty dependencies file for sec51_squash_elimination.
# This may be replaced when dependencies are built.
