file(REMOVE_RECURSE
  "CMakeFiles/micro_lsq_structures.dir/micro_lsq_structures.cpp.o"
  "CMakeFiles/micro_lsq_structures.dir/micro_lsq_structures.cpp.o.d"
  "micro_lsq_structures"
  "micro_lsq_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lsq_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
