# Empty compiler generated dependencies file for micro_lsq_structures.
# This may be replaced when dependencies are built.
