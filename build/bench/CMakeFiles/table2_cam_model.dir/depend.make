# Empty dependencies file for table2_cam_model.
# This may be replaced when dependencies are built.
