file(REMOVE_RECURSE
  "CMakeFiles/sec53_power_model.dir/sec53_power_model.cpp.o"
  "CMakeFiles/sec53_power_model.dir/sec53_power_model.cpp.o.d"
  "sec53_power_model"
  "sec53_power_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_power_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
