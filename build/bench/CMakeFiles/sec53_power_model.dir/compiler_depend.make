# Empty compiler generated dependencies file for sec53_power_model.
# This may be replaced when dependencies are built.
