# Empty dependencies file for ablation_value_prediction.
# This may be replaced when dependencies are built.
