file(REMOVE_RECURSE
  "CMakeFiles/ablation_value_prediction.dir/ablation_value_prediction.cpp.o"
  "CMakeFiles/ablation_value_prediction.dir/ablation_value_prediction.cpp.o.d"
  "ablation_value_prediction"
  "ablation_value_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_value_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
