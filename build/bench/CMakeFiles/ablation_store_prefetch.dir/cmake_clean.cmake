file(REMOVE_RECURSE
  "CMakeFiles/ablation_store_prefetch.dir/ablation_store_prefetch.cpp.o"
  "CMakeFiles/ablation_store_prefetch.dir/ablation_store_prefetch.cpp.o.d"
  "ablation_store_prefetch"
  "ablation_store_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_store_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
