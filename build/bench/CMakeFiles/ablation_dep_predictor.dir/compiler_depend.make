# Empty compiler generated dependencies file for ablation_dep_predictor.
# This may be replaced when dependencies are built.
