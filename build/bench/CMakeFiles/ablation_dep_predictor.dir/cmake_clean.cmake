file(REMOVE_RECURSE
  "CMakeFiles/ablation_dep_predictor.dir/ablation_dep_predictor.cpp.o"
  "CMakeFiles/ablation_dep_predictor.dir/ablation_dep_predictor.cpp.o.d"
  "ablation_dep_predictor"
  "ablation_dep_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dep_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
