# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cam_model_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_basic_test[1]_include.cmake")
include("/root/repo/build/tests/core_edge_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_test[1]_include.cmake")
include("/root/repo/build/tests/lsq_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/multiproc_test[1]_include.cmake")
include("/root/repo/build/tests/predict_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/value_prediction_test[1]_include.cmake")
include("/root/repo/build/tests/weak_ordering_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
