# Empty compiler generated dependencies file for cam_model_test.
# This may be replaced when dependencies are built.
