file(REMOVE_RECURSE
  "CMakeFiles/cam_model_test.dir/cam_model_test.cpp.o"
  "CMakeFiles/cam_model_test.dir/cam_model_test.cpp.o.d"
  "cam_model_test"
  "cam_model_test.pdb"
  "cam_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
