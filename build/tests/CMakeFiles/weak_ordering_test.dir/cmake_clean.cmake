file(REMOVE_RECURSE
  "CMakeFiles/weak_ordering_test.dir/weak_ordering_test.cpp.o"
  "CMakeFiles/weak_ordering_test.dir/weak_ordering_test.cpp.o.d"
  "weak_ordering_test"
  "weak_ordering_test.pdb"
  "weak_ordering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
