# Empty dependencies file for weak_ordering_test.
# This may be replaced when dependencies are built.
