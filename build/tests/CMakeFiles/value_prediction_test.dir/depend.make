# Empty dependencies file for value_prediction_test.
# This may be replaced when dependencies are built.
