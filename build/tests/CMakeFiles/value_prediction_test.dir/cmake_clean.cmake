file(REMOVE_RECURSE
  "CMakeFiles/value_prediction_test.dir/value_prediction_test.cpp.o"
  "CMakeFiles/value_prediction_test.dir/value_prediction_test.cpp.o.d"
  "value_prediction_test"
  "value_prediction_test.pdb"
  "value_prediction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_prediction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
