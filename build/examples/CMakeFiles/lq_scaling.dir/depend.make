# Empty dependencies file for lq_scaling.
# This may be replaced when dependencies are built.
