file(REMOVE_RECURSE
  "CMakeFiles/lq_scaling.dir/lq_scaling.cpp.o"
  "CMakeFiles/lq_scaling.dir/lq_scaling.cpp.o.d"
  "lq_scaling"
  "lq_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lq_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
