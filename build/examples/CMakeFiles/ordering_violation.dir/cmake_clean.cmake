file(REMOVE_RECURSE
  "CMakeFiles/ordering_violation.dir/ordering_violation.cpp.o"
  "CMakeFiles/ordering_violation.dir/ordering_violation.cpp.o.d"
  "ordering_violation"
  "ordering_violation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_violation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
