# Empty dependencies file for ordering_violation.
# This may be replaced when dependencies are built.
