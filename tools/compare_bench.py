#!/usr/bin/env python3
"""Diff two results/ directories of BENCH_*.json reports.

Usage: tools/compare_bench.py BASELINE_DIR CANDIDATE_DIR

Every field of every report must be identical between the two
directories except a small masked set that legitimately varies run to
run. The set is single-sourced in tools/bench_mask.json (also consumed
by the C++ result cache via maskedResultFields(), so "identical here"
and "identical to a cache hit" are the same predicate):

  wall_ms          host wall-clock time
  threads          sweep-engine worker count
  skipped_cycles   fast-forward observability (VBR_FASTFWD-dependent)
  ticked_cycles    fast-forward observability (VBR_FASTFWD-dependent)
  artifact         quarantine artifact paths (host-dependent temp dir)
  real_time_ns, cpu_time_ns, iterations, items_per_second
                   host-timing payload of the micro_lsq_structures
                   microbenchmark (wall-clock class, like wall_ms)

Any other difference - a missing report, a missing run, a changed stat -
is printed and the script exits 1. On success it prints a wall_ms
speedup table (baseline / candidate per harness) and exits 0.

This is the gate the fast-forward acceptance, the CI bench-smoke, and
the warm-cache sweep-cache job use: candidate results produced with
VBR_FASTFWD=1 (or entirely from cache hits) must be bitwise identical
to the baseline everywhere except the masked fields.
"""

import argparse
import json
import os
import sys

_MASK_FILE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "bench_mask.json")
with open(_MASK_FILE) as _f:
    MASKED_KEYS = frozenset(json.load(_f)["masked_result_fields"])


def strip_masked(node):
    """Recursively drop masked keys so the rest compares exactly."""
    if isinstance(node, dict):
        return {k: strip_masked(v) for k, v in node.items()
                if k not in MASKED_KEYS}
    if isinstance(node, list):
        return [strip_masked(v) for v in node]
    return node


def diff(base, cand, path, out):
    """Collect human-readable differences between two stripped trees."""
    if type(base) is not type(cand):
        out.append(f"{path}: type {type(base).__name__} -> "
                   f"{type(cand).__name__}")
        return
    if isinstance(base, dict):
        for k in base.keys() | cand.keys():
            if k not in base:
                out.append(f"{path}/{k}: only in candidate")
            elif k not in cand:
                out.append(f"{path}/{k}: only in baseline")
            else:
                diff(base[k], cand[k], f"{path}/{k}", out)
    elif isinstance(base, list):
        if len(base) != len(cand):
            out.append(f"{path}: length {len(base)} -> {len(cand)}")
        for i, (b, c) in enumerate(zip(base, cand)):
            diff(b, c, f"{path}[{i}]", out)
    elif base != cand:
        out.append(f"{path}: {base!r} -> {cand!r}")


def load_reports(directory):
    reports = {}
    for name in sorted(os.listdir(directory)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            with open(os.path.join(directory, name)) as f:
                reports[name] = json.load(f)
    return reports


def main():
    ap = argparse.ArgumentParser(
        description="Diff two BENCH result directories "
                    "(fails on any non-masked field change).")
    ap.add_argument("baseline", help="baseline results directory")
    ap.add_argument("candidate", help="candidate results directory")
    args = ap.parse_args()

    base = load_reports(args.baseline)
    cand = load_reports(args.candidate)
    if not base:
        print(f"error: no BENCH_*.json in {args.baseline}",
              file=sys.stderr)
        return 2

    problems = []
    for name in sorted(base.keys() | cand.keys()):
        if name not in base:
            problems.append(f"{name}: only in candidate")
            continue
        if name not in cand:
            problems.append(f"{name}: only in baseline")
            continue
        diff(strip_masked(base[name]), strip_masked(cand[name]),
             name, problems)

    if problems:
        print(f"FAIL: {len(problems)} non-masked difference(s):")
        for p in problems[:200]:
            print(f"  {p}")
        if len(problems) > 200:
            print(f"  ... and {len(problems) - 200} more")
        return 1

    print(f"OK: {len(base)} report(s) identical "
          f"(masked: {', '.join(sorted(MASKED_KEYS))})")
    print()
    print(f"{'harness':<32} {'base ms':>10} {'cand ms':>10} "
          f"{'speedup':>8}")
    for name in sorted(base):
        b = base[name].get("wall_ms")
        c = cand[name].get("wall_ms")
        if not isinstance(b, (int, float)) or \
           not isinstance(c, (int, float)):
            continue
        speedup = f"{b / c:7.2f}x" if c > 0 else "     inf"
        label = name[len("BENCH_"):-len(".json")]
        print(f"{label:<32} {b:>10} {c:>10} {speedup:>8}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
