#!/usr/bin/env python3
"""Inspect, diff, and merge vbr-trace/1 capture files.

Subcommands:

  inspect TRACE [TRACE...]
      Decode each trace and print its header, per-kind frame tallies,
      per-core commit counts, and trailer totals.

  diff A B [--expect-divergence N]
      Align the commit frames of two traces per core, in order, and
      report how many aligned frames diverge (different pc, address,
      value, or ordering flags), plus the ordering-event tally deltas.
      With --expect-divergence, exit 0 iff the total number of
      divergent commit frames is exactly N (CI pins fault-injection
      divergence this way); otherwise exit 0 iff the traces are
      identical in verdict terms.

  merge OUT TRACE [TRACE...]
      Bundle traces into one vbr-trace-bundle/1 file (length-prefixed
      concatenation, each member digest-verified first). A bundle is
      an archival container; `inspect` accepts bundles too.

The format is defined in src/trace/trace_format.hpp. Everything here
is read-only over the trace bytes; a malformed file (bad magic, digest
mismatch, truncation) is reported cleanly and exits 2.
"""

import argparse
import struct
import sys

MAGIC = b"vbr-trace/1\n"
BUNDLE_MAGIC = b"vbr-trace-bundle/1\n"
TAG_COMMIT = 0x01
TAG_ORDERING = 0x02
TAG_TRAILER = 0xFF

EVENT_KINDS = [
    "replay_unresolved",
    "replay_consistency",
    "replay_filtered",
    "squash_replay",
    "squash_lq_raw",
    "squash_lq_snoop",
    "wild_load",
    "wild_store",
]


class TraceError(Exception):
    pass


def fnv1a64(data):
    h = 14695981039346656037
    for b in data:
        h ^= b
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h


class Cursor:
    def __init__(self, data):
        self.data = data
        self.pos = 0

    def remaining(self):
        return len(self.data) - self.pos

    def byte(self):
        if self.pos >= len(self.data):
            raise TraceError("trace truncated mid-frame")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def varint(self):
        v = 0
        shift = 0
        while True:
            if shift >= 64:
                raise TraceError("varint overflows 64 bits")
            b = self.byte()
            v |= (b & 0x7F) << shift
            if not b & 0x80:
                return v
            shift += 7

    def fixed64(self):
        if self.remaining() < 8:
            raise TraceError("trace truncated mid-fixed64")
        v = struct.unpack_from("<Q", self.data, self.pos)[0]
        self.pos += 8
        return v

    def bytes(self, n):
        if n > self.remaining():
            raise TraceError("trace truncated mid-string")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out


def decode_trace(data):
    """-> dict with header, commits (per frame), events, trailer."""
    if len(data) < len(MAGIC) + 8:
        raise TraceError("too short to carry a digest")
    stored = struct.unpack_from("<Q", data, len(data) - 8)[0]
    if stored != fnv1a64(data[:-8]):
        raise TraceError("file digest mismatch (truncated or corrupt)")
    c = Cursor(data)
    if c.bytes(len(MAGIC)) != MAGIC:
        raise TraceError("not a vbr-trace/1 file (bad magic)")
    header = {
        "cores": c.varint(),
        "memory_size": c.varint(),
        "versions_tracked": c.varint() != 0,
        "producer_scheme": c.varint(),
        "program_digest": c.fixed64(),
    }
    header["label"] = c.bytes(c.varint()).decode("utf-8", "replace")

    commits = []
    events = []
    while True:
        tag = c.byte()
        if tag == TAG_COMMIT:
            commits.append({
                "core": c.varint(),
                "seq": c.varint(),
                "pc": c.varint(),
                "addr": c.varint(),
                "size": c.varint(),
                "kind": c.byte(),
                "order_flags": c.varint(),
                "read_value": c.varint(),
                "read_version": c.varint(),
                "write_value": c.varint(),
                "write_version": c.varint(),
                "perform_cycle": c.varint(),
                "commit_cycle": c.varint(),
            })
        elif tag == TAG_ORDERING:
            kind = c.byte()
            if kind >= len(EVENT_KINDS):
                raise TraceError("unknown ordering-event kind")
            events.append({
                "kind": kind,
                "core": c.varint(),
                "seq": c.varint(),
                "pc": c.varint(),
                "cycle": c.varint(),
                "unnecessary": c.byte() != 0,
            })
        elif tag == TAG_TRAILER:
            trailer = {
                "frames": c.varint(),
                "cycles": c.varint(),
                "instructions": c.varint(),
                "final_mem_digest": c.fixed64(),
                "file_digest": c.fixed64(),
            }
            if trailer["frames"] != len(commits) + len(events):
                raise TraceError("trailer frame count mismatch")
            if c.remaining():
                raise TraceError("trailing garbage after trailer")
            return {"header": header, "commits": commits,
                    "events": events, "trailer": trailer}
        else:
            raise TraceError("unknown frame tag 0x%02x" % tag)


def load_traces(path):
    """-> [(name, decoded)] — a .vbrtrace yields one entry, a bundle
    yields one per member."""
    with open(path, "rb") as f:
        data = f.read()
    if data.startswith(BUNDLE_MAGIC):
        out = []
        pos = len(BUNDLE_MAGIC)
        index = 0
        while pos < len(data):
            if pos + 8 > len(data):
                raise TraceError("bundle truncated mid-length")
            n = struct.unpack_from("<Q", data, pos)[0]
            pos += 8
            if pos + n > len(data):
                raise TraceError("bundle truncated mid-member")
            out.append(("%s[%d]" % (path, index),
                        decode_trace(data[pos:pos + n])))
            pos += n
            index += 1
        return out
    return [(path, decode_trace(data))]


def event_tallies(t):
    tallies = {name: 0 for name in EVENT_KINDS}
    for e in t["events"]:
        tallies[EVENT_KINDS[e["kind"]]] += 1
    return tallies


def cmd_inspect(args):
    for path in args.traces:
        for name, t in load_traces(path):
            h, tr = t["header"], t["trailer"]
            print("%s:" % name)
            print("  label=%s cores=%d memory=%d versions=%s "
                  "producer_scheme=%d" %
                  (h["label"], h["cores"], h["memory_size"],
                   h["versions_tracked"], h["producer_scheme"]))
            print("  program_digest=%016x file_digest=%016x" %
                  (h["program_digest"], tr["file_digest"]))
            print("  frames=%d commits=%d events=%d cycles=%d "
                  "instructions=%d final_mem_digest=%016x" %
                  (tr["frames"], len(t["commits"]), len(t["events"]),
                   tr["cycles"], tr["instructions"],
                   tr["final_mem_digest"]))
            per_core = {}
            for cm in t["commits"]:
                per_core[cm["core"]] = per_core.get(cm["core"], 0) + 1
            print("  commits per core: %s" %
                  " ".join("c%d=%d" % kv
                           for kv in sorted(per_core.items())))
            tallies = event_tallies(t)
            nonzero = {k: v for k, v in tallies.items() if v}
            print("  events: %s" %
                  (" ".join("%s=%d" % kv
                            for kv in sorted(nonzero.items()))
                   or "(none)"))
    return 0


def cmd_diff(args):
    (name_a, a), = load_traces(args.a)
    (name_b, b), = load_traces(args.b)

    by_core_a = {}
    by_core_b = {}
    for cm in a["commits"]:
        by_core_a.setdefault(cm["core"], []).append(cm)
    for cm in b["commits"]:
        by_core_b.setdefault(cm["core"], []).append(cm)

    divergent = 0
    compared = 0
    unmatched = 0
    first = None
    for core in sorted(set(by_core_a) | set(by_core_b)):
        ca = by_core_a.get(core, [])
        cb = by_core_b.get(core, [])
        unmatched += abs(len(ca) - len(cb))
        for i, (fa, fb) in enumerate(zip(ca, cb)):
            compared += 1
            keys = ("pc", "addr", "size", "kind", "order_flags",
                    "read_value", "write_value")
            if any(fa[k] != fb[k] for k in keys):
                divergent += 1
                if first is None:
                    first = (core, i, fa, fb)

    ta, tb = event_tallies(a), event_tallies(b)
    event_deltas = {k: tb[k] - ta[k] for k in EVENT_KINDS
                    if tb[k] != ta[k]}
    mem_equal = (a["trailer"]["final_mem_digest"] ==
                 b["trailer"]["final_mem_digest"])

    print("diff %s vs %s:" % (name_a, name_b))
    print("  commit frames: compared=%d divergent=%d unmatched=%d" %
          (compared, divergent, unmatched))
    if first is not None:
        core, i, fa, fb = first
        print("  first divergence: core %d frame %d pc=%x addr=%x "
              "read %d->%d flags %04x->%04x" %
              (core, i, fa["pc"], fa["addr"], fa["read_value"],
               fb["read_value"], fa["order_flags"],
               fb["order_flags"]))
    print("  event deltas: %s" %
          (" ".join("%s=%+d" % kv
                    for kv in sorted(event_deltas.items()))
           or "(none)"))
    print("  final memory image: %s" %
          ("identical" if mem_equal else "DIVERGENT"))

    if args.expect_divergence is not None:
        if divergent == args.expect_divergence:
            print("  expected divergence matched (%d)" % divergent)
            return 0
        print("  expected %d divergent frames, found %d" %
              (args.expect_divergence, divergent), file=sys.stderr)
        return 1
    identical = (divergent == 0 and unmatched == 0 and
                 not event_deltas and mem_equal)
    return 0 if identical else 1


def cmd_merge(args):
    members = []
    for path in args.traces:
        with open(path, "rb") as f:
            data = f.read()
        decode_trace(data)  # verify before bundling
        members.append(data)
    with open(args.out, "wb") as f:
        f.write(BUNDLE_MAGIC)
        for data in members:
            f.write(struct.pack("<Q", len(data)))
            f.write(data)
    print("wrote %s (%d traces, %d bytes)" %
          (args.out, len(members),
           len(BUNDLE_MAGIC) + sum(8 + len(m) for m in members)))
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = p.add_subparsers(dest="cmd", required=True)

    pi = sub.add_parser("inspect", help="print header/tallies/trailer")
    pi.add_argument("traces", nargs="+")
    pi.set_defaults(fn=cmd_inspect)

    pd = sub.add_parser("diff", help="compare two traces")
    pd.add_argument("a")
    pd.add_argument("b")
    pd.add_argument("--expect-divergence", type=int, default=None,
                    metavar="N",
                    help="exit 0 iff exactly N commit frames diverge")
    pd.set_defaults(fn=cmd_diff)

    pm = sub.add_parser("merge", help="bundle traces into one file")
    pm.add_argument("out")
    pm.add_argument("traces", nargs="+")
    pm.set_defaults(fn=cmd_merge)

    args = p.parse_args()
    try:
        return args.fn(args)
    except TraceError as e:
        print("error: %s" % e, file=sys.stderr)
        return 2
    except OSError as e:
        print("error: %s" % e, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
