#!/bin/bash
# Profile one bench harness with Linux perf and emit collapsed stacks
# suitable for flame-graph tooling:
#   results/PROF_<name>.perf.data   - raw perf record output
#   results/PROF_<name>.collapsed   - "frame;frame;frame count" lines
#   results/PROF_<name>.report.txt  - perf report top-down summary
#
# The collapsed file is the interchange format of Brendan Gregg's
# flamegraph.pl / inferno / speedscope — feed it to any of them:
#   flamegraph.pl results/PROF_mp16_gigaplane.collapsed > flame.svg
# The collapsing itself is done here with awk over `perf script`, so
# no external flame-graph tooling is needed to produce the file.
#
# Usage: tools/profile_bench.sh <harness> [build-dir] [results-dir]
#   e.g. tools/profile_bench.sh mp16_gigaplane
# Knobs: VBR_SCALE (default 0.25: profiling wants short runs),
#        VBR_THREADS / VBR_MP_THREADS / VBR_FASTFWD_PERCORE pass
#        through to the harness, PERF_FREQ (default 997 Hz; a prime
#        frequency avoids lockstep sampling of cyclic simulator work).
set -euo pipefail

harness=${1:?usage: tools/profile_bench.sh <harness> [build-dir] [results-dir]}
build_dir=${2:-build}
results_dir=${3:-results}
freq=${PERF_FREQ:-997}
export VBR_SCALE=${VBR_SCALE:-0.25}

bin="$build_dir/bench/$harness"
if [ ! -x "$bin" ]; then
    echo "error: $bin not found or not executable (build first)" >&2
    exit 1
fi
if ! command -v perf >/dev/null 2>&1; then
    echo "error: perf not found; install linux-tools or profile on a" \
         "host that has it" >&2
    exit 2
fi
mkdir -p "$results_dir"

data="$results_dir/PROF_$harness.perf.data"
collapsed="$results_dir/PROF_$harness.collapsed"
report="$results_dir/PROF_$harness.report.txt"

echo "== perf record -F $freq -g $bin (VBR_SCALE=$VBR_SCALE)"
# --call-graph dwarf unwinds through the template-heavy simulator
# frames that frame-pointer unwinding loses at -O2.
VBR_BENCH_DIR="$results_dir" perf record -F "$freq" --call-graph dwarf \
    -o "$data" -- "$bin" > /dev/null

echo "== collapsing stacks -> $collapsed"
# perf script emits one block per sample: a header line, then one
# "<addr> <symbol> (<dso>)" line per frame leaf-first, then a blank
# line. Reverse to root-first and join with ';'.
perf script -i "$data" 2>/dev/null | awk '
    /^[^[:space:]]/ { next }            # sample header line
    /^[[:space:]]+[0-9a-f]+/ {
        frame = $2
        for (i = 3; i < NF; ++i)        # symbols may contain spaces
            frame = frame " " $i
        stack[depth++] = frame
        next
    }
    /^$/ {
        if (depth > 0) {
            line = stack[depth - 1]
            for (i = depth - 2; i >= 0; --i)
                line = line ";" stack[i]
            count[line]++
            depth = 0
        }
    }
    END {
        for (line in count)
            print line, count[line]
    }' > "$collapsed"

perf report -i "$data" --stdio --no-children 2>/dev/null \
    | head -60 > "$report"

echo "== top self-time symbols"
head -15 "$report" | tail -10 || true
echo
echo "collapsed stacks: $collapsed ($(wc -l < "$collapsed") unique)"
echo "raw profile:      $data"
