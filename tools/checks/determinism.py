"""Determinism lints.

The simulator's contract is bit-identical output for identical
(config, workload, seed) — the verify harness, the sweep runner and
compare_bench.py all diff runs byte-for-byte. These checks catch the
classic ways C++ silently breaks that:

  det-unordered-iter   iterating an unordered container in code that
                       feeds reports / JSON / stats (src/sys,
                       src/verify, src/check, src/mem, src/ordering).
                       Hash-order is libstdc++-version dependent.
  det-ptr-key          pointer-keyed map/set declarations in src/sys
                       and src/verify — ASLR makes pointer order vary
                       run to run.
  det-banned-source    rand()/srand()/time()/random_device/
                       std::chrono::*_clock::now outside the wall-
                       clock seam (bench_json owns timing and masks it
                       from diffs).
  det-float-merge      float/double `+=` accumulation inside a loop
                       over an unordered container — FP addition is
                       not associative, so hash order changes sums.
"""

import re

from .common import Finding

UNORDERED_ITER_SCOPE = ("src/sys/", "src/verify/", "src/check/",
                        "src/mem/", "src/ordering/")
PTR_KEY_SCOPE = ("src/sys/", "src/verify/")

_UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<")
_RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*?):([^;)]*)\)")
_BEGIN_RE = re.compile(r"\b(\w+)\s*\.\s*(?:c?begin)\s*\(\s*\)")
_PTR_KEY_RE = re.compile(
    r"std::(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[\w:]+\s*\*")
_FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*[=;{]")

BANNED_SOURCES = (
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\b(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(r"\bgettimeofday\s*\(|\bclock_gettime\s*\("),
     "wall-clock syscall"),
    (re.compile(r"std::chrono::\w*clock::now"),
     "std::chrono::*_clock::now"),
)


def _match_angle(text, start):
    """Offset one past the `>` matching the `<` at start-1."""
    depth = 1
    i = start
    while i < len(text) and depth:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            # `>>` closes two levels since C++11.
            depth -= 1
        i += 1
    return i


def _unordered_names(files):
    """Names of all variables/members declared with an unordered
    container type, anywhere in the tree."""
    names = set()
    for src in files:
        for m in _UNORDERED_DECL_RE.finditer(src.stripped):
            end = _match_angle(src.stripped, m.end())
            nm = re.match(r"\s*&?\s*(\w+)\s*[;={(]",
                          src.stripped[end:end + 120])
            if nm:
                names.add(nm.group(1))
    return names


def _line(src, offset):
    return src.stripped.count("\n", 0, offset) + 1


def _suppressed(src, check, line):
    s = src.suppression_for(check, line)
    if s is not None:
        s.used = True
        return True
    return False


def _in_scope(src, prefixes):
    return any(src.rel.startswith(p) for p in prefixes)


def run_unordered_iter(files, env=None):
    names = _unordered_names(files)
    findings = []
    for src in files:
        if not _in_scope(src, UNORDERED_ITER_SCOPE):
            continue
        for m in _RANGE_FOR_RE.finditer(src.stripped):
            expr = m.group(2).strip()
            tail = re.findall(r"\w+", expr)
            if not tail or tail[-1] not in names:
                continue
            line = _line(src, m.start())
            if _suppressed(src, "det-unordered-iter", line):
                continue
            findings.append(Finding(
                "det-unordered-iter", src.rel, line,
                f"range-for over unordered container `{tail[-1]}` — "
                "hash order is not deterministic; iterate a sorted "
                "copy or switch to an ordered container"))
        for m in _BEGIN_RE.finditer(src.stripped):
            if m.group(1) not in names:
                continue
            # decltype(x.begin()) names a type; nothing iterates.
            if "decltype" in src.stripped[max(0, m.start() - 48):
                                          m.start()]:
                continue
            line = _line(src, m.start())
            if _suppressed(src, "det-unordered-iter", line):
                continue
            findings.append(Finding(
                "det-unordered-iter", src.rel, line,
                f"iterator over unordered container `{m.group(1)}` — "
                "hash order is not deterministic"))
    return findings


def run_ptr_key(files, env=None):
    findings = []
    for src in files:
        if not _in_scope(src, PTR_KEY_SCOPE):
            continue
        for m in _PTR_KEY_RE.finditer(src.stripped):
            line = _line(src, m.start())
            if _suppressed(src, "det-ptr-key", line):
                continue
            findings.append(Finding(
                "det-ptr-key", src.rel, line,
                "pointer-keyed associative container — ASLR makes "
                "pointer order vary across runs; key by a stable id "
                "(seq number, index) instead"))
    return findings


def run_banned_source(files, env=None):
    findings = []
    for src in files:
        for pat, what in BANNED_SOURCES:
            for m in pat.finditer(src.stripped):
                line = _line(src, m.start())
                if _suppressed(src, "det-banned-source", line):
                    continue
                findings.append(Finding(
                    "det-banned-source", src.rel, line,
                    f"nondeterminism source {what} — the only "
                    "sanctioned wall-clock seam is src/sys/bench_json "
                    "(masked from diffs by compare_bench.py)"))
    return findings


def run_float_merge(files, env=None):
    names = _unordered_names(files)
    findings = []
    for src in files:
        float_vars = set(_FLOAT_DECL_RE.findall(src.stripped))
        if not float_vars:
            continue
        for m in _RANGE_FOR_RE.finditer(src.stripped):
            expr = m.group(2).strip()
            tail = re.findall(r"\w+", expr)
            if not tail or tail[-1] not in names:
                continue
            # Body: next balanced brace block (or single statement).
            body_start = src.stripped.find("{", m.end())
            if body_start < 0:
                continue
            depth, i = 1, body_start + 1
            while i < len(src.stripped) and depth:
                if src.stripped[i] == "{":
                    depth += 1
                elif src.stripped[i] == "}":
                    depth -= 1
                i += 1
            body = src.stripped[body_start:i]
            for am in re.finditer(r"\b(\w+)\s*\+=", body):
                if am.group(1) not in float_vars:
                    continue
                line = _line(src, body_start + am.start())
                if _suppressed(src, "det-float-merge", line):
                    continue
                findings.append(Finding(
                    "det-float-merge", src.rel, line,
                    f"float accumulation `{am.group(1)} +=` inside "
                    "iteration over unordered container "
                    f"`{tail[-1]}` — FP addition is not associative, "
                    "hash order changes the sum"))
    return findings
