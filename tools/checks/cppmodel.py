"""A small, honest C++ source model for the activity check.

This is not a compiler. It is a token/brace-level frontend that
understands exactly as much C++ as this codebase uses (see DESIGN.md
§11): function definitions at namespace scope and inline methods in
class bodies, brace-balanced statement trees with if/else, loops,
switch, return/break/continue, and local-declaration tracking. When
python bindings for libclang are available, tools/checks/clang_frontend
replaces the function-extent discovery with real AST cursors; the
statement-level dataflow below is shared by both frontends.
"""

import re

KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "do", "else", "case", "default", "new", "delete", "throw",
    "static_assert", "alignas", "alignof", "decltype", "noexcept",
    "assert",
}

_SIG_NAME_RE = re.compile(r"([A-Za-z_][\w:~]*)\s*$")


class Function:
    def __init__(self, name, cls, start_line, body_start, body_end,
                 sig_text, src):
        self.name = name              # unqualified name
        self.cls = cls                # owning class or None
        self.start_line = start_line  # 1-based line of the signature
        self.body_start = body_start  # offset of the opening brace
        self.body_end = body_end      # offset one past the closing brace
        self.sig_text = sig_text
        self.src = src                # SourceFile
        self.is_const = bool(
            re.search(r"\)\s*const\b[^)]*$", sig_text.split("{")[0]))
        self.is_ctor = (cls is not None and
                        (name == cls or name == "~" + cls))

    @property
    def qualname(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name

    def body_text(self):
        return self.src.stripped[self.body_start:self.body_end]

    def line_of(self, offset):
        return self.src.stripped.count("\n", 0, offset) + 1


def _match_brace(text, i):
    """Offset one past the brace closing the one at text[i]."""
    depth = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _class_extents(text):
    """[(name, body_start, body_end)] for class/struct definitions."""
    out = []
    for m in re.finditer(
            r"\b(?:class|struct)\s+([A-Za-z_]\w*)"
            r"(?:\s+final)?(?:\s*:[^;{]*)?\s*{", text):
        end = _match_brace(text, m.end() - 1)
        out.append((m.group(1), m.end(), end))
    return out


def extract_functions(src):
    """Find function definitions in a SourceFile (stripped text)."""
    text = src.stripped
    classes = _class_extents(text)
    funcs = []
    claimed_until = 0
    for m in re.finditer(r"\(", text):
        start = m.start()
        if start < claimed_until:
            continue
        head = text[:start]
        nm = _SIG_NAME_RE.search(head)
        if not nm:
            continue
        name = nm.group(1)
        base = name.split("::")[-1].lstrip("~")
        if base in KEYWORDS or base.isdigit():
            continue
        # Balance the parameter list.
        close = _paren_close(text, start)
        if close is None:
            continue
        # Between ')' and '{' only qualifiers / init lists may appear.
        tail = text[close + 1:close + 400]
        bm = re.match(
            r"\s*(?:const)?\s*(?:noexcept(?:\([^)]*\))?)?\s*"
            r"(?:override)?\s*(?:final)?\s*(?::[^{;]*)?{", tail)
        if not bm:
            continue
        # Reject call/expression contexts and lambdas: between the
        # start of this declaration (after the last ; { or }) and the
        # name there may only be type tokens and qualifiers.
        decl_start = max(head.rfind(";"), head.rfind("}"),
                         head.rfind("{")) + 1
        prefix = head[decl_start:nm.start()]
        if re.search(r"[=(,!|?+\-/\[\]]", prefix):
            continue
        body_start = close + 1 + bm.end() - 1
        body_end = _match_brace(text, body_start)
        cls = None
        if "::" in name:
            parts = name.split("::")
            cls, name = parts[-2], parts[-1]
        else:
            for cname, cs, ce in classes:
                if cs <= start < ce:
                    cls = cname
                    break
        start_line = text.count("\n", 0, nm.start()) + 1
        funcs.append(Function(name, cls, start_line, body_start,
                              body_end,
                              text[decl_start:body_start + 1], src))
        claimed_until = body_end
    return funcs


def _paren_close(text, i):
    depth = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
        elif c in "{};" and depth == 0:
            return None
        i += 1
    return None


# ---------------------------------------------------------------------
# Statement tree
# ---------------------------------------------------------------------

class Stmt:
    """A leaf statement (offset = start offset in the file text)."""
    def __init__(self, text, offset):
        self.text = text
        self.offset = offset


class Return(Stmt):
    pass


class Break(Stmt):
    pass


class Continue(Stmt):
    pass


class If:
    def __init__(self, cond, then_nodes, else_nodes, offset):
        self.cond = cond
        self.then_nodes = then_nodes
        self.else_nodes = else_nodes
        self.offset = offset


class Loop:
    def __init__(self, head, body_nodes, offset):
        self.head = head
        self.body_nodes = body_nodes
        self.offset = offset


_WS_RE = re.compile(r"\s*")


def parse_block(text, base):
    """Parse `text` (a brace-less statement sequence from the stripped
    file) into a node list. `base` is the file offset of text[0]."""
    nodes = []
    i, n = 0, len(text)
    while i < n:
        i = _WS_RE.match(text, i).end()
        if i >= n:
            break
        rest = text[i:]
        if rest.startswith("}"):
            i += 1
            continue
        m = re.match(r"(if|while|for|switch)\s*\(", rest)
        if m:
            kw = m.group(1)
            pc = _paren_close(text, i + m.end() - 1)
            if pc is None:
                pc = min(n - 1, i + m.end())
            cond = text[i:pc + 1]
            j = _WS_RE.match(text, pc + 1).end()
            if kw == "switch":
                # Opaque: order-insensitive scan of the whole body.
                if j < n and text[j] == "{":
                    end = _match_brace(text, j)
                    nodes.append(Stmt(text[i:end], base + i))
                    i = end
                else:
                    end = _stmt_end(text, j)
                    nodes.append(Stmt(text[i:end], base + i))
                    i = end
                continue
            body_nodes, j = _sub_block(text, j, base)
            if kw == "if":
                else_nodes = None
                k = _WS_RE.match(text, j).end()
                if text[k:k + 4] == "else" and \
                        not text[k + 4:k + 5].isidentifier():
                    k2 = _WS_RE.match(text, k + 4).end()
                    else_nodes, j = _sub_block(text, k2, base)
                nodes.append(If(cond, body_nodes, else_nodes,
                                base + i))
            else:
                nodes.append(Loop(cond, body_nodes, base + i))
            i = j
            continue
        if re.match(r"do\s*{", rest):
            j = text.index("{", i)
            end = _match_brace(text, j)
            body_nodes = parse_block(text[j + 1:end - 1], base + j + 1)
            tail = _stmt_end(text, end)
            nodes.append(Loop("do", body_nodes, base + i))
            i = tail
            continue
        if re.match(r"else\b", rest):
            # Dangling else after a brace we already consumed.
            j = _WS_RE.match(text, i + 4).end()
            body_nodes, j = _sub_block(text, j, base)
            nodes.append(If("(else)", body_nodes, None, base + i))
            i = j
            continue
        if rest.startswith("{"):
            end = _match_brace(text, i)
            nodes.extend(parse_block(text[i + 1:end - 1],
                                     base + i + 1))
            i = end
            continue
        end = _stmt_end(text, i)
        stext = text[i:end]
        word = re.match(r"\s*(\w+)", stext)
        w = word.group(1) if word else ""
        if w == "return":
            nodes.append(Return(stext, base + i))
        elif w == "break":
            nodes.append(Break(stext, base + i))
        elif w == "continue":
            nodes.append(Continue(stext, base + i))
        else:
            nodes.append(Stmt(stext, base + i))
        i = end
    return nodes


def _sub_block(text, i, base):
    """A `{...}` block or a single statement starting at i. Returns
    (nodes, next_index)."""
    i = _WS_RE.match(text, i).end()
    if i < len(text) and text[i] == "{":
        end = _match_brace(text, i)
        return parse_block(text[i + 1:end - 1], base + i + 1), end
    nodes = parse_block_single(text, i, base)
    end = _stmt_end_nested(text, i)
    return nodes, end


def parse_block_single(text, i, base):
    """Parse exactly one (possibly compound) statement at i."""
    end = _stmt_end_nested(text, i)
    return parse_block(text[i:end], base + i)


def _stmt_end(text, i):
    """Offset one past the ';' ending the statement at i, skipping
    nested parens/braces (lambdas, init lists)."""
    n = len(text)
    while i < n:
        c = text[i]
        if c == "(":
            close = _paren_close(text, i)
            i = (close + 1) if close is not None else i + 1
            continue
        if c == "{":
            i = _match_brace(text, i)
            continue
        if c == ";":
            return i + 1
        if c == "}":
            return i
        i += 1
    return n


def _stmt_end_nested(text, i):
    """Like _stmt_end but a leading control keyword drags its body
    along (for single-statement if/for bodies)."""
    m = re.match(r"\s*(if|while|for)\s*\(", text[i:])
    if not m:
        return _stmt_end(text, i)
    pc = _paren_close(text, i + m.end() - 1)
    if pc is None:
        return _stmt_end(text, i)
    j = _WS_RE.match(text, pc + 1).end()
    if j < len(text) and text[j] == "{":
        j = _match_brace(text, j)
    else:
        j = _stmt_end_nested(text, j)
    k = _WS_RE.match(text, j).end()
    if text[k:k + 4] == "else":
        j2 = _WS_RE.match(text, k + 4).end()
        if j2 < len(text) and text[j2] == "{":
            return _match_brace(text, j2)
        return _stmt_end_nested(text, j2)
    return j


# ---------------------------------------------------------------------
# Local-declaration tracking
# ---------------------------------------------------------------------

_VALUE_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?(?:[A-Za-z_][\w:]*(?:<[^;=]*>)?)\s+"
    r"([A-Za-z_]\w*)\s*(?:=|;|\{|\()")
_REF_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?(?:[A-Za-z_][\w:]*(?:<[^;=]*>)?)\s*"
    r"[&*]\s*([A-Za-z_]\w*)\s*(?:=|;)")
_PARAM_REF_RE = re.compile(
    r"(?:const\s+)?[A-Za-z_][\w:<>]*\s*[&*]\s*([A-Za-z_]\w*)")
_PARAM_VAL_RE = re.compile(
    r"(?:const\s+)?[A-Za-z_][\w:<>]*\s+([A-Za-z_]\w*)\s*(?:,|\)|$)")


def collect_locals(fn):
    """(value_locals, ref_locals): names declared inside the function
    (plus parameters). ref_locals are references/pointers -- writes
    through them may alias member state; value locals never do.
    A pointer local initialized from the address of a value local is
    itself a value local (e.g. `unsigned *pool = &alu;`)."""
    body = fn.body_text()
    sig = fn.sig_text
    params = sig[sig.find("("):]
    value, ref = set(), set()
    for m in _PARAM_REF_RE.finditer(params):
        if "const" in m.group(0):
            value.add(m.group(1))
        else:
            ref.add(m.group(1))
    for m in _PARAM_VAL_RE.finditer(params):
        value.add(m.group(1))
    for raw in re.split(r"[;{}]", body):
        s = raw.strip()
        mr = _REF_DECL_RE.match(s)
        if mr and mr.group(1) not in KEYWORDS:
            init = s.split("=", 1)[1] if "=" in s else ""
            target = re.match(r"\s*&\s*([A-Za-z_]\w*)\s*$", init)
            if target and target.group(1) in value:
                value.add(mr.group(1))
            else:
                ref.add(mr.group(1))
            continue
        mv = _VALUE_DECL_RE.match(s)
        if mv and mv.group(1) not in KEYWORDS and \
                not s.startswith("return"):
            value.add(mv.group(1))
    # for-loop heads declare too: `for (unsigned n = 0; ...)`,
    # `for (IqEntry &e : iq_)`. Non-const ref/pointer loop variables
    # alias the container's elements -- writes through them count.
    for m in re.finditer(r"for\s*\(\s*(const\s+)?[\w:<>]+\s*([&*]*)\s*"
                         r"(?:\[([^\]]*)\]|([A-Za-z_]\w*))", body):
        is_ref = bool(m.group(2)) and not m.group(1)
        if m.group(3):
            names = re.findall(r"[A-Za-z_]\w*", m.group(3))
        elif m.group(4) and m.group(4) not in KEYWORDS:
            names = [m.group(4)]
        else:
            names = []
        for nm_ in names:
            (ref if is_ref else value).add(nm_)
    return value, ref
