"""Activity-contract completeness (the VBR_FASTFWD quiescence gate).

Rule: every member function in the per-stage core
(src/core/{fetch,dispatch,issue,writeback,backend,commit,squash,
ooo_core}.{cpp,hpp}) and in src/ordering/ that writes member state
must note activity (`activityThisTick_ = true` / `noteActivity()`)
on every path that performs the write, or carry a suppression:

    // vbr-analyze: quiescent(<reason>)     exempt; neutral at calls
    // vbr-analyze: caller-notes(<reason>)  exempt; call sites count
                                            as mutations instead

The analysis is path-sensitive over a statement tree: each path
carries (noted, mutated-lines); a finding fires where a path leaves
the function with unsuppressed mutations and no note. Calls resolve
through the OrderingHost seam: a call to a function that notes on
every path counts as a note; a call to a caller-notes function counts
as a mutation; calls to checked-clean functions are neutral
(compositional — each function owns its contract).

Companion rule (run_wake_writers): every member field read by
nextWakeCycle()/deadlockFireCycle() may only be written by functions
that note activity (or are suppressed/constructors) — a silent write
to a wake-horizon input would let the fast-forward skip overshoot.
"""

import re

from .common import Finding
from . import cppmodel
from .cppmodel import If, Loop, Return, Break, Continue

# Files in scope (relative prefixes). ooo_core.hpp is included: the
# inline OrderingHost seam methods live there.
SCOPE_PREFIXES = ("src/core/", "src/ordering/")

# Seam receivers: member handle -> implementing classes.
RECEIVER_MAP = {
    "host_": ("OooCore",),
    "ordering_": ("ValueReplayUnit", "AssocLqUnit"),
}

WAKE_READER_NAMES = ("nextWakeCycle", "deadlockFireCycle")

TOKEN_RE = re.compile(
    r"activityThisTick_\s*=\s*true|\bnoteActivity\s*\(")

# Method-name stems that mutate their receiver.
MUT_VERBS = ("push", "pop", "emplace", "erase", "insert", "clear",
             "set", "dispatch", "record", "write", "arm", "train",
             "update", "restore", "sample", "resize", "fill",
             "retire", "squash", "apply", "mark", "notify", "warm",
             "tick", "drain")

_CHAIN = r"(?:(?:\.|->)\w+|\[[^\]]*\]|\([^()]*\))*"
_ASSIGN = r"\s*(?:[-+*/|&^]|<<|>>)?=(?!=)"

MUT_PATTERNS = [
    # member (possibly chained) assignment: x_ = / x_[i] = /
    # rob_.back().f = / (compound ops too)
    re.compile(r"(?<![\w.>])(\w+_)" + _CHAIN + _ASSIGN),
    # increment/decrement of a member (incl. ++(*sc_..._))
    re.compile(r"(?:\+\+|--)\s*\(?\s*\*?\s*(\w+_)\b"),
    re.compile(r"(?<![\w.>])(\w+_)(?:\[[^\]]*\])?\s*(?:\+\+|--)"),
    # ops through a dereferenced cached-handle member
    re.compile(r"\(\s*\*\s*(\w+_)\s*\)\s*(?:\.|\+=|-=|=(?!=))"),
    # mutating method call on a member receiver
    re.compile(r"\b(\w+_)(?:\[[^\]]*\])?(?:\.|->)(?:" +
               "|".join(MUT_VERBS) + r")\w*\s*\("),
    # free-function mutators taking the member as first argument
    re.compile(r"(?:std::)?(?:erase_if|sort|stable_sort)\s*\(\s*"
               r"(\w+_)\b"),
    re.compile(r"\.swap\s*\(\s*(\w+_)\b"),
]

CALL_RE = re.compile(r"(?:\b(\w+)\s*(?:\.|->)\s*)?\b([A-Za-z_]\w*)"
                     r"\s*\(")

_CALL_SKIP = cppmodel.KEYWORDS | {
    "VBR_ASSERT", "static_cast", "reinterpret_cast", "const_cast",
    "dynamic_cast", "min", "max", "get", "find", "count", "empty",
    "size", "front", "back", "begin", "end",
}


class _State:
    __slots__ = ("noted", "muts")

    def __init__(self, noted, muts):
        self.noted = noted
        self.muts = muts

    def key(self):
        return (self.noted, self.muts)


def _dedup(states):
    return list({s.key(): s for s in states}.values())


class _LoopCtx:
    def __init__(self):
        self.exits = []


class _Env:
    """Per-run context shared across function evaluations."""

    def __init__(self, functions):
        self.functions = functions
        self.by_qual = {f.qualname: f for f in functions}
        self.methods = {}
        for f in functions:
            if f.cls:
                self.methods.setdefault(f.cls, set()).add(f.name)
        self.status = {}        # qualname -> quiescent|caller-notes
        self.definitely = set()  # qualnames noting on every path
        self.locals = {}
        for f in functions:
            try:
                self.locals[f.qualname] = cppmodel.collect_locals(f)
            except re.error:
                self.locals[f.qualname] = (set(), set())
        for f in functions:
            s = _function_suppression(f)
            if s is not None:
                s.used = True
                self.status[f.qualname] = (
                    "caller-notes" if s.check == "caller-notes"
                    else "quiescent")


def _function_suppression(fn):
    for ln in (fn.start_line, fn.start_line - 1):
        if ln < 1:
            continue
        s = fn.src.suppression_for(
            "activity", ln, aliases=("quiescent", "caller-notes"))
        if s is not None:
            return s
    return None


def _line_of(src, offset):
    return src.stripped.count("\n", 0, offset) + 1


def _scan_stmt(fn, text, offset, env):
    """(mutation_lines, has_token) for one statement's text."""
    src = fn.src
    value_locals, ref_locals = env.locals[fn.qualname]
    muts = set()
    token = bool(TOKEN_RE.search(text))

    def add(line):
        s = src.suppression_for("activity", line,
                                aliases=("quiescent",))
        if s is not None:
            s.used = True
            return
        muts.add(line)

    for pat in MUT_PATTERNS:
        for m in pat.finditer(text):
            name = m.group(1)
            if name in value_locals:
                continue
            add(_line_of(src, offset + m.start()))
    # Writes through reference/pointer locals and reference params.
    for r in ref_locals:
        for m in re.finditer(
                r"(?<![\w.>])" + re.escape(r) +
                r"(?:\.|->)\w+" + _CHAIN + _ASSIGN, text):
            add(_line_of(src, offset + m.start()))
        for m in re.finditer(
                r"(?:\+\+|--)\s*" + re.escape(r) + r"\s*(?:\.|->)|"
                r"(?<![\w.>])" + re.escape(r) +
                r"(?:\.|->)\w+\s*(?:\+\+|--)", text):
            add(_line_of(src, offset + m.start()))
        for m in re.finditer(
                r"(?<![\w.>])" + re.escape(r) + r"(?:\.|->)(?:" +
                "|".join(MUT_VERBS) + r")\w*\s*\(", text):
            add(_line_of(src, offset + m.start()))

    # Calls through the seam / same class.
    for m in CALL_RE.finditer(text):
        recv, callee = m.group(1), m.group(2)
        if callee in _CALL_SKIP or callee.endswith("_"):
            continue
        targets = []
        if recv is None or recv == "this":
            if fn.cls and callee in env.methods.get(fn.cls, ()):
                targets = [f"{fn.cls}::{callee}"]
        elif recv in RECEIVER_MAP:
            targets = [f"{cls}::{callee}"
                       for cls in RECEIVER_MAP[recv]
                       if callee in env.methods.get(cls, ())]
        if not targets:
            continue
        if all(t in env.definitely for t in targets):
            token = True
        elif any(env.status.get(t) == "caller-notes"
                 for t in targets):
            add(_line_of(src, offset + m.start()))
    return muts, token


def _apply_stmt(fn, node, states, env):
    muts, token = _scan_stmt(fn, node.text, node.offset, env)
    out = []
    for s in states:
        nm = s.muts | frozenset(muts)
        out.append(_State(s.noted or token, nm))
    return _dedup(out)


def _eval_nodes(fn, nodes, states, loopctx, exits, env):
    """Walk the node list; `exits` collects (state, line) for every
    path leaving the function."""
    for node in nodes:
        if not states:
            return []
        if isinstance(node, If):
            muts, token = _scan_stmt(fn, node.cond, node.offset, env)
            states = _dedup([_State(s.noted or token,
                                    s.muts | frozenset(muts))
                             for s in states])
            then_out = _eval_nodes(fn, node.then_nodes, list(states),
                                   loopctx, exits, env)
            if node.else_nodes is None:
                else_out = states
            else:
                else_out = _eval_nodes(fn, node.else_nodes,
                                       list(states), loopctx, exits,
                                       env)
            states = _dedup(then_out + else_out)
        elif isinstance(node, Loop):
            muts, token = _scan_stmt(fn, node.head, node.offset, env)
            states = _dedup([_State(s.noted or token,
                                    s.muts | frozenset(muts))
                             for s in states])
            all_states = {s.key(): s for s in states}
            frontier = states
            for _ in range(4):
                ctx = _LoopCtx()
                out = _eval_nodes(fn, node.body_nodes, list(frontier),
                                  ctx, exits, env)
                new = [s for s in _dedup(out + ctx.exits)
                       if s.key() not in all_states]
                if not new:
                    break
                for s in new:
                    all_states[s.key()] = s
                frontier = new
            states = list(all_states.values())
        elif isinstance(node, Return):
            states = _apply_stmt(fn, node, states, env)
            line = _line_of(fn.src, node.offset)
            exits.extend((s, line) for s in states)
            return []
        elif isinstance(node, Break) or isinstance(node, Continue):
            if loopctx is not None:
                loopctx.exits.extend(states)
            return []
        else:
            states = _apply_stmt(fn, node, states, env)
    return states


def _eval_function(fn, env):
    """All exit (state, line) pairs of fn under current env."""
    body = fn.src.stripped[fn.body_start + 1:fn.body_end - 1]
    nodes = cppmodel.parse_block(body, fn.body_start + 1)
    exits = []
    end = _eval_nodes(fn, nodes, [_State(False, frozenset())], None,
                      exits, env)
    end_line = _line_of(fn.src, fn.body_end - 1)
    exits.extend((s, end_line) for s in end)
    return exits


def _in_scope(src):
    return any(src.rel.startswith(p) for p in SCOPE_PREFIXES)


def build_env(files):
    functions = []
    for src in files:
        if not _in_scope(src):
            continue
        functions.extend(cppmodel.extract_functions(src))
    env = _Env(functions)
    # Definitely-notes fixpoint (monotone; tiny call depth).
    for _ in range(5):
        changed = False
        for fn in functions:
            q = fn.qualname
            if q in env.definitely or q in env.status or fn.is_ctor:
                continue
            exits = _eval_function(fn, env)
            if exits and all(s.noted for s, _ in exits):
                env.definitely.add(q)
                changed = True
        if not changed:
            break
    return env


def run_activity(files, env=None):
    env = env or build_env(files)
    findings = []
    for fn in env.functions:
        if (fn.is_ctor or fn.is_const or fn.cls is None or
                fn.qualname in env.status):
            continue
        bad_muts = set()
        bad_exits = set()
        for state, line in _eval_function(fn, env):
            if state.noted or not state.muts:
                continue
            bad_muts |= state.muts
            bad_exits.add(line)
        if not bad_muts:
            continue
        lines = ", ".join(str(x) for x in sorted(bad_muts))
        exits = ", ".join(str(x) for x in sorted(bad_exits))
        findings.append(Finding(
            "activity", fn.src.rel, min(bad_muts),
            f"{fn.qualname}: member state mutated (line(s) "
            f"{lines}) on a path exiting at line(s) {exits} "
            "without noteActivity; note activity or add "
            "`// vbr-analyze: quiescent(<reason>)` / "
            "`caller-notes(<reason>)`"))
    return findings


def run_wake_writers(files, env=None):
    env = env or build_env(files)
    findings = []
    for reader in env.functions:
        if reader.name not in WAKE_READER_NAMES or reader.cls is None:
            continue
        body = reader.body_text()
        value_locals, _ = env.locals[reader.qualname]
        fields = {f for f in re.findall(r"\b([A-Za-z]\w*_)\b", body)
                  if f not in value_locals}
        for fn in env.functions:
            if (fn.cls != reader.cls or fn.is_ctor or fn.is_const or
                    fn.qualname in env.status or
                    fn.qualname in env.definitely):
                continue
            fbody = fn.body_text()
            if TOKEN_RE.search(fbody):
                continue
            for field in sorted(fields):
                line = _field_write_line(fn, field, env)
                if line is not None:
                    findings.append(Finding(
                        "wake-writers", fn.src.rel, line,
                        f"{fn.qualname} writes `{field}`, which "
                        f"{reader.qualname}() reads as a wake "
                        "horizon, but never notes activity — a "
                        "skipped cycle could overshoot this event"))
    return findings


def _field_write_line(fn, field, env):
    text = fn.body_text()
    pats = [
        re.escape(field) + _CHAIN + _ASSIGN,
        r"(?:\+\+|--)\s*\(?\s*\*?\s*" + re.escape(field) + r"\b",
        re.escape(field) + r"\s*(?:\+\+|--)",
        re.escape(field) + r"(?:\[[^\]]*\])?(?:\.|->)(?:" +
        "|".join(MUT_VERBS) + r")\w*\s*\(",
    ]
    for p in pats:
        m = re.search(r"(?<![\w.>])" + p, text)
        if m:
            line = _line_of(fn.src, fn.body_start + 1 + m.start())
            s = fn.src.suppression_for(
                "wake-writers", line, aliases=("quiescent",
                                               "caller-notes",
                                               "activity"))
            if s is not None:
                s.used = True
                return None
            return line
    return None
