"""Static-analysis checks for the value-based-replay simulator.

The package backs tools/analyze.py. Three check families:

  activity      -- activity-contract completeness over the per-stage
                   core and the ordering backends (the VBR_FASTFWD
                   quiescence protocol), plus the companion rule that
                   every field nextWakeCycle() reads is only written
                   by functions that also note activity.
  determinism   -- unordered-container iteration feeding reports,
                   pointer-keyed containers in report-adjacent code,
                   banned nondeterminism sources, and float
                   accumulation over unordered sequences.
  layering      -- the include-graph DAG from DESIGN.md (generalizes
                   the old tools/lint.py check 4).

Every check honours `// vbr-analyze: <check>(<reason>)` suppressions
with mandatory reasons; see tools/checks/common.py for the grammar.
"""

from .common import Finding, SourceFile, load_tree  # noqa: F401
from . import activity, determinism, layering  # noqa: F401

ALL_CHECKS = {
    "activity": activity.run_activity,
    "wake-writers": activity.run_wake_writers,
    "det-unordered-iter": determinism.run_unordered_iter,
    "det-ptr-key": determinism.run_ptr_key,
    "det-banned-source": determinism.run_banned_source,
    "det-float-merge": determinism.run_float_merge,
    "layering": layering.run_layering,
}

FAMILIES = {
    "activity": ("activity", "wake-writers"),
    "determinism": ("det-unordered-iter", "det-ptr-key",
                    "det-banned-source", "det-float-merge"),
    "layering": ("layering",),
}
