"""Optional libclang frontend (gated — never a hard dependency).

When the python `clang` bindings and a loadable libclang are present,
this module parses translation units out of compile_commands.json and
cross-checks the textual frontend's function extents against the real
AST, upgrading the analyzer's confidence. When they are absent (the
common case in the build container, which ships only the C++
toolchain), everything degrades silently to the self-contained
textual frontend in cppmodel.py — availability is a property the CLI
reports, not an error.

Nothing outside this module imports clang directly.
"""


def _load():
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        index = cindex.Index.create()
    except Exception:
        return None
    return cindex, index


_LOADED = _load()


def available():
    return _LOADED is not None


def description():
    if _LOADED is None:
        return ("textual frontend (libclang python bindings not "
                "available; install `clang` + libclang to enable "
                "AST cross-checking)")
    return "libclang AST frontend + textual frontend"


def function_extents(path, args=()):
    """[(qualname, start_line, end_line)] for member function
    definitions in `path`, or None when libclang is unavailable or
    parsing fails for any reason."""
    if _LOADED is None:
        return None
    cindex, index = _LOADED
    try:
        tu = index.parse(str(path), args=list(args))
    except Exception:
        return None
    if tu is None:
        return None
    out = []
    kinds = (cindex.CursorKind.CXX_METHOD,
             cindex.CursorKind.CONSTRUCTOR,
             cindex.CursorKind.DESTRUCTOR)
    try:
        for cur in tu.cursor.walk_preorder():
            if cur.kind in kinds and cur.is_definition():
                cls = cur.semantic_parent.spelling
                out.append((f"{cls}::{cur.spelling}",
                            cur.extent.start.line,
                            cur.extent.end.line))
    except Exception:
        return None
    return out
