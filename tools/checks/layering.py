"""Layering DAG check over the `#include` graph.

Generalizes tools/lint.py check 4 (core must not see the concrete
assoc-LQ structures) into the full layer diagram from DESIGN.md:

    common
      -> isa <-> mem (same rank; program images), fault
      -> lsq / cam / predict
      -> ordering (backends; sees core only via interface headers)
      -> core (per-stage pipeline)
      -> sys (runner / report / sweep)
    check, verify: observers — consume interface headers only.

Three rule kinds, all driven off the directory graph below:

  * edge rule: a file in dir A may only include dirs in ALLOWED[A]
    (same-dir includes are always fine; `common` is the base layer);
  * interface rule: some edges are restricted to specific interface
    headers (e.g. ordering -> core only through dyn_inst/trace/
    core_config/commit_observer);
  * banned-header rule: concrete headers a dir must never see even
    though the dir edge exists (core -> lsq concrete CAM structures —
    core must stay ignorant of which ordering backend is wired).

Suppress with `// vbr-analyze: layering(<reason>)` on the include
line — reasons are mandatory and audited.
"""

import re

from .common import Finding

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# Directory -> directories it may include (same dir implicitly ok).
ALLOWED = {
    "common": set(),
    "cam": {"common"},
    "fault": {"common"},
    "isa": {"common", "mem"},      # isa <-> mem: same rank
    "mem": {"common", "isa", "fault"},
    "predict": {"common", "isa"},
    "lsq": {"common", "ordering"},  # ordering/scheme.hpp only, below
    "ordering": {"common", "fault", "mem", "lsq", "predict",
                 "core", "verify"},
    "core": {"common", "fault", "isa", "mem", "lsq", "predict",
             "ordering", "verify"},
    # sys -> check: runSimJob attaches the SC checker a job spec
    # requests and harvests its verdict into the job's extras.
    # sys -> trace: runSimJob wires capture and dispatches the
    # TraceReplay tier.
    "sys": {"common", "core", "mem", "isa", "fault", "verify",
            "check", "trace"},
    # trace: the capture/replay tier sees the commit-event interface,
    # the pure replay policy (lsq), the checker, and reconstruction
    # inputs (mem, isa) -- never the live simulator (core internals,
    # ordering backends, sys).
    "trace": {"common", "mem", "isa", "lsq", "check", "core",
              "ordering"},
    "verify": {"common", "core", "lsq", "mem"},
    "check": {"common", "core"},
    "workload": {"common", "isa"},
}

# (from-dir, to-dir) -> exact headers the edge may carry.
INTERFACE_ONLY = {
    ("ordering", "core"): {"core/dyn_inst.hpp", "core/trace.hpp",
                           "core/core_config.hpp",
                           "core/commit_observer.hpp"},
    ("lsq", "ordering"): {"ordering/scheme.hpp"},
    ("verify", "core"): {"core/commit_observer.hpp",
                         "core/dyn_inst.hpp"},
    ("check", "core"): {"core/commit_observer.hpp"},
    ("trace", "core"): {"core/commit_observer.hpp"},
    ("trace", "ordering"): {"ordering/scheme.hpp"},
}

# from-dir -> concrete headers banned outright (lint.py check 4).
BANNED_HEADERS = {
    "core": {"lsq/assoc_load_queue.hpp", "lsq/replay_queue.hpp"},
}


def _src_dir(rel):
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def run_layering(files, env=None):
    findings = []
    for src in files:
        sdir = _src_dir(src.rel)
        if sdir is None:
            continue
        for lineno, raw in enumerate(src.lines, 1):
            m = _INCLUDE_RE.match(raw)
            if not m:
                continue
            inc = m.group(1)
            tdir = inc.split("/")[0] if "/" in inc else sdir
            if tdir == sdir:
                continue

            def report(msg):
                s = src.suppression_for("layering", lineno)
                if s is not None:
                    s.used = True
                    return
                findings.append(Finding("layering", src.rel, lineno,
                                        msg))

            if inc in BANNED_HEADERS.get(sdir, ()):
                report(f"`{sdir}` must not include concrete header "
                       f"`{inc}` — the ordering backend owns its "
                       "structures; go through the "
                       "MemoryOrderingUnit seam")
                continue
            allowed = ALLOWED.get(sdir)
            if allowed is not None and tdir not in allowed:
                report(f"layer `{sdir}` may not depend on `{tdir}` "
                       f"(include of `{inc}`); allowed: "
                       f"{', '.join(sorted(allowed)) or 'none'}")
                continue
            iface = INTERFACE_ONLY.get((sdir, tdir))
            if iface is not None and inc not in iface:
                report(f"edge {sdir} -> {tdir} is interface-only; "
                       f"`{inc}` is not in the whitelist "
                       f"({', '.join(sorted(iface))})")
    return findings
