"""Shared infrastructure: findings, suppressions, source loading.

Suppression grammar (one per comment, trailing or standalone):

    // vbr-analyze: <check-id>(<reason>)

  - A trailing comment suppresses findings of <check-id> on its own
    line.
  - A standalone comment line suppresses the next source line; a run
    of standalone suppression lines covers the line after the run.
  - A standalone suppression immediately above a function definition
    applies to the whole function (the activity check uses this for
    `quiescent(...)` and `caller-notes(...)`).

Check ids accepted in suppressions are the real check ids plus two
activity-check aliases carrying contract meaning:

    quiescent(<reason>)    the function/line mutates state that a
                           skipped quiescent cycle replicates exactly
                           (or that is pure scratch); exempt from the
                           must-note rule and neutral at call sites.
    caller-notes(<reason>) the function mutates state but every caller
                           notes activity; call sites count as
                           mutations so the obligation moves up.

The reason string is mandatory: an empty reason is itself reported
(check id `suppression`), so the gate cannot be waved through
silently.
"""

import json
import re
from pathlib import Path

SUPPRESS_RE = re.compile(
    r"//\s*vbr-analyze:\s*([A-Za-z0-9_-]+)\s*\(([^)\n]*)\)")


class Finding:
    """One reported violation."""

    def __init__(self, check, path, line, message):
        self.check = check
        self.path = str(path)
        self.line = line
        self.message = message

    def key(self):
        return (self.check, self.path, self.line, self.message)

    def to_json(self):
        return {
            "check": self.check,
            "file": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


class Suppression:
    def __init__(self, check, reason, line, standalone):
        self.check = check
        self.reason = reason
        self.line = line          # 1-based line the comment sits on
        self.standalone = standalone
        self.used = False


def _strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving byte
    offsets and newlines so lines and columns survive."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            while i + 1 < n and not (text[i] == "*" and
                                     text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i + 1 < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                        i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


class SourceFile:
    """A parsed source file: raw text, comment-stripped text (same
    offsets), and the suppression table."""

    def __init__(self, root, path):
        self.root = Path(root)
        self.path = Path(path)
        self.rel = self.path.relative_to(self.root).as_posix()
        self.text = self.path.read_text()
        self.lines = self.text.splitlines()
        self.stripped = _strip_comments_and_strings(self.text)
        self.stripped_lines = self.stripped.splitlines()
        self.suppressions = self._parse_suppressions()

    def _parse_suppressions(self):
        sups = []
        for lineno, line in enumerate(self.lines, 1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            code = line[: m.start()].strip()
            sups.append(Suppression(m.group(1), m.group(2).strip(),
                                    lineno, standalone=(code == "")))
        return sups

    def suppression_for(self, check, line, aliases=()):
        """The suppression covering `check` findings at `line`:
        a trailing comment on the line itself, or the standalone
        comment run ending directly above it."""
        wanted = {check, *aliases}
        for s in self.suppressions:
            if s.check not in wanted:
                continue
            if s.line == line and not s.standalone:
                return s
            if s.standalone and s.line < line:
                # Standalone comments cover the next source line; walk
                # over any comment-only lines between.
                covered = s.line + 1
                while (covered < len(self.lines) + 1 and
                       covered <= len(self.lines) and
                       self.lines[covered - 1].strip().startswith("//")):
                    covered += 1
                if covered == line:
                    return s
        return None

    def reason_findings(self):
        """Suppressions with empty reasons are findings themselves."""
        out = []
        for s in self.suppressions:
            if not s.reason:
                out.append(Finding(
                    "suppression", self.rel, s.line,
                    f"vbr-analyze suppression for '{s.check}' has no "
                    "reason — reasons are mandatory"))
        return out


def load_tree(root, subdirs=("src",), exts=(".cpp", ".hpp"),
              compile_db=None):
    """Enumerate and parse the sources in scope.

    When a compile_commands.json is given (or found in build/), its
    translation units seed the list — the libclang frontend needs the
    flags, and the list proves the files actually build. The recursive
    walk is the fallback and also picks up headers, which the database
    does not contain.
    """
    # Resolve up front so relative --root arguments compare correctly
    # against the resolved translation-unit paths below.
    root = Path(root).resolve()
    seen = {}
    if compile_db is None:
        candidate = root / "build" / "compile_commands.json"
        compile_db = candidate if candidate.is_file() else None
    if compile_db:
        try:
            for entry in json.loads(Path(compile_db).read_text()):
                p = Path(entry["file"])
                if not p.is_absolute():
                    p = Path(entry["directory"]) / p
                p = p.resolve()
                try:
                    rel = p.relative_to(root.resolve())
                except ValueError:
                    continue
                if rel.parts[0] in subdirs and p.suffix in exts:
                    seen[p] = None
        except (OSError, ValueError, KeyError):
            pass  # fall back to the walk
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in exts:
                seen[p.resolve()] = None
    return [SourceFile(root, p) for p in sorted(seen)]
