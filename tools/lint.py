#!/usr/bin/env python3
"""Repo-specific static checks the compilers don't enforce.

Checks, over src/, tests/, bench/, examples/:

  1. no naked `new` / `delete` — ownership lives in containers and
     std::unique_ptr (std::make_unique) everywhere in this codebase;
  2. every src/**/x.cpp includes its own header ("<dir>/x.hpp") as its
     FIRST include, which proves each header is self-contained;
  3. no `using namespace std;`;
  4. layering guard: nothing under src/core/ may include the concrete
     ordering structures (lsq/assoc_load_queue.hpp, lsq/replay_queue.hpp)
     directly — the core talks to them only through the
     MemoryOrderingUnit interface in src/ordering/.

src/ordering/ is picked up by the src/ recursive walk, so checks 1-3
apply there too (as does the clang-tidy glob in CMakeLists.txt).

Usage: tools/lint.py [repo-root]
Exits nonzero if any finding is reported.
"""

import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tests", "bench", "examples")

# `new` as an allocating expression: preceded by start/space/paren/
# comma/=, not part of an identifier. make_unique and words like
# "renewed" don't match; comment lines are stripped before matching.
# Requires an operand after the keyword so deleted special members
# (`= delete;`) don't trip the rule.
NAKED_NEW_RE = re.compile(
    r"(?:^|[\s(,=])(new|delete)\b\s*(?:\[\s*\])?\s*[A-Za-z_(:]")
USING_STD_RE = re.compile(r"^\s*using\s+namespace\s+std\s*;")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+["<]([^">]+)[">]')


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments and string literals (good enough
    for lint purposes; raw strings are not used in this repo)."""
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    text = re.sub(r'"(?:[^"\\\n]|\\.)*"', '""', text)
    text = re.sub(r"'(?:[^'\\\n]|\\.)*'", "''", text)
    return text


def check_naked_new(path: Path, findings: list) -> None:
    for lineno, line in enumerate(
            strip_comments(path.read_text()).splitlines(), 1):
        m = NAKED_NEW_RE.search(line)
        if m:
            findings.append(
                f"{path}:{lineno}: naked `{m.group(1)}` — use "
                "containers or std::make_unique")


def check_using_std(path: Path, findings: list) -> None:
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if USING_STD_RE.match(line):
            findings.append(
                f"{path}:{lineno}: `using namespace std;` is banned")


def check_self_include(root: Path, path: Path, findings: list) -> None:
    """src/**/x.cpp must include "<dir>/x.hpp" first (if it exists)."""
    own = path.with_suffix(".hpp")
    if not own.exists():
        return
    expected = own.relative_to(root / "src").as_posix()
    for line in path.read_text().splitlines():
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        if m.group(1) != expected:
            findings.append(
                f"{path}: first include is \"{m.group(1)}\", "
                f"expected own header \"{expected}\" (self-"
                "containment check)")
        return
    findings.append(f"{path}: no includes at all?")


# Scheme-specific LSQ structures the core must reach only through the
# MemoryOrderingUnit seam. If src/core/ regains one of these includes,
# the pluggable-ordering refactor has regressed.
CORE_BANNED_INCLUDES = (
    "lsq/assoc_load_queue.hpp",
    "lsq/replay_queue.hpp",
)


def check_core_layering(root: Path, path: Path, findings: list) -> None:
    """src/core/* must not include concrete ordering structures."""
    try:
        rel = path.relative_to(root / "src" / "core")
    except ValueError:
        return
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        m = INCLUDE_RE.match(line)
        if m and m.group(1) in CORE_BANNED_INCLUDES:
            findings.append(
                f"{path}:{lineno}: src/core/{rel} includes "
                f"\"{m.group(1)}\" — scheme structures are only "
                "reachable through ordering/memory_ordering_unit.hpp")


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    findings = []
    for dirname in SOURCE_DIRS:
        base = root / dirname
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".cpp", ".hpp"):
                continue
            check_naked_new(path, findings)
            check_using_std(path, findings)
            if dirname == "src":
                check_core_layering(root, path, findings)
            if path.suffix == ".cpp" and dirname == "src":
                check_self_include(root, path, findings)
    for f in findings:
        print(f)
    print(f"lint: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
