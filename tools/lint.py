#!/usr/bin/env python3
"""Repo-specific static checks the compilers don't enforce.

Checks, over src/, tests/, bench/, examples/:

  1. no naked `new` / `delete` — ownership lives in containers and
     std::unique_ptr (std::make_unique) everywhere in this codebase;
  2. every src/**/x.cpp includes its own header ("<dir>/x.hpp") as its
     FIRST include, which proves each header is self-contained;
  3. no `using namespace std;`;
  4. layering guard — delegated to tools/checks/layering.py, the
     single source of truth for the include-DAG rules (it subsumes
     the old "core must not see the concrete ordering structures"
     check with the full DESIGN.md layer diagram);
  5. tools/*.py style: every script compiles, carries a module
     docstring, and contains no hard tabs.

src/ordering/ is picked up by the src/ recursive walk, so checks 1-3
apply there too (as does the clang-tidy glob in CMakeLists.txt).

Usage: tools/lint.py [repo-root]
Exits nonzero if any finding is reported.
"""

import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tests", "bench", "examples")

# `new` as an allocating expression: preceded by start/space/paren/
# comma/=, not part of an identifier. make_unique and words like
# "renewed" don't match; comment lines are stripped before matching.
# Requires an operand after the keyword so deleted special members
# (`= delete;`) don't trip the rule. `operator new` / `operator
# delete` calls are exempt: they are not owning expressions but the
# raw-memory layer itself, which only allocator implementations
# (e.g. common/pool_alloc.hpp) are in the business of calling.
NAKED_NEW_RE = re.compile(
    r"(?:^|[\s(,=])(?<!operator\s)(new|delete)\b"
    r"\s*(?:\[\s*\])?\s*[A-Za-z_(:]")
USING_STD_RE = re.compile(r"^\s*using\s+namespace\s+std\s*;")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+["<]([^">]+)[">]')


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments and string literals (good enough
    for lint purposes; raw strings are not used in this repo)."""
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    text = re.sub(r'"(?:[^"\\\n]|\\.)*"', '""', text)
    text = re.sub(r"'(?:[^'\\\n]|\\.)*'", "''", text)
    return text


def check_naked_new(path: Path, findings: list) -> None:
    for lineno, line in enumerate(
            strip_comments(path.read_text()).splitlines(), 1):
        m = NAKED_NEW_RE.search(line)
        if m:
            findings.append(
                f"{path}:{lineno}: naked `{m.group(1)}` — use "
                "containers or std::make_unique")


def check_using_std(path: Path, findings: list) -> None:
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if USING_STD_RE.match(line):
            findings.append(
                f"{path}:{lineno}: `using namespace std;` is banned")


def check_self_include(root: Path, path: Path, findings: list) -> None:
    """src/**/x.cpp must include "<dir>/x.hpp" first (if it exists)."""
    own = path.with_suffix(".hpp")
    if not own.exists():
        return
    expected = own.relative_to(root / "src").as_posix()
    for line in path.read_text().splitlines():
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        if m.group(1) != expected:
            findings.append(
                f"{path}: first include is \"{m.group(1)}\", "
                f"expected own header \"{expected}\" (self-"
                "containment check)")
        return
    findings.append(f"{path}: no includes at all?")


def check_layering(root: Path, findings: list) -> None:
    """Include-DAG rules, delegated to the analyzer's layering check
    (tools/checks/layering.py) so lint and analyze cannot drift."""
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from checks import load_tree
    from checks.layering import run_layering
    files = load_tree(root)
    for f in run_layering(files):
        findings.append(f.render())


def check_python_style(root: Path, findings: list) -> None:
    """tools/*.py must compile, carry a module docstring, and use no
    hard tabs (the repo standardizes on spaces everywhere)."""
    import ast
    for path in sorted((root / "tools").rglob("*.py")):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as e:
            findings.append(f"{path}:{e.lineno}: does not compile: "
                            f"{e.msg}")
            continue
        if ast.get_docstring(tree) is None:
            findings.append(f"{path}:1: missing module docstring")
        for lineno, line in enumerate(path.read_text().splitlines(),
                                      1):
            if "\t" in line:
                findings.append(f"{path}:{lineno}: hard tab")


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    findings = []
    for dirname in SOURCE_DIRS:
        base = root / dirname
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".cpp", ".hpp"):
                continue
            check_naked_new(path, findings)
            check_using_std(path, findings)
            if path.suffix == ".cpp" and dirname == "src":
                check_self_include(root, path, findings)
    check_layering(root, findings)
    check_python_style(root, findings)
    for f in findings:
        print(f)
    print(f"lint: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
