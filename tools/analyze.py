#!/usr/bin/env python3
"""Determinism & activity-contract static analyzer.

Drives the checks in tools/checks/ over the source tree (seeded from
CMake's compile_commands.json when present) and reports findings as a
human table and/or schema'd JSON, mirroring the BENCH_*.json
convention. Exit status is the number of findings (capped), so CI
and the `analyze` CMake target can gate on zero.

    tools/analyze.py                         # human table
    tools/analyze.py --json findings.json    # plus JSON artifact
    tools/analyze.py --only activity         # one family
    tools/analyze.py --disable det-ptr-key   # drop one check
    tools/analyze.py --list-checks

Suppressions: `// vbr-analyze: <check>(<reason>)` — see
tools/checks/common.py for the grammar. Reasons are mandatory; an
empty reason is itself a finding (check id `suppression`, always on).
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from checks import ALL_CHECKS, FAMILIES, load_tree  # noqa: E402
from checks import activity, clang_frontend  # noqa: E402

SCHEMA_VERSION = 1


def _expand(names):
    out = []
    for n in names:
        if n in FAMILIES:
            out.extend(FAMILIES[n])
        elif n in ALL_CHECKS:
            out.append(n)
        else:
            sys.exit(f"analyze: unknown check or family '{n}' "
                     f"(see --list-checks)")
    return out


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="analyze.py",
        description="VBR determinism & activity-contract analyzer")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of tools/)")
    ap.add_argument("--json", metavar="FILE", default=None,
                    help="write findings JSON to FILE ('-' = stdout)")
    ap.add_argument("--only", action="append", default=[],
                    metavar="CHECK", help="run only this check/family "
                    "(repeatable)")
    ap.add_argument("--disable", action="append", default=[],
                    metavar="CHECK", help="skip this check/family "
                    "(repeatable)")
    ap.add_argument("--compile-db", default=None,
                    help="explicit compile_commands.json path")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the human table")
    args = ap.parse_args(argv)

    if args.list_checks:
        print(f"frontend: {clang_frontend.description()}")
        for fam, checks in FAMILIES.items():
            print(f"{fam}:")
            for c in checks:
                print(f"  {c}")
        print("suppression: (always on) empty suppression reasons")
        return 0

    root = Path(args.root) if args.root else \
        Path(__file__).resolve().parent.parent
    enabled = _expand(args.only) if args.only else list(ALL_CHECKS)
    for c in _expand(args.disable):
        if c in enabled:
            enabled.remove(c)

    files = load_tree(root, compile_db=args.compile_db)
    findings = []
    env = None
    if "activity" in enabled or "wake-writers" in enabled:
        env = activity.build_env(files)
    for check in enabled:
        findings.extend(ALL_CHECKS[check](files, env=env))
    for src in files:
        findings.extend(src.reason_findings())

    findings.sort(key=lambda f: (f.path, f.line, f.check))

    if not args.quiet:
        _print_table(findings, enabled, files)
    if args.json:
        doc = {
            "schema": SCHEMA_VERSION,
            "tool": "vbr-analyze",
            "frontend": clang_frontend.description(),
            "root": str(root),
            "checks": enabled,
            "files_scanned": len(files),
            "findings": [f.to_json() for f in findings],
            "counts": _counts(findings),
        }
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            Path(args.json).write_text(text)
    return min(len(findings), 125)


def _counts(findings):
    out = {}
    for f in findings:
        out[f.check] = out.get(f.check, 0) + 1
    return out


def _print_table(findings, enabled, files):
    if not findings:
        nsup = sum(len(s.suppressions) for s in files)
        print(f"analyze: clean — {len(enabled)} checks over "
              f"{len(files)} files, 0 findings "
              f"({nsup} suppressions in force)")
        return
    width = max(len(f.check) for f in findings)
    cur = None
    for f in findings:
        if f.check != cur:
            cur = f.check
            print(f"\n== {cur} " + "=" * max(0, 60 - len(cur)))
        print(f"  {f.path}:{f.line}")
        print(f"    {f.message}")
    print()
    for check, n in sorted(_counts(findings).items()):
        print(f"  {check:<{width}}  {n}")
    print(f"analyze: {len(findings)} finding(s)")


if __name__ == "__main__":
    sys.exit(main())
