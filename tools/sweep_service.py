#!/usr/bin/env python3
"""Batch and daemon front-end for the sweep service (DESIGN.md SS12-13).

Batch mode (default) runs the whole harness suite as a cache-backed
batch:

  1. Warm passes: N sharded tools/run_bench.sh invocations
     (VBR_SHARD=i/N) against one shared VBR_CACHE_DIR. Each shard
     simulates only the jobs it owns; everything it completes lands in
     the content-addressed result cache. Shards are independent, so
     the passes can also be farmed out across hosts sharing the cache
     directory - this script runs them sequentially as the
     single-host degenerate case.
  2. Quarantine retry: failed jobs are never cached, so a retry is
     just another warm pass - cache hits skip straight past every
     healthy job. FAIL_*.json artifacts from the previous round are
     cleared first; artifacts that reappear are persistent failures.
  3. Merge pass: one unsharded run into --results-dir. With the cache
     fully warmed it performs zero simulations and regenerates every
     BENCH_*.json byte-identically (modulo the masked fields in
     tools/bench_mask.json) to what an uncached run would produce.
  4. Gate: when --baseline is given, tools/compare_bench.py must
     accept (baseline, merged results); with --accept the merged
     reports are then promoted into the baseline directory.

Exit status is nonzero if any harness still fails after the retry
budget, if quarantine artifacts persist, or if the gate rejects.

Daemon mode (--daemon) replaces step 1's in-process loop with the
durable job-lease queue (src/sys/job_queue.hpp, DESIGN.md SS13): this
script speaks the identical on-disk protocol - same schema tag, field
names, and <id>@<owner>.json lease naming - so C++ and Python workers
can drain one queue together. A daemon claims the lexically-smallest
due pending ticket by atomic rename, heartbeats its lease while the
job runs, and completes/retries it afterwards; tickets whose worker
died (kill -9, OOM) are reclaimed by ANY worker once their lease
expiry lapses, so no work is lost and reruns are byte-identical
because sweep jobs are pure. --enqueue-suite seeds a queue with the
warm-pass shard tickets; --drain makes the daemon exit when the
queue empties instead of polling forever.
"""

import argparse
import glob
import json
import os
import shutil
import subprocess
import sys
import threading
import time

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))

# --- durable job-lease queue (protocol peer of src/sys/job_queue) ----

QUEUE_SCHEMA = "vbr-queue/1"
QUEUE_STATES = ("pending", "leases", "done", "failed")


def now_ms():
    """Epoch milliseconds; the explicit-clock seam for queue calls."""
    return int(time.time() * 1000)


def q_init(queue):
    for state in QUEUE_STATES:
        os.makedirs(os.path.join(queue, state), exist_ok=True)


def q_path(queue, state, job_id):
    return os.path.join(queue, state, job_id + ".json")


def q_lease_path(queue, job_id, owner):
    return os.path.join(queue, "leases", f"{job_id}@{owner}.json")


def q_atomic_write(path, doc):
    """tmp + rename, same pattern as src/common/atomic_file.cpp."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
    os.replace(tmp, path)


def q_read(path):
    """Parsed ticket document, or None when unreadable/malformed."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        return doc if isinstance(doc, dict) else None
    except (OSError, ValueError):
        return None


def q_list(queue, state):
    """Sorted ticket ids in a state (lease ids without the owner)."""
    try:
        names = os.listdir(os.path.join(queue, state))
    except OSError:
        return []
    ids = [n[:-5].split("@", 1)[0] for n in names
           if n.endswith(".json")]
    return sorted(ids)


def q_enqueue(queue, job_id, payload):
    doc = {"schema": QUEUE_SCHEMA, "id": job_id, "attempts": 0,
           "not_before_ms": 0}
    for key, value in payload.items():
        doc.setdefault(key, value)
    q_atomic_write(q_path(queue, "pending", job_id), doc)


def q_claim(queue, owner, t_ms, lease_ms):
    """Claim the first due pending ticket; (id, doc) or (None, None).

    The claim is one atomic rename of the pending file into this
    owner's lease file: exactly one concurrent claimant can win it,
    losers see ENOENT and try the next candidate.
    """
    pending_dir = os.path.join(queue, "pending")
    try:
        names = sorted(os.listdir(pending_dir))
    except OSError:
        return None, None
    for name in names:
        if not name.endswith(".json"):
            continue
        job_id = name[:-5]
        pending = os.path.join(pending_dir, name)
        doc = q_read(pending)
        if doc is None:
            # Parked, not deleted: a malformed ticket would spin
            # every claimant forever if left in pending/.
            try:
                os.rename(pending, q_path(queue, "failed", job_id))
            except OSError:
                pass
            continue
        if doc.get("not_before_ms", 0) > t_ms:
            continue  # backing off; not due yet
        lease = q_lease_path(queue, job_id, owner)
        try:
            os.rename(pending, lease)
        except OSError:
            continue  # another worker won the rename
        # A crash between the rename and this stamp leaves a lease
        # without expiry_ms, which q_reclaim_expired treats as
        # already expired - the ticket is never stranded.
        doc["owner"] = owner
        doc["expiry_ms"] = t_ms + lease_ms
        q_atomic_write(lease, doc)
        return job_id, doc
    return None, None


def q_heartbeat(queue, job_id, owner, doc, expiry_ms):
    """Refresh the lease expiry; False when the lease was reclaimed
    out from under the worker (who may finish its pure job safely but
    must not resurrect the lease)."""
    lease = q_lease_path(queue, job_id, owner)
    if not os.path.exists(lease):
        return False
    doc = dict(doc)
    doc["expiry_ms"] = expiry_ms
    q_atomic_write(lease, doc)
    return True


def q_release(queue, job_id, owner):
    try:
        os.remove(q_lease_path(queue, job_id, owner))
    except OSError:
        pass


def q_complete(queue, job_id, owner, doc):
    q_atomic_write(q_path(queue, "done", job_id), doc)
    q_release(queue, job_id, owner)


def q_fail(queue, job_id, owner, doc, error):
    doc = dict(doc)
    doc["error"] = error
    q_atomic_write(q_path(queue, "failed", job_id), doc)
    q_release(queue, job_id, owner)


def backoff_delay_ms(attempt, base_ms, cap_ms=8000):
    """Deterministic schedule shared with retryBackoffDelayMs():
    base * 2^(attempt-1), saturating at cap_ms."""
    if base_ms <= 0 or attempt <= 0:
        return 0
    return min(base_ms * (2 ** (attempt - 1)), cap_ms)


def q_retry(queue, job_id, owner, doc, t_ms, backoff_base_ms,
            max_attempts, error):
    """Requeue with backoff, or fail permanently once the attempt
    budget is exhausted. True when the ticket was requeued."""
    attempts = int(doc.get("attempts", 0)) + 1
    if attempts >= max_attempts:
        q_fail(queue, job_id, owner, doc, error)
        return False
    fresh = {k: v for k, v in doc.items()
             if k not in ("owner", "expiry_ms")}
    fresh["attempts"] = attempts
    fresh["not_before_ms"] = t_ms + backoff_delay_ms(
        attempts, backoff_base_ms)
    fresh["last_error"] = error
    q_atomic_write(q_path(queue, "pending", job_id), fresh)
    q_release(queue, job_id, owner)
    return True


def q_reclaim_expired(queue, t_ms):
    """Return lapsed leases to pending/ (any worker may call this).

    A lease with a missing or unparsable expiry stamp reads as
    already expired: re-running a pure job is safe, losing one is
    not. Returns the number of tickets reclaimed.
    """
    leases_dir = os.path.join(queue, "leases")
    reclaimed = 0
    try:
        names = sorted(os.listdir(leases_dir))
    except OSError:
        return 0
    for name in names:
        if not name.endswith(".json"):
            continue
        lease = os.path.join(leases_dir, name)
        doc = q_read(lease)
        # A lease whose expiry stamp is missing or malformed (the
        # claimant died inside the claim-then-stamp window, or the
        # file is torn) is reclaimed unconditionally.
        expiry = doc.get("expiry_ms") if doc else None
        stamped = isinstance(expiry, int) \
            and not isinstance(expiry, bool)
        if stamped and expiry >= t_ms:
            continue
        job_id = name[:-5].split("@", 1)[0]
        fresh = {k: v for k, v in (doc or {}).items()
                 if k not in ("owner", "expiry_ms")}
        if not fresh:
            fresh = {"schema": QUEUE_SCHEMA, "id": job_id,
                     "attempts": 0, "not_before_ms": 0}
        fresh["reclaims"] = int(fresh.get("reclaims", 0)) + 1
        q_atomic_write(q_path(queue, "pending", job_id), fresh)
        try:
            os.remove(lease)
        except OSError:
            pass
        reclaimed += 1
    return reclaimed


def run_bench(build_dir, results_dir, cache_dir, scale, shard=None):
    """One tools/run_bench.sh invocation; returns (rc, output)."""
    env = dict(os.environ)
    env["VBR_CACHE_DIR"] = cache_dir
    env["VBR_SCALE"] = str(scale)
    if shard is None:
        env.pop("VBR_SHARD", None)
    else:
        env["VBR_SHARD"] = shard
    proc = subprocess.run(
        [os.path.join(TOOLS_DIR, "run_bench.sh"), build_dir,
         results_dir],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    return proc.returncode, proc.stdout


def sweep_totals(output):
    """Aggregate the [sweep] lines of a run_bench.sh transcript.

    Tolerant by design: a truncated transcript (worker killed
    mid-line), a field without '=', or a non-numeric value must not
    crash the service - unknown and malformed fields are skipped, so
    the totals reflect exactly the well-formed counters present.
    """
    totals = {"jobs": 0, "simulated": 0, "cache_hits": 0,
              "shard_skipped": 0, "quarantined": 0,
              "store_failures": 0}
    for line in output.splitlines():
        if not line.startswith("[sweep] "):
            continue
        for field in line.split()[2:]:
            key, sep, value = field.partition("=")
            if not sep or key not in totals:
                continue
            try:
                totals[key] += int(value)
            except ValueError:
                continue
    return totals


def fail_artifacts(directory):
    return sorted(glob.glob(os.path.join(directory, "FAIL_*.json")))


def clear_fail_artifacts(directory):
    for path in fail_artifacts(directory):
        os.remove(path)


# --- daemon mode -----------------------------------------------------

def run_harness(build_dir, harness, results_dir, cache_dir, scale,
                shard=None):
    """One single-harness run (bench/<harness> directly, not the
    whole run_bench.sh suite); returns (rc, output)."""
    env = dict(os.environ)
    env["VBR_BENCH_DIR"] = results_dir
    env["VBR_FAIL_DIR"] = results_dir
    env["VBR_CACHE_DIR"] = cache_dir
    env["VBR_SCALE"] = str(scale)
    if shard is None:
        env.pop("VBR_SHARD", None)
    else:
        env["VBR_SHARD"] = shard
    proc = subprocess.run(
        [os.path.join(build_dir, "bench", harness)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    return proc.returncode, proc.stdout


def execute_ticket(doc, args):
    """Run one claimed ticket; returns (ok, error_string)."""
    kind = doc.get("kind")
    if kind == "bench-shard":
        results_dir = doc.get("results_dir")
        if not results_dir:
            return False, "ticket missing results_dir"
        os.makedirs(results_dir, exist_ok=True)
        clear_fail_artifacts(results_dir)
        if doc.get("harness"):
            # Single-harness ticket: cheap enough for the chaos
            # suite and fine-grained queue partitioning.
            rc, out = run_harness(
                doc.get("build_dir", args.build_dir),
                doc["harness"], results_dir,
                doc.get("cache_dir", args.cache_dir),
                doc.get("scale", args.scale),
                shard=doc.get("shard"))
        else:
            rc, out = run_bench(doc.get("build_dir", args.build_dir),
                                results_dir,
                                doc.get("cache_dir", args.cache_dir),
                                doc.get("scale", args.scale),
                                shard=doc.get("shard"))
        totals = sweep_totals(out)
        fails = fail_artifacts(results_dir)
        print(f"[daemon] ticket {doc.get('id')}: rc={rc} "
              f"simulated={totals['simulated']} "
              f"cache_hits={totals['cache_hits']} "
              f"quarantined={totals['quarantined']} "
              f"store_failures={totals['store_failures']} "
              f"artifacts={len(fails)}")
        if rc != 0:
            return False, f"run_bench rc={rc}"
        if fails:
            return False, f"{len(fails)} quarantine artifact(s)"
        return True, ""
    if kind == "cache-gc":
        cmd = [sys.executable, os.path.join(TOOLS_DIR, "cache_gc.py"),
               doc.get("cache_dir", args.cache_dir)]
        for flag in ("max_bytes", "max_age_days", "fingerprint",
                     "min_age_seconds"):
            if doc.get(flag) is not None:
                cmd += ["--" + flag.replace("_", "-"),
                        str(doc[flag])]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
        sys.stdout.write(proc.stdout)
        return proc.returncode == 0, f"cache_gc rc={proc.returncode}"
    return False, f"unknown ticket kind {kind!r}"


def heartbeat_loop(queue, job_id, owner, doc, lease_ms, stop):
    """Refresh the lease at lease_ms/3 until stop is set. Losing the
    lease (reclaimed after a stall) is logged but not fatal: the job
    is pure, so finishing it is safe - it just may run twice."""
    period = max(lease_ms / 3000.0, 0.05)
    while not stop.wait(period):
        if not q_heartbeat(queue, job_id, owner, doc,
                           now_ms() + lease_ms):
            print(f"[daemon] lease for {job_id} reclaimed while "
                  "running; finishing anyway (job is pure)")
            return


def daemon(args):
    """Watch the queue: claim, heartbeat, execute, complete/retry."""
    q_init(args.queue)
    owner = args.owner or f"{os.uname().nodename}-{os.getpid()}"
    print(f"[daemon] {owner} watching {args.queue} "
          f"(lease {args.lease_ms}ms, poll {args.poll_seconds}s)")
    done = 0
    while True:
        t = now_ms()
        reclaimed = q_reclaim_expired(args.queue, t)
        if reclaimed:
            print(f"[daemon] reclaimed {reclaimed} expired lease(s)")
        job_id, doc = q_claim(args.queue, owner, t, args.lease_ms)
        if job_id is None:
            if args.drain and not q_list(args.queue, "pending") \
                    and not q_list(args.queue, "leases"):
                print(f"[daemon] queue drained after {done} "
                      "ticket(s)")
                return 0
            time.sleep(args.poll_seconds)
            continue
        print(f"[daemon] claimed {job_id} "
              f"(attempt {int(doc.get('attempts', 0)) + 1})")
        stop = threading.Event()
        beat = threading.Thread(
            target=heartbeat_loop,
            args=(args.queue, job_id, owner, doc, args.lease_ms,
                  stop),
            daemon=True)
        beat.start()
        try:
            ok, error = execute_ticket(doc, args)
        except Exception as e:  # noqa: BLE001 - ticket must not kill daemon
            ok, error = False, f"exception: {e}"
        finally:
            stop.set()
            beat.join()
        if ok:
            q_complete(args.queue, job_id, owner, doc)
            done += 1
        else:
            requeued = q_retry(args.queue, job_id, owner, doc,
                               now_ms(), args.backoff_ms,
                               args.max_attempts, error)
            print(f"[daemon] {job_id} failed ({error}); "
                  + ("requeued with backoff" if requeued
                     else "attempts exhausted -> failed/"))


def enqueue_suite(args):
    """Seed the queue with one bench-shard ticket per warm shard."""
    q_init(args.queue)
    scratch = os.path.join(args.results_dir, "shards")
    for i in range(args.shards):
        job_id = f"bench-shard-{i:03d}-of-{args.shards:03d}"
        q_enqueue(args.queue, job_id, {
            "kind": "bench-shard",
            "build_dir": args.build_dir,
            "results_dir": os.path.join(scratch, f"shard_{i}"),
            "cache_dir": args.cache_dir,
            "scale": args.scale,
            "shard": f"{i}/{args.shards}" if args.shards > 1
                     else None,
        })
        print(f"[service] enqueued {job_id}")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Run the harness suite as a sharded, cache-backed "
                    "batch with a byte-identity gate.")
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--results-dir", default="results")
    ap.add_argument("--cache-dir", default="sweep_cache",
                    help="content-addressed result cache shared by "
                         "every pass (default: %(default)s)")
    ap.add_argument("--shards", type=int, default=1,
                    help="warm-pass partitions (default: %(default)s)")
    ap.add_argument("--scale", default=os.environ.get("VBR_SCALE",
                                                      "1.0"))
    ap.add_argument("--retries", type=int, default=1,
                    help="extra warm rounds granted when a pass "
                         "leaves quarantine artifacts or a failed "
                         "harness (default: %(default)s)")
    ap.add_argument("--baseline",
                    help="directory of golden BENCH_*.json to gate "
                         "the merged results against")
    ap.add_argument("--accept", action="store_true",
                    help="after a passing gate, promote the merged "
                         "reports into --baseline")
    queue = ap.add_argument_group("queue / daemon mode")
    queue.add_argument("--queue",
                       help="durable job-lease queue directory "
                            "(see src/sys/job_queue.hpp)")
    queue.add_argument("--daemon", action="store_true",
                       help="watch --queue and execute tickets "
                            "instead of running the batch flow")
    queue.add_argument("--drain", action="store_true",
                       help="daemon exits once pending/ and leases/ "
                            "are empty (CI and tests)")
    queue.add_argument("--enqueue-suite", action="store_true",
                       help="seed --queue with one bench-shard "
                            "ticket per --shards partition, then "
                            "exit")
    queue.add_argument("--enqueue-json", metavar="JSON",
                       help="enqueue one raw ticket (object with an "
                            "'id' field), then exit")
    queue.add_argument("--owner",
                       help="worker identity for lease files "
                            "(default: <host>-<pid>)")
    queue.add_argument("--lease-ms", type=int, default=30000,
                       help="lease duration; a dead worker's ticket "
                            "is reclaimable this long after its last "
                            "heartbeat (default: %(default)s)")
    queue.add_argument("--poll-seconds", type=float, default=1.0,
                       help="idle poll interval (default: "
                            "%(default)s)")
    queue.add_argument("--max-attempts", type=int, default=3,
                       help="executions before a ticket fails "
                            "permanently (default: %(default)s)")
    queue.add_argument("--backoff-ms", type=int, default=250,
                       help="requeue backoff base, doubling per "
                            "attempt, capped at 8s (default: "
                            "%(default)s)")
    args = ap.parse_args()

    if args.shards < 1:
        ap.error("--shards must be >= 1")
    if args.accept and not args.baseline:
        ap.error("--accept requires --baseline")
    if args.daemon or args.enqueue_suite or args.enqueue_json:
        if not args.queue:
            ap.error("queue modes require --queue")
        if args.enqueue_suite:
            return enqueue_suite(args)
        if args.enqueue_json:
            try:
                doc = json.loads(args.enqueue_json)
            except ValueError as e:
                ap.error(f"--enqueue-json: {e}")
            if not isinstance(doc, dict) or not doc.get("id"):
                ap.error("--enqueue-json needs an object with an "
                         "'id' field")
            q_init(args.queue)
            q_enqueue(args.queue, str(doc["id"]), doc)
            print(f"[service] enqueued {doc['id']}")
            return 0
        return daemon(args)

    os.makedirs(args.cache_dir, exist_ok=True)
    scratch = os.path.join(args.results_dir, "shards")

    # --- warm passes, with the quarantine-retry loop -----------------
    warm_ok = False
    for round_no in range(1 + args.retries):
        round_failed = False
        for i in range(args.shards):
            shard = f"{i}/{args.shards}"
            shard_dir = os.path.join(scratch, f"shard_{i}")
            os.makedirs(shard_dir, exist_ok=True)
            clear_fail_artifacts(shard_dir)
            rc, out = run_bench(args.build_dir, shard_dir,
                                args.cache_dir, args.scale,
                                shard=shard)
            totals = sweep_totals(out)
            fails = fail_artifacts(shard_dir)
            print(f"[service] warm round {round_no} shard {shard}: "
                  f"rc={rc} simulated={totals['simulated']} "
                  f"cache_hits={totals['cache_hits']} "
                  f"quarantined={totals['quarantined']} "
                  f"artifacts={len(fails)}")
            if rc != 0 or fails:
                round_failed = True
        if not round_failed:
            warm_ok = True
            break
        if round_no < args.retries:
            print("[service] quarantines or failures - retrying "
                  "(healthy jobs resolve from cache)")
    if not warm_ok:
        print("[service] FAIL: harnesses still failing after "
              f"{args.retries} retry round(s):", file=sys.stderr)
        for i in range(args.shards):
            for path in fail_artifacts(
                    os.path.join(scratch, f"shard_{i}")):
                print(f"  {path}", file=sys.stderr)
        return 1

    # --- merge pass: everything from cache ---------------------------
    os.makedirs(args.results_dir, exist_ok=True)
    clear_fail_artifacts(args.results_dir)
    rc, out = run_bench(args.build_dir, args.results_dir,
                        args.cache_dir, args.scale)
    totals = sweep_totals(out)
    print(f"[service] merge pass: rc={rc} "
          f"simulated={totals['simulated']} "
          f"cache_hits={totals['cache_hits']}")
    if rc != 0 or fail_artifacts(args.results_dir):
        print("[service] FAIL: merge pass failed", file=sys.stderr)
        sys.stdout.write(out)
        return 1
    if totals["simulated"] != 0:
        # Not an error (a harness may queue jobs the warm passes never
        # saw, e.g. after a code edit between passes), but worth
        # flagging: a fully warmed cache should satisfy everything.
        print(f"[service] note: merge pass simulated "
              f"{totals['simulated']} job(s) the warm passes did not "
              "cover")

    # --- identity gate ----------------------------------------------
    if args.baseline:
        proc = subprocess.run(
            [sys.executable,
             os.path.join(TOOLS_DIR, "compare_bench.py"),
             args.baseline, args.results_dir],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            print("[service] FAIL: compare_bench gate rejected the "
                  "merged results", file=sys.stderr)
            return proc.returncode
        if args.accept:
            os.makedirs(args.baseline, exist_ok=True)
            promoted = 0
            for path in sorted(glob.glob(os.path.join(
                    args.results_dir, "BENCH_*.json"))):
                shutil.copy2(path, args.baseline)
                promoted += 1
            print(f"[service] promoted {promoted} report(s) into "
                  f"{args.baseline}")

    print("[service] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
