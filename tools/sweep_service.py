#!/usr/bin/env python3
"""Batch front-end for the sweep service (DESIGN.md SS12).

Runs the whole harness suite as a cache-backed batch:

  1. Warm passes: N sharded tools/run_bench.sh invocations
     (VBR_SHARD=i/N) against one shared VBR_CACHE_DIR. Each shard
     simulates only the jobs it owns; everything it completes lands in
     the content-addressed result cache. Shards are independent, so
     the passes can also be farmed out across hosts sharing the cache
     directory - this script runs them sequentially as the
     single-host degenerate case.
  2. Quarantine retry: failed jobs are never cached, so a retry is
     just another warm pass - cache hits skip straight past every
     healthy job. FAIL_*.json artifacts from the previous round are
     cleared first; artifacts that reappear are persistent failures.
  3. Merge pass: one unsharded run into --results-dir. With the cache
     fully warmed it performs zero simulations and regenerates every
     BENCH_*.json byte-identically (modulo the masked fields in
     tools/bench_mask.json) to what an uncached run would produce.
  4. Gate: when --baseline is given, tools/compare_bench.py must
     accept (baseline, merged results); with --accept the merged
     reports are then promoted into the baseline directory.

Exit status is nonzero if any harness still fails after the retry
budget, if quarantine artifacts persist, or if the gate rejects.
"""

import argparse
import glob
import os
import shutil
import subprocess
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))


def run_bench(build_dir, results_dir, cache_dir, scale, shard=None):
    """One tools/run_bench.sh invocation; returns (rc, output)."""
    env = dict(os.environ)
    env["VBR_CACHE_DIR"] = cache_dir
    env["VBR_SCALE"] = str(scale)
    if shard is None:
        env.pop("VBR_SHARD", None)
    else:
        env["VBR_SHARD"] = shard
    proc = subprocess.run(
        [os.path.join(TOOLS_DIR, "run_bench.sh"), build_dir,
         results_dir],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    return proc.returncode, proc.stdout


def sweep_totals(output):
    """Aggregate the [sweep] lines of a run_bench.sh transcript."""
    totals = {"jobs": 0, "simulated": 0, "cache_hits": 0,
              "shard_skipped": 0, "quarantined": 0}
    for line in output.splitlines():
        if not line.startswith("[sweep] "):
            continue
        for field in line.split()[2:]:
            key, _, value = field.partition("=")
            if key in totals:
                totals[key] += int(value)
    return totals


def fail_artifacts(directory):
    return sorted(glob.glob(os.path.join(directory, "FAIL_*.json")))


def clear_fail_artifacts(directory):
    for path in fail_artifacts(directory):
        os.remove(path)


def main():
    ap = argparse.ArgumentParser(
        description="Run the harness suite as a sharded, cache-backed "
                    "batch with a byte-identity gate.")
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--results-dir", default="results")
    ap.add_argument("--cache-dir", default="sweep_cache",
                    help="content-addressed result cache shared by "
                         "every pass (default: %(default)s)")
    ap.add_argument("--shards", type=int, default=1,
                    help="warm-pass partitions (default: %(default)s)")
    ap.add_argument("--scale", default=os.environ.get("VBR_SCALE",
                                                      "1.0"))
    ap.add_argument("--retries", type=int, default=1,
                    help="extra warm rounds granted when a pass "
                         "leaves quarantine artifacts or a failed "
                         "harness (default: %(default)s)")
    ap.add_argument("--baseline",
                    help="directory of golden BENCH_*.json to gate "
                         "the merged results against")
    ap.add_argument("--accept", action="store_true",
                    help="after a passing gate, promote the merged "
                         "reports into --baseline")
    args = ap.parse_args()

    if args.shards < 1:
        ap.error("--shards must be >= 1")
    if args.accept and not args.baseline:
        ap.error("--accept requires --baseline")

    os.makedirs(args.cache_dir, exist_ok=True)
    scratch = os.path.join(args.results_dir, "shards")

    # --- warm passes, with the quarantine-retry loop -----------------
    warm_ok = False
    for round_no in range(1 + args.retries):
        round_failed = False
        for i in range(args.shards):
            shard = f"{i}/{args.shards}"
            shard_dir = os.path.join(scratch, f"shard_{i}")
            os.makedirs(shard_dir, exist_ok=True)
            clear_fail_artifacts(shard_dir)
            rc, out = run_bench(args.build_dir, shard_dir,
                                args.cache_dir, args.scale,
                                shard=shard)
            totals = sweep_totals(out)
            fails = fail_artifacts(shard_dir)
            print(f"[service] warm round {round_no} shard {shard}: "
                  f"rc={rc} simulated={totals['simulated']} "
                  f"cache_hits={totals['cache_hits']} "
                  f"quarantined={totals['quarantined']} "
                  f"artifacts={len(fails)}")
            if rc != 0 or fails:
                round_failed = True
        if not round_failed:
            warm_ok = True
            break
        if round_no < args.retries:
            print("[service] quarantines or failures - retrying "
                  "(healthy jobs resolve from cache)")
    if not warm_ok:
        print("[service] FAIL: harnesses still failing after "
              f"{args.retries} retry round(s):", file=sys.stderr)
        for i in range(args.shards):
            for path in fail_artifacts(
                    os.path.join(scratch, f"shard_{i}")):
                print(f"  {path}", file=sys.stderr)
        return 1

    # --- merge pass: everything from cache ---------------------------
    os.makedirs(args.results_dir, exist_ok=True)
    clear_fail_artifacts(args.results_dir)
    rc, out = run_bench(args.build_dir, args.results_dir,
                        args.cache_dir, args.scale)
    totals = sweep_totals(out)
    print(f"[service] merge pass: rc={rc} "
          f"simulated={totals['simulated']} "
          f"cache_hits={totals['cache_hits']}")
    if rc != 0 or fail_artifacts(args.results_dir):
        print("[service] FAIL: merge pass failed", file=sys.stderr)
        sys.stdout.write(out)
        return 1
    if totals["simulated"] != 0:
        # Not an error (a harness may queue jobs the warm passes never
        # saw, e.g. after a code edit between passes), but worth
        # flagging: a fully warmed cache should satisfy everything.
        print(f"[service] note: merge pass simulated "
              f"{totals['simulated']} job(s) the warm passes did not "
              "cover")

    # --- identity gate ----------------------------------------------
    if args.baseline:
        proc = subprocess.run(
            [sys.executable,
             os.path.join(TOOLS_DIR, "compare_bench.py"),
             args.baseline, args.results_dir],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            print("[service] FAIL: compare_bench gate rejected the "
                  "merged results", file=sys.stderr)
            return proc.returncode
        if args.accept:
            os.makedirs(args.baseline, exist_ok=True)
            promoted = 0
            for path in sorted(glob.glob(os.path.join(
                    args.results_dir, "BENCH_*.json"))):
                shutil.copy2(path, args.baseline)
                promoted += 1
            print(f"[service] promoted {promoted} report(s) into "
                  f"{args.baseline}")

    print("[service] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
