#!/usr/bin/env python3
"""Garbage collector for the content-addressed result cache.

The cache (src/sys/result_cache.hpp, DESIGN.md SS13) is append-only
from the simulator's side: every store adds one <key>.json entry and
nothing ever removes them. This tool is the removal side, runnable
standalone or from the sweep daemon between queue polls:

  * size cap (--max-bytes): when the entry set exceeds the cap,
    evict oldest-mtime-first until it fits;
  * age cap (--max-age-days): evict entries older than the cap;
  * fingerprint sweep (--fingerprint): evict entries stamped by a
    different simulator build - they can never hit again under the
    live build and only squat on the size cap;
  * orphan cleanup: <name>.json.tmp.<pid> temporaries left by a
    writer that died between fopen and rename are deleted.

Safety rules, in order of precedence:

  * Only files matching the entry pattern (32 lowercase hex chars +
    ".json") or the atomic-writer temporary pattern are ever touched;
    the journal, stray user files, and anything else are invisible.
  * Nothing younger than --min-age-seconds (default 300) is removed,
    entries and orphans alike. A just-stored entry or an in-flight
    temporary is never yanked out from under a live sweep; eviction
    correctness is only about reclaiming space, so erring old is
    free (a re-simulation), while erring young races the writer.

Every removal is appended to <cache>/gc_journal.jsonl as one JSON
line {"action", "file", "reason", "bytes"} so an unexpected cold
sweep can be audited after the fact. --dry-run prints the plan and
writes nothing.

Exit status: 0 on success (including nothing to do), 2 on a bad
invocation, 1 when a removal failed.
"""

import argparse
import json
import os
import re
import sys
import time

ENTRY_RE = re.compile(r"^[0-9a-f]{32}\.json$")
ORPHAN_RE = re.compile(r"^.+\.json\.tmp\.\d+$")
JOURNAL = "gc_journal.jsonl"


def scan(cache_dir):
    """Return (entries, orphans): lists of (name, bytes, mtime)."""
    entries, orphans = [], []
    for name in sorted(os.listdir(cache_dir)):
        path = os.path.join(cache_dir, name)
        if not os.path.isfile(path):
            continue
        try:
            st = os.stat(path)
        except OSError:
            continue  # raced away by a concurrent GC
        record = (name, st.st_size, st.st_mtime)
        if ENTRY_RE.match(name):
            entries.append(record)
        elif ORPHAN_RE.match(name):
            orphans.append(record)
    return entries, orphans


def entry_fingerprint(path):
    """The entry's fingerprint field, or None when unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        value = doc.get("fingerprint")
        return value if isinstance(value, str) else None
    except (OSError, ValueError):
        return None


def plan(cache_dir, entries, orphans, now, args):
    """Return [(name, bytes, reason)] removals, oldest first."""
    removals = []
    victims = set()
    min_age = args.min_age_seconds

    def old_enough(mtime):
        return now - mtime >= min_age

    for name, size, mtime in orphans:
        if old_enough(mtime):
            removals.append((name, size, "orphan-tmp"))

    if args.fingerprint:
        for name, size, mtime in entries:
            if not old_enough(mtime):
                continue
            fp = entry_fingerprint(os.path.join(cache_dir, name))
            if fp != args.fingerprint:
                victims.add(name)
                removals.append((name, size, "fingerprint-mismatch"))

    if args.max_age_days is not None:
        cutoff = now - args.max_age_days * 86400.0
        for name, size, mtime in entries:
            if name not in victims and mtime < cutoff \
                    and old_enough(mtime):
                victims.add(name)
                removals.append((name, size, "age-cap"))

    if args.max_bytes is not None:
        live = [(mtime, name, size)
                for name, size, mtime in entries if name not in victims]
        total = sum(size for _, _, size in live)
        for mtime, name, size in sorted(live):
            if total <= args.max_bytes:
                break
            if not old_enough(mtime):
                # Oldest-first order means everything after this is
                # younger still: the cap stays exceeded until the
                # entries age past the write-guard window.
                break
            victims.add(name)
            removals.append((name, size, "size-cap"))
            total -= size

    return removals


def main():
    ap = argparse.ArgumentParser(
        description="Evict result-cache entries by size/age/"
                    "fingerprint and clean orphan temporaries.")
    ap.add_argument("cache_dir", help="the VBR_CACHE_DIR to collect")
    ap.add_argument("--max-bytes", type=int, default=None,
                    help="size cap for the entry set (oldest evicted "
                         "first)")
    ap.add_argument("--max-age-days", type=float, default=None,
                    help="evict entries older than this many days")
    ap.add_argument("--fingerprint", default=None,
                    help="evict entries whose fingerprint field "
                         "differs from this value (pass the live "
                         "build's fingerprint)")
    ap.add_argument("--min-age-seconds", type=float, default=300.0,
                    help="never remove anything younger than this "
                         "(default: %(default)s; guards in-flight "
                         "writes)")
    ap.add_argument("--dry-run", action="store_true",
                    help="print the eviction plan, remove nothing")
    args = ap.parse_args()

    if not os.path.isdir(args.cache_dir):
        print(f"cache_gc: no such directory: {args.cache_dir}",
              file=sys.stderr)
        return 2
    if args.max_bytes is not None and args.max_bytes < 0:
        ap.error("--max-bytes must be >= 0")
    if args.max_age_days is not None and args.max_age_days < 0:
        ap.error("--max-age-days must be >= 0")

    now = time.time()
    entries, orphans = scan(args.cache_dir)
    removals = plan(args.cache_dir, entries, orphans, now, args)

    freed = sum(size for _, size, _ in removals)
    if args.dry_run:
        for name, size, reason in removals:
            print(f"[cache-gc] would remove {name} "
                  f"({size} bytes, {reason})")
        print(f"[cache-gc] dry run: {len(removals)} removal(s), "
              f"{freed} byte(s)")
        return 0

    failed = 0
    journal_path = os.path.join(args.cache_dir, JOURNAL)
    with open(journal_path, "a", encoding="utf-8") as journal:
        for name, size, reason in removals:
            try:
                os.remove(os.path.join(args.cache_dir, name))
            except FileNotFoundError:
                continue  # concurrent GC got there first
            except OSError as e:
                print(f"[cache-gc] failed to remove {name}: {e}",
                      file=sys.stderr)
                failed += 1
                continue
            journal.write(json.dumps(
                {"action": "evict", "file": name, "reason": reason,
                 "bytes": size}) + "\n")

    print(f"[cache-gc] {args.cache_dir}: scanned "
          f"{len(entries)} entr(ies), removed {len(removals) - failed}"
          f", freed ~{freed} byte(s)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
