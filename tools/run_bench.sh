#!/bin/bash
# Run every figure/table/ablation harness and collect the results:
#   results/bench_full.txt           - concatenated stdout tables
#   results/BENCH_<name>.json        - machine-readable report per harness
#
# A harness that fails no longer kills the whole run: its nonzero exit
# is captured, the sweep continues, and a final summary lists every
# failed harness (the script then exits 1).
#
# Usage: tools/run_bench.sh [build-dir] [results-dir]
# Knobs: VBR_SCALE (default 1.0), VBR_MP_CORES, VBR_THREADS,
#        VBR_FAULTS (fault_detection has its own default plan),
#        VBR_FAIL_DIR (failure artifacts; default: results-dir),
#        VBR_CACHE_DIR (persistent result cache; default: off),
#        VBR_SHARD (i/N job partition; default: unsharded),
#        VBR_JOB_TIMEOUT_MS (per-job wall-clock watchdog; default: off),
#        VBR_RETRY_BACKOFF_MS (guarded-retry backoff base; default 250).
#
# When the sweep-service knobs are active, every harness prints a
# "[sweep] <name>: jobs=... simulated=... cache_hits=..." line; the
# script aggregates them into a per-run cache summary at the end.
set -euo pipefail

build_dir=${1:-build}
results_dir=${2:-results}
scale=${VBR_SCALE:-1.0}

if [ ! -d "$build_dir/bench" ]; then
    echo "error: $build_dir/bench not found (build first)" >&2
    exit 1
fi
mkdir -p "$results_dir"

# Fixed order: figures, tables, sections, ablations, microbenchmarks,
# fault-injection coverage.
harnesses="
fig5_performance
fig6_bandwidth
fig7_rob_occupancy
fig8_constrained_lq
table1_lq_attributes
table2_cam_model
sec51_squash_elimination
sec53_power_model
ablation_dep_predictor
ablation_replay_bandwidth
ablation_store_prefetch
ablation_value_prediction
ablation_window_scaling
micro_lsq_structures
fault_detection
mp16_gigaplane
trace_replay
"

out="$results_dir/bench_full.txt"
: > "$out"
failed=""
for name in $harnesses; do
    bin="$build_dir/bench/$name"
    if [ ! -x "$bin" ]; then
        echo "error: missing harness $bin" >&2
        failed="$failed $name(missing)"
        continue
    fi
    echo "== $name (VBR_SCALE=$scale) ==" | tee -a "$out"
    rc=0
    VBR_SCALE=$scale VBR_BENCH_DIR=$results_dir \
        VBR_FAIL_DIR=${VBR_FAIL_DIR:-$results_dir} \
        VBR_CACHE_DIR=${VBR_CACHE_DIR:-} \
        VBR_SHARD=${VBR_SHARD:-} \
        "$bin" >> "$out" 2>&1 || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "!! $name exited with status $rc" | tee -a "$out"
        failed="$failed $name($rc)"
    fi
    echo >> "$out"
done

# Sweep-service summary: per-harness job resolution plus run totals,
# built from the [sweep] lines the spec-based harnesses print.
if grep -q '^\[sweep\]' "$out"; then
    echo "sweep service summary (cache: ${VBR_CACHE_DIR:-off}," \
         "shard: ${VBR_SHARD:-0/1}):"
    # Keep the [sweep] prefix: sweep_service.py aggregates these lines
    # from this transcript (harness stdout only lands in bench_full.txt).
    grep '^\[sweep\]' "$out"
    grep '^\[sweep\]' "$out" | awk '
        { for (i = 3; i <= NF; ++i) {
              split($i, kv, "=");
              tot[kv[1]] += kv[2];
          } }
        END { printf "  total: jobs=%d simulated=%d cache_hits=%d " \
                     "shard_skipped=%d quarantined=%d " \
                     "store_failures=%d\n",
                     tot["jobs"], tot["simulated"], tot["cache_hits"],
                     tot["shard_skipped"], tot["quarantined"],
                     tot["store_failures"]; }'
fi

echo "wrote $out and $(ls "$results_dir"/BENCH_*.json 2>/dev/null | wc -l) JSON reports"
if [ -n "$failed" ]; then
    echo "FAILED harnesses:$failed" >&2
    exit 1
fi
echo "all harnesses passed"
