#!/bin/sh
# Run every figure/table/ablation harness and collect the results:
#   results/bench_full.txt           - concatenated stdout tables
#   results/BENCH_<name>.json        - machine-readable report per harness
#
# Usage: tools/run_bench.sh [build-dir] [results-dir]
# Knobs: VBR_SCALE (default 1.0), VBR_MP_CORES, VBR_THREADS.
set -eu

build_dir=${1:-build}
results_dir=${2:-results}
scale=${VBR_SCALE:-1.0}

if [ ! -d "$build_dir/bench" ]; then
    echo "error: $build_dir/bench not found (build first)" >&2
    exit 1
fi
mkdir -p "$results_dir"

# Fixed order: figures, tables, sections, ablations, microbenchmarks.
harnesses="
fig5_performance
fig6_bandwidth
fig7_rob_occupancy
fig8_constrained_lq
table1_lq_attributes
table2_cam_model
sec51_squash_elimination
sec53_power_model
ablation_dep_predictor
ablation_replay_bandwidth
ablation_store_prefetch
ablation_value_prediction
ablation_window_scaling
micro_lsq_structures
"

out="$results_dir/bench_full.txt"
: > "$out"
for name in $harnesses; do
    bin="$build_dir/bench/$name"
    if [ ! -x "$bin" ]; then
        echo "error: missing harness $bin" >&2
        exit 1
    fi
    echo "== $name (VBR_SCALE=$scale) ==" | tee -a "$out"
    VBR_SCALE=$scale VBR_BENCH_DIR=$results_dir "$bin" >> "$out"
    echo >> "$out"
done

echo "wrote $out and $(ls "$results_dir"/BENCH_*.json | wc -l) JSON reports"
