/**
 * @file
 * The `vbr-trace/1` binary format: a committed-operation trace
 * captured at the commit stage, replayable by the ordering-only
 * simulation tier (trace_replay.hpp).
 *
 * Layout (all multi-byte integers are LEB128 varints unless noted):
 *
 *   magic        "vbr-trace/1\n"
 *   header       varint cores, memorySize, versionsTracked(0/1),
 *                producerScheme; 8 raw bytes programDigest (LE);
 *                varint labelLen + raw label bytes
 *   frames       tag 0x01 = commit frame:
 *                  varint core, seq, pc, addr, size;
 *                  1 byte kindBits (isRead | isWrite<<1 | isFence<<2);
 *                  varint orderFlags, readValue, readVersion,
 *                         writeValue, writeVersion, performCycle,
 *                         commitCycle
 *                tag 0x02 = ordering event:
 *                  1 byte kind; varint core, seq, pc, cycle;
 *                  1 byte unnecessary
 *   trailer      tag 0xFF; varint frames, cycles, instructions;
 *                8 raw bytes finalMemDigest (LE);
 *                8 raw bytes fileDigest (LE) — FNV-1a-64 over every
 *                preceding byte of the file.
 *
 * The fileDigest doubles as the trace's canonical digest: two byte-
 * identical traces share it, and it folds into the replay JobKey so
 * cached replay-tier results key on the exact trace content. Readers
 * verify it before decoding a single frame, so truncation and bit
 * rot surface as a clean TraceError, never a crash or a wrong
 * verdict. Commit frames appear in true global drain/retire order
 * (the MP tick's serial commit phase runs cores in core-index order
 * against live memory), so replaying write frames in file order
 * reconstructs the final memory image exactly.
 */

#ifndef VBR_TRACE_TRACE_FORMAT_HPP
#define VBR_TRACE_TRACE_FORMAT_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/commit_observer.hpp"

namespace vbr
{

/** Any malformed-trace condition (bad magic, digest mismatch,
 * truncated varint, unknown frame tag). Callers degrade to a
 * quarantined FAIL artifact, never a crash. */
class TraceError : public std::runtime_error
{
  public:
    explicit TraceError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

constexpr const char *kTraceMagic = "vbr-trace/1\n";
constexpr std::uint8_t kCommitFrameTag = 0x01;
constexpr std::uint8_t kOrderingFrameTag = 0x02;
constexpr std::uint8_t kTrailerTag = 0xFF;

/** Fixed header facts about the producing run. */
struct TraceHeader
{
    unsigned cores = 0;
    std::uint64_t memorySize = 0;
    bool versionsTracked = false;
    /** OrderingScheme of the producing run, as its numeric value
     * (the trace layer does not depend on src/ordering). */
    unsigned producerScheme = 0;
    std::uint64_t programDigest = 0;
    std::string label; ///< producing job name, informational
};

/** End-of-trace totals. */
struct TraceTrailer
{
    std::uint64_t frames = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t finalMemDigest = 0;
    std::uint64_t fileDigest = 0;
};

// --- encoding helpers -------------------------------------------------

void appendVarint(std::vector<std::uint8_t> &out, std::uint64_t v);
void appendFixed64(std::vector<std::uint8_t> &out, std::uint64_t v);

void appendHeader(std::vector<std::uint8_t> &out,
                  const TraceHeader &header);
void appendCommitFrame(std::vector<std::uint8_t> &out,
                       const MemCommitEvent &ev);
void appendOrderingFrame(std::vector<std::uint8_t> &out,
                         const OrderingEvent &ev);
/** Appends the trailer INCLUDING the file digest, which is computed
 * over @p out's current contents plus the trailer's own body. */
void appendTrailer(std::vector<std::uint8_t> &out,
                   const TraceTrailer &trailer);

/** FNV-1a-64 over a byte range (the trace layer's digest). */
std::uint64_t fnv1a64(const std::uint8_t *data, std::size_t n,
                      std::uint64_t basis = 14695981039346656037ULL);

// --- decoding ---------------------------------------------------------

/** Streaming visitor over a verified trace. */
class TraceVisitor
{
  public:
    virtual ~TraceVisitor() = default;
    virtual void onHeader(const TraceHeader &header) = 0;
    virtual void onCommitFrame(const MemCommitEvent &ev) = 0;
    virtual void onOrderingFrame(const OrderingEvent &ev) = 0;
    virtual void onTrailer(const TraceTrailer &trailer) = 0;
};

/**
 * Decode @p bytes, driving @p visitor. Verifies the file digest
 * before visiting anything and every structural invariant during the
 * walk; throws TraceError on the first violation.
 */
void walkTrace(const std::vector<std::uint8_t> &bytes,
               TraceVisitor &visitor);

/** Read just the header + trailer (cheap: digest check + header
 * decode + fixed-size trailer decode). Throws TraceError. */
void readTraceSummary(const std::vector<std::uint8_t> &bytes,
                      TraceHeader &header, TraceTrailer &trailer);

/** Load a trace file and return its canonical digest (the trailer's
 * fileDigest, after verification). Throws TraceError on unreadable
 * or malformed files. */
std::uint64_t traceFileDigest(const std::string &path);

} // namespace vbr

#endif // VBR_TRACE_TRACE_FORMAT_HPP
