#include "trace/trace_format.hpp"

#include <cstring>

#include "common/atomic_file.hpp"

namespace vbr
{

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t n, std::uint64_t basis)
{
    std::uint64_t h = basis;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ULL;
    }
    return h;
}

void
appendVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

void
appendFixed64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
appendHeader(std::vector<std::uint8_t> &out, const TraceHeader &header)
{
    const char *m = kTraceMagic;
    out.insert(out.end(), m, m + std::strlen(m));
    appendVarint(out, header.cores);
    appendVarint(out, header.memorySize);
    appendVarint(out, header.versionsTracked ? 1 : 0);
    appendVarint(out, header.producerScheme);
    appendFixed64(out, header.programDigest);
    appendVarint(out, header.label.size());
    out.insert(out.end(), header.label.begin(), header.label.end());
}

void
appendCommitFrame(std::vector<std::uint8_t> &out,
                  const MemCommitEvent &ev)
{
    out.push_back(kCommitFrameTag);
    appendVarint(out, ev.core);
    appendVarint(out, ev.seq);
    appendVarint(out, ev.pc);
    appendVarint(out, ev.addr);
    appendVarint(out, ev.size);
    out.push_back(static_cast<std::uint8_t>(
        (ev.isRead ? 1 : 0) | (ev.isWrite ? 2 : 0) |
        (ev.isFence ? 4 : 0)));
    appendVarint(out, ev.orderFlags);
    appendVarint(out, ev.readValue);
    appendVarint(out, ev.readVersion);
    appendVarint(out, ev.writeValue);
    appendVarint(out, ev.writeVersion);
    appendVarint(out, ev.performCycle);
    appendVarint(out, ev.commitCycle);
}

void
appendOrderingFrame(std::vector<std::uint8_t> &out,
                    const OrderingEvent &ev)
{
    out.push_back(kOrderingFrameTag);
    out.push_back(static_cast<std::uint8_t>(ev.kind));
    appendVarint(out, ev.core);
    appendVarint(out, ev.seq);
    appendVarint(out, ev.pc);
    appendVarint(out, ev.cycle);
    out.push_back(ev.unnecessary ? 1 : 0);
}

void
appendTrailer(std::vector<std::uint8_t> &out,
              const TraceTrailer &trailer)
{
    out.push_back(kTrailerTag);
    appendVarint(out, trailer.frames);
    appendVarint(out, trailer.cycles);
    appendVarint(out, trailer.instructions);
    appendFixed64(out, trailer.finalMemDigest);
    // The file digest covers everything written so far, including
    // the trailer body above.
    appendFixed64(out, fnv1a64(out.data(), out.size()));
}

namespace
{

/** Bounds-checked reader over the trace bytes. */
class Cursor
{
  public:
    Cursor(const std::uint8_t *data, std::size_t n)
        : data_(data), n_(n)
    {
    }

    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return n_ - pos_; }

    std::uint8_t
    byte()
    {
        if (pos_ >= n_)
            throw TraceError("trace truncated mid-frame");
        return data_[pos_++];
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            if (shift >= 64)
                throw TraceError("trace varint overflows 64 bits");
            std::uint8_t b = byte();
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if ((b & 0x80) == 0)
                return v;
            shift += 7;
        }
    }

    std::uint64_t
    fixed64()
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(byte()) << (8 * i);
        return v;
    }

    std::string
    bytes(std::size_t len)
    {
        if (len > remaining())
            throw TraceError("trace truncated mid-string");
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      len);
        pos_ += len;
        return s;
    }

  private:
    const std::uint8_t *data_;
    std::size_t n_;
    std::size_t pos_ = 0;
};

void
verifyFileDigest(const std::vector<std::uint8_t> &bytes)
{
    // Cheap first line of defense against truncation and bit rot:
    // the last 8 bytes must be the FNV-1a-64 of everything before
    // them. Only then is any frame decoded.
    std::size_t min_len = std::strlen(kTraceMagic) + 8;
    if (bytes.size() < min_len)
        throw TraceError("trace too short to carry a digest");
    std::uint64_t stored = 0;
    for (unsigned i = 0; i < 8; ++i)
        stored |= static_cast<std::uint64_t>(
                      bytes[bytes.size() - 8 + i])
                  << (8 * i);
    std::uint64_t computed =
        fnv1a64(bytes.data(), bytes.size() - 8);
    if (stored != computed)
        throw TraceError("trace file digest mismatch (truncated or "
                         "corrupt)");
}

TraceHeader
decodeHeader(Cursor &c)
{
    std::size_t magic_len = std::strlen(kTraceMagic);
    if (c.bytes(magic_len) != kTraceMagic)
        throw TraceError("not a vbr-trace/1 file (bad magic)");
    TraceHeader h;
    h.cores = static_cast<unsigned>(c.varint());
    h.memorySize = c.varint();
    h.versionsTracked = c.varint() != 0;
    h.producerScheme = static_cast<unsigned>(c.varint());
    h.programDigest = c.fixed64();
    h.label = c.bytes(static_cast<std::size_t>(c.varint()));
    return h;
}

} // namespace

void
walkTrace(const std::vector<std::uint8_t> &bytes, TraceVisitor &visitor)
{
    verifyFileDigest(bytes);
    Cursor c(bytes.data(), bytes.size());
    visitor.onHeader(decodeHeader(c));

    std::uint64_t frames = 0;
    for (;;) {
        std::uint8_t tag = c.byte();
        if (tag == kCommitFrameTag) {
            MemCommitEvent ev;
            ev.core = static_cast<CoreId>(c.varint());
            ev.seq = c.varint();
            ev.pc = static_cast<std::uint32_t>(c.varint());
            ev.addr = c.varint();
            ev.size = static_cast<unsigned>(c.varint());
            std::uint8_t kind = c.byte();
            ev.isRead = (kind & 1) != 0;
            ev.isWrite = (kind & 2) != 0;
            ev.isFence = (kind & 4) != 0;
            ev.orderFlags = static_cast<std::uint16_t>(c.varint());
            ev.readValue = c.varint();
            ev.readVersion = static_cast<std::uint32_t>(c.varint());
            ev.writeValue = c.varint();
            ev.writeVersion = static_cast<std::uint32_t>(c.varint());
            ev.performCycle = c.varint();
            ev.commitCycle = c.varint();
            ++frames;
            visitor.onCommitFrame(ev);
        } else if (tag == kOrderingFrameTag) {
            OrderingEvent ev;
            std::uint8_t kind = c.byte();
            if (kind > static_cast<std::uint8_t>(
                           OrderingEventKind::WildStore))
                throw TraceError("unknown ordering-event kind");
            ev.kind = static_cast<OrderingEventKind>(kind);
            ev.core = static_cast<CoreId>(c.varint());
            ev.seq = c.varint();
            ev.pc = static_cast<std::uint32_t>(c.varint());
            ev.cycle = c.varint();
            ev.unnecessary = c.byte() != 0;
            ++frames;
            visitor.onOrderingFrame(ev);
        } else if (tag == kTrailerTag) {
            TraceTrailer t;
            t.frames = c.varint();
            t.cycles = c.varint();
            t.instructions = c.varint();
            t.finalMemDigest = c.fixed64();
            t.fileDigest = c.fixed64();
            if (t.frames != frames)
                throw TraceError("trailer frame count mismatch");
            if (c.remaining() != 0)
                throw TraceError("trailing garbage after trailer");
            visitor.onTrailer(t);
            return;
        } else {
            throw TraceError("unknown trace frame tag");
        }
    }
}

namespace
{

/** Visitor that keeps only header + trailer. */
class SummaryVisitor final : public TraceVisitor
{
  public:
    TraceHeader header;
    TraceTrailer trailer;
    void onHeader(const TraceHeader &h) override { header = h; }
    void onCommitFrame(const MemCommitEvent &) override {}
    void onOrderingFrame(const OrderingEvent &) override {}
    void onTrailer(const TraceTrailer &t) override { trailer = t; }
};

} // namespace

void
readTraceSummary(const std::vector<std::uint8_t> &bytes,
                 TraceHeader &header, TraceTrailer &trailer)
{
    SummaryVisitor v;
    walkTrace(bytes, v);
    header = v.header;
    trailer = v.trailer;
}

std::uint64_t
traceFileDigest(const std::string &path)
{
    std::string contents;
    if (!readFileToString(path, contents))
        throw TraceError("cannot read trace file: " + path);
    std::vector<std::uint8_t> bytes(contents.begin(), contents.end());
    TraceHeader h;
    TraceTrailer t;
    readTraceSummary(bytes, h, t);
    return t.fileDigest;
}

} // namespace vbr
