#include "trace/trace_replay.hpp"

#include <memory>

#include "common/atomic_file.hpp"
#include "isa/program.hpp"
#include "mem/memory_image.hpp"

namespace vbr
{

std::uint64_t
memoryImageDigest(const MemoryImage &mem)
{
    const std::vector<std::uint8_t> &b = mem.bytes();
    return fnv1a64(b.data(), b.size());
}

namespace
{

/** The replay tier proper: one streaming pass over the trace. */
class ReplayVisitor final : public TraceVisitor
{
  public:
    explicit ReplayVisitor(const TraceReplaySpec &spec) : spec_(spec) {}

    TraceReplayResult result;

    void
    onHeader(const TraceHeader &h) override
    {
        result.header = h;
        if (spec_.programDigest != 0 &&
            spec_.programDigest != h.programDigest)
            throw TraceError(
                "trace was captured from a different program "
                "(program digest mismatch)");
        mem_ = std::make_unique<MemoryImage>(
            static_cast<Addr>(h.memorySize), h.versionsTracked);
        if (spec_.program != nullptr)
            mem_->applyInits(*spec_.program);
        if (spec_.attachScChecker)
            checker_ = std::make_unique<ScChecker>(spec_.checkerMaxOps,
                                                   spec_.checkerModel);
        projectPolicy_ = spec_.scheme == OrderingScheme::ValueReplay;
    }

    void
    onCommitFrame(const MemCommitEvent &ev) override
    {
        ++result.commitFrames;
        if (checker_)
            checker_->onMemCommit(ev);
        if (ev.isWrite)
            applyWrite(ev);
        if (ev.isRead && !ev.isWrite && !ev.isFence) {
            // Pure load: the only op kind the replay machinery ever
            // classifies (SWAPs issue at commit, fences don't access
            // memory).
            ++result.committedLoads;
            if (projectPolicy_)
                projectLoad(ev);
        }
    }

    void
    onOrderingFrame(const OrderingEvent &ev) override
    {
        ++result.orderingFrames;
        switch (ev.kind) {
        case OrderingEventKind::ReplayUnresolved:
            ++result.replaysUnresolved;
            break;
        case OrderingEventKind::ReplayConsistency:
            ++result.replaysConsistency;
            break;
        case OrderingEventKind::ReplayFiltered:
            ++result.replaysFiltered;
            break;
        case OrderingEventKind::SquashReplay:
            ++result.squashReplay;
            break;
        case OrderingEventKind::SquashLqRaw:
            ++result.squashLqRaw;
            if (ev.unnecessary)
                ++result.squashLqRawUnnec;
            break;
        case OrderingEventKind::SquashLqSnoop:
            ++result.squashLqSnoop;
            if (ev.unnecessary)
                ++result.squashLqSnoopUnnec;
            break;
        case OrderingEventKind::WildLoad:
            // Wild loads retire under the off-map grace path without
            // a commit frame but still count as committed loads.
            ++result.committedLoads;
            break;
        case OrderingEventKind::WildStore:
            break;
        }
    }

    void
    onTrailer(const TraceTrailer &t) override
    {
        result.trailer = t;
        result.finalMemDigest = memoryImageDigest(*mem_);
        result.memDigestMatch =
            result.finalMemDigest == t.finalMemDigest;
        if (checker_) {
            result.checker = checker_->check();
            result.checkerRan = true;
        }
    }

  private:
    void
    applyWrite(const MemCommitEvent &ev)
    {
        // The file digest vouches for integrity, not well-formedness
        // of a hand-crafted file; bound-check so a bad frame is a
        // TraceError, never an assertion failure.
        bool sizeOk = ev.size == 1 || ev.size == 2 || ev.size == 4 ||
                      ev.size == 8;
        if (!sizeOk || ev.addr % ev.size != 0 ||
            ev.addr + ev.size > mem_->size())
            throw TraceError("write frame outside the memory image");
        mem_->write(ev.addr, ev.size, ev.writeValue);
        if (mem_->trackingVersions() &&
            mem_->version(ev.addr) != ev.writeVersion)
            ++result.versionMismatches;
    }

    void
    projectLoad(const MemCommitEvent &ev)
    {
        using namespace order_flags;
        ReplayLoadInfo info;
        info.bypassedUnresolvedStore =
            (ev.orderFlags & kBypassedUnresolvedStore) != 0;
        info.issuedOutOfOrder =
            (ev.orderFlags & kIssuedOutOfOrder) != 0;
        info.issuedOutOfOrderSched =
            (ev.orderFlags & kIssuedOutOfOrderSched) != 0;
        info.issuedBeforeOlderLoad =
            (ev.orderFlags & kIssuedBeforeOlderLoad) != 0;

        // Re-arm the recent-event marks exactly as the load saw them
        // at classification time: arming with the load's own seq
        // makes {miss,snoop}ArmedFor(seq) true and leaves younger
        // state untouched (the shim is per-load, not per-core).
        RecentEventFilterState state;
        if ((ev.orderFlags & kMissArmed) != 0)
            state.armMiss(ev.seq);
        if ((ev.orderFlags & kSnoopArmed) != 0)
            state.armSnoop(ev.seq);

        ReplayReason projected =
            classifyReplay(spec_.filters, info, ev.seq, state);
        switch (projected) {
        case ReplayReason::Filtered:
            ++result.policyFiltered;
            break;
        case ReplayReason::UnresolvedStore:
            ++result.policyUnresolved;
            break;
        case ReplayReason::Consistency:
            ++result.policyConsistency;
            break;
        }

        // The producer recorded its own final classification in the
        // same flag word (decideReplay, refreshed by the pre-commit
        // re-validation); compare when one is present.
        bool recordedAny =
            (ev.orderFlags & (kReplayIssued | kReplayFiltered |
                              kReasonUnresolved | kReasonConsistency)) != 0;
        if (!recordedAny)
            return;
        ReplayReason recorded = ReplayReason::Consistency;
        if ((ev.orderFlags & kReplayFiltered) != 0)
            recorded = ReplayReason::Filtered;
        else if ((ev.orderFlags & kReasonUnresolved) != 0)
            recorded = ReplayReason::UnresolvedStore;
        if (projected != recorded)
            ++result.policyMismatches;
    }

    const TraceReplaySpec &spec_;
    std::unique_ptr<MemoryImage> mem_;
    std::unique_ptr<ScChecker> checker_;
    bool projectPolicy_ = false;
};

} // namespace

TraceReplayResult
replayTrace(const std::vector<std::uint8_t> &bytes,
            const TraceReplaySpec &spec)
{
    ReplayVisitor v(spec);
    walkTrace(bytes, v);
    return v.result;
}

TraceReplayResult
replayTraceFile(const std::string &path, const TraceReplaySpec &spec)
{
    std::string contents;
    if (!readFileToString(path, contents))
        throw TraceError("cannot read trace file: " + path);
    std::vector<std::uint8_t> bytes(contents.begin(), contents.end());
    return replayTrace(bytes, spec);
}

} // namespace vbr
