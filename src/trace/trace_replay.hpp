/**
 * @file
 * The ordering-only fast simulation tier: replays a captured
 * vbr-trace/1 file through the §3 replay-classification policy and
 * the constraint-graph consistency checker without fetching,
 * renaming, issuing, or writing back a single instruction.
 *
 * Equivalence contract with the full simulator (DESIGN.md §14):
 *
 *  - The ordering verdict counters (replay splits, squash totals,
 *    committed loads) are reproduced from ordering-event frames that
 *    the full simulator emitted at the exact source lines where the
 *    corresponding RunStats counters increment, so the replay tier's
 *    totals are identical BY CONSTRUCTION, not by re-simulation.
 *  - The final memory image is reconstructed by applying write
 *    frames in file order (capture pins the MP tick serial, so file
 *    order IS global drain order) on top of the program's data
 *    initializers; its digest must equal the trailer's.
 *  - The SC/TSO/WO verdict is recomputed by feeding commit frames to
 *    the same ScChecker the full simulator attaches.
 *
 * On top of the verdict replay, the tier re-runs the pure §3.3
 * classification function over every committed load's recorded
 * issue-time facts under a CALLER-CHOSEN filter configuration (the
 * "drive any backend from one trace" mode): policy counters report
 * how that configuration would have classified the same dynamic
 * loads, and policyMismatches counts divergence from the producer's
 * recorded decisions — the cheap scheme-ablation primitive used by
 * tools/trace_tool.py diff.
 */

#ifndef VBR_TRACE_TRACE_REPLAY_HPP
#define VBR_TRACE_TRACE_REPLAY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "check/constraint_graph.hpp"
#include "lsq/replay_filters.hpp"
#include "ordering/scheme.hpp"
#include "trace/trace_format.hpp"

namespace vbr
{

class MemoryImage;
class Program;

/** What to replay the trace through. */
struct TraceReplaySpec
{
    /** Program that produced the trace; supplies the initial memory
     * image (data initializers) for reconstruction. */
    const Program *program = nullptr;

    /** Expected content digest of @p program (the job layer's
     * programDigest()); when nonzero it must match the trace
     * header's, so a trace can never be replayed against the wrong
     * program's initializers. */
    std::uint64_t programDigest = 0;

    /** Ordering scheme whose policy to project the trace through.
     * The policy counters are only computed for ValueReplay (the
     * associative load queue has no per-load classification). */
    OrderingScheme scheme = OrderingScheme::ValueReplay;

    /** Replay filters for the policy projection (may differ from the
     * producing run's — that is the scheme-ablation use case). */
    ReplayFilterConfig filters;

    /** Feed commit frames to a consistency checker and report its
     * verdict. */
    bool attachScChecker = false;
    ConsistencyModel checkerModel =
        ConsistencyModel::SequentialConsistency;
    std::size_t checkerMaxOps = 2'000'000;
};

/** Everything the replay tier derives from one trace. */
struct TraceReplayResult
{
    TraceHeader header;
    TraceTrailer trailer;
    std::uint64_t commitFrames = 0;
    std::uint64_t orderingFrames = 0;

    // --- ordering verdicts, identical to the producing run ------------
    std::uint64_t committedLoads = 0; ///< pure loads + wild loads
    std::uint64_t replaysUnresolved = 0;
    std::uint64_t replaysConsistency = 0;
    std::uint64_t replaysFiltered = 0;
    std::uint64_t squashReplay = 0;
    std::uint64_t squashLqRaw = 0;
    std::uint64_t squashLqRawUnnec = 0;
    std::uint64_t squashLqSnoop = 0;
    std::uint64_t squashLqSnoopUnnec = 0;

    // --- memory reconstruction ----------------------------------------
    std::uint64_t finalMemDigest = 0; ///< recomputed from write frames
    bool memDigestMatch = false;      ///< == trailer.finalMemDigest
    /** Write frames whose recorded post-write word version differed
     * from the reconstruction's (0 unless the producer is buggy; the
     * file digest already rules out corruption). */
    std::uint64_t versionMismatches = 0;

    // --- policy projection (spec.scheme == ValueReplay only) ----------
    std::uint64_t policyUnresolved = 0;
    std::uint64_t policyConsistency = 0;
    std::uint64_t policyFiltered = 0;
    /** Committed loads whose projected classification differs from
     * the producer's recorded decision (0 when replaying a trace
     * through its own configuration). */
    std::uint64_t policyMismatches = 0;

    // --- consistency checker ------------------------------------------
    bool checkerRan = false;
    CheckResult checker;
};

/** FNV-1a-64 over a memory image's bytes — the final-image digest
 * recorded in trace trailers and compared by the replay tier. */
std::uint64_t memoryImageDigest(const MemoryImage &mem);

/** Replay an in-memory trace. Throws TraceError on any malformed
 * input (digest mismatch, program digest mismatch, out-of-range
 * write frame). */
TraceReplayResult replayTrace(const std::vector<std::uint8_t> &bytes,
                              const TraceReplaySpec &spec);

/** Load @p path and replay it. Throws TraceError (also on
 * unreadable files). */
TraceReplayResult replayTraceFile(const std::string &path,
                                  const TraceReplaySpec &spec);

} // namespace vbr

#endif // VBR_TRACE_TRACE_REPLAY_HPP
