#include "trace/trace_writer.hpp"

#include <utility>

#include "common/atomic_file.hpp"

namespace vbr
{

TraceWriter::TraceWriter(std::string path, const TraceHeader &header)
    : path_(std::move(path))
{
    bytes_.reserve(1 << 16);
    appendHeader(bytes_, header);
}

void
TraceWriter::onMemCommit(const MemCommitEvent &event)
{
    appendCommitFrame(bytes_, event);
    ++frames_;
}

void
TraceWriter::onOrderingEvent(const OrderingEvent &event)
{
    appendOrderingFrame(bytes_, event);
    ++frames_;
}

bool
TraceWriter::finalize(std::uint64_t cycles,
                      std::uint64_t instructions,
                      std::uint64_t final_mem_digest)
{
    TraceTrailer t;
    t.frames = frames_;
    t.cycles = cycles;
    t.instructions = instructions;
    t.finalMemDigest = final_mem_digest;
    appendTrailer(bytes_, t);
    // The digest is the last 8 bytes appendTrailer computed.
    digest_ = 0;
    for (unsigned i = 0; i < 8; ++i)
        digest_ |= static_cast<std::uint64_t>(
                       bytes_[bytes_.size() - 8 + i])
                   << (8 * i);
    std::string payload(bytes_.begin(), bytes_.end());
    return atomicWriteFile(path_, payload);
}

} // namespace vbr
