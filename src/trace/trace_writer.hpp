/**
 * @file
 * Trace capture: a CommitObserver + OrderingEventSink pair that
 * streams committed memory operations and ordering decisions into an
 * in-memory vbr-trace/1 image, written atomically at finalize. One
 * writer serves a whole System; capture forces the serial MP tick
 * (System::parallelEligible), so frames arrive in the true global
 * commit order and the file is byte-identical across every thread
 * and fast-forward knob.
 */

#ifndef VBR_TRACE_TRACE_WRITER_HPP
#define VBR_TRACE_TRACE_WRITER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_format.hpp"

namespace vbr
{

/** Captures one run's trace; write it out with finalize(). */
class TraceWriter final : public CommitObserver,
                          public OrderingEventSink
{
  public:
    TraceWriter(std::string path, const TraceHeader &header);

    void onMemCommit(const MemCommitEvent &event) override;
    void onOrderingEvent(const OrderingEvent &event) override;

    /**
     * Append the trailer and atomically write the file. Returns true
     * on success; the trace's canonical digest (== the file digest)
     * is then available via digest(). Call exactly once, after the
     * run completes.
     */
    bool finalize(std::uint64_t cycles, std::uint64_t instructions,
                  std::uint64_t final_mem_digest);

    const std::string &path() const { return path_; }

    /** Canonical digest; valid after a successful finalize(). */
    std::uint64_t digest() const { return digest_; }

    std::uint64_t frames() const { return frames_; }

  private:
    std::string path_;
    std::vector<std::uint8_t> bytes_;
    std::uint64_t frames_ = 0;
    std::uint64_t digest_ = 0;
};

} // namespace vbr

#endif // VBR_TRACE_TRACE_WRITER_HPP
