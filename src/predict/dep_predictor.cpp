#include "predict/dep_predictor.hpp"

namespace vbr
{

SimpleDepPredictor::SimpleDepPredictor(unsigned entries,
                                       Cycle clear_interval)
    : wait_(entries, false), clearInterval_(clear_interval)
{
}

DepAdvice
SimpleDepPredictor::adviseLoad(std::uint32_t pc)
{
    DepAdvice advice;
    if (wait_[pc % wait_.size()]) {
        advice.waitForAllStores = true;
        ++stats_.counter("loads_stalled_by_predictor");
    }
    return advice;
}

void
SimpleDepPredictor::trainViolation(std::uint32_t load_pc,
                                   std::uint32_t /* store_pc */)
{
    wait_[load_pc % wait_.size()] = true;
    ++stats_.counter("violations_trained");
}

void
SimpleDepPredictor::tick(Cycle now)
{
    if (clearInterval_ != 0 && now - lastClear_ >= clearInterval_) {
        std::fill(wait_.begin(), wait_.end(), false);
        lastClear_ = now;
        ++stats_.counter("table_clears");
    }
}

StoreSetPredictor::StoreSetPredictor(unsigned ssit_entries,
                                     unsigned lfst_entries)
    : ssit_(ssit_entries, kNoSet), lfst_(lfst_entries, kNoSeq)
{
}

std::uint16_t &
StoreSetPredictor::ssit(std::uint32_t pc)
{
    return ssit_[pc % ssit_.size()];
}

DepAdvice
StoreSetPredictor::adviseLoad(std::uint32_t pc)
{
    DepAdvice advice;
    std::uint16_t set = ssit(pc);
    if (set != kNoSet) {
        SeqNum store = lfst_[set % lfst_.size()];
        if (store != kNoSeq) {
            advice.waitForStore = store;
            ++stats_.counter("loads_constrained");
        }
    }
    return advice;
}

void
StoreSetPredictor::notifyStoreDispatched(std::uint32_t pc, SeqNum seq)
{
    std::uint16_t set = ssit(pc);
    if (set != kNoSet)
        lfst_[set % lfst_.size()] = seq;
}

void
StoreSetPredictor::notifyStoreRemoved(std::uint32_t pc, SeqNum seq)
{
    std::uint16_t set = ssit(pc);
    if (set != kNoSet && lfst_[set % lfst_.size()] == seq)
        lfst_[set % lfst_.size()] = kNoSeq;
}

void
StoreSetPredictor::trainViolation(std::uint32_t load_pc,
                                  std::uint32_t store_pc)
{
    ++stats_.counter("violations_trained");
    std::uint16_t &load_set = ssit(load_pc);

    if (store_pc == kUnknownStorePc) {
        // Degenerate training when the store is unknown: behave like
        // the simple predictor would (not used by the paper's
        // baseline, provided for completeness).
        if (load_set == kNoSet)
            load_set = nextSetId_++ % lfst_.size();
        return;
    }

    std::uint16_t &store_set = ssit(store_pc);
    if (load_set == kNoSet && store_set == kNoSet) {
        std::uint16_t id = nextSetId_++ % lfst_.size();
        load_set = id;
        store_set = id;
    } else if (load_set == kNoSet) {
        load_set = store_set;
    } else if (store_set == kNoSet) {
        store_set = load_set;
    } else {
        // Both have sets: merge to the smaller id (Chrysos & Emer).
        std::uint16_t winner = std::min(load_set, store_set);
        load_set = winner;
        store_set = winner;
    }
}

} // namespace vbr
