/**
 * @file
 * Memory dependence predictors gating speculative load issue.
 *
 * Two implementations, matching the paper's §3/§4 methodology:
 *
 *  - StoreSetPredictor: Chrysos & Emer store sets (4k-entry SSIT,
 *    128-entry LFST). Used by the *baseline* machine: it can name the
 *    specific store a load must wait for, which requires the
 *    associative load queue to identify the conflicting store when
 *    training.
 *
 *  - SimpleDepPredictor: the Alpha-21264-style PC-indexed single-bit
 *    table used by the *value-based replay* machine, because replay
 *    cannot identify which store caused a mismatch. A set bit makes
 *    the load wait for all prior store addresses to resolve. The
 *    table is cleared periodically so stale bits do not throttle
 *    loads forever (as in the 21264).
 */

#ifndef VBR_PREDICT_DEP_PREDICTOR_HPP
#define VBR_PREDICT_DEP_PREDICTOR_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace vbr
{

/** What a load must wait for before issuing speculatively. */
struct DepAdvice
{
    /** Load must wait until all prior store addresses are resolved. */
    bool waitForAllStores = false;

    /**
     * Load must wait for the in-flight store instance with this
     * sequence number (kNoSeq when unconstrained). Only the store-set
     * predictor produces specific stores.
     */
    SeqNum waitForStore = kNoSeq;
};

/** Common interface consulted at load issue time. */
class DependencePredictor
{
  public:
    virtual ~DependencePredictor() = default;

    /** Advice for a load at @p pc about to issue. */
    virtual DepAdvice adviseLoad(std::uint32_t pc) = 0;

    /** A store at @p pc was dispatched as dynamic instance @p seq. */
    virtual void notifyStoreDispatched(std::uint32_t pc, SeqNum seq) = 0;

    /** The store instance @p seq left the pipeline (retired/squashed). */
    virtual void notifyStoreRemoved(std::uint32_t pc, SeqNum seq) = 0;

    /**
     * A memory-order violation was detected between a load and a
     * store. @p store_pc is valid only for detection mechanisms that
     * can name the store (the associative LQ); value-based replay
     * passes store_pc = kUnknownStorePc.
     */
    virtual void trainViolation(std::uint32_t load_pc,
                                std::uint32_t store_pc) = 0;

    /** Per-cycle hook (periodic clearing etc.). */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * Earliest future cycle at which tick() would do anything
     * observable (kNeverCycle when the predictor has no timed events).
     * Consulted by the fast-forward horizon so periodic table clears
     * land on their exact cycle even when intermediate cycles are
     * skipped.
     */
    virtual Cycle nextEventCycle() const { return kNeverCycle; }

    static constexpr std::uint32_t kUnknownStorePc = 0xffffffff;
};

/** Alpha-21264-style 1-bit wait table. */
class SimpleDepPredictor : public DependencePredictor
{
  public:
    /** @param entries table size; @param clear_interval cycles between
     * table resets (0 disables clearing). */
    explicit SimpleDepPredictor(unsigned entries = 4096,
                                Cycle clear_interval = 32768);

    DepAdvice adviseLoad(std::uint32_t pc) override;
    void notifyStoreDispatched(std::uint32_t, SeqNum) override {}
    void notifyStoreRemoved(std::uint32_t, SeqNum) override {}
    void trainViolation(std::uint32_t load_pc,
                        std::uint32_t store_pc) override;
    void tick(Cycle now) override;

    Cycle
    nextEventCycle() const override
    {
        return clearInterval_ == 0 ? kNeverCycle
                                   : lastClear_ + clearInterval_;
    }

    StatSet &stats() { return stats_; }

  private:
    std::vector<bool> wait_;
    Cycle clearInterval_;
    Cycle lastClear_ = 0;
    StatSet stats_;
};

/** Chrysos/Emer store-set predictor (SSIT + LFST). */
class StoreSetPredictor : public DependencePredictor
{
  public:
    StoreSetPredictor(unsigned ssit_entries = 4096,
                      unsigned lfst_entries = 128);

    DepAdvice adviseLoad(std::uint32_t pc) override;
    void notifyStoreDispatched(std::uint32_t pc, SeqNum seq) override;
    void notifyStoreRemoved(std::uint32_t pc, SeqNum seq) override;
    void trainViolation(std::uint32_t load_pc,
                        std::uint32_t store_pc) override;

    StatSet &stats() { return stats_; }

  private:
    static constexpr std::uint16_t kNoSet = 0xffff;

    std::uint16_t &ssit(std::uint32_t pc);

    std::vector<std::uint16_t> ssit_; ///< pc -> store-set id
    std::vector<SeqNum> lfst_;        ///< set id -> last fetched store
    std::uint16_t nextSetId_ = 0;
    StatSet stats_;
};

} // namespace vbr

#endif // VBR_PREDICT_DEP_PREDICTOR_HPP
