/**
 * @file
 * Last-value load-value predictor. The paper's contribution list
 * points out that value prediction interacts subtly with memory
 * consistency (Martin et al., MICRO 2001) and that value-based replay
 * naturally detects such errors: a value-predicted load is validated
 * by the replay/compare stages like any premature load, so a wrong or
 * consistency-violating prediction squashes at commit.
 *
 * The predictor is deliberately simple (PC-indexed last value with a
 * saturating confidence counter); it exists to demonstrate and test
 * the replay mechanism as a value-speculation safety net, not to win
 * performance.
 */

#ifndef VBR_PREDICT_VALUE_PREDICTOR_HPP
#define VBR_PREDICT_VALUE_PREDICTOR_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace vbr
{

/** PC-indexed last-value predictor with 2-bit confidence. */
class ValuePredictor
{
  public:
    explicit ValuePredictor(unsigned entries = 1024,
                            unsigned confidence_threshold = 3)
        : table_(entries), threshold_(confidence_threshold)
    {
    }

    /** Predicted value for the load at @p pc, when confident. */
    std::optional<Word>
    predict(std::uint32_t pc)
    {
        Entry &e = table_[pc % table_.size()];
        if (e.pc == pc && e.confidence >= threshold_) {
            ++stats_.counter("predictions");
            return e.value;
        }
        return std::nullopt;
    }

    /** Train with the architecturally committed value. */
    void
    train(std::uint32_t pc, Word value)
    {
        Entry &e = table_[pc % table_.size()];
        if (e.pc != pc) {
            e.pc = pc;
            e.value = value;
            e.confidence = 0;
            return;
        }
        if (e.value == value) {
            if (e.confidence < 3)
                ++e.confidence;
        } else {
            e.value = value;
            e.confidence = 0;
        }
    }

    StatSet &stats() { return stats_; }

  private:
    struct Entry
    {
        std::uint32_t pc = 0;
        Word value = 0;
        unsigned confidence = 0;
    };

    std::vector<Entry> table_;
    unsigned threshold_;
    StatSet stats_;
};

} // namespace vbr

#endif // VBR_PREDICT_VALUE_PREDICTOR_HPP
