/**
 * @file
 * Front-end branch prediction per the paper's Table 3: a combined
 * bimodal (16k entry) / gshare (16k entry) predictor with a 16k-entry
 * selector, a 64-entry return address stack, and an 8k-entry 4-way
 * BTB used for indirect jumps.
 *
 * Conditional-branch targets are encoded in the instruction, so the
 * BTB only supplies targets for JR with a non-link source register;
 * JR of the link register pops the RAS.
 */

#ifndef VBR_PREDICT_BRANCH_PREDICTOR_HPP
#define VBR_PREDICT_BRANCH_PREDICTOR_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "isa/instruction.hpp"

namespace vbr
{

/** Sizing knobs (defaults are the Table 3 configuration). */
struct BranchPredictorConfig
{
    unsigned bimodalEntries = 16 * 1024;
    unsigned gshareEntries = 16 * 1024;
    unsigned selectorEntries = 16 * 1024;
    unsigned rasEntries = 64;
    unsigned btbEntries = 8 * 1024;
    unsigned btbAssoc = 4;
};

/**
 * Snapshot of speculative predictor state taken when an instruction is
 * fetched; restored when a squash rolls fetch back to it.
 */
struct PredictorSnapshot
{
    std::uint64_t ghist = 0;
    std::uint16_t rasTop = 0;
    std::uint32_t rasTopValue = 0;
};

/** Outcome of predicting one control instruction at fetch. */
struct BranchPrediction
{
    bool taken = false;
    std::uint32_t target = 0;
    bool fromRas = false;
    bool fromBtb = false;
};

/** The combined predictor with speculative history and RAS. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &config);

    /** Capture speculative state before fetching an instruction. */
    PredictorSnapshot snapshot() const;

    /** Restore speculative state after a squash. */
    void restore(const PredictorSnapshot &snap);

    /**
     * Predict a control instruction at fetch and speculatively update
     * history/RAS. @p pc is the instruction index.
     */
    BranchPrediction predict(std::uint32_t pc, const Instruction &inst);

    /**
     * Train at retirement with the architecturally resolved outcome.
     * @p snap is the history the prediction was made with.
     */
    void update(std::uint32_t pc, const Instruction &inst, bool taken,
                std::uint32_t target, const PredictorSnapshot &snap);

    /** Correct the speculative global history after a conditional
     * branch mispredict (called alongside restore()). */
    void notifyResolvedBranch(bool taken);

    /** Re-apply a return's RAS pop after restore() rolled it back
     * (mispredicted JR: execution resumes past the return). */
    void
    popRas()
    {
        rasTop_ = static_cast<std::uint16_t>(
            (rasTop_ + ras_.size() - 1) % ras_.size());
    }

    StatSet &stats() { return stats_; }

  private:
    unsigned gshareIndex(std::uint32_t pc, std::uint64_t ghist) const;

    static void
    bump(std::uint8_t &ctr, bool up)
    {
        if (up && ctr < 3)
            ++ctr;
        else if (!up && ctr > 0)
            --ctr;
    }

    BranchPredictorConfig config_;
    std::vector<std::uint8_t> bimodal_;  ///< 2-bit counters
    std::vector<std::uint8_t> gshare_;   ///< 2-bit counters
    std::vector<std::uint8_t> selector_; ///< 2-bit: >=2 favors gshare

    std::uint64_t ghist_ = 0; ///< speculative global history

    // Return address stack (speculative).
    std::vector<std::uint32_t> ras_;
    std::uint16_t rasTop_ = 0; ///< index of current top entry

    // BTB for indirect targets: direct-mapped-by-set, assoc ways.
    struct BtbEntry
    {
        std::uint32_t pc = 0;
        std::uint32_t target = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };
    std::vector<BtbEntry> btb_;
    std::uint64_t btbClock_ = 0;

    StatSet stats_;
};

} // namespace vbr

#endif // VBR_PREDICT_BRANCH_PREDICTOR_HPP
