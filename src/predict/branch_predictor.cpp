#include "predict/branch_predictor.hpp"

#include "common/logging.hpp"

namespace vbr
{

BranchPredictor::BranchPredictor(const BranchPredictorConfig &config)
    : config_(config),
      bimodal_(config.bimodalEntries, 1),
      gshare_(config.gshareEntries, 1),
      selector_(config.selectorEntries, 1),
      ras_(config.rasEntries, 0),
      btb_(config.btbEntries)
{
    VBR_ASSERT(config.btbEntries % config.btbAssoc == 0,
               "BTB entries must divide by associativity");
}

PredictorSnapshot
BranchPredictor::snapshot() const
{
    return {ghist_, rasTop_, ras_[rasTop_]};
}

void
BranchPredictor::restore(const PredictorSnapshot &snap)
{
    ghist_ = snap.ghist;
    rasTop_ = snap.rasTop;
    ras_[rasTop_] = snap.rasTopValue;
}

unsigned
BranchPredictor::gshareIndex(std::uint32_t pc, std::uint64_t ghist) const
{
    return static_cast<unsigned>((pc ^ ghist) % gshare_.size());
}

BranchPrediction
BranchPredictor::predict(std::uint32_t pc, const Instruction &inst)
{
    BranchPrediction pred;

    switch (inst.op) {
      case Opcode::JMP:
        pred.taken = true;
        pred.target = static_cast<std::uint32_t>(inst.imm);
        return pred;

      case Opcode::JAL:
        pred.taken = true;
        pred.target = static_cast<std::uint32_t>(inst.imm);
        // Push the return address.
        rasTop_ = (rasTop_ + 1) % ras_.size();
        ras_[rasTop_] = pc + 1;
        return pred;

      case Opcode::JR:
        pred.taken = true;
        if (inst.ra == kLinkReg) {
            // Return: pop the RAS.
            pred.target = ras_[rasTop_];
            pred.fromRas = true;
            rasTop_ = static_cast<std::uint16_t>(
                (rasTop_ + ras_.size() - 1) % ras_.size());
            ++stats_.counter("ras_predictions");
        } else {
            // Indirect jump: consult the BTB.
            unsigned sets = config_.btbEntries / config_.btbAssoc;
            unsigned base = (pc % sets) * config_.btbAssoc;
            pred.target = pc + 1; // fallthrough guess if BTB misses
            for (unsigned w = 0; w < config_.btbAssoc; ++w) {
                BtbEntry &e = btb_[base + w];
                if (e.valid && e.pc == pc) {
                    pred.target = e.target;
                    pred.fromBtb = true;
                    e.lastUse = ++btbClock_;
                    ++stats_.counter("btb_hits");
                    break;
                }
            }
            if (!pred.fromBtb)
                ++stats_.counter("btb_misses");
        }
        return pred;

      default:
        break;
    }

    VBR_ASSERT(isCondBranch(inst.op), "predict on non-control opcode");

    std::uint8_t bim = bimodal_[pc % bimodal_.size()];
    std::uint8_t gsh = gshare_[gshareIndex(pc, ghist_)];
    std::uint8_t sel = selector_[pc % selector_.size()];

    bool use_gshare = sel >= 2;
    pred.taken = use_gshare ? gsh >= 2 : bim >= 2;
    pred.target = static_cast<std::uint32_t>(inst.imm);

    // Speculative history update.
    ghist_ = (ghist_ << 1) | (pred.taken ? 1 : 0);
    return pred;
}

void
BranchPredictor::update(std::uint32_t pc, const Instruction &inst,
                        bool taken, std::uint32_t target,
                        const PredictorSnapshot &snap)
{
    if (inst.op == Opcode::JR && inst.ra != kLinkReg) {
        // Train the BTB with the resolved indirect target.
        unsigned sets = config_.btbEntries / config_.btbAssoc;
        unsigned base = (pc % sets) * config_.btbAssoc;
        BtbEntry *victim = nullptr;
        for (unsigned w = 0; w < config_.btbAssoc; ++w) {
            BtbEntry &e = btb_[base + w];
            if (e.valid && e.pc == pc) {
                e.target = target;
                e.lastUse = ++btbClock_;
                return;
            }
            bool better = !victim ||
                          (!e.valid && victim->valid) ||
                          (e.valid == victim->valid &&
                           e.lastUse < victim->lastUse);
            if (better)
                victim = &e;
        }
        *victim = {pc, target, true, ++btbClock_};
        return;
    }

    if (!isCondBranch(inst.op))
        return;

    std::uint8_t &bim = bimodal_[pc % bimodal_.size()];
    std::uint8_t &gsh = gshare_[gshareIndex(pc, snap.ghist)];
    std::uint8_t &sel = selector_[pc % selector_.size()];

    bool bim_correct = (bim >= 2) == taken;
    bool gsh_correct = (gsh >= 2) == taken;
    if (bim_correct != gsh_correct)
        bump(sel, gsh_correct);
    bump(bim, taken);
    bump(gsh, taken);
}

void
BranchPredictor::notifyResolvedBranch(bool taken)
{
    ghist_ = (ghist_ << 1) | (taken ? 1 : 0);
}

} // namespace vbr
