/**
 * @file
 * Invalidation-based coherence fabric connecting the private cache
 * hierarchies of a multiprocessor. Models a Gigaplane-XB-like
 * interconnect (paper §4): broadcast address network with a fixed
 * address-message latency and a point-to-point data network with a
 * fixed data-message latency.
 *
 * The fabric keeps a full directory of which cores hold each line and
 * which core (if any) owns it exclusively. Store commits acquire
 * ownership here; sharers receive invalidation callbacks, which drive
 * both the baseline snooping load queue and the no-recent-snoop replay
 * filter. A configurable DMA agent injects the rare coherent-I/O
 * invalidations the paper observes in uniprocessor runs.
 */

#ifndef VBR_MEM_COHERENCE_HPP
#define VBR_MEM_COHERENCE_HPP

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace vbr
{

class CacheHierarchy;
class FaultInjector;

/** Interconnect and memory latencies. */
struct FabricConfig
{
    unsigned addrLatency = 32;  ///< extra cycles per address message
    unsigned dataLatency = 20;  ///< extra cycles per data message
    unsigned memLatency = 400;  ///< DRAM best-case latency (cycles)
    unsigned lineBytes = 64;
};

/** Outcome of a fabric transaction. */
struct FabricResult
{
    unsigned latency = 0;       ///< cycles beyond the local hierarchy
    bool fromRemoteCache = false; ///< data supplied cache-to-cache
    bool invalidatedRemote = false; ///< remote copies were invalidated
};

/**
 * Directory-based broadcast coherence. Hierarchies register once and
 * are indexed by core id.
 */
class CoherenceFabric
{
  public:
    explicit CoherenceFabric(const FabricConfig &config);

    const FabricConfig &config() const { return config_; }

    /** Register a core's hierarchy. Core ids must be dense from 0. */
    void attach(CacheHierarchy *hierarchy);

    /** Attach the fault injector (may be null = no injection). The
     * injector can drop individual remote invalidations, leaving a
     * stale copy behind — an SWMR violation the auditor detects. */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }

    /**
     * Fetch a line for reading on behalf of @p core (called after all
     * local levels missed). Updates the directory.
     */
    FabricResult readLine(CoreId core, Addr line);

    /**
     * Acquire exclusive ownership of a line for @p core (store commit
     * or exclusive prefetch at store agen). Invalidates remote copies,
     * delivering snoop callbacks to their cores.
     */
    FabricResult ownLine(CoreId core, Addr line);

    /** Note that @p core no longer holds @p line (inclusion victim). */
    void evictLine(CoreId core, Addr line);

    /** Register @p core as a shared holder without any transaction
     * (cache pre-warming). */
    void
    warmLine(CoreId core, Addr line)
    {
        entry(line).sharers |= (1ULL << core);
    }

    /** True when @p core currently owns @p line exclusively. */
    bool isOwner(CoreId core, Addr line) const;

    /** True when @p core holds @p line in any state. */
    bool isSharer(CoreId core, Addr line) const;

    /**
     * Coherent-I/O (DMA) write: invalidate the line everywhere. Every
     * holder observes an external invalidation.
     */
    void dmaInvalidate(Addr line);

    // --- two-phase MP tick: deferred transaction mode -----------------
    //
    // During the (potentially parallel) compute phase, every core's
    // fabric requests are logged per-core and answered from a preview
    // of the frozen directory — no directory mutation, no counters, no
    // invalidation callbacks. The System then applies each core's log
    // in core-index order during the serial commit phase, so directory
    // updates and snoop deliveries are identical regardless of how
    // many threads ran the compute phase. Preview latencies are the
    // committed answer (the requesting core already armed its timers
    // with them); apply-time counters and invalidations see the live
    // directory, which can differ from the preview's latency branch —
    // deterministically, since application order is fixed.

    /** Enter deferred mode (start of the compute phase). Clears every
     * per-core op log. */
    void beginDeferred();

    /** Leave deferred mode (end of the compute phase), before any
     * applyDeferredOps call so re-entrant fabric work (e.g. an
     * eviction triggered by an invalidation callback) goes direct. */
    void endDeferred() { deferred_ = false; }

    /** Apply @p core's logged transactions against the live
     * directory, in arrival order (serial commit phase only). */
    void applyDeferredOps(CoreId core);

    /** True while fabric requests are being logged. */
    bool deferred() const { return deferred_; }

    /**
     * Earliest future cycle at which the fabric can change state on
     * its own. All fabric transactions are initiated synchronously by
     * core accesses (and DMA, which disables skipping entirely), so
     * there is nothing pending and the horizon is kNeverCycle. A
     * future fabric with queued/delayed transactions must return its
     * minimum due cycle — System::run()'s fast-forward clamps to it.
     */
    Cycle nextWakeCycle(Cycle /* now */) const { return kNeverCycle; }

    /** Audit access: the hierarchy attached for @p core (nullptr when
     * out of range). */
    const CacheHierarchy *
    attachedHierarchy(CoreId core) const
    {
        return core < cores_.size() ? cores_[core] : nullptr;
    }

    /** Audit access: invoke f(line, owner, sharers) for every line the
     * directory currently tracks, in ascending line order. The sort
     * makes the auditor's scan order (and any diagnostics derived
     * from it) independent of the unordered_map's hash order. */
    template <typename F>
    void
    forEachLine(F &&f) const
    {
        std::vector<Addr> lines;
        lines.reserve(directory_.size());
        // vbr-analyze: det-unordered-iter(key harvest feeding the sort below; visit order cannot leak)
        for (const auto &kv : directory_)
            lines.push_back(kv.first);
        std::sort(lines.begin(), lines.end());
        for (Addr line : lines) {
            const Entry &e = directory_.at(line);
            f(line, e.owner, e.sharers);
        }
    }

    StatSet &stats() { return stats_; }

  private:
    struct Entry
    {
        std::uint64_t sharers = 0; ///< bitmask over cores
        int owner = -1;            ///< exclusive owner, -1 if none
    };

    Entry &entry(Addr line) { return directory_[line]; }

    /** Directory lookup without insertion (preview paths must not
     * mutate the map, and concurrent previews share it). */
    Entry
    findEntry(Addr line) const
    {
        auto it = directory_.find(line);
        return it == directory_.end() ? Entry{} : it->second;
    }

    /** Invalidate all copies except @p except_core's. */
    bool invalidateRemote(Addr line, int except_core);

    /** Frozen-directory answers for deferred-mode requests. */
    FabricResult previewRead(CoreId core, Addr line) const;
    FabricResult previewOwn(CoreId core, Addr line) const;

    /** One logged compute-phase fabric request. */
    struct DeferredOp
    {
        enum class Kind : std::uint8_t
        {
            Read,
            Own,
            Evict,
        };
        Kind kind;
        Addr line;
    };

    FabricConfig config_;
    std::vector<CacheHierarchy *> cores_;
    FaultInjector *faults_ = nullptr;
    std::unordered_map<Addr, Entry> directory_;
    StatSet stats_;

    bool deferred_ = false;
    std::vector<std::vector<DeferredOp>> deferredOps_; ///< per core
};

} // namespace vbr

#endif // VBR_MEM_COHERENCE_HPP
