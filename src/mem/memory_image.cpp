#include "mem/memory_image.hpp"

#include <cstring>

#include "isa/program.hpp"

namespace vbr
{

MemoryImage::MemoryImage(Addr size, bool track_versions)
    : data_(size, 0), trackVersions_(track_versions)
{
    if (trackVersions_)
        versions_.assign((size + 7) / 8, 0);
}

Word
MemoryImage::read(Addr addr, unsigned size) const
{
    checkAccess(addr, size);
    Word v = 0;
    std::memcpy(&v, data_.data() + addr, size);
    return v;
}

void
MemoryImage::write(Addr addr, unsigned size, Word value)
{
    checkAccess(addr, size);
    std::memcpy(data_.data() + addr, &value, size);
    if (trackVersions_)
        ++versions_[addr / 8];
}

void
MemoryImage::applyInits(const Program &prog)
{
    for (const auto &init : prog.dataInits()) {
        VBR_ASSERT(init.addr + init.bytes.size() <= data_.size(),
                   "data init out of bounds");
        std::memcpy(data_.data() + init.addr, init.bytes.data(),
                    init.bytes.size());
    }
}

} // namespace vbr
