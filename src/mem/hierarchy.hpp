/**
 * @file
 * One core's private cache hierarchy: split L1 I/D, split L2 I/D, and
 * a unified L3, with the Table 3 geometries and latencies by default.
 * Inclusion is enforced at the L3: an L3 eviction back-invalidates the
 * inner levels and is reported to the core, since the paper notes that
 * snooping load queues must also observe inclusion victims.
 *
 * The hierarchy reports two event classes to its core through
 * MemEventClient:
 *  - external invalidations (remote store ownership, DMA), which feed
 *    the snooping load queue and the no-recent-snoop filter, and
 *  - external fills (a block entering the private hierarchy from
 *    outside, demand or prefetch), which feed the no-recent-miss
 *    filter.
 */

#ifndef VBR_MEM_HIERARCHY_HPP
#define VBR_MEM_HIERARCHY_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/prefetcher.hpp"

namespace vbr
{

class CoherenceFabric;
class FaultInjector;

/** Core-side receiver of coherence/miss events. */
class MemEventClient
{
  public:
    virtual ~MemEventClient() = default;

    /** A line this core held was invalidated by an external agent. */
    virtual void onExternalInvalidation(Addr line) = 0;

    /** A line left the private hierarchy due to inclusion (castout). */
    virtual void onInclusionVictim(Addr line) = 0;

    /** A new block entered the private hierarchy from outside. */
    virtual void onExternalFill(Addr line) = 0;
};

/** Full Table 3 hierarchy configuration. */
struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 1, 64, 1};
    CacheConfig l1d{"l1d", 32 * 1024, 1, 64, 1};
    CacheConfig l2i{"l2i", 256 * 1024, 8, 64, 7};
    CacheConfig l2d{"l2d", 256 * 1024, 8, 64, 7};
    CacheConfig l3{"l3", 8 * 1024 * 1024, 8, 64, 15};
    PrefetcherConfig prefetcher{};
};

/** Result of a data-side access. */
struct MemAccess
{
    unsigned latency = 0;       ///< total cycles for this access
    bool l1Hit = false;
    bool externalFill = false;  ///< block came from outside hierarchy
};

/** One core's private caches plus its view of the coherence fabric. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const HierarchyConfig &config, CoreId core_id,
                   CoherenceFabric &fabric);

    CoreId coreId() const { return coreId_; }

    /** Register the core-side event receiver (may be null). */
    void setClient(MemEventClient *client) { client_ = client; }

    /** Attach the fault injector (may be null = no injection). The
     * injector can stretch external fills and drop or delay the
     * snoop *notification* to the core — the caches themselves are
     * always invalidated, modeling a lost LSQ/filter delivery. */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    /**
     * Demand data read (premature load, replay load, or wrong-path
     * load). @p pc trains the stride prefetcher.
     */
    MemAccess read(Addr addr, std::uint32_t pc);

    /**
     * Acquire ownership of the line containing @p addr for a store.
     * Called as an exclusive prefetch at store address generation and
     * again (usually free) when the store drains at commit.
     */
    MemAccess acquireOwnership(Addr addr);

    /** True when this core currently owns the line exclusively. */
    bool ownsLine(Addr addr) const;

    /** Instruction fetch for the line containing @p addr. */
    unsigned fetchInst(Addr addr);

    /** Pre-warm @p line into the L2/L3 (and the directory as a
     * shared copy) without timing, stats, or filter events. */
    void warmLine(Addr line);

    /**
     * Fabric-driven invalidation of @p line (remote ownership or DMA).
     * Removes the line from all levels and notifies the core.
     */
    void externalInvalidate(Addr line);

    /** Number of cores attached to this hierarchy's fabric. */
    unsigned numSystemCores() const;

    /**
     * Earliest future cycle at which this hierarchy can change state
     * on its own. The memory model is functional-with-latency: every
     * access completes synchronously and returns a latency the core
     * turns into its own timers (pendingWb_, ownershipReadyCycle), so
     * there is no autonomous event queue here and the horizon is
     * kNeverCycle. A future hierarchy with an internal MSHR/event
     * queue must return its minimum due cycle instead — the
     * fast-forward skip in System::run() clamps to this value.
     */
    Cycle nextWakeCycle(Cycle /* now */) const { return kNeverCycle; }

    /** Audit probe: true when any level caches @p line (no LRU or
     * stats side effects). */
    bool holdsLine(Addr line) const;

    /** Line size in bytes (uniform across levels). */
    unsigned lineBytes() const { return config_.l1d.lineBytes; }

    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(lineBytes() - 1);
    }

    StatSet &stats() { return stats_; }
    Cache &l1d() { return l1d_; }
    Cache &l3() { return l3_; }

  private:
    /** Fill a line into L3/L2/L1 on the given side, handling inclusion
     * victims. @p data_side selects L1D/L2D vs L1I/L2I. */
    void fillLine(Addr line, bool data_side);

    /** Handle an L3 eviction: back-invalidate inner levels, tell the
     * fabric, and report the inclusion victim to the core. */
    void handleL3Eviction(Addr victim);

    HierarchyConfig config_;
    CoreId coreId_;
    CoherenceFabric &fabric_;
    MemEventClient *client_ = nullptr;
    FaultInjector *faults_ = nullptr;

    Cache l1i_;
    Cache l1d_;
    Cache l2i_;
    Cache l2d_;
    Cache l3_;
    StridePrefetcher prefetcher_;
    std::vector<Addr> prefetchBuf_;

    // Cached stat handles (bound once in the constructor; string
    // lookups are too slow for per-access paths).
    Counter *sc_data_reads_ = nullptr;
    Counter *sc_external_fills_ = nullptr;
    Counter *sc_external_invalidations_ = nullptr;
    Counter *sc_inclusion_victims_ = nullptr;
    Counter *sc_inst_fetches_ = nullptr;
    Counter *sc_ownership_requests_ = nullptr;
    Counter *sc_prefetch_fills_ = nullptr;

    StatSet stats_;
};

} // namespace vbr

#endif // VBR_MEM_HIERARCHY_HPP
