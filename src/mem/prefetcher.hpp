/**
 * @file
 * PC-indexed stride prefetcher modeled after the Power4-style
 * prefetcher in the paper's Table 3 machine configuration. On each
 * demand data access it trains a per-PC stride entry; once confident,
 * it emits prefetch line addresses for the hierarchy to fill.
 */

#ifndef VBR_MEM_PREFETCHER_HPP
#define VBR_MEM_PREFETCHER_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace vbr
{

/** Configuration for the stride prefetcher. */
struct PrefetcherConfig
{
    bool enabled = true;
    unsigned tableEntries = 256; ///< direct-mapped by PC
    unsigned degree = 2;         ///< lines prefetched per trigger
    unsigned confidenceThreshold = 2;
};

/** Stride detector + prefetch address generator. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherConfig &config);

    /**
     * Train on a demand access and, when confident, append prefetch
     * candidate line addresses to @p out. @p pc is the load's static
     * instruction index, @p addr the effective byte address.
     */
    void train(std::uint32_t pc, Addr addr, unsigned line_bytes,
               std::vector<Addr> &out);

    StatSet &stats() { return stats_; }

  private:
    struct Entry
    {
        std::uint32_t pc = 0;
        Addr lastAddr = kNoAddr;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    PrefetcherConfig config_;
    std::vector<Entry> table_;
    StatSet stats_;
};

} // namespace vbr

#endif // VBR_MEM_PREFETCHER_HPP
