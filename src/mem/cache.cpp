#include "mem/cache.hpp"

#include <bit>

#include "common/logging.hpp"

namespace vbr
{

Cache::Cache(const CacheConfig &config) : config_(config)
{
    VBR_ASSERT(std::has_single_bit(config_.sizeBytes),
               "cache size must be a power of two");
    VBR_ASSERT(std::has_single_bit(
                   static_cast<std::uint64_t>(config_.lineBytes)),
               "line size must be a power of two");
    VBR_ASSERT(config_.assoc >= 1, "associativity must be >= 1");
    std::uint64_t lines = config_.sizeBytes / config_.lineBytes;
    VBR_ASSERT(lines % config_.assoc == 0,
               "lines must divide evenly into sets");
    numSets_ = lines / config_.assoc;
    ways_.assign(lines, Way{});
    sc_hits_ = &stats_.counter("hits");
    sc_misses_ = &stats_.counter("misses");
    sc_evictions_ = &stats_.counter("evictions");
    sc_invalidations_ = &stats_.counter("invalidations");
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / config_.lineBytes) % numSets_;
}

bool
Cache::lookup(Addr addr, bool touch)
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * config_.assoc;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            if (touch)
                way.lastUse = ++useClock_;
            ++(*sc_hits_);
            return true;
        }
    }
    ++(*sc_misses_);
    return false;
}

bool
Cache::contains(Addr addr) const
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * config_.assoc;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        const Way &way = ways_[base + w];
        if (way.valid && way.tag == tag)
            return true;
    }
    return false;
}

std::optional<Addr>
Cache::insert(Addr addr)
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * config_.assoc;

    // Already present: refresh LRU only.
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            way.lastUse = ++useClock_;
            return std::nullopt;
        }
    }

    // Prefer an invalid way; otherwise evict the LRU way.
    Way *victim = nullptr;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }

    std::optional<Addr> evicted;
    if (victim->valid) {
        evicted = victim->tag;
        ++(*sc_evictions_);
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = ++useClock_;
    return evicted;
}

bool
Cache::invalidate(Addr addr)
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * config_.assoc;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            way.valid = false;
            ++(*sc_invalidations_);
            return true;
        }
    }
    return false;
}

void
Cache::reset()
{
    for (auto &way : ways_)
        way = Way{};
    useClock_ = 0;
}

} // namespace vbr
