#include "mem/hierarchy.hpp"

#include "fault/fault_injector.hpp"
#include "mem/coherence.hpp"

namespace vbr
{

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config,
                               CoreId core_id, CoherenceFabric &fabric)
    : config_(config),
      coreId_(core_id),
      fabric_(fabric),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2i_(config.l2i),
      l2d_(config.l2d),
      l3_(config.l3),
      prefetcher_(config.prefetcher)
{
    fabric.attach(this);

    sc_data_reads_ = &stats_.counter("data_reads");
    sc_external_fills_ = &stats_.counter("external_fills");
    sc_external_invalidations_ =
        &stats_.counter("external_invalidations");
    sc_inclusion_victims_ = &stats_.counter("inclusion_victims");
    sc_inst_fetches_ = &stats_.counter("inst_fetches");
    sc_ownership_requests_ = &stats_.counter("ownership_requests");
    sc_prefetch_fills_ = &stats_.counter("prefetch_fills");
}

MemAccess
CacheHierarchy::read(Addr addr, std::uint32_t pc)
{
    MemAccess result;
    Addr line = lineAddr(addr);
    ++(*sc_data_reads_);

    // Train the prefetcher on every demand read; prefetch fills are
    // handled after the demand access completes.
    prefetchBuf_.clear();
    prefetcher_.train(pc, addr, lineBytes(), prefetchBuf_);

    if (l1d_.lookup(addr)) {
        result.latency = config_.l1d.latency;
        result.l1Hit = true;
    } else if (l2d_.lookup(addr)) {
        result.latency = config_.l1d.latency + config_.l2d.latency;
        l1d_.insert(line); // L1 victims stay in L2/L3 (inclusion holds)
    } else if (l3_.lookup(addr)) {
        result.latency = config_.l1d.latency + config_.l2d.latency +
                         config_.l3.latency;
        l2d_.insert(line);
        l1d_.insert(line);
    } else {
        FabricResult fr = fabric_.readLine(coreId_, line);
        result.latency = config_.l1d.latency + config_.l2d.latency +
                         config_.l3.latency + fr.latency;
        result.externalFill = true;
        // Fault seam: a delayed fill models transient fabric
        // congestion / retried transfers.
        if (faults_)
            result.latency +=
                static_cast<unsigned>(faults_->fillDelay(coreId_, line));
        fillLine(line, true);
        ++(*sc_external_fills_);
        if (client_)
            client_->onExternalFill(line);
    }

    // Issue prefetches (untimed fills into L2/L3): lines entering the
    // hierarchy from outside count as external fills for the
    // no-recent-miss filter, exactly like demand fills.
    for (Addr pf_line : prefetchBuf_) {
        if (!l2d_.contains(pf_line) && !l3_.contains(pf_line) &&
            !l1d_.contains(pf_line)) {
            FabricResult pf = fabric_.readLine(coreId_, pf_line);
            if (auto victim = l3_.insert(pf_line))
                handleL3Eviction(*victim);
            l2d_.insert(pf_line);
            ++(*sc_prefetch_fills_);
            // A prefetched block arms the no-recent-miss filter only
            // when it may carry another processor's recent write
            // (cache-to-cache supply). Memory-sourced prefetches are
            // not incoming constraint-graph edges.
            if (client_ && pf.fromRemoteCache)
                client_->onExternalFill(pf_line);
        }
    }
    return result;
}

MemAccess
CacheHierarchy::acquireOwnership(Addr addr)
{
    MemAccess result;
    Addr line = lineAddr(addr);
    ++(*sc_ownership_requests_);

    if (fabric_.isOwner(coreId_, line) && l1d_.contains(line)) {
        l1d_.lookup(line); // LRU touch
        result.latency = config_.l1d.latency;
        result.l1Hit = true;
        return result;
    }

    bool was_cached_locally = l1d_.contains(line) ||
                              l2d_.contains(line) || l3_.contains(line);
    FabricResult fr = fabric_.ownLine(coreId_, line);
    result.latency = config_.l1d.latency + fr.latency;
    if (!was_cached_locally) {
        result.externalFill = true;
        ++(*sc_external_fills_);
        if (client_)
            client_->onExternalFill(line);
    }
    fillLine(line, true);
    return result;
}

bool
CacheHierarchy::ownsLine(Addr addr) const
{
    return fabric_.isOwner(coreId_, lineAddr(addr));
}

unsigned
CacheHierarchy::numSystemCores() const
{
    return fabric_.numCores();
}

bool
CacheHierarchy::holdsLine(Addr line) const
{
    return l1d_.contains(line) || l1i_.contains(line) ||
           l2d_.contains(line) || l2i_.contains(line) ||
           l3_.contains(line);
}

unsigned
CacheHierarchy::fetchInst(Addr addr)
{
    Addr line = lineAddr(addr);
    ++(*sc_inst_fetches_);

    if (l1i_.lookup(addr))
        return config_.l1i.latency;
    if (l2i_.lookup(addr)) {
        l1i_.insert(line);
        return config_.l1i.latency + config_.l2i.latency;
    }
    if (l3_.lookup(addr)) {
        l2i_.insert(line);
        l1i_.insert(line);
        return config_.l1i.latency + config_.l2i.latency +
               config_.l3.latency;
    }
    FabricResult fr = fabric_.readLine(coreId_, line);
    fillLine(line, false);
    // Instruction fills are code, not data: they do not arm the
    // no-recent-miss filter (no load can depend on them).
    return config_.l1i.latency + config_.l2i.latency +
           config_.l3.latency + fr.latency;
}

void
CacheHierarchy::warmLine(Addr line)
{
    if (auto victim = l3_.insert(line))
        handleL3Eviction(*victim);
    l2d_.insert(line);
    fabric_.warmLine(coreId_, line);
}

void
CacheHierarchy::fillLine(Addr line, bool data_side)
{
    if (auto victim = l3_.insert(line))
        handleL3Eviction(*victim);
    if (data_side) {
        l2d_.insert(line);
        l1d_.insert(line);
    } else {
        l2i_.insert(line);
        l1i_.insert(line);
    }
}

void
CacheHierarchy::handleL3Eviction(Addr victim)
{
    // Inclusion: the line must leave the inner levels too.
    l1i_.invalidate(victim);
    l1d_.invalidate(victim);
    l2i_.invalidate(victim);
    l2d_.invalidate(victim);
    fabric_.evictLine(coreId_, victim);
    ++(*sc_inclusion_victims_);
    if (client_)
        client_->onInclusionVictim(victim);
}

void
CacheHierarchy::externalInvalidate(Addr line)
{
    l1d_.invalidate(line);
    l1i_.invalidate(line);
    l2d_.invalidate(line);
    l2i_.invalidate(line);
    l3_.invalidate(line);
    fabric_.evictLine(coreId_, line);
    ++(*sc_external_invalidations_);
    if (!client_)
        return;
    // Fault seam: the caches above are already invalidated (the
    // directory stays coherent); what can be lost or postponed is the
    // *notification* to the LSQ — exactly the hazard that makes a
    // snooping CAM or a no-recent-snoop filter unsound. Delayed
    // deliveries are drained by System::tick via the injector.
    if (faults_) {
        if (faults_->shouldDropSnoop(coreId_, line))
            return;
        if (faults_->shouldDelaySnoop(coreId_, line))
            return;
    }
    client_->onExternalInvalidation(line);
}

} // namespace vbr
