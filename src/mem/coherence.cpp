#include "mem/coherence.hpp"

#include "common/logging.hpp"
#include "fault/fault_injector.hpp"
#include "mem/hierarchy.hpp"

namespace vbr
{

CoherenceFabric::CoherenceFabric(const FabricConfig &config)
    : config_(config)
{
}

void
CoherenceFabric::attach(CacheHierarchy *hierarchy)
{
    VBR_ASSERT(hierarchy->coreId() == cores_.size(),
               "hierarchies must attach in core-id order");
    VBR_ASSERT(cores_.size() < 64, "at most 64 cores supported");
    cores_.push_back(hierarchy);
}

FabricResult
CoherenceFabric::readLine(CoreId core, Addr line)
{
    Entry &e = entry(line);
    FabricResult r;
    ++stats_.counter("read_transactions");

    if (e.owner >= 0 && static_cast<CoreId>(e.owner) != core) {
        // Cache-to-cache transfer from the current owner, which is
        // downgraded to a plain sharer (memory becomes owner).
        r.latency = config_.addrLatency + config_.dataLatency;
        r.fromRemoteCache = true;
        e.owner = -1;
        ++stats_.counter("cache_to_cache_transfers");
    } else {
        // Memory supplies the data.
        r.latency = config_.memLatency;
        ++stats_.counter("memory_reads");
    }
    e.sharers |= (1ULL << core);
    return r;
}

FabricResult
CoherenceFabric::ownLine(CoreId core, Addr line)
{
    Entry &e = entry(line);
    FabricResult r;
    ++stats_.counter("ownership_transactions");

    if (e.owner == static_cast<int>(core)) {
        // Already exclusive; silent upgrade.
        return r;
    }

    bool held_locally = (e.sharers >> core) & 1;
    bool remote_owner = e.owner >= 0;
    bool remote_sharers =
        (e.sharers & ~(1ULL << core)) != 0;

    if (remote_owner) {
        r.latency = config_.addrLatency + config_.dataLatency;
    } else if (remote_sharers) {
        r.latency = config_.addrLatency;
    } else if (!held_locally) {
        // Nobody has it: fetch from memory with ownership.
        r.latency = config_.memLatency;
        ++stats_.counter("memory_reads_for_ownership");
    } else {
        // Held locally shared, no remote copies: upgrade message.
        r.latency = config_.addrLatency;
    }

    r.invalidatedRemote = invalidateRemote(line, static_cast<int>(core));
    // invalidateRemote can erase the entry via evictLine callbacks, so
    // re-acquire it before recording the new owner.
    Entry &e2 = entry(line);
    e2.owner = static_cast<int>(core);
    e2.sharers = 1ULL << core;
    return r;
}

bool
CoherenceFabric::invalidateRemote(Addr line, int except_core)
{
    Entry &e = entry(line);
    bool any = false;
    std::uint64_t others =
        except_core >= 0 ? (e.sharers & ~(1ULL << except_core))
                         : e.sharers;
    for (CoreId c = 0; others != 0; ++c, others >>= 1) {
        if (others & 1) {
            // Fault seam: losing the invalidation entirely leaves
            // core c with a stale copy the directory no longer
            // tracks — an SWMR violation the auditor's coherence
            // scan reports.
            if (faults_ && faults_->shouldDropInvalidation(c, line))
                continue;
            cores_[c]->externalInvalidate(line);
            ++stats_.counter("invalidations_sent");
            any = true;
        }
    }
    return any;
}

void
CoherenceFabric::evictLine(CoreId core, Addr line)
{
    auto it = directory_.find(line);
    if (it == directory_.end())
        return;
    it->second.sharers &= ~(1ULL << core);
    if (it->second.owner == static_cast<int>(core)) {
        it->second.owner = -1;
        ++stats_.counter("dirty_writebacks");
    }
    if (it->second.sharers == 0)
        directory_.erase(it);
}

bool
CoherenceFabric::isOwner(CoreId core, Addr line) const
{
    auto it = directory_.find(line);
    return it != directory_.end() &&
           it->second.owner == static_cast<int>(core);
}

bool
CoherenceFabric::isSharer(CoreId core, Addr line) const
{
    auto it = directory_.find(line);
    return it != directory_.end() &&
           ((it->second.sharers >> core) & 1);
}

void
CoherenceFabric::dmaInvalidate(Addr line)
{
    ++stats_.counter("dma_invalidations");
    invalidateRemote(line, -1);
    directory_.erase(line);
}

} // namespace vbr
