#include "mem/coherence.hpp"

#include "common/logging.hpp"
#include "fault/fault_injector.hpp"
#include "mem/hierarchy.hpp"

namespace vbr
{

CoherenceFabric::CoherenceFabric(const FabricConfig &config)
    : config_(config)
{
}

void
CoherenceFabric::attach(CacheHierarchy *hierarchy)
{
    VBR_ASSERT(hierarchy->coreId() == cores_.size(),
               "hierarchies must attach in core-id order");
    VBR_ASSERT(cores_.size() < 64, "at most 64 cores supported");
    cores_.push_back(hierarchy);
}

FabricResult
CoherenceFabric::readLine(CoreId core, Addr line)
{
    if (deferred_) {
        deferredOps_[core].push_back({DeferredOp::Kind::Read, line});
        return previewRead(core, line);
    }
    Entry &e = entry(line);
    FabricResult r;
    ++stats_.counter("read_transactions");

    if (e.owner >= 0 && static_cast<CoreId>(e.owner) != core) {
        // Cache-to-cache transfer from the current owner, which is
        // downgraded to a plain sharer (memory becomes owner).
        r.latency = config_.addrLatency + config_.dataLatency;
        r.fromRemoteCache = true;
        e.owner = -1;
        ++stats_.counter("cache_to_cache_transfers");
    } else {
        // Memory supplies the data.
        r.latency = config_.memLatency;
        ++stats_.counter("memory_reads");
    }
    e.sharers |= (1ULL << core);
    return r;
}

FabricResult
CoherenceFabric::ownLine(CoreId core, Addr line)
{
    if (deferred_) {
        deferredOps_[core].push_back({DeferredOp::Kind::Own, line});
        return previewOwn(core, line);
    }
    Entry &e = entry(line);
    FabricResult r;
    ++stats_.counter("ownership_transactions");

    if (e.owner == static_cast<int>(core)) {
        // Already exclusive; silent upgrade.
        return r;
    }

    bool held_locally = (e.sharers >> core) & 1;
    bool remote_owner = e.owner >= 0;
    bool remote_sharers =
        (e.sharers & ~(1ULL << core)) != 0;

    if (remote_owner) {
        r.latency = config_.addrLatency + config_.dataLatency;
    } else if (remote_sharers) {
        r.latency = config_.addrLatency;
    } else if (!held_locally) {
        // Nobody has it: fetch from memory with ownership.
        r.latency = config_.memLatency;
        ++stats_.counter("memory_reads_for_ownership");
    } else {
        // Held locally shared, no remote copies: upgrade message.
        r.latency = config_.addrLatency;
    }

    r.invalidatedRemote = invalidateRemote(line, static_cast<int>(core));
    // invalidateRemote can erase the entry via evictLine callbacks, so
    // re-acquire it before recording the new owner.
    Entry &e2 = entry(line);
    e2.owner = static_cast<int>(core);
    e2.sharers = 1ULL << core;
    return r;
}

bool
CoherenceFabric::invalidateRemote(Addr line, int except_core)
{
    Entry &e = entry(line);
    bool any = false;
    std::uint64_t others =
        except_core >= 0 ? (e.sharers & ~(1ULL << except_core))
                         : e.sharers;
    for (CoreId c = 0; others != 0; ++c, others >>= 1) {
        if (others & 1) {
            // Fault seam: losing the invalidation entirely leaves
            // core c with a stale copy the directory no longer
            // tracks — an SWMR violation the auditor's coherence
            // scan reports.
            if (faults_ && faults_->shouldDropInvalidation(c, line))
                continue;
            cores_[c]->externalInvalidate(line);
            ++stats_.counter("invalidations_sent");
            any = true;
        }
    }
    return any;
}

void
CoherenceFabric::evictLine(CoreId core, Addr line)
{
    if (deferred_) {
        deferredOps_[core].push_back({DeferredOp::Kind::Evict, line});
        return;
    }
    auto it = directory_.find(line);
    if (it == directory_.end())
        return;
    it->second.sharers &= ~(1ULL << core);
    if (it->second.owner == static_cast<int>(core)) {
        it->second.owner = -1;
        ++stats_.counter("dirty_writebacks");
    }
    if (it->second.sharers == 0)
        directory_.erase(it);
}

bool
CoherenceFabric::isOwner(CoreId core, Addr line) const
{
    auto it = directory_.find(line);
    return it != directory_.end() &&
           it->second.owner == static_cast<int>(core);
}

bool
CoherenceFabric::isSharer(CoreId core, Addr line) const
{
    auto it = directory_.find(line);
    return it != directory_.end() &&
           ((it->second.sharers >> core) & 1);
}

// ---------------------------------------------------------------------
// Deferred transaction mode (two-phase MP tick)
// ---------------------------------------------------------------------

FabricResult
CoherenceFabric::previewRead(CoreId core, Addr line) const
{
    // Mirror of readLine's latency decision against the frozen
    // directory: no mutation, no counters, no callbacks.
    const Entry e = findEntry(line);
    FabricResult r;
    if (e.owner >= 0 && static_cast<CoreId>(e.owner) != core) {
        r.latency = config_.addrLatency + config_.dataLatency;
        r.fromRemoteCache = true;
    } else {
        r.latency = config_.memLatency;
    }
    return r;
}

FabricResult
CoherenceFabric::previewOwn(CoreId core, Addr line) const
{
    const Entry e = findEntry(line);
    FabricResult r;
    if (e.owner == static_cast<int>(core))
        return r; // already exclusive; silent upgrade

    bool held_locally = (e.sharers >> core) & 1;
    bool remote_owner = e.owner >= 0;
    bool remote_sharers = (e.sharers & ~(1ULL << core)) != 0;

    if (remote_owner)
        r.latency = config_.addrLatency + config_.dataLatency;
    else if (remote_sharers)
        r.latency = config_.addrLatency;
    else if (!held_locally) {
        r.latency = config_.memLatency;
    } else {
        r.latency = config_.addrLatency;
    }
    // Approximation (no fault-injector consult: shouldDropInvalidation
    // draws RNG state): remote copies existing in the frozen snapshot.
    // No consumer reads this field on the request path — hierarchies
    // use latency and fromRemoteCache only.
    r.invalidatedRemote = remote_owner || remote_sharers;
    return r;
}

void
CoherenceFabric::beginDeferred()
{
    deferred_ = true;
    if (deferredOps_.size() != cores_.size())
        deferredOps_.resize(cores_.size());
    for (auto &ops : deferredOps_)
        ops.clear();
}

void
CoherenceFabric::applyDeferredOps(CoreId core)
{
    VBR_ASSERT(!deferred_,
               "applyDeferredOps requires direct mode (endDeferred)");
    if (core >= deferredOps_.size())
        return;
    // Swap the log out first: applying an op can re-enter the fabric
    // (an invalidation callback can trigger an eviction), and those
    // re-entrant calls must go direct, not land in the log.
    std::vector<DeferredOp> ops;
    ops.swap(deferredOps_[core]);
    for (const DeferredOp &op : ops) {
        switch (op.kind) {
        case DeferredOp::Kind::Read:
            readLine(core, op.line);
            break;
        case DeferredOp::Kind::Own:
            ownLine(core, op.line);
            break;
        case DeferredOp::Kind::Evict:
            evictLine(core, op.line);
            break;
        }
    }
    // Hand the (cleared) buffer back so its capacity is reused.
    ops.clear();
    deferredOps_[core].swap(ops);
}

void
CoherenceFabric::dmaInvalidate(Addr line)
{
    ++stats_.counter("dma_invalidations");
    invalidateRemote(line, -1);
    directory_.erase(line);
}

} // namespace vbr
