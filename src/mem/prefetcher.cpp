#include "mem/prefetcher.hpp"

namespace vbr
{

StridePrefetcher::StridePrefetcher(const PrefetcherConfig &config)
    : config_(config), table_(config.tableEntries)
{
}

void
StridePrefetcher::train(std::uint32_t pc, Addr addr, unsigned line_bytes,
                        std::vector<Addr> &out)
{
    if (!config_.enabled || table_.empty())
        return;

    Entry &e = table_[pc % table_.size()];
    if (e.pc != pc || e.lastAddr == kNoAddr) {
        // New or aliased entry: restart training.
        e.pc = pc;
        e.lastAddr = addr;
        e.stride = 0;
        e.confidence = 0;
        return;
    }

    std::int64_t stride = static_cast<std::int64_t>(addr) -
                          static_cast<std::int64_t>(e.lastAddr);
    if (stride == e.stride && stride != 0) {
        if (e.confidence < config_.confidenceThreshold)
            ++e.confidence;
    } else {
        e.stride = stride;
        e.confidence = 0;
    }
    e.lastAddr = addr;

    if (e.confidence >= config_.confidenceThreshold) {
        Addr line_mask = ~static_cast<Addr>(line_bytes - 1);
        Addr cur_line = addr & line_mask;
        for (unsigned d = 1; d <= config_.degree; ++d) {
            Addr target = addr + static_cast<Addr>(e.stride) * d;
            Addr target_line = target & line_mask;
            if (target_line != cur_line) {
                out.push_back(target_line);
                ++stats_.counter("prefetches_issued");
            }
        }
    }
}

} // namespace vbr
