/**
 * @file
 * Set-associative cache tag array with LRU replacement. Data values
 * live in the shared MemoryImage; caches model timing and presence
 * only (DESIGN.md §3). One Cache instance models one level of one
 * core's private hierarchy.
 */

#ifndef VBR_MEM_CACHE_HPP
#define VBR_MEM_CACHE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace vbr
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 1;
    unsigned lineBytes = 64;
    unsigned latency = 1; ///< access latency in cycles
};

/** LRU set-associative tag array. Addresses are line-aligned inside. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return config_; }

    /** Line-align an address. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(config_.lineBytes - 1);
    }

    /**
     * Probe for @p addr. On a hit the line's LRU position is updated
     * when @p touch is set. Does not allocate.
     */
    bool lookup(Addr addr, bool touch = true);

    /** Probe without any state change (no LRU update, no stats). */
    bool contains(Addr addr) const;

    /**
     * Allocate the line containing @p addr. Returns the address of an
     * evicted line, if any. The caller handles inclusion/back-
     * invalidation consequences.
     */
    std::optional<Addr> insert(Addr addr);

    /** Drop the line if present. Returns true when it was present. */
    bool invalidate(Addr addr);

    /** Drop every line (used on system reset). */
    void reset();

    StatSet &stats() { return stats_; }

  private:
    struct Way
    {
        Addr tag = kNoAddr;
        bool valid = false;
        std::uint64_t lastUse = 0; ///< LRU timestamp
    };

    std::size_t setIndex(Addr addr) const;

    // Cached stat handles (per-access paths).
    Counter *sc_hits_ = nullptr;
    Counter *sc_misses_ = nullptr;
    Counter *sc_evictions_ = nullptr;
    Counter *sc_invalidations_ = nullptr;

    CacheConfig config_;
    std::vector<Way> ways_; ///< numSets_ * assoc, row-major by set
    std::size_t numSets_ = 0;
    std::uint64_t useClock_ = 0;
    StatSet stats_;
};

} // namespace vbr

#endif // VBR_MEM_CACHE_HPP
