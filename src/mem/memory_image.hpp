/**
 * @file
 * Flat committed-state memory image shared by all cores of a simulated
 * system. Timing is modeled by the cache hierarchy; values live here.
 * Stores update the image when they drain to the cache at commit, which
 * is the global visibility point in this model (see DESIGN.md §3).
 *
 * The image optionally maintains a version counter per 8-byte word so
 * the constraint-graph consistency checker can identify exactly which
 * store a committed load observed.
 */

#ifndef VBR_MEM_MEMORY_IMAGE_HPP
#define VBR_MEM_MEMORY_IMAGE_HPP

#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "common/types.hpp"

namespace vbr
{

class Program;

/** Byte-addressable little-endian memory with optional word versions. */
class MemoryImage
{
  public:
    /** @param size bytes of data space; @param track_versions enables
     * the per-word version counters used by the SC checker. */
    explicit MemoryImage(Addr size, bool track_versions = false);

    Addr size() const { return data_.size(); }

    /**
     * Read @p size bytes (1/2/4/8) at @p addr, zero-extended. Accesses
     * must be naturally aligned — the ISA and workload generators only
     * produce aligned accesses, and the ordering model (word-granular
     * versioning) depends on it.
     */
    Word read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value at @p addr. */
    void write(Addr addr, unsigned size, Word value);

    /** Apply a program's data-segment initializers. */
    void applyInits(const Program &prog);

    bool trackingVersions() const { return trackVersions_; }

    /** Version of the 8-byte word containing @p addr (0 = initial). */
    std::uint32_t
    version(Addr addr) const
    {
        VBR_ASSERT(trackVersions_, "versions not tracked");
        return versions_[addr / 8];
    }

    const std::vector<std::uint8_t> &bytes() const { return data_; }

  private:
    void
    checkAccess(Addr addr, unsigned size) const
    {
        VBR_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                   "bad access size");
        VBR_ASSERT(addr % size == 0, "unaligned memory access");
        VBR_ASSERT(addr + size <= data_.size(),
                   "memory access out of bounds");
    }

    std::vector<std::uint8_t> data_;
    std::vector<std::uint32_t> versions_;
    bool trackVersions_ = false;
};

} // namespace vbr

#endif // VBR_MEM_MEMORY_IMAGE_HPP
