#include "cam/cam_model.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vbr
{
namespace
{

/** The published Table 2 calibration points (ns, nJ). Rows are entry
 * counts {16,32,64,128,256,512}; columns are port configs
 * {2/2, 3/2, 4/4, 6/6}. */
struct CalPoint
{
    double ns;
    double nj;
};

constexpr unsigned kRows = 6;
constexpr unsigned kCols = 4;

constexpr unsigned kEntries[kRows] = {16, 32, 64, 128, 256, 512};
constexpr std::pair<unsigned, unsigned> kPorts[kCols] = {
    {2, 2}, {3, 2}, {4, 4}, {6, 6}};

constexpr CalPoint kTable[kRows][kCols] = {
    {{0.60, 0.03}, {0.68, 0.04}, {0.72, 0.07}, {0.79, 0.12}},
    {{0.75, 0.05}, {0.77, 0.06}, {0.85, 0.12}, {0.94, 0.20}},
    {{0.78, 0.12}, {0.80, 0.15}, {0.87, 0.27}, {0.97, 0.45}},
    {{0.78, 0.22}, {0.80, 0.28}, {0.88, 0.50}, {0.97, 0.85}},
    {{0.97, 0.37}, {1.01, 0.48}, {1.13, 0.87}, {1.28, 1.51}},
    {{1.00, 0.80}, {1.04, 1.03}, {1.16, 1.87}, {1.32, 3.22}},
};

} // namespace

CamModel::CamModel() = default;

std::optional<CamEstimate>
CamModel::lookupCalibrated(const CamConfig &config) const
{
    for (unsigned r = 0; r < kRows; ++r) {
        if (kEntries[r] != config.entries)
            continue;
        for (unsigned c = 0; c < kCols; ++c) {
            if (kPorts[c].first == config.readPorts &&
                kPorts[c].second == config.writePorts) {
                return CamEstimate{kTable[r][c].ns, kTable[r][c].nj,
                                   true};
            }
        }
    }
    return std::nullopt;
}

CamEstimate
CamModel::fitted(const CamConfig &config) const
{
    VBR_ASSERT(config.entries >= 1, "CAM with zero entries");
    double n = config.entries;
    double p = config.readPorts + config.writePorts;

    // Energy: affine in entries, superlinear in total ports. The
    // exponent 1.26 reproduces the published port-doubling penalty
    // ("doubling the number of ports more than doubles the energy").
    double e_per_entry = 0.00039 * std::pow(p, 1.26);
    double energy = 0.005 + n * e_per_entry;

    // Latency: logarithmic in entries with a ~1.5-2% penalty per
    // additional port beyond four (approx. +15% for doubling ports).
    double lat = (0.42 + 0.062 * std::log2(std::max(n, 2.0))) *
                 (1.0 + 0.018 * (p - 4.0));

    return CamEstimate{lat, energy, false};
}

CamEstimate
CamModel::estimate(const CamConfig &config) const
{
    if (auto cal = lookupCalibrated(config))
        return *cal;
    return fitted(config);
}

unsigned
CamModel::searchCycles(const CamConfig &config, double clock_ghz) const
{
    VBR_ASSERT(clock_ghz > 0.0, "clock must be positive");
    double period_ns = 1.0 / clock_ghz;
    double lat = estimate(config).latencyNs;
    return static_cast<unsigned>(std::ceil(lat / period_ns));
}

unsigned
CamModel::maxSingleCycleEntries(unsigned read_ports,
                                unsigned write_ports,
                                double clock_ghz) const
{
    unsigned best = 0;
    for (unsigned n = 8; n <= 4096; n *= 2) {
        CamConfig cfg{n, read_ports, write_ports};
        if (searchCycles(cfg, clock_ghz) <= 1)
            best = n;
    }
    return best;
}

const std::vector<unsigned> &
CamModel::publishedEntries()
{
    static const std::vector<unsigned> v(kEntries, kEntries + kRows);
    return v;
}

const std::vector<std::pair<unsigned, unsigned>> &
CamModel::publishedPorts()
{
    static const std::vector<std::pair<unsigned, unsigned>> v(
        kPorts, kPorts + kCols);
    return v;
}

double
ReplayPowerModel::deltaEnergyPerInstr(double replays_per_instr,
                                      double searches_per_instr,
                                      const CamConfig &cam_config) const
{
    double e_search = cam_.estimate(cam_config).energyNj;
    return (params_.eCacheAccessNj + params_.eWordCompareNj) *
               replays_per_instr -
           e_search * searches_per_instr +
           params_.eReplayOverheadNjPerInstr;
}

double
ReplayPowerModel::breakEvenCamEnergyPerInstr(
    double replays_per_instr) const
{
    return (params_.eCacheAccessNj + params_.eWordCompareNj) *
               replays_per_instr +
           params_.eReplayOverheadNjPerInstr;
}

} // namespace vbr
