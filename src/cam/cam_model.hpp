/**
 * @file
 * Analytical CAM latency/energy model for associative load queues.
 *
 * The paper's Table 2 was produced with Cacti 3.2 for a 0.09 micron
 * process across queue sizes (16..512 entries) and read/write port
 * counts (2/2, 3/2, 4/4, 6/6). Cacti itself is not available offline,
 * so this model stores the 24 published calibration points exactly and
 * provides a fitted analytic surface for other configurations,
 * preserving the trends the paper highlights: energy grows linearly
 * with entry count, latency logarithmically, and multiporting
 * penalizes both (doubling ports more than doubles energy and adds
 * ~15% latency).
 */

#ifndef VBR_CAM_CAM_MODEL_HPP
#define VBR_CAM_CAM_MODEL_HPP

#include <cstdint>
#include <optional>
#include <vector>

namespace vbr
{

/** One CAM design point. */
struct CamConfig
{
    unsigned entries = 32;
    unsigned readPorts = 2;
    unsigned writePorts = 2;
};

/** Latency/energy estimate for a CAM search. */
struct CamEstimate
{
    double latencyNs = 0.0;  ///< one associative search
    double energyNj = 0.0;   ///< dynamic energy per search
    bool calibrated = false; ///< true when from a published point
};

/** Cacti-3.2-calibrated CAM model (90 nm). */
class CamModel
{
  public:
    CamModel();

    /** Estimate a configuration (exact for published Table 2 points). */
    CamEstimate estimate(const CamConfig &config) const;

    /**
     * Cycles a search occupies at @p clock_ghz, i.e. the pipeline
     * depth an associative LQ lookup would need (paper §5.2 argues a
     * 32-entry CAM no longer fits in one cycle at 5 GHz).
     */
    unsigned searchCycles(const CamConfig &config,
                          double clock_ghz) const;

    /**
     * Largest entry count whose search fits within one clock period;
     * 0 when even the smallest modeled CAM (8 entries) does not fit.
     */
    unsigned maxSingleCycleEntries(unsigned read_ports,
                                   unsigned write_ports,
                                   double clock_ghz) const;

    /** Entry counts of the published calibration rows. */
    static const std::vector<unsigned> &publishedEntries();

    /** Port configurations of the published calibration columns. */
    static const std::vector<std::pair<unsigned, unsigned>> &
    publishedPorts();

  private:
    std::optional<CamEstimate> lookupCalibrated(
        const CamConfig &config) const;

    CamEstimate fitted(const CamConfig &config) const;
};

/**
 * The paper's §5.3 dynamic-energy comparison:
 *
 *   dE = (E_cache + E_cmp) * replays - E_ldqsearch * searches
 *        + overhead_replay
 *
 * evaluated per committed instruction. Positive dE means value-based
 * replay costs more energy than the associative load queue.
 */
struct PowerModelParams
{
    double eCacheAccessNj = 0.18; ///< 32 KiB L1D read (Cacti-era 90nm)
    double eWordCompareNj = 0.002;
    double eReplayOverheadNjPerInstr = 0.001; ///< pipe latches+filters
};

class ReplayPowerModel
{
  public:
    explicit ReplayPowerModel(const PowerModelParams &params,
                              const CamModel &cam)
        : params_(params), cam_(cam)
    {
    }

    /**
     * Energy delta (nJ) per committed instruction.
     * @param replays_per_instr replay loads per committed instruction
     * @param searches_per_instr LQ CAM searches per committed
     *        instruction in the baseline design
     * @param cam_config the baseline load queue CAM being replaced
     */
    double deltaEnergyPerInstr(double replays_per_instr,
                               double searches_per_instr,
                               const CamConfig &cam_config) const;

    /**
     * Break-even CAM search energy (nJ): if the baseline's CAM spends
     * more than this per committed instruction, value-based replay
     * saves power (paper: with 0.02 replays/instr the threshold is
     * 0.02x the cache access + compare energy).
     */
    double breakEvenCamEnergyPerInstr(double replays_per_instr) const;

  private:
    PowerModelParams params_;
    const CamModel &cam_;
};

} // namespace vbr

#endif // VBR_CAM_CAM_MODEL_HPP
