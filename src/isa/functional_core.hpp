/**
 * @file
 * In-order functional reference core. Executes one thread of a Program
 * against a MemoryImage with no timing. Used as the golden model for
 * co-simulation tests: the out-of-order core's architectural results
 * must match this core's for single-threaded programs, under every
 * load-queue configuration and replay-filter combination.
 */

#ifndef VBR_ISA_FUNCTIONAL_CORE_HPP
#define VBR_ISA_FUNCTIONAL_CORE_HPP

#include <array>
#include <cstdint>

#include "common/types.hpp"
#include "isa/program.hpp"

namespace vbr
{

class MemoryImage;

/** Single-stepping in-order interpreter for one thread. */
class FunctionalCore
{
  public:
    FunctionalCore(const Program &prog, MemoryImage &mem,
                   unsigned thread_id);

    /** Execute one instruction. Returns false once halted. */
    bool step();

    /** Run until HALT or @p max_steps instructions. Returns true if
     * the program halted within the budget. */
    bool run(std::uint64_t max_steps);

    bool halted() const { return halted_; }
    std::uint64_t instructionsExecuted() const { return count_; }
    std::uint32_t pc() const { return pc_; }

    Word reg(unsigned r) const { return regs_[r]; }
    void reg(unsigned r, Word v) { if (r != 0) regs_[r] = v; }

    const std::array<Word, kNumArchRegs> &regs() const { return regs_; }

  private:
    const Program &prog_;
    MemoryImage &mem_;
    std::array<Word, kNumArchRegs> regs_ = {};
    std::uint32_t pc_ = 0;
    bool halted_ = false;
    std::uint64_t count_ = 0;
};

} // namespace vbr

#endif // VBR_ISA_FUNCTIONAL_CORE_HPP
