/**
 * @file
 * A visa program: shared code image, per-thread entry points and
 * initial register values, and data-segment initializers. One Program
 * is executed by all cores of a simulated system (threads select their
 * entry by core id).
 */

#ifndef VBR_ISA_PROGRAM_HPP
#define VBR_ISA_PROGRAM_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace vbr
{

/** Entry point and initial architectural state for one thread. */
struct ThreadSpec
{
    std::uint32_t entryPc = 0;
    std::array<Word, kNumArchRegs> initRegs = {};
};

/** Initial bytes to place in the memory image before execution. */
struct DataInit
{
    Addr addr = 0;
    std::vector<std::uint8_t> bytes;
};

/**
 * An executable program. Program counters are indices into code();
 * codeBase() maps them to byte addresses for I-cache modeling.
 */
class Program
{
  public:
    /** The static instruction at index @p pc, or HALT if out of range.
     * Out-of-range fetches happen on the wrong path after a
     * mispredicted indirect jump; treating them as HALT keeps the
     * front end well-defined without faulting. */
    const Instruction &
    fetch(std::uint32_t pc) const
    {
        static const Instruction halt{Opcode::HALT, 0, 0, 0, 0};
        return pc < code_.size() ? code_[pc] : halt;
    }

    bool
    validPc(std::uint32_t pc) const
    {
        return pc < code_.size();
    }

    std::vector<Instruction> &code() { return code_; }
    const std::vector<Instruction> &code() const { return code_; }

    std::vector<ThreadSpec> &threads() { return threads_; }
    const std::vector<ThreadSpec> &threads() const { return threads_; }

    std::vector<DataInit> &dataInits() { return dataInits_; }
    const std::vector<DataInit> &dataInits() const { return dataInits_; }

    /** Byte address of instruction @p pc in the memory image. */
    Addr
    codeAddr(std::uint32_t pc) const
    {
        return codeBase_ + static_cast<Addr>(pc) * 8;
    }

    Addr codeBase() const { return codeBase_; }
    void codeBase(Addr base) { codeBase_ = base; }

    /** Required memory image size (bytes). */
    Addr memorySize() const { return memorySize_; }
    void memorySize(Addr size) { memorySize_ = size; }

    /** Address ranges the system pre-warms into every core's caches
     * before simulation starts. Stands in for the steady-state cache
     * contents a billions-of-instructions run would have; workloads
     * that intentionally miss (streaming/pointer chase past the L3)
     * simply do not register ranges. */
    std::vector<std::pair<Addr, Addr>> &warmRanges() { return warmRanges_; }
    const std::vector<std::pair<Addr, Addr>> &warmRanges() const
    {
        return warmRanges_;
    }

  private:
    std::vector<Instruction> code_;
    std::vector<ThreadSpec> threads_;
    std::vector<DataInit> dataInits_;
    std::vector<std::pair<Addr, Addr>> warmRanges_;
    Addr codeBase_ = 0x4000000; // 64 MiB: above all data segments
    Addr memorySize_ = 0x1000000; // 16 MiB data space default
};

} // namespace vbr

#endif // VBR_ISA_PROGRAM_HPP
