#include "isa/opcode.hpp"

#include "common/logging.hpp"

namespace vbr
{

bool
isLoad(Opcode op)
{
    switch (op) {
      case Opcode::LD1:
      case Opcode::LD2:
      case Opcode::LD4:
      case Opcode::LD8:
        return true;
      default:
        return false;
    }
}

bool
isStore(Opcode op)
{
    switch (op) {
      case Opcode::ST1:
      case Opcode::ST2:
      case Opcode::ST4:
      case Opcode::ST8:
        return true;
      default:
        return false;
    }
}

bool
isMem(Opcode op)
{
    return isLoad(op) || isStore(op) || op == Opcode::SWAP;
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::JMP:
      case Opcode::JAL:
      case Opcode::JR:
        return true;
      default:
        return false;
    }
}

bool
isCondBranch(Opcode op)
{
    switch (op) {
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
        return true;
      default:
        return false;
    }
}

unsigned
memSize(Opcode op)
{
    switch (op) {
      case Opcode::LD1:
      case Opcode::ST1:
        return 1;
      case Opcode::LD2:
      case Opcode::ST2:
        return 2;
      case Opcode::LD4:
      case Opcode::ST4:
        return 4;
      case Opcode::LD8:
      case Opcode::ST8:
      case Opcode::SWAP:
        return 8;
      default:
        return 0;
    }
}

FuClass
fuClass(Opcode op)
{
    if (isLoad(op))
        return FuClass::LoadPort;
    if (isStore(op))
        return FuClass::StorePort;
    switch (op) {
      case Opcode::NOP:
      case Opcode::HALT:
      case Opcode::MEMBAR:
        return FuClass::None;
      case Opcode::MUL:
        return FuClass::IntMul;
      case Opcode::DIV:
        return FuClass::IntDiv;
      case Opcode::FADD:
        return FuClass::FpAlu;
      case Opcode::FMUL:
        return FuClass::FpMul;
      case Opcode::FDIV:
        return FuClass::FpDiv;
      case Opcode::SWAP:
        return FuClass::StorePort;
      default:
        return FuClass::IntAlu;
    }
}

unsigned
fuLatency(FuClass fu)
{
    switch (fu) {
      case FuClass::IntAlu:
        return 1;
      case FuClass::IntMul:
        return 3;
      case FuClass::IntDiv:
        return 12;
      case FuClass::FpAlu:
        return 4;
      case FuClass::FpMul:
        return 4;
      case FuClass::FpDiv:
        return 4;
      case FuClass::LoadPort:
        return 1; // agen; cache latency added separately
      case FuClass::StorePort:
        return 1; // agen
      case FuClass::None:
        return 1;
    }
    panic("unreachable fuLatency");
}

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::NOP: return "nop";
      case Opcode::HALT: return "halt";
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SLL: return "sll";
      case Opcode::SRL: return "srl";
      case Opcode::SRA: return "sra";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::CMPEQ: return "cmpeq";
      case Opcode::CMPLT: return "cmplt";
      case Opcode::CMPLTU: return "cmpltu";
      case Opcode::ADDI: return "addi";
      case Opcode::ANDI: return "andi";
      case Opcode::ORI: return "ori";
      case Opcode::XORI: return "xori";
      case Opcode::SLLI: return "slli";
      case Opcode::SRLI: return "srli";
      case Opcode::CMPEQI: return "cmpeqi";
      case Opcode::CMPLTI: return "cmplti";
      case Opcode::LDI: return "ldi";
      case Opcode::FADD: return "fadd";
      case Opcode::FMUL: return "fmul";
      case Opcode::FDIV: return "fdiv";
      case Opcode::LD1: return "ld1";
      case Opcode::LD2: return "ld2";
      case Opcode::LD4: return "ld4";
      case Opcode::LD8: return "ld8";
      case Opcode::ST1: return "st1";
      case Opcode::ST2: return "st2";
      case Opcode::ST4: return "st4";
      case Opcode::ST8: return "st8";
      case Opcode::SWAP: return "swap";
      case Opcode::MEMBAR: return "membar";
      case Opcode::BEQ: return "beq";
      case Opcode::BNE: return "bne";
      case Opcode::BLT: return "blt";
      case Opcode::BGE: return "bge";
      case Opcode::JMP: return "jmp";
      case Opcode::JAL: return "jal";
      case Opcode::JR: return "jr";
      default: return "???";
    }
}

} // namespace vbr
