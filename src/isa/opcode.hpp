/**
 * @file
 * Opcode set of the small RISC ISA ("visa") executed by the simulated
 * cores. The ISA exists to let real data values flow through loads and
 * stores — the property value-based replay checks — while staying small
 * enough to implement exactly. See DESIGN.md §2 for the substitution
 * rationale (the paper used PowerPC under PHARMsim).
 */

#ifndef VBR_ISA_OPCODE_HPP
#define VBR_ISA_OPCODE_HPP

#include <cstdint>
#include <string_view>

namespace vbr
{

/** All visa opcodes. */
enum class Opcode : std::uint8_t
{
    NOP = 0,
    HALT,

    // Integer register-register ALU.
    ADD,
    SUB,
    AND,
    OR,
    XOR,
    SLL,
    SRL,
    SRA,
    MUL,
    DIV,
    CMPEQ,
    CMPLT,
    CMPLTU,

    // Integer register-immediate ALU.
    ADDI,
    ANDI,
    ORI,
    XORI,
    SLLI,
    SRLI,
    CMPEQI,
    CMPLTI,
    LDI,  ///< rd = sign-extended 32-bit immediate

    // Floating point (operates on register bits as IEEE double); these
    // exist to exercise the long-latency functional units of Table 3.
    FADD,
    FMUL,
    FDIV,

    // Loads: rd = zero-extended mem[ra + imm].
    LD1,
    LD2,
    LD4,
    LD8,

    // Stores: mem[ra + imm] = low bytes of rb.
    ST1,
    ST2,
    ST4,
    ST8,

    /// Atomic exchange: rd = mem8[ra + imm]; mem8[ra + imm] = rb.
    SWAP,

    /// Full memory barrier.
    MEMBAR,

    // Control: branch targets are absolute instruction indices carried
    // in the immediate (synthetic programs have no relocation needs).
    BEQ,  ///< if (ra == rb) pc = imm
    BNE,
    BLT,  ///< signed
    BGE,  ///< signed
    JMP,  ///< pc = imm
    JAL,  ///< rd = pc + 1; pc = imm
    JR,   ///< pc = ra (used for returns; trains the RAS)

    kNumOpcodes
};

/** Functional unit classes, matching the Table 3 execution resources. */
enum class FuClass : std::uint8_t
{
    IntAlu,   ///< 1-cycle integer ops and branches
    IntMul,   ///< 3-cycle integer multiply
    IntDiv,   ///< 12-cycle integer divide
    FpAlu,    ///< 4-cycle FP add/compare
    FpMul,    ///< 4-cycle FP multiply
    FpDiv,    ///< 4-cycle FP divide (Table 3 lists MULT/DIV at 4,4)
    LoadPort, ///< load agen + L1D access
    StorePort,///< store agen
    None      ///< NOP/HALT/MEMBAR consume no FU
};

/** True for LD1/LD2/LD4/LD8 (SWAP is classified separately). */
bool isLoad(Opcode op);

/** True for ST1/ST2/ST4/ST8. */
bool isStore(Opcode op);

/** True for any instruction that references memory (incl. SWAP). */
bool isMem(Opcode op);

/** True for conditional branches and jumps (anything redirecting pc). */
bool isControl(Opcode op);

/** True for conditional branches only. */
bool isCondBranch(Opcode op);

/** Access size in bytes for memory ops (0 for non-memory). */
unsigned memSize(Opcode op);

/** Functional unit class executing this opcode. */
FuClass fuClass(Opcode op);

/** Default execution latency (cycles) per Table 3. */
unsigned fuLatency(FuClass fu);

/** Mnemonic for disassembly. */
std::string_view opcodeName(Opcode op);

} // namespace vbr

#endif // VBR_ISA_OPCODE_HPP
