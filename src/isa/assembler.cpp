#include "isa/assembler.hpp"

#include "common/logging.hpp"

namespace vbr
{

std::uint32_t
Assembler::here() const
{
    return static_cast<std::uint32_t>(prog_.code().size());
}

void
Assembler::label(const std::string &name)
{
    auto [it, inserted] = labels_.emplace(name, here());
    if (!inserted)
        fatal("duplicate label: " + name);
}

std::uint32_t
Assembler::emit(Instruction inst)
{
    VBR_ASSERT(!finalized_, "emit after finalize");
    std::uint32_t idx = here();
    prog_.code().push_back(inst);
    return idx;
}

std::uint32_t
Assembler::emitBranch(Instruction inst, const std::string &target_label)
{
    std::uint32_t idx = emit(inst);
    fixups_.emplace_back(idx, target_label);
    return idx;
}

void
Assembler::finalize()
{
    VBR_ASSERT(!finalized_, "finalize called twice");
    for (const auto &[idx, name] : fixups_) {
        auto it = labels_.find(name);
        if (it == labels_.end())
            fatal("unresolved label: " + name);
        prog_.code()[idx].imm = static_cast<std::int32_t>(it->second);
    }
    fixups_.clear();
    finalized_ = true;
}

Opcode
Assembler::loadOp(unsigned size)
{
    switch (size) {
      case 1: return Opcode::LD1;
      case 2: return Opcode::LD2;
      case 4: return Opcode::LD4;
      case 8: return Opcode::LD8;
      default: fatal("bad load size");
    }
}

Opcode
Assembler::storeOp(unsigned size)
{
    switch (size) {
      case 1: return Opcode::ST1;
      case 2: return Opcode::ST2;
      case 4: return Opcode::ST4;
      case 8: return Opcode::ST8;
      default: fatal("bad store size");
    }
}

} // namespace vbr
