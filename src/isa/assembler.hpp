/**
 * @file
 * Label-based program builder. Workload generators and tests construct
 * programs through this API; forward branch targets are patched when
 * the program is finalized.
 */

#ifndef VBR_ISA_ASSEMBLER_HPP
#define VBR_ISA_ASSEMBLER_HPP

#include <map>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace vbr
{

/**
 * Incremental assembler over a Program's code vector. Typical use:
 *
 *   Assembler as(prog);
 *   as.ldi(1, 100);
 *   as.label("loop");
 *   as.addi(1, 1, -1);
 *   as.bne(1, 0, "loop");
 *   as.halt();
 *   as.finalize();
 */
class Assembler
{
  public:
    explicit Assembler(Program &prog) : prog_(prog) {}

    /** Current position = index of the next emitted instruction. */
    std::uint32_t here() const;

    /** Bind @p name to the current position. */
    void label(const std::string &name);

    /** Emit a raw instruction. Returns its index. */
    std::uint32_t emit(Instruction inst);

    /** Emit a control instruction targeting @p target_label. */
    std::uint32_t emitBranch(Instruction inst,
                             const std::string &target_label);

    // --- convenience emitters -----------------------------------------
    void nop() { emit({Opcode::NOP, 0, 0, 0, 0}); }
    void halt() { emit({Opcode::HALT, 0, 0, 0, 0}); }
    void membar() { emit({Opcode::MEMBAR, 0, 0, 0, 0}); }

    void
    alu(Opcode op, unsigned rd, unsigned ra, unsigned rb)
    {
        emit({op, u8(rd), u8(ra), u8(rb), 0});
    }

    void
    alui(Opcode op, unsigned rd, unsigned ra, std::int32_t imm)
    {
        emit({op, u8(rd), u8(ra), 0, imm});
    }

    void add(unsigned d, unsigned a, unsigned b) { alu(Opcode::ADD, d, a, b); }
    void sub(unsigned d, unsigned a, unsigned b) { alu(Opcode::SUB, d, a, b); }
    void mul(unsigned d, unsigned a, unsigned b) { alu(Opcode::MUL, d, a, b); }
    void xorr(unsigned d, unsigned a, unsigned b) { alu(Opcode::XOR, d, a, b); }
    void addi(unsigned d, unsigned a, std::int32_t i) { alui(Opcode::ADDI, d, a, i); }
    void andi(unsigned d, unsigned a, std::int32_t i) { alui(Opcode::ANDI, d, a, i); }
    void slli(unsigned d, unsigned a, std::int32_t i) { alui(Opcode::SLLI, d, a, i); }
    void ldi(unsigned d, std::int32_t i) { emit({Opcode::LDI, u8(d), 0, 0, i}); }

    void
    load(unsigned size, unsigned rd, unsigned ra, std::int32_t off)
    {
        emit({loadOp(size), u8(rd), u8(ra), 0, off});
    }

    void
    store(unsigned size, unsigned rb, unsigned ra, std::int32_t off)
    {
        emit({storeOp(size), 0, u8(ra), u8(rb), off});
    }

    void ld8(unsigned rd, unsigned ra, std::int32_t off) { load(8, rd, ra, off); }
    void ld4(unsigned rd, unsigned ra, std::int32_t off) { load(4, rd, ra, off); }
    void st8(unsigned rb, unsigned ra, std::int32_t off) { store(8, rb, ra, off); }
    void st4(unsigned rb, unsigned ra, std::int32_t off) { store(4, rb, ra, off); }

    void
    swap(unsigned rd, unsigned rb, unsigned ra, std::int32_t off)
    {
        emit({Opcode::SWAP, u8(rd), u8(ra), u8(rb), off});
    }

    void
    beq(unsigned a, unsigned b, const std::string &l)
    {
        emitBranch({Opcode::BEQ, 0, u8(a), u8(b), 0}, l);
    }

    void
    bne(unsigned a, unsigned b, const std::string &l)
    {
        emitBranch({Opcode::BNE, 0, u8(a), u8(b), 0}, l);
    }

    void
    blt(unsigned a, unsigned b, const std::string &l)
    {
        emitBranch({Opcode::BLT, 0, u8(a), u8(b), 0}, l);
    }

    void
    bge(unsigned a, unsigned b, const std::string &l)
    {
        emitBranch({Opcode::BGE, 0, u8(a), u8(b), 0}, l);
    }

    void
    jmp(const std::string &l)
    {
        emitBranch({Opcode::JMP, 0, 0, 0, 0}, l);
    }

    void
    call(const std::string &l)
    {
        emitBranch({Opcode::JAL, u8(kLinkReg), 0, 0, 0}, l);
    }

    void ret() { emit({Opcode::JR, 0, u8(kLinkReg), 0, 0}); }

    /**
     * Resolve all pending label references. Must be called exactly once
     * after all code is emitted; unresolved labels are fatal.
     */
    void finalize();

  private:
    static std::uint8_t u8(unsigned r) { return static_cast<std::uint8_t>(r); }
    static Opcode loadOp(unsigned size);
    static Opcode storeOp(unsigned size);

    Program &prog_;
    std::map<std::string, std::uint32_t> labels_;
    std::vector<std::pair<std::uint32_t, std::string>> fixups_;
    bool finalized_ = false;
};

} // namespace vbr

#endif // VBR_ISA_ASSEMBLER_HPP
