/**
 * @file
 * Static instruction representation: opcode + three register fields +
 * a 32-bit immediate, with a packed 64-bit encoding for round-trip
 * tests and instruction memory modeling.
 */

#ifndef VBR_ISA_INSTRUCTION_HPP
#define VBR_ISA_INSTRUCTION_HPP

#include <cstdint>
#include <string>

#include "isa/opcode.hpp"

namespace vbr
{

/** Number of architectural general-purpose registers. r0 reads as 0. */
inline constexpr unsigned kNumArchRegs = 32;

/** Register holding return addresses by convention (trains the RAS). */
inline constexpr unsigned kLinkReg = 31;

/**
 * A static visa instruction. Program counters are instruction indices;
 * branch targets are absolute indices carried in @ref imm.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0; ///< destination register
    std::uint8_t ra = 0; ///< first source register (base for mem ops)
    std::uint8_t rb = 0; ///< second source (store data for ST*/SWAP)
    std::int32_t imm = 0; ///< immediate / offset / branch target

    /** Pack into the canonical 64-bit encoding. */
    std::uint64_t encode() const;

    /** Decode from the canonical 64-bit encoding. */
    static Instruction decode(std::uint64_t bits);

    /** Human-readable disassembly, e.g. "ld8 r5, 16(r2)". */
    std::string disassemble() const;

    bool
    operator==(const Instruction &o) const
    {
        return op == o.op && rd == o.rd && ra == o.ra && rb == o.rb &&
               imm == o.imm;
    }

    /** True when this instruction writes @ref rd. */
    bool writesRd() const;

    /** True when this instruction reads @ref ra / @ref rb. */
    bool readsRa() const;
    bool readsRb() const;
};

} // namespace vbr

#endif // VBR_ISA_INSTRUCTION_HPP
