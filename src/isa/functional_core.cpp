#include "isa/functional_core.hpp"

#include "common/logging.hpp"
#include "isa/semantics.hpp"
#include "mem/memory_image.hpp"

namespace vbr
{

FunctionalCore::FunctionalCore(const Program &prog, MemoryImage &mem,
                               unsigned thread_id)
    : prog_(prog), mem_(mem)
{
    VBR_ASSERT(thread_id < prog.threads().size(),
               "thread id out of range");
    const ThreadSpec &spec = prog.threads()[thread_id];
    pc_ = spec.entryPc;
    regs_ = spec.initRegs;
    regs_[0] = 0;
}

bool
FunctionalCore::step()
{
    if (halted_)
        return false;

    const Instruction &inst = prog_.fetch(pc_);
    Word a = regs_[inst.ra];
    Word b = regs_[inst.rb];
    std::uint32_t next_pc = pc_ + 1;

    switch (inst.op) {
      case Opcode::HALT:
        halted_ = true;
        ++count_;
        return false;
      case Opcode::NOP:
      case Opcode::MEMBAR:
        break;
      case Opcode::LD1:
      case Opcode::LD2:
      case Opcode::LD4:
      case Opcode::LD8:
        reg(inst.rd, mem_.read(effectiveAddr(inst, a), memSize(inst.op)));
        break;
      case Opcode::ST1:
      case Opcode::ST2:
      case Opcode::ST4:
      case Opcode::ST8:
        mem_.write(effectiveAddr(inst, a), memSize(inst.op), b);
        break;
      case Opcode::SWAP: {
        Addr ea = effectiveAddr(inst, a);
        Word old = mem_.read(ea, 8);
        mem_.write(ea, 8, b);
        reg(inst.rd, old);
        break;
      }
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
        if (evalBranchTaken(inst, a, b))
            next_pc = controlTarget(inst, a);
        break;
      case Opcode::JMP:
        next_pc = controlTarget(inst, a);
        break;
      case Opcode::JAL:
        reg(inst.rd, pc_ + 1);
        next_pc = controlTarget(inst, a);
        break;
      case Opcode::JR:
        next_pc = controlTarget(inst, a);
        break;
      default:
        reg(inst.rd, evalAlu(inst, a, b));
        break;
    }

    pc_ = next_pc;
    ++count_;
    return true;
}

bool
FunctionalCore::run(std::uint64_t max_steps)
{
    for (std::uint64_t i = 0; i < max_steps && !halted_; ++i)
        step();
    return halted_;
}

} // namespace vbr
