/**
 * @file
 * Value semantics of visa instructions, shared between the in-order
 * functional reference core and the out-of-order timing core so the
 * two can never disagree on what an instruction computes.
 */

#ifndef VBR_ISA_SEMANTICS_HPP
#define VBR_ISA_SEMANTICS_HPP

#include <bit>
#include <cstdint>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace vbr
{

/**
 * Compute the result of a non-memory, non-control instruction given
 * its source register values. For immediate forms @p b is ignored.
 */
inline Word
evalAlu(const Instruction &inst, Word a, Word b)
{
    auto simm = static_cast<Word>(static_cast<std::int64_t>(inst.imm));
    auto sa = static_cast<std::int64_t>(a);
    auto fa = std::bit_cast<double>(a);
    auto fb = std::bit_cast<double>(b);
    switch (inst.op) {
      case Opcode::ADD: return a + b;
      case Opcode::SUB: return a - b;
      case Opcode::AND: return a & b;
      case Opcode::OR: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::SLL: return a << (b & 63);
      case Opcode::SRL: return a >> (b & 63);
      case Opcode::SRA: return static_cast<Word>(sa >> (b & 63));
      case Opcode::MUL: return a * b;
      case Opcode::DIV:
        if (b == 0)
            return 0;
        if (a == 0x8000000000000000ULL && b == ~0ULL)
            return a; // avoid UB on INT64_MIN / -1
        return static_cast<Word>(sa / static_cast<std::int64_t>(b));
      case Opcode::CMPEQ: return a == b ? 1 : 0;
      case Opcode::CMPLT:
        return sa < static_cast<std::int64_t>(b) ? 1 : 0;
      case Opcode::CMPLTU: return a < b ? 1 : 0;
      case Opcode::ADDI: return a + simm;
      case Opcode::ANDI: return a & simm;
      case Opcode::ORI: return a | simm;
      case Opcode::XORI: return a ^ simm;
      case Opcode::SLLI: return a << (inst.imm & 63);
      case Opcode::SRLI: return a >> (inst.imm & 63);
      case Opcode::CMPEQI: return a == simm ? 1 : 0;
      case Opcode::CMPLTI:
        return sa < static_cast<std::int64_t>(simm) ? 1 : 0;
      case Opcode::LDI: return simm;
      case Opcode::FADD: return std::bit_cast<Word>(fa + fb);
      case Opcode::FMUL: return std::bit_cast<Word>(fa * fb);
      case Opcode::FDIV:
        if (fb == 0.0)
            return std::bit_cast<Word>(0.0);
        return std::bit_cast<Word>(fa / fb);
      default: return 0;
    }
}

/** Branch decision for conditional branches. */
inline bool
evalBranchTaken(const Instruction &inst, Word a, Word b)
{
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);
    switch (inst.op) {
      case Opcode::BEQ: return a == b;
      case Opcode::BNE: return a != b;
      case Opcode::BLT: return sa < sb;
      case Opcode::BGE: return sa >= sb;
      case Opcode::JMP:
      case Opcode::JAL:
      case Opcode::JR:
        return true;
      default: return false;
    }
}

/**
 * Target pc of a control instruction when taken. @p a is the value of
 * ra (used only by JR).
 */
inline std::uint32_t
controlTarget(const Instruction &inst, Word a)
{
    if (inst.op == Opcode::JR)
        return static_cast<std::uint32_t>(a);
    return static_cast<std::uint32_t>(inst.imm);
}

/** Effective memory address for loads/stores/SWAP. */
inline Addr
effectiveAddr(const Instruction &inst, Word a)
{
    return a + static_cast<Word>(static_cast<std::int64_t>(inst.imm));
}

} // namespace vbr

#endif // VBR_ISA_SEMANTICS_HPP
