#include "isa/instruction.hpp"

#include <cstdio>

#include "common/logging.hpp"

namespace vbr
{

std::uint64_t
Instruction::encode() const
{
    return (static_cast<std::uint64_t>(op) << 56) |
           (static_cast<std::uint64_t>(rd) << 48) |
           (static_cast<std::uint64_t>(ra) << 40) |
           (static_cast<std::uint64_t>(rb) << 32) |
           static_cast<std::uint32_t>(imm);
}

Instruction
Instruction::decode(std::uint64_t bits)
{
    Instruction inst;
    auto op_bits = static_cast<std::uint8_t>(bits >> 56);
    VBR_ASSERT(op_bits < static_cast<std::uint8_t>(Opcode::kNumOpcodes),
               "invalid opcode bits");
    inst.op = static_cast<Opcode>(op_bits);
    inst.rd = static_cast<std::uint8_t>(bits >> 48) & 0x3f;
    inst.ra = static_cast<std::uint8_t>(bits >> 40) & 0x3f;
    inst.rb = static_cast<std::uint8_t>(bits >> 32) & 0x3f;
    inst.imm = static_cast<std::int32_t>(bits & 0xffffffffULL);
    return inst;
}

bool
Instruction::writesRd() const
{
    switch (op) {
      case Opcode::NOP:
      case Opcode::HALT:
      case Opcode::MEMBAR:
      case Opcode::ST1:
      case Opcode::ST2:
      case Opcode::ST4:
      case Opcode::ST8:
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::JMP:
      case Opcode::JR:
        return false;
      default:
        return rd != 0;
    }
}

bool
Instruction::readsRa() const
{
    switch (op) {
      case Opcode::NOP:
      case Opcode::HALT:
      case Opcode::MEMBAR:
      case Opcode::LDI:
      case Opcode::JMP:
      case Opcode::JAL:
        return false;
      default:
        return true;
    }
}

bool
Instruction::readsRb() const
{
    switch (op) {
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
      case Opcode::SLL:
      case Opcode::SRL:
      case Opcode::SRA:
      case Opcode::MUL:
      case Opcode::DIV:
      case Opcode::CMPEQ:
      case Opcode::CMPLT:
      case Opcode::CMPLTU:
      case Opcode::FADD:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::ST1:
      case Opcode::ST2:
      case Opcode::ST4:
      case Opcode::ST8:
      case Opcode::SWAP:
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
        return true;
      default:
        return false;
    }
}

std::string
Instruction::disassemble() const
{
    char buf[96];
    const char *name = opcodeName(op).data();
    if (isLoad(op)) {
        std::snprintf(buf, sizeof(buf), "%s r%u, %d(r%u)", name, rd, imm,
                      ra);
    } else if (isStore(op)) {
        std::snprintf(buf, sizeof(buf), "%s r%u, %d(r%u)", name, rb, imm,
                      ra);
    } else if (op == Opcode::SWAP) {
        std::snprintf(buf, sizeof(buf), "%s r%u, r%u, %d(r%u)", name, rd,
                      rb, imm, ra);
    } else if (isCondBranch(op)) {
        std::snprintf(buf, sizeof(buf), "%s r%u, r%u, @%d", name, ra, rb,
                      imm);
    } else if (op == Opcode::JMP) {
        std::snprintf(buf, sizeof(buf), "%s @%d", name, imm);
    } else if (op == Opcode::JAL) {
        std::snprintf(buf, sizeof(buf), "%s r%u, @%d", name, rd, imm);
    } else if (op == Opcode::JR) {
        std::snprintf(buf, sizeof(buf), "%s r%u", name, ra);
    } else if (op == Opcode::LDI) {
        std::snprintf(buf, sizeof(buf), "%s r%u, %d", name, rd, imm);
    } else if (op == Opcode::NOP || op == Opcode::HALT ||
               op == Opcode::MEMBAR) {
        std::snprintf(buf, sizeof(buf), "%s", name);
    } else if (readsRb()) {
        std::snprintf(buf, sizeof(buf), "%s r%u, r%u, r%u", name, rd, ra,
                      rb);
    } else {
        std::snprintf(buf, sizeof(buf), "%s r%u, r%u, %d", name, rd, ra,
                      imm);
    }
    return buf;
}

} // namespace vbr
