#include "verify/auditor.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"
#include "mem/coherence.hpp"
#include "mem/hierarchy.hpp"
#include "verify/failure_artifact.hpp"

namespace vbr
{

const char *
invariantName(InvariantKind kind)
{
    switch (kind) {
      case InvariantKind::ReplayBeforeStoreDrain:
        return "replay-before-store-drain";
      case InvariantKind::ReplayProgramOrder:
        return "replay-program-order";
      case InvariantKind::SquashingLoadReplayed:
        return "squashing-load-replayed";
      case InvariantKind::ReplayQueueFifo:
        return "replay-queue-fifo";
      case InvariantKind::StoreQueueAgeOrder:
        return "store-queue-age-order";
      case InvariantKind::StoreDrainOrder:
        return "store-drain-order";
      case InvariantKind::LoadCommitPendingReplay:
        return "load-commit-pending-replay";
      case InvariantKind::RobAgeOrder:
        return "rob-age-order";
      case InvariantKind::CommitSeqOrder:
        return "commit-seq-order";
      case InvariantKind::CommitCycleOrder:
        return "commit-cycle-order";
      case InvariantKind::SwmrOwnerExclusive:
        return "swmr-owner-exclusive";
      case InvariantKind::SwmrStaleCopy:
        return "swmr-stale-copy";
    }
    return "unknown";
}

std::string
AuditViolation::format() const
{
    std::ostringstream os;
    os << "audit violation [" << invariantName(kind) << "] cycle "
       << cycle << " core " << core << " " << structure;
    if (seq != kNoSeq)
        os << " seq " << seq;
    if (other != kNoSeq)
        os << " (vs seq " << other << ")";
    os << ": expected " << expected << ", actual " << actual;
    return os.str();
}

InvariantAuditor::InvariantAuditor(const AuditConfig &config)
    : config_(config)
{
}

void
InvariantAuditor::registerCore(CoreId core)
{
    state(core);
}

InvariantAuditor::CoreState &
InvariantAuditor::state(CoreId core)
{
    if (cores_.size() <= core)
        cores_.resize(core + 1);
    return cores_[core];
}

void
InvariantAuditor::report(AuditViolation violation)
{
    ++violationCount_;
    if (violations_.size() < config_.maxViolations)
        violations_.push_back(violation);
    if (!config_.artifactDir.empty()) {
        // Same triage format as sweep/deadlock failures; re-reported
        // violations overwrite the file, so it always holds the most
        // recent one plus the running count.
        FailureArtifact art;
        art.job = config_.jobLabel + "-audit";
        art.kind = "audit-violation";
        art.error = violation.format();
        JsonValue ctx = JsonValue::object();
        ctx.set("invariant", invariantName(violation.kind));
        ctx.set("cycle", violation.cycle);
        ctx.set("core", static_cast<std::uint64_t>(violation.core));
        ctx.set("structure", violation.structure);
        if (violation.seq != kNoSeq)
            ctx.set("seq", violation.seq);
        if (violation.other != kNoSeq)
            ctx.set("other_seq", violation.other);
        ctx.set("expected", violation.expected);
        ctx.set("actual", violation.actual);
        ctx.set("violation_count", violationCount_);
        art.context = std::move(ctx);
        art.writeTo(config_.artifactDir);
    }
    if (config_.panicOnViolation)
        panic(violation.format());
    else
        warn(violation.format());
}

// ---------------------------------------------------------------------
// Event checks
// ---------------------------------------------------------------------

void
InvariantAuditor::onStoreDispatched(CoreId core, SeqNum seq)
{
    CoreState &cs = state(core);
    check();
    if (!cs.pendingStores.empty() && cs.pendingStores.back() >= seq) {
        report({InvariantKind::StoreQueueAgeOrder, 0, core,
                "store_queue", seq, cs.pendingStores.back(),
                "dispatch seq above all pending stores",
                "dispatched out of age order"});
        return;
    }
    cs.pendingStores.push_back(seq);
}

void
InvariantAuditor::onStoreDrained(CoreId core, SeqNum seq, Cycle now)
{
    CoreState &cs = state(core);
    check();
    if (cs.pendingStores.empty()) {
        report({InvariantKind::StoreDrainOrder, now, core,
                "store_queue", seq, kNoSeq, "a pending store",
                "drain with no store outstanding"});
        return;
    }
    if (cs.pendingStores.front() != seq) {
        std::ostringstream exp;
        exp << "oldest pending store " << cs.pendingStores.front();
        report({InvariantKind::StoreDrainOrder, now, core,
                "store_queue", seq, cs.pendingStores.front(),
                exp.str(), "younger store drained first"});
        // Resynchronize: drop everything up to the drained store so
        // one bug does not cascade into a report per later drain.
        while (!cs.pendingStores.empty() &&
               cs.pendingStores.front() <= seq)
            cs.pendingStores.pop_front();
        return;
    }
    cs.pendingStores.pop_front();
}

void
InvariantAuditor::onReplayIssued(CoreId core, SeqNum seq,
                                 std::uint32_t pc,
                                 bool value_predicted, bool at_head,
                                 Cycle now)
{
    CoreState &cs = state(core);

    // Paper §3 constraint 1: every prior store must have committed to
    // the L1 (drained) before a load replays.
    check();
    if (!cs.pendingStores.empty() && cs.pendingStores.front() < seq) {
        std::ostringstream act;
        act << "store " << cs.pendingStores.front()
            << " still undrained";
        report({InvariantKind::ReplayBeforeStoreDrain, now, core,
                "replay_port", seq, cs.pendingStores.front(),
                "all prior stores drained", act.str()});
    }

    // Paper §3 constraint 2: loads replay in program order. Sequence
    // numbers are never reused, so among loads that coexist in the
    // window, program order is seq order; squashed replays leave the
    // mirror via onSquash, so the back is the youngest LIVE replay.
    // A forced late replay at the ROB head is ordered by position
    // (every older instruction has committed) and is exempt: a
    // filtered load can be overtaken by an arming event after younger
    // loads already replayed.
    if (!at_head) {
        check();
        if (!cs.replayedLoads.empty() &&
            seq <= cs.replayedLoads.back()) {
            std::ostringstream exp;
            exp << "replay seq above " << cs.replayedLoads.back();
            report({InvariantKind::ReplayProgramOrder, now, core,
                    "replay_port", seq, cs.replayedLoads.back(),
                    exp.str(), "out-of-order replay"});
        } else {
            cs.replayedLoads.push_back(seq);
        }
    }

    // Paper §3 constraint 3: a load whose replay squashed the pipe is
    // not replayed again after recovery (it re-issues at the window
    // head, architecturally ordered). Value-predicted loads are the
    // sanctioned exception: their replay IS the validation.
    check();
    // The at-head exemption applies here too: suppression is keyed by
    // pc, and a DIFFERENT (filtered, non-suppressed) instance of the
    // same pc may legitimately late-replay while a squash-causing
    // instance's suppression is still outstanding.
    if (!value_predicted && !at_head) {
        auto it = cs.suppressed.find(pc);
        if (it != cs.suppressed.end() && it->second > 0) {
            report({InvariantKind::SquashingLoadReplayed, now, core,
                    "replay_port", seq, kNoSeq,
                    "no replay while rule-3 suppression active",
                    "squash-causing load replayed again"});
        }
    }
}

void
InvariantAuditor::onReplaySquash(CoreId core, SeqNum seq,
                                 std::uint32_t pc, Cycle now)
{
    (void)seq;
    (void)now;
    ++state(core).suppressed[pc];
}

void
InvariantAuditor::onLoadCommit(CoreId core, SeqNum seq,
                               std::uint32_t pc, bool replay_issued,
                               Cycle compare_ready, Cycle now)
{
    CoreState &cs = state(core);

    // LSQ discipline: no load commits with a replay still in flight
    // (its compare-stage verdict must be in).
    check();
    if (replay_issued && compare_ready > now) {
        std::ostringstream act;
        act << "compare ready at cycle " << compare_ready;
        report({InvariantKind::LoadCommitPendingReplay, now, core,
                "replay_queue", seq, kNoSeq,
                "replay compare complete before commit", act.str()});
    }

    // Committed loads leave the in-flight replay mirror from the old
    // end (loads commit in program order).
    while (!cs.replayedLoads.empty() && cs.replayedLoads.front() <= seq)
        cs.replayedLoads.pop_front();

    // Mirror the core's rule-3 bookkeeping: one suppressed replay is
    // consumed per committed load at that pc.
    auto it = cs.suppressed.find(pc);
    if (it != cs.suppressed.end()) {
        if (it->second > 0)
            --it->second;
        if (it->second == 0)
            cs.suppressed.erase(it);
    }
}

void
InvariantAuditor::onSquash(CoreId core, SeqNum bound, Cycle now)
{
    (void)now;
    CoreState &cs = state(core);
    while (!cs.pendingStores.empty() && cs.pendingStores.back() >= bound)
        cs.pendingStores.pop_back();
    while (!cs.replayedLoads.empty() &&
           cs.replayedLoads.back() >= bound)
        cs.replayedLoads.pop_back();
}

void
InvariantAuditor::onMemCommit(const MemCommitEvent &event)
{
    CoreState &cs = state(event.core);

    // ROB age monotonicity at retirement: the commit stream of one
    // core walks strictly forward in fetch order.
    check();
    if (cs.lastCommitSeq != kNoSeq && event.seq <= cs.lastCommitSeq) {
        std::ostringstream exp;
        exp << "commit seq above " << cs.lastCommitSeq;
        report({InvariantKind::CommitSeqOrder, event.commitCycle,
                event.core, "rob", event.seq, cs.lastCommitSeq,
                exp.str(), "out-of-order commit"});
    } else {
        cs.lastCommitSeq = event.seq;
    }

    check();
    if (event.commitCycle < cs.lastCommitCycle) {
        std::ostringstream exp;
        exp << "commit cycle >= " << cs.lastCommitCycle;
        std::ostringstream act;
        act << "commit cycle " << event.commitCycle;
        report({InvariantKind::CommitCycleOrder, event.commitCycle,
                event.core, "rob", event.seq, cs.lastCommitSeq,
                exp.str(), act.str()});
    } else {
        cs.lastCommitCycle = event.commitCycle;
    }
}

// ---------------------------------------------------------------------
// Structural scans
// ---------------------------------------------------------------------

bool
InvariantAuditor::scanDue(Cycle now) const
{
    switch (config_.level) {
      case AuditLevel::Off:
        return false;
      case AuditLevel::Full:
        return true;
      case AuditLevel::Sampled:
        return config_.samplePeriod == 0 ||
               now % config_.samplePeriod == 0;
    }
    return false;
}

bool
InvariantAuditor::coherenceScanDue(Cycle now) const
{
    if (config_.level == AuditLevel::Off)
        return false;
    Cycle period = config_.coherenceScanPeriod;
    if (config_.level == AuditLevel::Sampled)
        period = std::max(period, config_.samplePeriod);
    return period == 0 || now % period == 0;
}

namespace
{

/** Smallest multiple of @p period strictly greater than @p now
 * (period 0 means "every cycle": now + 1). */
Cycle
nextMultipleAfter(Cycle now, Cycle period)
{
    if (period == 0)
        return now + 1;
    return (now / period + 1) * period;
}

} // namespace

Cycle
InvariantAuditor::nextScanCycle(Cycle now) const
{
    switch (config_.level) {
      case AuditLevel::Off:
        return kNeverCycle;
      case AuditLevel::Full:
        return now + 1;
      case AuditLevel::Sampled:
        return nextMultipleAfter(now, config_.samplePeriod);
    }
    return kNeverCycle;
}

Cycle
InvariantAuditor::nextCoherenceScanCycle(Cycle now) const
{
    if (config_.level == AuditLevel::Off)
        return kNeverCycle;
    Cycle period = config_.coherenceScanPeriod;
    if (config_.level == AuditLevel::Sampled)
        period = std::max(period, config_.samplePeriod);
    return nextMultipleAfter(now, period);
}

void
InvariantAuditor::scanRob(CoreId core, const std::deque<DynInst> &rob,
                          Cycle now)
{
    SeqNum prev = kNoSeq;
    for (const DynInst &d : rob) {
        check();
        if (prev != kNoSeq && d.seq <= prev) {
            report({InvariantKind::RobAgeOrder, now, core, "rob",
                    d.seq, prev, "strictly increasing seq",
                    "age order broken"});
            return;
        }
        prev = d.seq;
    }
}

void
InvariantAuditor::scanReplayQueue(CoreId core, const ReplayQueue &rq,
                                  Cycle now)
{
    SeqNum prev = kNoSeq;
    for (std::size_t i = 0; i < rq.size(); ++i) {
        const ReplayQueueEntry &e = rq.at(i);
        check();
        if (prev != kNoSeq && e.seq <= prev) {
            report({InvariantKind::ReplayQueueFifo, now, core,
                    "replay_queue", e.seq, prev,
                    "FIFO in program order", "age order broken"});
            return;
        }
        prev = e.seq;
    }
}

void
InvariantAuditor::scanStoreQueue(CoreId core, const StoreQueue &sq,
                                 Cycle now)
{
    SeqNum prev = kNoSeq;
    for (std::size_t i = 0; i < sq.size(); ++i) {
        const SqEntry &e = sq.at(i);
        check();
        if (prev != kNoSeq && e.seq <= prev) {
            report({InvariantKind::StoreQueueAgeOrder, now, core,
                    "store_queue", e.seq, prev,
                    "strictly increasing seq", "age order broken"});
            return;
        }
        prev = e.seq;
    }
}

void
InvariantAuditor::scanCoherence(const CoherenceFabric &fabric,
                                Cycle now)
{
    const unsigned n = fabric.numCores();
    fabric.forEachLine([&](Addr line, int owner,
                           std::uint64_t sharers) {
        for (CoreId c = 0; c < n; ++c) {
            const CacheHierarchy *h = fabric.attachedHierarchy(c);
            bool holds = h && h->holdsLine(line);
            bool sharer = (sharers >> c) & 1;

            // SWMR: while one core owns a line exclusively, no other
            // core may hold any copy of it.
            if (owner >= 0 && static_cast<CoreId>(owner) != c) {
                check();
                if (holds || sharer) {
                    std::ostringstream act;
                    act << "core " << c
                        << (holds ? " caches" : " is directory sharer")
                        << " of line owned by core " << owner;
                    report({InvariantKind::SwmrOwnerExclusive, now,
                            static_cast<CoreId>(owner), "directory",
                            kNoSeq, kNoSeq,
                            "single writable copy (SWMR)", act.str()});
                    return;
                }
            }

            // A cached copy the directory does not track can never be
            // invalidated: a stale-value time bomb.
            check();
            if (holds && !sharer) {
                std::ostringstream act;
                act << "core " << c << " caches line 0x" << std::hex
                    << line << " without a directory sharer bit";
                report({InvariantKind::SwmrStaleCopy, now, c,
                        "directory", kNoSeq, kNoSeq,
                        "every cached copy directory-tracked",
                        act.str()});
                return;
            }
        }
    });
}

std::string
InvariantAuditor::renderViolations() const
{
    std::ostringstream os;
    for (const AuditViolation &v : violations_)
        os << v.format() << "\n";
    if (violationCount_ > violations_.size())
        os << "... and " << (violationCount_ - violations_.size())
           << " more\n";
    return os.str();
}

} // namespace vbr
