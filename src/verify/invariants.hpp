/**
 * @file
 * Invariant catalog for the always-on audit layer. Each kind names one
 * small per-structure correctness property of the value-based replay
 * pipeline (paper §3), the LSQ discipline, the ROB, or the coherence
 * hierarchy. Decomposing consistency verification into per-structure
 * invariants (after QED / operational I²E checking) localizes a bug to
 * the offending stage instead of leaving it to the end-to-end
 * constraint-graph verdict.
 */

#ifndef VBR_VERIFY_INVARIANTS_HPP
#define VBR_VERIFY_INVARIANTS_HPP

#include <string>

#include "common/types.hpp"

namespace vbr
{

/** How aggressively the auditor runs its structural scans. */
enum class AuditLevel
{
    /** No auditor at all: zero cost. */
    Off = 0,

    /** Event-driven O(1) checks on every event; structural scans on a
     * coarse sampling period (release-friendly default). */
    Sampled = 1,

    /** Event-driven checks plus queue scans every cycle and coherence
     * scans on a short period (debug). */
    Full = 2,
};

// The build injects a default via the VBR_AUDIT CMake option
// (off|sampled|full -> 0|1|2); "sampled" when unset.
#ifndef VBR_AUDIT_LEVEL
#define VBR_AUDIT_LEVEL 1
#endif

/** Compile-time default audit level for new SystemConfigs. */
inline constexpr AuditLevel kDefaultAuditLevel =
    static_cast<AuditLevel>(VBR_AUDIT_LEVEL);

/** The audited invariant classes. */
enum class InvariantKind
{
    // Paper §3 replay-stage constraints.
    ReplayBeforeStoreDrain, ///< C1: prior stores in L1 before replay
    ReplayProgramOrder,     ///< C2: loads replay in program order
    SquashingLoadReplayed,  ///< C3: squash-causing load replayed again

    // LSQ discipline.
    ReplayQueueFifo,        ///< replay queue is FIFO in program order
    StoreQueueAgeOrder,     ///< store queue entries age-ordered
    StoreDrainOrder,        ///< stores drain oldest-first
    LoadCommitPendingReplay,///< load committed with replay in flight

    // Window discipline.
    RobAgeOrder,            ///< ROB sequence numbers monotone
    CommitSeqOrder,         ///< per-core commits in age order
    CommitCycleOrder,       ///< per-core commit cycles non-decreasing

    // Coherence hierarchy.
    SwmrOwnerExclusive,     ///< >1 copy of an exclusively-owned line
    SwmrStaleCopy,          ///< cache holds a line the directory lost
};

/** Stable short name of an invariant kind (for reports and tests). */
const char *invariantName(InvariantKind kind);

/**
 * One detected violation: everything needed to localize the bug to a
 * cycle, core, structure, and the instruction(s) involved.
 */
struct AuditViolation
{
    InvariantKind kind = InvariantKind::RobAgeOrder;
    Cycle cycle = 0;
    CoreId core = 0;
    const char *structure = ""; ///< e.g. "replay_queue", "directory"
    SeqNum seq = kNoSeq;        ///< primary instruction involved
    SeqNum other = kNoSeq;      ///< second instruction, if relevant
    std::string expected;
    std::string actual;

    /** Render a one-line human-readable report. */
    std::string format() const;
};

} // namespace vbr

#endif // VBR_VERIFY_INVARIANTS_HPP
