#include "verify/failure_artifact.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/atomic_file.hpp"
#include "common/logging.hpp"

namespace vbr
{

std::string
FailureArtifact::sanitizeJobName(const std::string &job)
{
    std::string out = job.empty() ? std::string("job") : job;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            c = '_';
    }
    return out;
}

std::string
FailureArtifact::render() const
{
    JsonValue doc = JsonValue::object();
    doc.set("artifact", "vbr-failure");
    doc.set("schema", 1);
    doc.set("job", job);
    doc.set("kind", kind);
    doc.set("error", error);
    doc.set("context", context);
    doc.set("commit_trace", commitTrace);
    return doc.dump(2);
}

std::string
FailureArtifact::pathIn(const std::string &dir) const
{
    return dir + "/FAIL_" + sanitizeJobName(job) + ".json";
}

std::string
FailureArtifact::writeTo(const std::string &dir) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    // ec deliberately ignored: the write reports the real failure.
    std::string path = pathIn(dir);
    if (!atomicWriteFile(path, render())) {
        warn("cannot write failure artifact " + path);
        return "";
    }
    return path;
}

std::string
defaultFailArtifactDir()
{
    const char *dir = std::getenv("VBR_FAIL_DIR");
    return (dir != nullptr && dir[0] != '\0') ? dir : "results";
}

} // namespace vbr
