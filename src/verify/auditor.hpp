/**
 * @file
 * The invariant-audit layer: an always-on runtime checker that cores,
 * LSQ structures, and the coherence fabric register with. It keeps an
 * independent mirror of the facts each invariant needs (pending
 * stores, last replayed load, rule-3 suppression) built purely from
 * the event stream, so a bug in the model's own bookkeeping cannot
 * hide from the audit.
 *
 * Two check classes:
 *  - event checks: O(1) per pipeline event, always on while the
 *    auditor exists (paper §3 replay constraints, store drain order,
 *    commit ordering);
 *  - structural scans: walks of the ROB / replay queue / store queue
 *    and of the coherence directory, run per cycle (Full) or on a
 *    sampling period (Sampled).
 *
 * The auditor is a CommitObserver sibling of the constraint-graph
 * checker: both can subscribe to the same retirement stream, and the
 * auditor's per-structure verdicts localize what the end-to-end
 * checker can only detect.
 */

#ifndef VBR_VERIFY_AUDITOR_HPP
#define VBR_VERIFY_AUDITOR_HPP

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/commit_observer.hpp"
#include "core/dyn_inst.hpp"
#include "lsq/replay_queue.hpp"
#include "lsq/store_queue.hpp"
#include "verify/audit_sink.hpp"
#include "verify/invariants.hpp"

namespace vbr
{

class CoherenceFabric;

/** Auditor behavior knobs. */
struct AuditConfig
{
    AuditLevel level = kDefaultAuditLevel;

    /** Abort (panic) on the first violation. The System default: an
     * invariant violation is a simulator bug, and dying loudly at the
     * offending cycle beats a corrupted end-to-end result. Tests that
     * deliberately inject violations turn this off and inspect the
     * recorded reports instead. */
    bool panicOnViolation = true;

    /** Structural-scan period in cycles for Sampled level. */
    Cycle samplePeriod = 4096;

    /** Coherence-scan period in cycles (directory walks are the
     * costliest scan; even Full audits them on a short period). */
    Cycle coherenceScanPeriod = 256;

    /** Keep at most this many violation records. */
    std::size_t maxViolations = 64;

    /** When non-empty, every reported violation (also) lands as a
     * FAIL_<jobLabel>-audit.json artifact in this directory — the same
     * triage format the sweep runner and deadlock watchdog emit. */
    std::string artifactDir;

    /** Job label for the audit failure artifact. */
    std::string jobLabel = "audit";
};

/** Always-on invariant checker for the value-based replay pipeline.
 * Implements AuditEventSink directly; in the two-phase MP tick, cores
 * interpose a DeferredAuditSink during the parallel compute phase. */
class InvariantAuditor : public CommitObserver, public AuditEventSink
{
  public:
    explicit InvariantAuditor(const AuditConfig &config = {});

    const AuditConfig &config() const { return config_; }

    // --- registration -------------------------------------------------

    /** Register a core (idempotent; cores self-register on the first
     * event, but explicit registration pins the id range early). */
    void registerCore(CoreId core);

    // --- event checks (O(1), called from the core) --------------------

    /** A store allocated a store-queue entry at dispatch. */
    void onStoreDispatched(CoreId core, SeqNum seq) override;

    /** A store drained to the cache at the commit-stage port. */
    void onStoreDrained(CoreId core, SeqNum seq, Cycle now) override;

    /** A load issued its replay through the commit-stage port.
     * @p at_head marks the sanctioned late replay of the oldest
     * in-flight instruction (forced by an arming event at the ROB
     * head): it is architecturally ordered by position, so the
     * program-order and rule-3 stream checks do not apply to it. */
    void onReplayIssued(CoreId core, SeqNum seq, std::uint32_t pc,
                        bool value_predicted, bool at_head,
                        Cycle now) override;

    /** A replay value mismatch squashed the pipeline at this load. */
    void onReplaySquash(CoreId core, SeqNum seq, std::uint32_t pc,
                        Cycle now) override;

    /** A load retired. @p replay_issued / @p compare_ready describe
     * its replay state at retirement. */
    void onLoadCommit(CoreId core, SeqNum seq, std::uint32_t pc,
                      bool replay_issued, Cycle compare_ready,
                      Cycle now) override;

    /** The window was squashed from @p bound (inclusive). */
    void onSquash(CoreId core, SeqNum bound, Cycle now) override;

    // CommitObserver: commit-stream ordering checks.
    void onMemCommit(const MemCommitEvent &event) override;

    // --- structural scans ---------------------------------------------

    /** True when queue scans should run this cycle. */
    bool scanDue(Cycle now) const;

    /** True when the (costlier) coherence scan should run. */
    bool coherenceScanDue(Cycle now) const;

    /** Earliest cycle strictly after @p now with scanDue() true
     * (kNeverCycle when scans never fire). The fast-forward horizon
     * clamps to this so the scan schedule — and checksPerformed() —
     * is identical with and without skipping. */
    Cycle nextScanCycle(Cycle now) const;

    /** Earliest cycle strictly after @p now with coherenceScanDue()
     * true (kNeverCycle when the scan never fires). */
    Cycle nextCoherenceScanCycle(Cycle now) const;

    /** ROB ages must be strictly increasing head to tail. */
    void scanRob(CoreId core, const std::deque<DynInst> &rob,
                 Cycle now);

    /** Replay queue must be FIFO in program order. */
    void scanReplayQueue(CoreId core, const ReplayQueue &rq,
                         Cycle now);

    /** Store queue entries must be age-ordered. */
    void scanStoreQueue(CoreId core, const StoreQueue &sq, Cycle now);

    /** SWMR: at most one writable copy of any line across the
     * hierarchy, and no cache copy the directory does not know. */
    void scanCoherence(const CoherenceFabric &fabric, Cycle now);

    // --- results ------------------------------------------------------

    /** Total individual invariant checks performed. */
    std::uint64_t checksPerformed() const { return checks_; }

    /** Total violations detected (may exceed violations().size()). */
    std::uint64_t violationCount() const { return violationCount_; }

    /** The first maxViolations recorded violation reports. */
    const std::vector<AuditViolation> &violations() const
    {
        return violations_;
    }

    /** Render all recorded violations, one per line. */
    std::string renderViolations() const;

  private:
    struct CoreState
    {
        /** Dispatched, not yet drained store seqs (age order). */
        std::deque<SeqNum> pendingStores;
        /** In-flight loads that have issued a replay, in program
         * order. Squashes pop the back; commits pop the front — the
         * back is the youngest surviving replay, which is what the
         * program-order constraint compares against. */
        std::deque<SeqNum> replayedLoads;
        /** Rule-3 suppression mirror: pc -> outstanding count. */
        std::unordered_map<std::uint32_t, unsigned> suppressed;
        /** Youngest committed memory operation. */
        SeqNum lastCommitSeq = kNoSeq;
        Cycle lastCommitCycle = 0;
    };

    CoreState &state(CoreId core);

    /** Count a passed/failed check; record and optionally panic. */
    void report(AuditViolation violation);
    void check(std::uint64_t n = 1) { checks_ += n; }

    AuditConfig config_;
    std::vector<CoreState> cores_;
    std::vector<AuditViolation> violations_;
    std::uint64_t violationCount_ = 0;
    std::uint64_t checks_ = 0;
};

} // namespace vbr

#endif // VBR_VERIFY_AUDITOR_HPP
