/**
 * @file
 * Structured failure artifact: the one triage format shared by the
 * deadlock watchdog, the invariant auditor, guarded sweep jobs, and
 * the fault injector. A failing job writes FAIL_<job>.json into
 * ${VBR_FAIL_DIR:-results}/ with enough context to reproduce the run:
 * seed, configuration, fault spec, and the last-N committed
 * instructions per core.
 *
 * Artifacts are deterministic for a deterministic failure — no
 * wall-clock, hostnames, or thread counts — so the same broken run
 * produces byte-identical artifacts at any sweep parallelism.
 */

#ifndef VBR_VERIFY_FAILURE_ARTIFACT_HPP
#define VBR_VERIFY_FAILURE_ARTIFACT_HPP

#include <string>

#include "common/json.hpp"

namespace vbr
{

struct FailureArtifact
{
    /** Job name; becomes FAIL_<sanitized job>.json. */
    std::string job;

    /** Failure class: "deadlock", "exception", "cycle-budget",
     * "audit-violation", ... */
    std::string kind;

    /** Human-readable error message. */
    std::string error;

    /** Reproduction context: seeds, config, fault spec, cycle,
     * per-scheme details. Null when unavailable. */
    JsonValue context;

    /** Last-N committed instructions per core (ring-buffer dump).
     * Null when no system was alive to provide one. */
    JsonValue commitTrace;

    /** Serialize to the canonical JSON document. */
    std::string render() const;

    /** Artifact path inside @p dir for this job name. */
    std::string pathIn(const std::string &dir) const;

    /**
     * Render + write FAIL_<job>.json into @p dir (created when
     * missing). Returns the written path, or "" on I/O failure —
     * artifact emission must never take down the reporting process.
     */
    std::string writeTo(const std::string &dir) const;

    /** Filesystem-safe job name: [A-Za-z0-9._-], rest become '_'. */
    static std::string sanitizeJobName(const std::string &job);
};

/** ${VBR_FAIL_DIR:-results} — where failure artifacts land. */
std::string defaultFailArtifactDir();

} // namespace vbr

#endif // VBR_VERIFY_FAILURE_ARTIFACT_HPP
