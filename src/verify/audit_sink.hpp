/**
 * @file
 * Event-sink seam between the pipeline and the invariant auditor.
 *
 * The two-phase multiprocessor tick runs every core's compute phase
 * against frozen pre-cycle coherence state, potentially on a thread
 * pool. The auditor's check/violation counters are shared across
 * cores, so phase-1 events must not reach it concurrently. Each core
 * therefore routes its phase-1 events through a per-core
 * DeferredAuditSink and flushes the buffer at the start of its serial
 * phase-2 slot — preserving the exact intra-core event order the
 * auditor's per-core state machines depend on, ahead of the commit
 * stage's own (direct) events.
 */

#ifndef VBR_VERIFY_AUDIT_SINK_HPP
#define VBR_VERIFY_AUDIT_SINK_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace vbr
{

/** Receiver for the pipeline's O(1) auditor event checks (see
 * InvariantAuditor for per-event semantics). */
class AuditEventSink
{
  public:
    virtual ~AuditEventSink() = default;

    virtual void onStoreDispatched(CoreId core, SeqNum seq) = 0;
    virtual void onStoreDrained(CoreId core, SeqNum seq, Cycle now) = 0;
    virtual void onReplayIssued(CoreId core, SeqNum seq,
                                std::uint32_t pc, bool value_predicted,
                                bool at_head, Cycle now) = 0;
    virtual void onReplaySquash(CoreId core, SeqNum seq,
                                std::uint32_t pc, Cycle now) = 0;
    virtual void onLoadCommit(CoreId core, SeqNum seq, std::uint32_t pc,
                              bool replay_issued, Cycle compare_ready,
                              Cycle now) = 0;
    virtual void onSquash(CoreId core, SeqNum bound, Cycle now) = 0;
};

/** Buffers audit events during the parallel compute phase and replays
 * them, in arrival order, into the real auditor from the serial
 * commit phase. One instance per core; never shared across threads. */
class DeferredAuditSink final : public AuditEventSink
{
  public:
    void
    onStoreDispatched(CoreId core, SeqNum seq) override
    {
        events_.push_back(
            {Kind::StoreDispatched, core, seq, 0, 0, 0, false, false});
    }

    void
    onStoreDrained(CoreId core, SeqNum seq, Cycle now) override
    {
        events_.push_back(
            {Kind::StoreDrained, core, seq, 0, now, 0, false, false});
    }

    void
    onReplayIssued(CoreId core, SeqNum seq, std::uint32_t pc,
                   bool value_predicted, bool at_head,
                   Cycle now) override
    {
        events_.push_back({Kind::ReplayIssued, core, seq, pc, now, 0,
                           value_predicted, at_head});
    }

    void
    onReplaySquash(CoreId core, SeqNum seq, std::uint32_t pc,
                   Cycle now) override
    {
        events_.push_back(
            {Kind::ReplaySquash, core, seq, pc, now, 0, false, false});
    }

    void
    onLoadCommit(CoreId core, SeqNum seq, std::uint32_t pc,
                 bool replay_issued, Cycle compare_ready,
                 Cycle now) override
    {
        events_.push_back({Kind::LoadCommit, core, seq, pc, now,
                           compare_ready, replay_issued, false});
    }

    void
    onSquash(CoreId core, SeqNum bound, Cycle now) override
    {
        events_.push_back(
            {Kind::Squash, core, bound, 0, now, 0, false, false});
    }

    /** Replay every buffered event into @p target in arrival order,
     * then clear the buffer (capacity is retained across cycles). */
    void
    flushTo(AuditEventSink &target)
    {
        for (const Event &e : events_) {
            switch (e.kind) {
            case Kind::StoreDispatched:
                target.onStoreDispatched(e.core, e.seq);
                break;
            case Kind::StoreDrained:
                target.onStoreDrained(e.core, e.seq, e.now);
                break;
            case Kind::ReplayIssued:
                target.onReplayIssued(e.core, e.seq, e.pc, e.flagA,
                                      e.flagB, e.now);
                break;
            case Kind::ReplaySquash:
                target.onReplaySquash(e.core, e.seq, e.pc, e.now);
                break;
            case Kind::LoadCommit:
                target.onLoadCommit(e.core, e.seq, e.pc, e.flagA,
                                    e.aux, e.now);
                break;
            case Kind::Squash:
                target.onSquash(e.core, e.seq, e.now);
                break;
            }
        }
        events_.clear();
    }

    bool empty() const { return events_.empty(); }

  private:
    enum class Kind : std::uint8_t
    {
        StoreDispatched,
        StoreDrained,
        ReplayIssued,
        ReplaySquash,
        LoadCommit,
        Squash,
    };

    struct Event
    {
        Kind kind;
        CoreId core;
        SeqNum seq; ///< also the squash bound for Kind::Squash
        std::uint32_t pc;
        Cycle now;
        Cycle aux;  ///< compare_ready for Kind::LoadCommit
        bool flagA; ///< value_predicted / replay_issued
        bool flagB; ///< at_head
    };

    std::vector<Event> events_;
};

} // namespace vbr

#endif // VBR_VERIFY_AUDIT_SINK_HPP
