/**
 * @file
 * Multithreaded synthetic kernels substituting for the paper's
 * SPLASH-2 / SPECjbb / SPECweb / TPC-H multiprocessor workloads, plus
 * small litmus kernels (Dekker, message passing, atomic counters)
 * used by the consistency tests. All sharing primitives are built
 * from the ISA's SWAP (test-and-set locks, lock-based barriers) and
 * plain loads/stores, so they exercise exactly the coherence and
 * ordering machinery the paper studies.
 */

#ifndef VBR_WORKLOAD_MULTIPROC_HPP
#define VBR_WORKLOAD_MULTIPROC_HPP

#include <string>
#include <vector>

#include "isa/program.hpp"

namespace vbr
{

/** Parameters for the multiprocessor kernels. */
struct MpParams
{
    unsigned threads = 4;
    unsigned iterations = 300; ///< per-thread outer iterations
    std::uint64_t seed = 1;
};

/**
 * Dekker-style litmus: each thread stores its flag then loads the
 * other's, accumulating what it observed. Under SC, at least one
 * thread of each round must observe the other's store. Exercises
 * store->load ordering (2 threads only).
 */
Program makeDekker(unsigned rounds);

/**
 * Message passing: thread 0 writes a payload then sets a flag;
 * thread 1 spins on the flag then reads the payload, storing what it
 * saw. Under SC the observed payload always matches. (2 threads.)
 */
Program makeMessagePassing(unsigned rounds);

/**
 * Message passing with explicit MEMBARs: the weak-ordering variant.
 * Thread 0 writes data, MEMBAR, then the flag; thread 1 spins on the
 * flag, MEMBAR, then reads the data. Correct under weak ordering on
 * any machine that honours fences (including the insulated load
 * queue). (2 threads.)
 */
Program makeMessagePassingFenced(unsigned rounds);

/**
 * Load-load litmus (message passing without the serializing spin):
 * thread 0 stores data then flag each round; thread 1 loads flag then
 * data back-to-back with no intervening branch, so the data load can
 * speculatively issue first. Thread 1 counts observations where
 * data < flag — forbidden under SC — in architectural register r4.
 * (2 threads.)
 */
Program makeLoadLoadLitmus(unsigned rounds);

/**
 * Lock-protected shared counters: every thread loops { acquire
 * test-and-set lock; counter++; release }. The final counter value
 * must equal threads * iterations. High invalidation traffic.
 */
Program makeLockCounter(const MpParams &params);

/**
 * False sharing: each thread increments a private word, all packed
 * into one cache line. No data races, heavy coherence traffic —
 * the unnecessary-squash case for snooping load queues.
 */
Program makeFalseSharing(const MpParams &params);

/**
 * Barrier-phased stripe sweep (ocean-like): threads update disjoint
 * array stripes, then cross a lock-based barrier, then read a
 * neighbour's stripe. Bulk sharing at phase boundaries.
 */
Program makeBarrierSweep(const MpParams &params);

/**
 * Work queue (radiosity-like): threads pop task indices from a
 * lock-protected shared head pointer and process private work per
 * task. Contended lock + migratory data.
 */
Program makeWorkQueue(const MpParams &params);

/**
 * Read-mostly shared table (raytrace/web-like): threads read a shared
 * region at random and do private work; one designated thread
 * occasionally writes, invalidating readers.
 */
Program makeReadMostly(const MpParams &params);

/**
 * Busy neighbor: thread 0 spins in a pure-ALU loop (active every
 * single cycle), while every other thread strides through a cold
 * private stripe — one full-memory-latency miss per iteration, with
 * the core idle for the whole round trip. The system is never
 * all-quiescent (the spinner ticks), so whole-system fast-forward
 * finds nothing to skip; per-core slack fast-forward puts each
 * loader to sleep for most of the run. No sharing, no races.
 */
Program makeBusyNeighbor(const MpParams &params);

/** A named MP workload. */
struct MpWorkloadSpec
{
    std::string name;
    Program prog;
    unsigned threads;
};

/**
 * The paper's multiprocessor suite mapped onto the kernels above
 * (barnes/ocean/radiosity/raytrace/SPECjbb/SPECweb/TPC-H).
 * @p threads is the core count; @p scale scales iteration counts.
 */
std::vector<MpWorkloadSpec> multiprocessorSuite(unsigned threads,
                                                double scale = 1.0);

} // namespace vbr

#endif // VBR_WORKLOAD_MULTIPROC_HPP
