#include "workload/multiproc.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "isa/assembler.hpp"

namespace vbr
{
namespace
{

// Shared-memory layout for the MP kernels. Synchronization variables
// sit on distinct cache lines.
constexpr Addr kLockAddr = 0x1000;
constexpr Addr kCounterAddr = 0x1040;
constexpr Addr kBarrierCountAddr = 0x1080;
constexpr Addr kQueueHeadAddr = 0x10c0;
constexpr Addr kFlagAAddr = 0x1100;
constexpr Addr kFlagBAddr = 0x1140;
constexpr Addr kDataAddr = 0x1180;
constexpr Addr kAckAddr = 0x11c0;
constexpr Addr kFalseShareLine = 0x1200; ///< one line, 8 words
constexpr Addr kArrayBase = 0x100000;

// Register conventions (hand-written kernels).
constexpr unsigned rTid = 30;
constexpr unsigned rNThreads = 29;
constexpr unsigned rIter = 28;
constexpr unsigned rAcc = 4;
constexpr unsigned rT0 = 5;
constexpr unsigned rT1 = 6;
constexpr unsigned rT2 = 7;
constexpr unsigned rT3 = 8;
constexpr unsigned rLockA = 22; ///< lock address
constexpr unsigned rLockT = 23; ///< lock scratch

/** Emit a test-and-test-and-set acquire of the lock at (rLockA). */
void
emitAcquire(Assembler &as, const std::string &tag)
{
    // Test-and-test-and-set with backoff: the delay loop between
    // retests keeps spinning cores from saturating the interconnect
    // with invalidation traffic (and the baseline's load queue with
    // snoop squashes).
    as.jmp("acq_try_" + tag);
    as.label("acq_back_" + tag);
    as.ldi(21, 12);
    as.label("acq_delay_" + tag);
    as.addi(20, 20, 1);
    as.addi(21, 21, -1);
    as.bne(21, 0, "acq_delay_" + tag);
    as.label("acq_try_" + tag);
    as.ld8(rLockT, rLockA, 0); // test
    as.bne(rLockT, 0, "acq_back_" + tag);
    as.ldi(rLockT, 1);
    as.swap(rLockT, rLockT, rLockA, 0); // test-and-set
    as.bne(rLockT, 0, "acq_back_" + tag);
}

/** Emit the matching release (plain store of zero: SC suffices). */
void
emitRelease(Assembler &as)
{
    as.st8(0, rLockA, 0);
}

void
addThreads(Program &prog, unsigned threads, unsigned iterations)
{
    for (unsigned t = 0; t < threads; ++t) {
        ThreadSpec spec;
        spec.initRegs[rTid] = t;
        spec.initRegs[rNThreads] = threads;
        spec.initRegs[rIter] = iterations;
        prog.threads().push_back(spec);
    }
}

} // namespace

Program
makeDekker(unsigned rounds)
{
    // Two threads; each stores a fresh value to its own flag and then
    // loads the other's. SC forbids certain combinations of stale
    // observations; the constraint-graph checker is the judge.
    Program prog;
    Assembler as(prog);

    as.ldi(rT2, static_cast<std::int32_t>(kFlagAAddr));
    as.ldi(rT3, static_cast<std::int32_t>(kFlagBAddr));
    // Thread 1 swaps the roles of the two flags.
    as.beq(rTid, 0, "roles_done");
    as.alu(Opcode::OR, rT0, rT2, 0);
    as.alu(Opcode::OR, rT2, rT3, 0);
    as.alu(Opcode::OR, rT3, rT0, 0);
    as.label("roles_done");

    as.ldi(rT1, 1); // round number (also the stored value)
    as.label("round");
    as.st8(rT1, rT2, 0);  // my flag = round
    as.ld8(rT0, rT3, 0);  // observe other's flag
    as.add(rAcc, rAcc, rT0);
    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "round");
    as.halt();
    as.finalize();

    addThreads(prog, 2, rounds);
    return prog;
}

Program
makeMessagePassing(unsigned rounds)
{
    Program prog;
    Assembler as(prog);

    as.ldi(rT2, static_cast<std::int32_t>(kDataAddr));
    as.ldi(rT3, static_cast<std::int32_t>(kFlagAAddr));
    as.ldi(rT1, 1); // round
    as.bne(rTid, 0, "consumer");

    // --- producer (thread 0) ---
    as.label("prod_round");
    as.slli(rT0, rT1, 4);     // payload = round * 16
    as.st8(rT0, rT2, 0);      // data
    as.st8(rT1, rT3, 0);      // flag = round (after data, program order)
    as.label("prod_wait");    // wait for the ack
    as.ld8(rT0, rT2, 64);     // ack word (kAckAddr = data + 64)
    as.bne(rT0, rT1, "prod_wait");
    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "prod_round");
    as.halt();

    // --- consumer (thread 1) ---
    as.label("consumer");
    as.label("cons_round");
    as.label("cons_wait");
    as.ld8(rT0, rT3, 0);      // flag
    as.bne(rT0, rT1, "cons_wait");
    as.ld8(rT0, rT2, 0);      // payload: must be round * 16 under SC
    as.add(rAcc, rAcc, rT0);
    as.st8(rT1, rT2, 64);     // ack = round
    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "cons_round");
    as.halt();
    as.finalize();

    VBR_ASSERT(kAckAddr == kDataAddr + 64, "ack layout");
    addThreads(prog, 2, rounds);
    return prog;
}

Program
makeMessagePassingFenced(unsigned rounds)
{
    Program prog;
    Assembler as(prog);

    as.ldi(rT2, static_cast<std::int32_t>(kDataAddr));
    as.ldi(rT3, static_cast<std::int32_t>(kFlagAAddr));
    as.ldi(rT1, 1); // round
    as.bne(rTid, 0, "consumer");

    // --- producer (thread 0) ---
    as.label("prod_round");
    as.slli(rT0, rT1, 4);
    as.st8(rT0, rT2, 0);  // data
    as.membar();          // order data before flag
    as.st8(rT1, rT3, 0);  // flag = round
    as.label("prod_wait");
    as.ld8(rT0, rT2, 64); // ack
    as.bne(rT0, rT1, "prod_wait");
    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "prod_round");
    as.halt();

    // --- consumer (thread 1) ---
    as.label("consumer");
    as.label("cons_round");
    as.label("cons_wait");
    as.ld8(rT0, rT3, 0);
    as.bne(rT0, rT1, "cons_wait");
    as.membar();          // order flag before data
    as.ld8(rT0, rT2, 0);
    as.add(rAcc, rAcc, rT0);
    as.st8(rT1, rT2, 64); // ack
    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "cons_round");
    as.halt();
    as.finalize();

    addThreads(prog, 2, rounds);
    return prog;
}

Program
makeLoadLoadLitmus(unsigned rounds)
{
    Program prog;
    Assembler as(prog);

    as.ldi(rT2, static_cast<std::int32_t>(kDataAddr));
    as.ldi(rT3, static_cast<std::int32_t>(kFlagAAddr));
    as.ldi(rT1, 1); // round
    as.bne(rTid, 0, "reader");

    // --- writer (thread 0): data then flag, in program order ---
    as.label("w_round");
    as.st8(rT1, rT2, 0); // data = round
    as.st8(rT1, rT3, 0); // flag = round
    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "w_round");
    as.halt();

    // --- reader (thread 1): flag then data, no branch between.
    // The flag address resolves through a long divide chain, so the
    // (younger) data load issues and samples memory first — the
    // load-load reordering a conventional LQ or value replay must
    // repair. ---
    as.label("reader");
    as.ldi(12, 64);
    as.label("r_round");
    as.ldi(11, 4096);
    as.alu(Opcode::DIV, 11, 11, 12); // 64
    as.alu(Opcode::DIV, 11, 11, 12); // 1
    as.alu(Opcode::DIV, 11, 11, 12); // 0
    as.add(11, 11, rT3);             // = flag address, slowly
    as.load(8, rT0, 11, 0);          // f = flag (late issue)
    as.ld8(9, rT2, 0);               // d = data (samples early)
    as.alu(Opcode::CMPLT, 10, 9, rT0); // d < f is forbidden under SC
    as.add(rAcc, rAcc, 10);          // r4 += forbidden observations
    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "r_round");
    as.halt();
    as.finalize();

    addThreads(prog, 2, rounds);
    return prog;
}

Program
makeLockCounter(const MpParams &params)
{
    Program prog;
    Assembler as(prog);

    as.ldi(rLockA, static_cast<std::int32_t>(kLockAddr));
    as.ldi(rT2, static_cast<std::int32_t>(kCounterAddr));
    as.ldi(rT1, 0);
    as.label("loop");
    emitAcquire(as, "lc");
    as.ld8(rT0, rT2, 0);
    as.addi(rT0, rT0, 1);
    as.st8(rT0, rT2, 0);
    emitRelease(as);
    // Substantial private work between critical sections: real
    // transaction processing spends most of its time outside locks.
    as.ldi(10, 12);
    as.label("priv");
    as.addi(rAcc, rAcc, 3);
    as.mul(rT3, rAcc, 10);
    as.xorr(rAcc, rAcc, rT3);
    as.addi(11, 11, 7);
    as.add(12, 12, 11);
    as.addi(10, 10, -1);
    as.bne(10, 0, "priv");
    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "loop");
    as.halt();
    as.finalize();

    addThreads(prog, params.threads, params.iterations);
    return prog;
}

Program
makeFalseSharing(const MpParams &params)
{
    Program prog;
    Assembler as(prog);

    // My word: all threads' words share one cache line.
    as.ldi(rT2, static_cast<std::int32_t>(kFalseShareLine));
    as.slli(rT0, rTid, 3);
    as.add(rT2, rT2, rT0);

    as.ldi(rT1, 0);
    as.label("loop");
    as.ld8(rT0, rT2, 0);
    as.addi(rT0, rT0, 1);
    as.st8(rT0, rT2, 0);
    as.addi(rAcc, rAcc, 1);
    as.xorr(rT3, rT3, rAcc);
    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "loop");
    as.halt();
    as.finalize();

    VBR_ASSERT(params.threads <= 8, "false-sharing line holds 8 words");
    addThreads(prog, params.threads, params.iterations);
    return prog;
}

Program
makeBarrierSweep(const MpParams &params)
{
    // Each thread owns a stripe of 64 words; phases alternate between
    // updating the own stripe and reading the right neighbour's.
    constexpr unsigned kStripeWords = 256;
    Program prog;
    Assembler as(prog);

    as.ldi(rLockA, static_cast<std::int32_t>(kLockAddr));
    as.ldi(rT2, static_cast<std::int32_t>(kArrayBase));
    as.slli(rT0, rTid, 11); // tid * 256 words * 8 bytes
    as.add(rT2, rT2, rT0); // my stripe base
    as.ldi(rT3, static_cast<std::int32_t>(kBarrierCountAddr));
    as.ldi(rT1, 0);  // phase
    as.ldi(9, 0);    // r9: barrier target (phase+1)*threads

    as.label("phase");
    // Update my stripe.
    as.ldi(10, 0); // r10: word index
    as.label("update");
    as.slli(11, 10, 3);
    as.add(11, 11, rT2);
    as.ld8(12, 11, 0);
    as.add(12, 12, rT1);
    as.addi(12, 12, 1);
    as.st8(12, 11, 0);
    as.addi(10, 10, 1);
    as.ldi(13, kStripeWords);
    as.blt(10, 13, "update");

    // Barrier: atomic-increment the counter under the lock, then spin
    // until every thread of this phase has arrived.
    emitAcquire(as, "bar");
    as.ld8(rT0, rT3, 0);
    as.addi(rT0, rT0, 1);
    as.st8(rT0, rT3, 0);
    emitRelease(as);
    as.add(9, 9, rNThreads); // target += threads
    as.label("barwait");
    as.ld8(rT0, rT3, 0);
    as.blt(rT0, 9, "barwait");

    // Read the right neighbour's stripe (bulk sharing).
    as.addi(10, rTid, 1);
    as.label("wrap_check");
    as.blt(10, rNThreads, "no_wrap");
    as.ldi(10, 0);
    as.label("no_wrap");
    as.slli(10, 10, 11);
    as.ldi(11, static_cast<std::int32_t>(kArrayBase));
    as.add(11, 11, 10);
    as.ldi(10, 0);
    as.label("read");
    as.slli(12, 10, 3);
    as.add(12, 12, 11);
    as.ld8(13, 12, 0);
    as.add(rAcc, rAcc, 13);
    as.addi(10, 10, 1);
    as.ldi(13, kStripeWords);
    as.blt(10, 13, "read");

    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "phase");
    as.halt();
    as.finalize();

    prog.warmRanges().push_back(
        {kArrayBase, kArrayBase + params.threads * 2048});
    addThreads(prog, params.threads, params.iterations);
    return prog;
}

Program
makeWorkQueue(const MpParams &params)
{
    // Total tasks = threads * iterations; each pop is lock-protected.
    // Task i writes array[i] = i * 3 (deterministic final state).
    Program prog;
    Assembler as(prog);

    as.ldi(rLockA, static_cast<std::int32_t>(kLockAddr));
    as.ldi(rT2, static_cast<std::int32_t>(kQueueHeadAddr));
    as.ldi(rT3, static_cast<std::int32_t>(kArrayBase));
    as.mul(9, rNThreads, rIter); // r9 = total tasks

    as.label("loop");
    emitAcquire(as, "wq");
    as.ld8(rT0, rT2, 0);  // task id
    as.addi(rT1, rT0, 1);
    as.st8(rT1, rT2, 0);
    emitRelease(as);
    as.bge(rT0, 9, "done");

    // Process the task: write the result, then some private work.
    as.slli(10, rT0, 3);
    as.add(10, 10, rT3);
    as.ldi(11, 3);
    as.mul(11, 11, rT0);
    as.st8(11, 10, 0);   // array[task] = task * 3
    as.ld8(12, 10, 0);   // reload (forwarding)
    as.add(rAcc, rAcc, 12);
    // Per-task private compute (radiosity interactions).
    as.ldi(14, 30);
    as.label("task_work");
    as.mul(13, rAcc, 14);
    as.xorr(rAcc, rAcc, 13);
    as.addi(15, 15, 5);
    as.add(16, 16, 15);
    as.addi(14, 14, -1);
    as.bne(14, 0, "task_work");
    as.jmp("loop");

    as.label("done");
    as.halt();
    as.finalize();

    addThreads(prog, params.threads, params.iterations);
    return prog;
}

Program
makeBusyNeighbor(const MpParams &params)
{
    Program prog;
    Assembler as(prog);

    as.bne(rTid, 0, "loader");

    // Thread 0: pure-ALU spin, one inner burst per outer iteration.
    // The burst is sized past the memory round trip so the spinner
    // halts after every loader — the system is never all-quiescent
    // while any loader still runs.
    as.ldi(rT1, 0);
    as.label("spin");
    as.ldi(rT3, 1024);
    as.label("burst");
    as.addi(rAcc, rAcc, 1);
    as.addi(rT3, rT3, -1);
    as.bne(rT3, 0, "burst");
    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "spin");
    as.halt();

    // Threads 1..N-1: stride one cache line per iteration through a
    // private 64 KiB stripe. The loaded value (zero-initialized
    // memory) feeds the next address, so the misses serialize like a
    // pointer chase — no memory-level parallelism, and the core sits
    // idle for the full round trip each iteration.
    as.label("loader");
    as.ldi(rT2, static_cast<std::int32_t>(kArrayBase));
    as.slli(rT0, rTid, 16);
    as.add(rT2, rT2, rT0);
    as.ldi(rT1, 0);
    as.label("ldloop");
    as.ld8(rT0, rT2, 0);
    as.add(rT2, rT2, rT0); // value-dependent address: serializes
    as.addi(rT2, rT2, 64);
    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "ldloop");
    as.halt();
    as.finalize();

    addThreads(prog, params.threads, params.iterations);
    return prog;
}

Program
makeReadMostly(const MpParams &params)
{
    // 64 KiB shared table; all threads read LCG-random entries;
    // thread 0 occasionally writes (sequential slots, deterministic).
    constexpr std::int32_t kTableMask = 0xfff8; // 64 KiB, 8B aligned
    Program prog;
    Assembler as(prog);

    as.ldi(rT2, static_cast<std::int32_t>(kArrayBase));
    as.ldi(10, 0x343fd);                  // LCG multiplier
    as.addi(11, rTid, 17);                // LCG state, per-thread
    as.ldi(12, kTableMask);
    as.ldi(rT1, 0);
    as.ldi(13, 0); // writer slot cursor

    as.label("loop");
    // Three random reads.
    for (int k = 0; k < 3; ++k) {
        as.mul(11, 11, 10);
        as.addi(11, 11, 0x269ec3);
        as.alui(Opcode::SRLI, rT0, 11, 11 + k * 7);
        as.alu(Opcode::AND, rT0, rT0, 12);
        as.add(rT0, rT0, rT2);
        as.ld8(rT3, rT0, 0);
        as.add(rAcc, rAcc, rT3);
    }
    // Private work between read bursts.
    as.addi(14, 14, 5);
    as.xorr(rAcc, rAcc, 14);
    as.mul(15, 14, 10);
    as.addi(16, 16, 3);
    as.xorr(15, 15, 16);
    as.add(rAcc, rAcc, 15);
    as.addi(17, 17, 9);
    as.sub(16, 16, 17);

    // Thread 0 writes one slot every 64 iterations (SPLASH-2-like
    // codes communicate rarely relative to their compute).
    as.bne(rTid, 0, "no_write");
    as.andi(rT0, rT1, 31);
    as.bne(rT0, 0, "no_write");
    as.slli(rT0, 13, 3);
    as.alu(Opcode::AND, rT0, rT0, 12);
    as.add(rT0, rT0, rT2);
    as.st8(rT1, rT0, 0);
    as.addi(13, 13, 1);
    as.label("no_write");

    as.addi(rT1, rT1, 1);
    as.blt(rT1, rIter, "loop");
    as.halt();
    as.finalize();

    // Steady-state: the shared table is resident in every reader's
    // hierarchy; writes invalidate and refill as they would mid-run.
    prog.warmRanges().push_back({kArrayBase, kArrayBase + 0x10000});
    addThreads(prog, params.threads, params.iterations);
    return prog;
}

std::vector<MpWorkloadSpec>
multiprocessorSuite(unsigned threads, double scale)
{
    auto iters = [scale](unsigned base) {
        return std::max(1u, static_cast<unsigned>(base * scale));
    };
    std::vector<MpWorkloadSpec> suite;

    MpParams p;
    p.threads = threads;

    p.iterations = iters(400);
    suite.push_back({"barnes", makeReadMostly(p), threads});

    p.iterations = iters(40);
    suite.push_back({"ocean", makeBarrierSweep(p), threads});

    p.iterations = iters(250);
    suite.push_back({"radiosity", makeWorkQueue(p), threads});

    p.iterations = iters(500);
    suite.push_back({"raytrace", makeReadMostly(p), threads});

    p.iterations = iters(250);
    suite.push_back({"specjbb-mp", makeLockCounter(p), threads});

    p.iterations = iters(600);
    suite.push_back({"specweb", makeReadMostly(p), threads});

    p.iterations = iters(60);
    suite.push_back({"tpc-h-mp", makeBarrierSweep(p), threads});

    return suite;
}

} // namespace vbr
