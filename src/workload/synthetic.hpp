/**
 * @file
 * Synthetic uniprocessor workload generator. The paper evaluates on
 * SPEC CPU2000 (MinneSpec inputs) plus commercial workloads; none of
 * those can run here (no PowerPC/AIX stack), so each benchmark is
 * replaced by a parameterized synthetic kernel whose memory/branch/
 * ILP characteristics mimic the original's relevant behaviour:
 * working-set size and access pattern (cache misses), store fraction
 * (forwarding and drain pressure), unresolved-store aliasing (RAW
 * speculation), branch predictability (wrong-path cache traffic), and
 * dependence-chain length (ROB occupancy). See DESIGN.md §2.
 */

#ifndef VBR_WORKLOAD_SYNTHETIC_HPP
#define VBR_WORKLOAD_SYNTHETIC_HPP

#include <string>
#include <vector>

#include "isa/program.hpp"

namespace vbr
{

/** Data access pattern of the kernel's inner loop. */
enum class AccessPattern
{
    Sequential,   ///< arr[i], arr[i+1], ...
    Strided,      ///< arr[i * stride]
    Random,       ///< LCG-indexed
    PointerChase, ///< serial ld r, (r) through a shuffled ring
};

/** Knobs of the synthetic kernel generator. */
struct SynthParams
{
    std::string name = "synthetic";
    std::uint64_t seed = 1;
    unsigned iterations = 2000;   ///< inner-loop trip count
    unsigned blockOps = 24;       ///< ~operations emitted per iteration

    // Instruction mix (fractions of blockOps; remainder is int ALU).
    double loadFrac = 0.30;
    double storeFrac = 0.14;
    double branchFrac = 0.08;
    double fpFrac = 0.0;
    double mulFrac = 0.02;
    double divFrac = 0.0;

    // Memory behaviour.
    AccessPattern pattern = AccessPattern::Sequential;
    unsigned workingSetBytes = 64 * 1024;
    unsigned strideBytes = 64;

    // Fraction of iterations that contain a store with a slowly
    // computed address followed by a load that aliases it — the RAW
    // speculation hazard the dependence predictors and the
    // no-unresolved-store filter care about.
    double aliasHazardFrac = 0.02;

    // Branch behaviour: probability that the data-dependent branch in
    // a block is effectively random (mispredict pressure).
    double branchNoise = 0.15;

    // Long dependence chains (FP-style ROB pressure): number of
    // serially dependent long-latency ops appended per block.
    unsigned chainLength = 0;

    /**
     * Fraction of loads directed at a large cold region (8 MiB,
     * never pre-warmed): these stall the ROB head on long-latency
     * misses and fill the window behind them — the high reorder-
     * buffer-utilization behaviour the paper selected apsi/art for,
     * and the source of load-queue pressure in Figure 8.
     */
    double coldMissFrac = 0.0;

    // Calls: fraction of iterations routed through a tiny function.
    double callFrac = 0.0;
};

/**
 * Build a single-threaded program from the parameters. The program's
 * thread 0 is configured; data segments (arrays, pointer-chase ring)
 * are placed in low memory.
 */
Program makeSynthetic(const SynthParams &params);

/** A named workload ready to run. */
struct WorkloadSpec
{
    std::string name;
    SynthParams params;
};

/**
 * The paper's uniprocessor suite (Table: SPECINT2000 + apsi/art/
 * wupwise + TPC-B/TPC-H/SPECjbb), as synthetic profiles. @p scale
 * multiplies iteration counts (1.0 ~ a few hundred k instructions).
 */
std::vector<WorkloadSpec> uniprocessorSuite(double scale = 1.0);

/** Look up one suite entry by name (fatal if absent). */
WorkloadSpec uniprocessorWorkload(const std::string &name,
                                  double scale = 1.0);

} // namespace vbr

#endif // VBR_WORKLOAD_SYNTHETIC_HPP
