#include "workload/synthetic.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "isa/assembler.hpp"

namespace vbr
{
namespace
{

// Register conventions inside generated kernels.
constexpr unsigned rBaseA = 1;   // load array base
constexpr unsigned rCount = 2;   // down counter
constexpr unsigned rIdx = 3;     // load stream index / chase pointer
constexpr unsigned rAcc = 4;     // value accumulator
constexpr unsigned rS0 = 5;      // scratch
constexpr unsigned rS1 = 6;
constexpr unsigned rS2 = 7;
constexpr unsigned rS3 = 8;
constexpr unsigned rLcg = 10;    // LCG state (loads)
constexpr unsigned rMask = 12;   // byte-offset mask (loads)
constexpr unsigned rBaseB = 15;  // store array base
constexpr unsigned rStIdx = 17;  // store stream index
constexpr unsigned rRndAddr = 18; // random-pattern load address
constexpr unsigned rColdBase = 19; // cold-region base (coldMissFrac)
constexpr unsigned rLcgK = 26;   // LCG multiplier constant
constexpr unsigned rC64 = 24;    // constant 64
constexpr unsigned rC8 = 25;     // constant 8
constexpr unsigned rFp0 = 20;    // FP chain
constexpr unsigned rFp1 = 21;
constexpr unsigned rAliasBase = 27;

Addr
roundUpPow2(Addr v)
{
    Addr p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Program
makeSynthetic(const SynthParams &params)
{
    Program prog;
    Assembler as(prog);
    Rng rng(params.seed);

    const Addr ws = roundUpPow2(std::max<Addr>(params.workingSetBytes,
                                               4096));
    // Align the load array to its own size so a random offset can be
    // merged into the base with a single OR.
    const Addr base_a = std::max<Addr>(0x100000, ws);
    const Addr base_b = base_a + ws;
    const Addr alias_base = 0x8000;
    // Cold region for coldMissFrac loads: 8 MiB, aligned to itself so
    // offsets can be merged with OR.
    const Addr cold_size = 8 * 1024 * 1024;
    const Addr base_c =
        (base_b + ws + cold_size - 1) & ~(cold_size - 1);
    const Addr mem_needed =
        params.coldMissFrac > 0.0 ? base_c + cold_size + 0x10000
                                  : base_b + ws + 0x10000;
    prog.memorySize(std::max<Addr>(prog.memorySize(), mem_needed));
    VBR_ASSERT(mem_needed < prog.codeBase(),
               "working set collides with code segment");

    // Aligned byte-offset mask: keeps LCG-derived offsets in-range
    // and 8-byte aligned.
    const std::int32_t mask =
        static_cast<std::int32_t>((ws - 1) & ~Addr{7});

    const unsigned stride =
        std::max(8u, params.strideBytes & ~0x7u);

    // --- preamble ------------------------------------------------------
    as.ldi(rBaseA, static_cast<std::int32_t>(base_a));
    as.ldi(rBaseB, static_cast<std::int32_t>(base_b));
    as.ldi(rAliasBase, static_cast<std::int32_t>(alias_base));
    as.ldi(rCount, static_cast<std::int32_t>(params.iterations));
    as.ldi(rMask, mask);
    as.ldi(rLcg, static_cast<std::int32_t>(params.seed | 1));
    as.ldi(rLcgK, 0x343fd);
    as.ldi(rC64, 64);
    as.ldi(rC8, 8);
    as.ldi(rAcc, 0);
    if (params.coldMissFrac > 0.0)
        as.ldi(rColdBase, static_cast<std::int32_t>(base_c));
    as.ldi(rFp0, 0x3ff00000); // exponent bits of 1.0
    as.slli(rFp0, rFp0, 32);  // ~1.0 as a double
    as.alu(Opcode::OR, rFp1, rFp0, 0);

    // rIdx: absolute load address (seq/strided) or ring pointer
    // (chase). rStIdx: absolute store address.
    as.alu(Opcode::OR, rIdx, rBaseA, 0);
    as.alu(Opcode::OR, rStIdx, rBaseB, 0);

    const bool has_call = params.callFrac > 0.0;
    if (has_call) {
        as.jmp("entry");
        as.label("helper");
        as.addi(rS3, rS3, 13);
        as.xorr(rAcc, rAcc, rS3);
        as.slli(rS3, rS3, 1);
        as.ret();
        as.label("entry");
    }

    // --- pointer-chase ring initialization -----------------------------
    if (params.pattern == AccessPattern::PointerChase) {
        // A shuffled single cycle over ws/64 nodes, one node per cache
        // line so every hop lands on a fresh line.
        const std::size_t nodes = ws / 64;
        std::vector<std::uint32_t> perm(nodes);
        for (std::size_t i = 0; i < nodes; ++i)
            perm[i] = static_cast<std::uint32_t>(i);
        for (std::size_t i = nodes - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.below(i + 1)]);

        DataInit init;
        init.addr = base_a;
        init.bytes.assign(ws, 0);
        for (std::size_t i = 0; i < nodes; ++i) {
            Addr from = base_a + static_cast<Addr>(perm[i]) * 64;
            Addr to = base_a +
                      static_cast<Addr>(perm[(i + 1) % nodes]) * 64;
            std::uint64_t ptr = to;
            std::memcpy(init.bytes.data() + (from - base_a), &ptr, 8);
        }
        prog.dataInits().push_back(std::move(init));
        as.ld8(rIdx, rBaseA, 0); // land on the ring
    }

    // --- derive per-iteration operation counts --------------------------
    // blockOps approximates the dynamic instructions per iteration;
    // operation counts are derived from the target fractions and the
    // remainder is filled with single-cycle integer ALU ops.
    // Each operation class costs more than one instruction (address
    // arithmetic, accumulation, branch condition setup). Solve for a
    // block size T where the *dynamic* fractions hit their targets:
    //   f_i * T ops of class i cost f_i * T * c_i instructions, and
    //   T = sum(costs) + fixed overhead + ALU padding.
    const double c_load =
        params.pattern == AccessPattern::Random ? 3.0 : 1.5;
    const double used = params.loadFrac * c_load +
                        params.storeFrac * 1.5 +
                        params.branchFrac * 3.0 + params.fpFrac +
                        params.mulFrac + params.divFrac;
    const double fixed = 10.0 + params.chainLength +
                         (params.aliasHazardFrac > 0 ? 1.5 : 0.0) +
                         (params.callFrac > 0 ? 2.5 : 0.0);
    const double denom = std::max(0.10, 1.0 - used);
    const double T = std::max<double>(std::max(8u, params.blockOps),
                                      fixed / denom);
    auto cnt = [T](double f) {
        return static_cast<unsigned>(f * T + 0.5);
    };
    const unsigned B = static_cast<unsigned>(T);
    unsigned n_loads = cnt(params.loadFrac);
    unsigned n_stores = cnt(params.storeFrac);
    unsigned n_branches = cnt(params.branchFrac);
    unsigned n_fp = cnt(params.fpFrac);
    unsigned n_mul = cnt(params.mulFrac);
    unsigned n_div = cnt(params.divFrac);

    enum class Slot { Load, Store, Branch, Fp, Mul, Div };
    std::vector<Slot> slots;
    for (unsigned i = 0; i < n_loads; ++i)
        slots.push_back(Slot::Load);
    for (unsigned i = 0; i < n_stores; ++i)
        slots.push_back(Slot::Store);
    for (unsigned i = 0; i < n_branches; ++i)
        slots.push_back(Slot::Branch);
    for (unsigned i = 0; i < n_fp; ++i)
        slots.push_back(Slot::Fp);
    for (unsigned i = 0; i < n_mul; ++i)
        slots.push_back(Slot::Mul);
    for (unsigned i = 0; i < n_div; ++i)
        slots.push_back(Slot::Div);
    for (std::size_t i = slots.size(); i-- > 1;)
        std::swap(slots[i], slots[rng.below(i + 1)]);

    // --- alias hazard gating -------------------------------------------
    // Execute the slow-store/aliasing-load hazard roughly every
    // 1/aliasHazardFrac iterations using a power-of-two counter gate.
    int alias_gate_bits = 0;
    if (params.aliasHazardFrac > 0.0) {
        double period = 1.0 / params.aliasHazardFrac;
        alias_gate_bits = std::max(
            0, std::min(12, static_cast<int>(std::bit_width(
                                static_cast<unsigned>(period)) - 1)));
    }

    // Warm caches via the simulator (Program::warmRanges): the paper's
    // runs are billions of instructions where cold misses are
    // negligible. Working sets that fit comfortably in the hierarchy
    // start warm; streaming/huge sets (mcf, art, tpc-h) stay cold on
    // purpose -- their continuous misses are the modeled behaviour.
    if (ws <= 4 * 1024 * 1024 &&
        params.pattern != AccessPattern::PointerChase) {
        prog.warmRanges().push_back({base_a, base_a + ws});
        prog.warmRanges().push_back({base_b, base_b + ws});
        prog.warmRanges().push_back({alias_base, alias_base + 4096});
    }

    as.label("loop");
    std::uint32_t body_begin = as.here();

    unsigned load_slot = 0;  // index of the next load (offset rotor)
    unsigned store_slot = 0;
    unsigned scratch_rotor = 0;
    bool lcg_advanced = false;

    unsigned cold_every =
        params.coldMissFrac > 0.0
            ? std::max(1u, static_cast<unsigned>(
                               1.0 / params.coldMissFrac /
                               std::max(1u, n_loads)))
            : 0;
    // cold_every counts loop iterations between cold loads when the
    // block has n_loads loads; express it per load slot instead:
    cold_every = params.coldMissFrac > 0.0
                     ? std::max(1u, static_cast<unsigned>(
                                        1.0 / params.coldMissFrac))
                     : 0;

    for (Slot slot : slots) {
        switch (slot) {
          case Slot::Load: {
            unsigned dst = rS0 + (scratch_rotor++ & 1); // rS0/rS1
            if (cold_every != 0 &&
                (load_slot % cold_every) == cold_every - 1) {
                // Long-latency miss into the cold region: stalls the
                // head, fills the ROB, pressures the load queue.
                if (!lcg_advanced) {
                    as.mul(rLcg, rLcg, rLcgK);
                    as.addi(rLcg, rLcg, 0x269ec3);
                    lcg_advanced = true;
                }
                as.alui(Opcode::SRLI, rS2, rLcg,
                        static_cast<std::int32_t>((load_slot * 7) %
                                                  23));
                as.alui(Opcode::ANDI, rS2, rS2, 0x7ffff8);
                as.alu(Opcode::OR, rS2, rS2, rColdBase);
                as.load(8, dst, rS2, 0);
                // Cold misses stay OFF the accumulator chain: they
                // overlap with each other (memory-level parallelism)
                // while still stalling in-order commit at the head.
                as.xorr(16, 16, dst);
                ++load_slot;
                break;
            }
            switch (params.pattern) {
              case AccessPattern::PointerChase:
                if (load_slot % 4 == 0) {
                    // The serial chase hop (the miss chain).
                    as.ld8(rIdx, rIdx, 0);
                } else {
                    // Node payload: neighbours on the same line hit.
                    as.load(8, dst, rIdx,
                            static_cast<std::int32_t>(
                                8 * (load_slot % 4)));
                    as.xorr(rAcc, rAcc, dst);
                }
                break;
              case AccessPattern::Random:
                if (!lcg_advanced) {
                    // One LCG step per iteration feeds all random
                    // loads through rotating bit-fields.
                    as.mul(rLcg, rLcg, rLcgK);
                    as.addi(rLcg, rLcg, 0x269ec3);
                    lcg_advanced = true;
                }
                if (load_slot % 2 == 0) {
                    as.alui(Opcode::SRLI, rRndAddr, rLcg,
                            static_cast<std::int32_t>(
                                (load_slot * 13) % 29));
                    as.alu(Opcode::AND, rRndAddr, rRndAddr, rMask);
                    as.alu(Opcode::OR, rRndAddr, rRndAddr, rBaseA);
                    as.load(8, dst, rRndAddr, 0);
                } else {
                    // Reuse the computed address for the adjacent
                    // line: keeps cost per random load at ~3 ops.
                    as.load(8, dst, rRndAddr, 64);
                }
                // Every load feeds the accumulator: consumption
                // chains keep the kernel's ILP near the paper-era
                // 1.5-2.5 IPC rather than saturating the 8-wide core.
                as.xorr(rAcc, rAcc, dst);
                break;
              case AccessPattern::Sequential:
              case AccessPattern::Strided:
                as.load(8, dst, rIdx,
                        static_cast<std::int32_t>(load_slot * stride));
                as.xorr(rAcc, rAcc, dst);
                break;
            }
            ++load_slot;
            break;
          }
          case Slot::Store: {
            as.st8(rAcc, rStIdx,
                   static_cast<std::int32_t>(store_slot * 8));
            // Forwarding pressure: reload what was just stored.
            if (rng.chance(0.25) && n_loads > 0) {
                as.load(8, rS3, rStIdx,
                        static_cast<std::int32_t>(store_slot * 8));
                as.xorr(rAcc, rAcc, rS3);
            }
            ++store_slot;
            break;
          }
          case Slot::Branch: {
            std::string skip = "skip" + std::to_string(as.here());
            bool noisy = rng.chance(params.branchNoise);
            if (noisy)
                as.andi(rS2, rAcc, 1); // data-dependent parity
            else
                as.andi(rS2, rCount, 3); // periodic: predictable
            as.beq(rS2, 0, skip);
            as.addi(rS3, rS3, 1);
            as.label(skip);
            break;
          }
          case Slot::Fp:
            if (rng.chance(0.5))
                as.alu(Opcode::FMUL, rFp0, rFp0, rFp1);
            else
                as.alu(Opcode::FADD, rFp1, rFp1, rFp0);
            break;
          case Slot::Mul:
            as.mul(rS3, rS3, rLcgK);
            break;
          case Slot::Div:
            as.alu(Opcode::DIV, rS3, rS3, rC64);
            break;
        }
    }

    // Pad with single-cycle ALU ops up to the target block size,
    // rotated across independent chains so the padding exposes ILP
    // instead of one serial dependence chain.
    unsigned pad_rotor = 0;
    while (as.here() - body_begin < B) {
        unsigned reg = rS2 + (pad_rotor & 1); // two chains: rS2/rS3
        ++pad_rotor;
        switch (rng.below(3)) {
          case 0:
            as.addi(reg, reg, 7);
            break;
          case 1:
            as.xorr(reg, reg, rLcgK);
            break;
          default:
            as.add(reg, reg, rC8);
            break;
        }
        // Serial links through the accumulator keep the kernel's ILP
        // in the 1.5-2.5 IPC range typical of the paper's era instead
        // of saturating the 8-wide core.
        if ((pad_rotor & 1) == 0)
            as.add(rAcc, rAcc, reg);
    }

    // ---- block-end index advance + wraparound ----
    if (params.pattern == AccessPattern::Sequential ||
        params.pattern == AccessPattern::Strided) {
        as.addi(rIdx, rIdx,
                static_cast<std::int32_t>(load_slot * stride));
        as.sub(rS2, rIdx, rBaseA);
        as.alu(Opcode::AND, rS2, rS2, rMask);
        as.add(rIdx, rBaseA, rS2);
    }
    if (store_slot > 0) {
        as.addi(rStIdx, rStIdx,
                static_cast<std::int32_t>(store_slot * 8));
        as.sub(rS2, rStIdx, rBaseB);
        as.alu(Opcode::AND, rS2, rS2, rMask);
        as.add(rStIdx, rBaseB, rS2);
    }

    // ---- long dependence chain (FP/ROB pressure) ----
    for (unsigned c = 0; c < params.chainLength; ++c)
        as.alu(Opcode::FMUL, rFp0, rFp0, rFp1);
    if (params.chainLength > 0)
        as.xorr(rAcc, rAcc, rFp0);

    // ---- occasional call ----
    if (has_call) {
        std::string skip = "skipcall" + std::to_string(as.here());
        int call_bits = std::max(
            1, 4 - static_cast<int>(params.callFrac * 8));
        as.andi(rS2, rCount, (1 << call_bits) - 1);
        as.bne(rS2, 0, skip);
        as.call("helper");
        as.label(skip);
    }

    // ---- alias hazard: slow store address + aliasing load ----
    if (params.aliasHazardFrac > 0.0) {
        std::string skip = "skipalias" + std::to_string(as.here());
        if (alias_gate_bits > 0) {
            as.andi(rS2, rCount, (1 << alias_gate_bits) - 1);
            as.bne(rS2, 0, skip);
        }
        // Slow address computation: a divide chain that resolves to a
        // build-time-known offset in the alias region.
        as.ldi(rS1, 4096);
        as.alu(Opcode::DIV, rS1, rS1, rC64);  // 64
        as.mul(rS1, rS1, rC8);                // 512
        as.alu(Opcode::DIV, rS1, rS1, rC64);  // 8
        as.mul(rS1, rS1, rC8);                // 64
        as.add(rS1, rS1, rAliasBase);
        // The stored value changes on a period that straddles the
        // hazard period, so roughly half the would-be RAW squashes
        // are value-equal (store value locality, paper SS5.1).
        as.alui(Opcode::SRLI, rS3, rCount,
                alias_gate_bits + 2);
        as.st8(rS3, rS1, 0);        // store with late-resolving address
        as.ld8(rS0, rAliasBase, 64); // aliasing load, fast address
        as.xorr(rAcc, rAcc, rS0);
        as.label(skip);
    }

    as.addi(rCount, rCount, -1);
    as.bne(rCount, 0, "loop");
    as.halt();
    as.finalize();

    ThreadSpec spec;
    prog.threads().push_back(spec);
    return prog;
}

std::vector<WorkloadSpec>
uniprocessorSuite(double scale)
{
    auto mk = [scale](const char *name, auto tune) {
        SynthParams p;
        p.name = name;
        p.seed = 0;
        for (const char *c = name; *c; ++c)
            p.seed = p.seed * 131 + static_cast<unsigned char>(*c);
        tune(p);
        p.iterations = std::max(
            1u, static_cast<unsigned>(p.iterations * scale));
        return WorkloadSpec{name, p};
    };

    std::vector<WorkloadSpec> suite;

    // --- SPECINT2000 profiles ---
    suite.push_back(mk("gzip", [](SynthParams &p) {
        p.pattern = AccessPattern::Sequential;
        p.workingSetBytes = 256 * 1024;
        p.loadFrac = 0.28;
        p.storeFrac = 0.16;
        p.branchFrac = 0.10;
        p.branchNoise = 0.10;
        p.iterations = 2600;
    }));
    suite.push_back(mk("vpr", [](SynthParams &p) {
        p.pattern = AccessPattern::Random;
        p.workingSetBytes = 512 * 1024;
        p.loadFrac = 0.30;
        p.storeFrac = 0.10;
        p.branchFrac = 0.12;
        p.branchNoise = 0.35;
        p.iterations = 2400;
    }));
    suite.push_back(mk("gcc", [](SynthParams &p) {
        p.pattern = AccessPattern::Random;
        p.workingSetBytes = 1024 * 1024;
        p.loadFrac = 0.28;
        p.storeFrac = 0.16;
        p.branchFrac = 0.14;
        p.branchNoise = 0.25;
        p.callFrac = 0.3;
        p.aliasHazardFrac = 0.05;
        p.iterations = 2200;
    }));
    suite.push_back(mk("mcf", [](SynthParams &p) {
        p.pattern = AccessPattern::PointerChase;
        p.workingSetBytes = 16 * 1024 * 1024; // beyond the 8 MiB L3
        p.loadFrac = 0.34;
        p.storeFrac = 0.08;
        p.branchFrac = 0.10;
        p.branchNoise = 0.25;
        p.blockOps = 40;
        p.iterations = 1200;
    }));
    suite.push_back(mk("crafty", [](SynthParams &p) {
        p.pattern = AccessPattern::Random;
        p.workingSetBytes = 64 * 1024;
        p.loadFrac = 0.30;
        p.storeFrac = 0.08;
        p.branchFrac = 0.14;
        p.branchNoise = 0.20;
        p.mulFrac = 0.04;
        p.iterations = 2600;
    }));
    suite.push_back(mk("parser", [](SynthParams &p) {
        p.pattern = AccessPattern::Random;
        p.workingSetBytes = 256 * 1024;
        p.loadFrac = 0.30;
        p.storeFrac = 0.14;
        p.branchFrac = 0.12;
        p.branchNoise = 0.30;
        p.callFrac = 0.2;
        p.aliasHazardFrac = 0.04;
        p.iterations = 2400;
    }));
    suite.push_back(mk("eon", [](SynthParams &p) {
        p.pattern = AccessPattern::Strided;
        p.strideBytes = 32;
        p.workingSetBytes = 128 * 1024;
        p.loadFrac = 0.28;
        p.storeFrac = 0.16;
        p.branchFrac = 0.08;
        p.branchNoise = 0.05;
        p.fpFrac = 0.12;
        p.iterations = 2400;
    }));
    suite.push_back(mk("perlbmk", [](SynthParams &p) {
        p.pattern = AccessPattern::Random;
        p.workingSetBytes = 512 * 1024;
        p.loadFrac = 0.30;
        p.storeFrac = 0.14;
        p.branchFrac = 0.14;
        p.branchNoise = 0.25;
        p.callFrac = 0.4;
        p.iterations = 2200;
    }));
    suite.push_back(mk("gap", [](SynthParams &p) {
        p.pattern = AccessPattern::Sequential;
        p.workingSetBytes = 512 * 1024;
        p.loadFrac = 0.26;
        p.storeFrac = 0.12;
        p.branchFrac = 0.06;
        p.branchNoise = 0.10;
        p.mulFrac = 0.08;
        p.iterations = 2600;
    }));
    suite.push_back(mk("vortex", [](SynthParams &p) {
        p.pattern = AccessPattern::Random;
        p.workingSetBytes = 1024 * 1024;
        p.loadFrac = 0.28;
        p.storeFrac = 0.22; // store-heavy: commit-port pressure
        p.branchFrac = 0.10;
        p.branchNoise = 0.15;
        p.aliasHazardFrac = 0.06;
        p.iterations = 2200;
    }));
    suite.push_back(mk("bzip2", [](SynthParams &p) {
        p.pattern = AccessPattern::Sequential;
        p.workingSetBytes = 512 * 1024;
        p.loadFrac = 0.30;
        p.storeFrac = 0.14;
        p.branchFrac = 0.12;
        p.branchNoise = 0.30;
        p.iterations = 2500;
    }));
    suite.push_back(mk("twolf", [](SynthParams &p) {
        p.pattern = AccessPattern::Random;
        p.workingSetBytes = 128 * 1024;
        p.loadFrac = 0.30;
        p.storeFrac = 0.12;
        p.branchFrac = 0.12;
        p.branchNoise = 0.30;
        p.aliasHazardFrac = 0.08;
        p.iterations = 2500;
    }));

    // --- SPECFP2000 profiles (high ROB utilization, Table 4 note) ---
    suite.push_back(mk("apsi", [](SynthParams &p) {
        p.pattern = AccessPattern::Strided;
        p.strideBytes = 64;
        p.workingSetBytes = 2 * 1024 * 1024;
        p.loadFrac = 0.30;
        p.storeFrac = 0.16;
        p.branchFrac = 0.04;
        p.branchNoise = 0.02;
        p.fpFrac = 0.20;
        p.chainLength = 10; // long FP chains -> high ROB occupancy
        p.aliasHazardFrac = 0.08;
        p.coldMissFrac = 0.05;
        p.iterations = 1800;
    }));
    suite.push_back(mk("art", [](SynthParams &p) {
        p.pattern = AccessPattern::Strided;
        p.strideBytes = 64;
        // MinneSpec-reduced footprint: L3-resident but far beyond the
        // L2, so many loads are in flight (load-queue pressure).
        p.workingSetBytes = 4 * 1024 * 1024;
        p.loadFrac = 0.36;
        p.storeFrac = 0.06;
        p.branchFrac = 0.06;
        p.branchNoise = 0.05;
        p.fpFrac = 0.16;
        p.chainLength = 6;
        p.coldMissFrac = 0.10;
        p.iterations = 1600;
    }));
    suite.push_back(mk("wupwise", [](SynthParams &p) {
        p.pattern = AccessPattern::Sequential;
        p.workingSetBytes = 4 * 1024 * 1024;
        p.loadFrac = 0.28;
        p.storeFrac = 0.14;
        p.branchFrac = 0.04;
        p.branchNoise = 0.02;
        p.fpFrac = 0.22;
        p.chainLength = 4;
        p.iterations = 2000;
    }));

    // --- commercial profiles ---
    suite.push_back(mk("tpc-b", [](SynthParams &p) {
        p.pattern = AccessPattern::Random;
        p.workingSetBytes = 4 * 1024 * 1024;
        p.loadFrac = 0.30;
        p.storeFrac = 0.20;
        p.branchFrac = 0.12;
        p.branchNoise = 0.25;
        p.callFrac = 0.3;
        p.aliasHazardFrac = 0.05;
        p.iterations = 2000;
    }));
    suite.push_back(mk("tpc-h", [](SynthParams &p) {
        p.pattern = AccessPattern::Sequential;
        p.workingSetBytes = 4 * 1024 * 1024; // reduced-scale scans
        p.loadFrac = 0.34;
        p.storeFrac = 0.08;
        p.branchFrac = 0.10;
        p.branchNoise = 0.10;
        p.coldMissFrac = 0.04;
        p.iterations = 2200;
    }));
    suite.push_back(mk("specjbb", [](SynthParams &p) {
        p.pattern = AccessPattern::Random;
        p.workingSetBytes = 4 * 1024 * 1024;
        p.loadFrac = 0.30;
        p.storeFrac = 0.16;
        p.branchFrac = 0.12;
        p.branchNoise = 0.20;
        p.callFrac = 0.4;
        p.aliasHazardFrac = 0.04;
        p.iterations = 2000;
    }));

    return suite;
}

WorkloadSpec
uniprocessorWorkload(const std::string &name, double scale)
{
    for (auto &w : uniprocessorSuite(scale)) {
        if (w.name == name)
            return w;
    }
    fatal("unknown uniprocessor workload: " + name);
}

} // namespace vbr
