#include "workload/litmus.hpp"

#include "common/logging.hpp"
#include "isa/assembler.hpp"

namespace vbr
{
namespace
{

// Shared words on distinct lines.
constexpr Addr kA = 0x2000;
constexpr Addr kB = 0x2040;
constexpr Addr kC = 0x2080; ///< WRC acknowledge word

constexpr unsigned rTid = 30;
constexpr unsigned rIter = 28;
constexpr unsigned rBad = 4; ///< forbidden-observation counter

void
addThreads(Program &prog, unsigned threads, unsigned iterations)
{
    for (unsigned t = 0; t < threads; ++t) {
        ThreadSpec spec;
        spec.initRegs[rTid] = t;
        spec.initRegs[rIter] = iterations;
        prog.threads().push_back(spec);
    }
}

} // namespace

Program
makeLoadBuffering(unsigned rounds)
{
    Program prog;
    Assembler as(prog);

    as.ldi(7, static_cast<std::int32_t>(kA));
    as.ldi(8, static_cast<std::int32_t>(kB));
    // Thread 1 swaps the roles (reads B, writes A).
    as.beq(rTid, 0, "roles");
    as.alu(Opcode::OR, 9, 7, 0);
    as.alu(Opcode::OR, 7, 8, 0);
    as.alu(Opcode::OR, 8, 9, 0);
    as.label("roles");

    as.ldi(6, 1); // round
    as.label("round");
    as.ld8(5, 7, 0);   // r = my read word
    as.st8(6, 8, 0);   // write partner's word = round
    // Accumulate an observation fingerprint (r4 += r). The forbidden
    // LB outcome is *both* threads observing the other's same-round
    // store, which registers cannot correlate across threads — the
    // constraint-graph checker is the judge.
    as.add(rBad, rBad, 5);
    as.addi(6, 6, 1);
    as.blt(6, rIter, "round");
    as.halt();
    as.finalize();

    addThreads(prog, 2, rounds);
    return prog;
}

Program
makeWrc(unsigned rounds)
{
    Program prog;
    Assembler as(prog);

    as.ldi(7, static_cast<std::int32_t>(kA));
    as.ldi(8, static_cast<std::int32_t>(kB));
    as.ldi(6, 1); // round
    as.beq(rTid, 0, "writer");
    as.ldi(9, 1);
    as.beq(rTid, 9, "relay");

    // --- p2: wait for B == round, check A, acknowledge ---
    as.ldi(11, static_cast<std::int32_t>(kC));
    as.label("p2_round");
    as.label("p2_wait");
    as.ld8(5, 8, 0);
    as.bne(5, 6, "p2_wait");
    as.ld8(5, 7, 0);              // read A
    as.alu(Opcode::CMPLT, 10, 5, 6); // A < round is forbidden
    as.add(rBad, rBad, 10);
    as.st8(6, 11, 0);             // ack: C = round
    as.addi(6, 6, 1);
    as.blt(6, rIter, "p2_round");
    as.halt();

    // --- p1: wait for A == round, then publish B = round ---
    as.label("relay");
    as.label("p1_round");
    as.label("p1_wait");
    as.ld8(5, 7, 0);
    as.bne(5, 6, "p1_wait");
    as.st8(6, 8, 0);
    as.addi(6, 6, 1);
    as.blt(6, rIter, "p1_round");
    as.halt();

    // --- p0: write A = round, advance only after p2's ack so no
    // thread ever misses a round window ---
    as.label("writer");
    as.ldi(11, static_cast<std::int32_t>(kC));
    as.label("p0_round");
    as.st8(6, 7, 0);
    as.label("p0_wait");
    as.ld8(5, 11, 0);
    as.bne(5, 6, "p0_wait");
    as.addi(6, 6, 1);
    as.blt(6, rIter, "p0_round");
    as.halt();
    as.finalize();

    addThreads(prog, 3, rounds);
    return prog;
}

Program
makeIriw(unsigned rounds)
{
    Program prog;
    Assembler as(prog);

    as.ldi(7, static_cast<std::int32_t>(kA));
    as.ldi(8, static_cast<std::int32_t>(kB));
    as.ldi(6, 1); // round

    as.ldi(9, 2);
    as.blt(rTid, 9, "writers");

    // Readers: p2 reads A then B; p3 reads B then A.
    as.ldi(9, 3);
    as.beq(rTid, 9, "reader_ba");

    as.label("reader_ab");
    as.label("r_ab");
    as.ld8(10, 7, 0); // A
    as.ld8(11, 8, 0); // B
    // Record "saw A at round but B behind A" style observations: the
    // graph checker is the real judge; the register just accumulates
    // an order fingerprint.
    as.alu(Opcode::CMPLT, 12, 11, 10);
    as.add(rBad, rBad, 12);
    as.addi(6, 6, 1);
    as.blt(6, rIter, "r_ab");
    as.halt();

    as.label("reader_ba");
    as.label("r_ba");
    as.ld8(10, 8, 0); // B
    as.ld8(11, 7, 0); // A
    as.alu(Opcode::CMPLT, 12, 11, 10);
    as.add(rBad, rBad, 12);
    as.addi(6, 6, 1);
    as.blt(6, rIter, "r_ba");
    as.halt();

    // Writers: p0 bumps A, p1 bumps B, loosely paced.
    as.label("writers");
    as.beq(rTid, 0, "writer_a");
    as.label("writer_b");
    as.label("w_b");
    as.st8(6, 8, 0);
    as.addi(6, 6, 1);
    as.blt(6, rIter, "w_b");
    as.halt();
    as.label("writer_a");
    as.label("w_a");
    as.st8(6, 7, 0);
    as.addi(6, 6, 1);
    as.blt(6, rIter, "w_a");
    as.halt();
    as.finalize();

    addThreads(prog, 4, rounds);
    return prog;
}

Program
makeCoRR(unsigned rounds)
{
    Program prog;
    Assembler as(prog);

    as.ldi(7, static_cast<std::int32_t>(kA));
    as.ldi(6, 1);
    as.bne(rTid, 0, "reader");

    as.label("w_round");
    as.st8(6, 7, 0);
    as.addi(6, 6, 1);
    as.blt(6, rIter, "w_round");
    as.halt();

    as.label("reader");
    as.ldi(13, 64);
    as.label("r_round");
    // The first read's address resolves through a divide chain, so
    // the second (younger) read samples memory first — the
    // same-address load-load reordering of paper Figure 1c that the
    // insulated queue's issue search / value replay must repair.
    as.ldi(14, 4096);
    as.alu(Opcode::DIV, 14, 14, 13); // 64
    as.alu(Opcode::DIV, 14, 14, 13); // 1
    as.alu(Opcode::DIV, 14, 14, 13); // 0
    as.add(14, 14, 7);
    as.load(8, 10, 14, 0); // first read (late issue)
    as.ld8(11, 7, 0);      // second read (samples early)
    as.alu(Opcode::CMPLT, 12, 11, 10);
    as.add(rBad, rBad, 12);
    as.addi(6, 6, 1);
    as.blt(6, rIter, "r_round");
    as.halt();
    as.finalize();

    addThreads(prog, 2, rounds);
    return prog;
}

} // namespace vbr
