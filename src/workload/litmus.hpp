/**
 * @file
 * Classic memory-model litmus tests as runnable programs. Each test
 * writes its per-thread observations into architectural registers so
 * a harness can count forbidden outcomes, and each is repeated for
 * many rounds over distinct word versions so the constraint-graph
 * checker has material to work with.
 *
 * Together with makeDekker (SB), makeMessagePassing (MP+ctrl),
 * makeLoadLoadLitmus (MP without the control dependency) and
 * makeMessagePassingFenced, this covers the standard SC litmus
 * family: LB, WRC, IRIW, CoRR.
 */

#ifndef VBR_WORKLOAD_LITMUS_HPP
#define VBR_WORKLOAD_LITMUS_HPP

#include "isa/program.hpp"

namespace vbr
{

/**
 * LB (load buffering), 2 threads:
 *   p0: r = A; B = round    p1: r = B; A = round
 * Under SC a round's loads can never both observe the other thread's
 * same-round store ("both see new"). Each thread counts such
 * observations in r4 (always 0 under SC since stores drain at commit
 * after older loads — the test documents the machine property).
 */
Program makeLoadBuffering(unsigned rounds);

/**
 * WRC (write-to-read causality), 3 threads:
 *   p0: A = round
 *   p1: spin until A == round; B = round
 *   p2: spin until B == round; r = A
 * Under SC (and any causal model) p2 must observe A == round; p2
 * counts violations (r4). Exercises transitive visibility through a
 * third core.
 */
Program makeWrc(unsigned rounds);

/**
 * IRIW (independent reads of independent writes), 4 threads:
 *   p0: A = round           p1: B = round
 *   p2: rA1 = A; rB1 = B    p3: rB2 = B; rA2 = A
 * SC requires the two writers to appear in the same order to both
 * readers. Each reader records (first_seen, second_seen) pair counts;
 * the harness checks the forbidden combination via the constraint
 * graph (the register-level check is round-synchronised and
 * conservative: r4 counts rounds where this reader saw the first
 * value but not the second).
 */
Program makeIriw(unsigned rounds);

/**
 * CoRR (coherence read-read), 2 threads:
 *   p0: A = round (repeatedly)   p1: r1 = A; r2 = A
 * Coherence (even weak ordering) forbids r2 observing an older value
 * than r1. p1 counts backward observations in r4 (r2 < r1).
 */
Program makeCoRR(unsigned rounds);

} // namespace vbr

#endif // VBR_WORKLOAD_LITMUS_HPP
