/**
 * @file
 * The paper's §3.1/§3.2 replay-reduction heuristics and their
 * composition rule (§3.3).
 *
 * A load must be replayed unless it is proven safe on BOTH axes:
 *
 *  - uniprocessor RAW safety: the no-unresolved-store filter proves a
 *    load safe when it did not bypass any unresolved store address at
 *    issue; the no-reorder filter proves it safe when it issued while
 *    no prior memory operation was incomplete.
 *
 *  - memory-consistency safety: the no-recent-miss / no-recent-snoop
 *    filters prove a load safe when no external fill / external
 *    invalidation was observed while it was in the instruction
 *    window; the no-reorder filter also proves this axis.
 *
 * With no filter on an axis, every load is unsafe on that axis, which
 * makes the "replay all" configuration the degenerate empty config
 * and makes unsound combinations (e.g. no-unresolved-store alone)
 * conservatively safe rather than incorrect.
 */

#ifndef VBR_LSQ_REPLAY_FILTERS_HPP
#define VBR_LSQ_REPLAY_FILTERS_HPP

#include <string>

#include "common/types.hpp"

namespace vbr
{

/** Which heuristics are enabled. */
struct ReplayFilterConfig
{
    // --- filter selection ---------------------------------------------

    bool noReorder = false;

    /** Use the paper's scheduler-based in-order marking for the
     * no-reorder filter (see ReplayLoadInfo::issuedOutOfOrderSched). */
    bool noReorderSchedulerSemantics = false;

    /**
     * Target weak ordering instead of SC on the consistency axis
     * (the replay analogue of the paper's insulated load queue,
     * §2.1): a load is consistency-safe when it issued after every
     * older load had performed, which preserves same-word coherence
     * order; cross-word ordering is only required across fences,
     * which the core already enforces by gating issue. No snoop/miss
     * arming is needed at all in this mode.
     */
    bool weakOrderingAxis = false;

    bool noRecentMiss = false;
    bool noRecentSnoop = false;
    bool noUnresolvedStore = false;

    /**
     * Opt in to configurations that do not cover both safety axes
     * (sweeps and experiments exercise all combinations on purpose;
     * such configs are conservative — they replay everything on the
     * uncovered axis — but are rejected by validate() by default so
     * production setups cannot silently lose filtering). */
    bool allowPartialCoverage = false;

    // --- the paper's four evaluated configurations --------------------

    static ReplayFilterConfig replayAll() { return {}; }

    static ReplayFilterConfig
    noReorderOnly()
    {
        ReplayFilterConfig f;
        f.noReorder = true;
        return f;
    }

    static ReplayFilterConfig
    recentMissPlusNus()
    {
        ReplayFilterConfig f;
        f.noRecentMiss = true;
        f.noUnresolvedStore = true;
        return f;
    }

    static ReplayFilterConfig
    recentSnoopPlusNus()
    {
        ReplayFilterConfig f;
        f.noRecentSnoop = true;
        f.noUnresolvedStore = true;
        return f;
    }

    /** Weak-ordering consistency axis + no-unresolved-store (§2.1
     * analogue; not one of the paper's four SC configurations). */
    static ReplayFilterConfig
    weakOrderingPlusNus()
    {
        ReplayFilterConfig f;
        f.weakOrderingAxis = true;
        f.noUnresolvedStore = true;
        return f;
    }

    // --- introspection / validation -----------------------------------

    std::string name() const;

    /**
     * True when the configuration can prove loads safe on both axes
     * (i.e. it is one of the paper's legal filter pairings). Illegal
     * configs still execute correctly — they just replay everything
     * on the uncovered axis.
     */
    bool coversBothAxes() const;

    /**
     * Description of why this configuration is unsound or
     * contradictory, empty when it is acceptable. Contradictions
     * (scheduler semantics without the no-reorder filter; mixing the
     * weak-ordering axis with SC-targeting recent-event filters) are
     * always rejected; merely partial coverage is rejected unless
     * allowPartialCoverage is set.
     */
    std::string validationError() const;

    /** Panic when validationError() is non-empty. Called at core
     * construction so a bad pairing dies before simulating. */
    void validate() const;
};

/** Per-load facts recorded at issue, consumed at the replay stage. */
struct ReplayLoadInfo
{
    /** Issued while >=1 older store address was unresolved (§3.2). */
    bool bypassedUnresolvedStore = false;

    /**
     * Issued while >=1 older memory op had not *performed*: older
     * loads not executed, or older stores not yet drained to the
     * cache. Sound basis for the no-reorder filter even under this
     * model's atomic store visibility (§3.1).
     */
    bool issuedOutOfOrder = false;

    /**
     * The paper's scheduler-based marking (§3.1): issued while >=1
     * older load was un-executed or >=1 older store had not generated
     * its address. Filters far more loads, matching the paper's
     * no-reorder numbers, but does not order a load against its own
     * core's undrained stores (store->load reordering); safe in
     * uniprocessor runs, conservative-use-only in multiprocessors.
     */
    bool issuedOutOfOrderSched = false;

    /** Issued while >=1 older LOAD had not executed (weak-ordering
     * consistency axis: same-word coherence order). */
    bool issuedBeforeOlderLoad = false;
};

/**
 * Per-core state for the no-recent-miss / no-recent-snoop filters:
 * the "recent event" flag + age register of the paper, generalized to
 * a monotone high-water sequence number. An external event arms the
 * filter up to the youngest instruction currently in the window; any
 * load at or below the mark must replay.
 */
class RecentEventFilterState
{
  public:
    void
    armMiss(SeqNum youngest_in_window)
    {
        if (youngest_in_window != kNoSeq &&
            (missMark_ == kNoSeq || youngest_in_window > missMark_))
            missMark_ = youngest_in_window;
    }

    void
    armSnoop(SeqNum youngest_in_window)
    {
        if (youngest_in_window != kNoSeq &&
            (snoopMark_ == kNoSeq || youngest_in_window > snoopMark_))
            snoopMark_ = youngest_in_window;
    }

    bool
    missArmedFor(SeqNum seq) const
    {
        return missMark_ != kNoSeq && seq <= missMark_;
    }

    bool
    snoopArmedFor(SeqNum seq) const
    {
        return snoopMark_ != kNoSeq && seq <= snoopMark_;
    }

    void
    reset()
    {
        missMark_ = kNoSeq;
        snoopMark_ = kNoSeq;
    }

  private:
    SeqNum missMark_ = kNoSeq;
    SeqNum snoopMark_ = kNoSeq;
};

/** Why a load was (or was not) replayed — drives the Figure 6 split. */
enum class ReplayReason
{
    Filtered,          ///< proven safe on both axes: no replay
    UnresolvedStore,   ///< needed for uniprocessor RAW correctness
    Consistency,       ///< needed only for the consistency axis
};

/**
 * The §3.3 composition rule. @p info are the load's issue-time facts,
 * @p seq its sequence number, @p state the per-core recent-event
 * marks.
 */
ReplayReason classifyReplay(const ReplayFilterConfig &config,
                            const ReplayLoadInfo &info, SeqNum seq,
                            const RecentEventFilterState &state);

} // namespace vbr

#endif // VBR_LSQ_REPLAY_FILTERS_HPP
