/**
 * @file
 * Store queue with store-to-load forwarding. Stores enter at dispatch,
 * record their address/data at execute (agen), and drain to the cache
 * at the commit-stage port, which is the global visibility point of
 * this model. The queue answers the load-issue search: forward, block,
 * or miss — and reports whether any older store address was still
 * unresolved, which feeds the no-unresolved-store replay filter.
 */

#ifndef VBR_LSQ_STORE_QUEUE_HPP
#define VBR_LSQ_STORE_QUEUE_HPP

#include <cstdint>
#include <optional>

#include "common/circular_buffer.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace vbr
{

/** One in-flight store. */
struct SqEntry
{
    SeqNum seq = kNoSeq;
    std::uint32_t pc = 0;
    Addr addr = kNoAddr; ///< kNoAddr until agen executes
    unsigned size = 0;
    Word data = 0;
    bool dataValid = false; ///< store data captured
    bool retiredFromRob = false;
    Cycle ownershipReadyCycle = 0; ///< line ownership ETA
};

/** Outcome of a load's store-queue search. */
struct SqSearchResult
{
    enum class Kind
    {
        None,    ///< no older overlapping store: go to the cache
        Forward, ///< fully contained in an executed store: use value
        Blocked, ///< partial overlap or data not ready: must wait
    };

    Kind kind = Kind::None;
    Word value = 0;            ///< forwarded value (Kind::Forward)
    SeqNum store = kNoSeq;     ///< forwarding/blocking store
    bool sawUnresolvedOlder = false; ///< older store addr unknown
};

/** Age-ordered bounded store queue. */
class StoreQueue
{
  public:
    explicit StoreQueue(std::size_t capacity) : entries_(capacity)
    {
        sc_load_searches_ = &stats_.counter("load_searches");
        sc_forwards_ = &stats_.counter("forwards");
        sc_blocked_loads_ = &stats_.counter("blocked_loads");
    }

    bool full() const { return entries_.full(); }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** Allocate an entry at dispatch. Requires !full(). */
    void dispatch(SeqNum seq, std::uint32_t pc, unsigned size);

    /** Record the address at store agen (data may follow later). */
    void setAddress(SeqNum seq, Addr addr);

    /** Record the store data once its source operand is ready. */
    void setData(SeqNum seq, Word data);

    /** Mark that the ROB retired this store (it may now drain). */
    void markRetired(SeqNum seq);

    /**
     * Search on behalf of a load (@p seq, @p addr, @p size): scan
     * older stores youngest-first for the first overlapping entry.
     */
    SqSearchResult searchForLoad(SeqNum seq, Addr addr,
                                 unsigned size) const;

    /** Number of older-than-@p seq stores with unresolved addresses. */
    unsigned unresolvedOlderThan(SeqNum seq) const;

    /** True when any store older than @p seq has not drained yet. */
    bool hasUndrainedOlderThan(SeqNum seq) const;

    /** Oldest entry (drain candidate); nullptr when empty. */
    SqEntry *head();

    /** Entry at distance @p i from the head (0 == oldest); used by
     * the invariant auditor's age-order scan. */
    const SqEntry &
    at(std::size_t i) const
    {
        return entries_.at(i);
    }

    /** Entry by sequence number; nullptr when absent. */
    SqEntry *find(SeqNum seq);

    /** Remove the (drained) head entry. */
    void
    popFront()
    {
        if (entries_.front().addr == kNoAddr)
            --unresolvedCount_;
        entries_.popFront();
    }

    /** Squash: drop all entries with seq >= @p bound. */
    void squashFrom(SeqNum bound);

    StatSet &stats() { return stats_; }

  private:
    CircularBuffer<SqEntry> entries_;

    /** Entries whose address is still unknown, maintained at
     * dispatch/agen/squash so the no-unresolved-store query can skip
     * its scan in the (common) all-resolved case. */
    unsigned unresolvedCount_ = 0;
    mutable StatSet stats_; ///< searches are counted in const scans

    // Cached stat handles (string lookups are too slow per search).
    Counter *sc_load_searches_ = nullptr;
    Counter *sc_forwards_ = nullptr;
    Counter *sc_blocked_loads_ = nullptr;
};

} // namespace vbr

#endif // VBR_LSQ_STORE_QUEUE_HPP
