/**
 * @file
 * The paper's contribution on the queue side: a plain FIFO load queue
 * with NO associative search. It stores the premature load's address
 * and data for the replay and compare back-end stages, plus the
 * issue-time facts the replay filters consume. All operations are
 * O(1) at the head/tail or indexed lookups — nothing here scales with
 * a CAM.
 */

#ifndef VBR_LSQ_REPLAY_QUEUE_HPP
#define VBR_LSQ_REPLAY_QUEUE_HPP

#include <cstdint>

#include "common/circular_buffer.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "lsq/replay_filters.hpp"

namespace vbr
{

/** One load in the value-based FIFO. */
struct ReplayQueueEntry
{
    SeqNum seq = kNoSeq;
    std::uint32_t pc = 0;
    Addr addr = kNoAddr;
    unsigned size = 0;
    Word prematureValue = 0;
    bool issued = false;
    bool forwarded = false; ///< premature value came from the SQ
    ReplayLoadInfo info;    ///< facts for the filters
};

/** FIFO load queue for value-based replay. */
class ReplayQueue
{
  public:
    explicit ReplayQueue(std::size_t capacity) : entries_(capacity) {}

    bool full() const { return entries_.full(); }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return entries_.capacity(); }

    /** Allocate at dispatch (in program order). */
    void
    dispatch(SeqNum seq, std::uint32_t pc, unsigned size)
    {
        VBR_ASSERT(!entries_.full(), "dispatch into full replay queue");
        ReplayQueueEntry e;
        e.seq = seq;
        e.pc = pc;
        e.size = size;
        entries_.pushBack(e);
    }

    /** Record premature execution results. */
    void
    recordIssue(SeqNum seq, Addr addr, Word premature_value,
                bool forwarded, const ReplayLoadInfo &info)
    {
        ReplayQueueEntry *e = find(seq);
        VBR_ASSERT(e != nullptr, "recordIssue: load not in queue");
        e->addr = addr;
        e->prematureValue = premature_value;
        e->forwarded = forwarded;
        e->issued = true;
        e->info = info;
    }

    /** Entry by sequence number (nullptr when absent). */
    ReplayQueueEntry *
    find(SeqNum seq)
    {
        for (std::size_t i = entries_.size(); i-- > 0;) {
            if (entries_.at(i).seq == seq)
                return &entries_.at(i);
            if (entries_.at(i).seq < seq)
                break; // age-ordered: no match possible further down
        }
        return nullptr;
    }

    /** Oldest entry (next to flow through the replay stage). */
    ReplayQueueEntry *
    head()
    {
        return entries_.empty() ? nullptr : &entries_.front();
    }

    /** Entry at distance @p i from the head (0 == oldest); used by
     * the invariant auditor's FIFO-order scan. */
    const ReplayQueueEntry &
    at(std::size_t i) const
    {
        return entries_.at(i);
    }

    /**
     * TEST-ONLY failure injection: overwrite the recorded age of the
     * entry at position @p i so auditor tests can demonstrate the
     * FIFO-order invariant actually fires. Never call from model code.
     */
    void
    testOnlyCorruptSeq(std::size_t i, SeqNum seq)
    {
        entries_.at(i).seq = seq;
    }

    /** Retire the head (loads leave in program order). */
    void
    retire(SeqNum seq)
    {
        VBR_ASSERT(!entries_.empty() && entries_.front().seq == seq,
                   "replay queue retirement out of order");
        entries_.popFront();
    }

    /** Squash: drop all entries with seq >= @p bound. */
    void
    squashFrom(SeqNum bound)
    {
        while (!entries_.empty() && entries_.back().seq >= bound)
            entries_.popBack();
    }

    StatSet &stats() { return stats_; }

  private:
    CircularBuffer<ReplayQueueEntry> entries_;
    StatSet stats_;
};

} // namespace vbr

#endif // VBR_LSQ_REPLAY_QUEUE_HPP
