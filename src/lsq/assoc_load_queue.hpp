/**
 * @file
 * Conventional associative load queue (the baseline the paper argues
 * against). A RAM of age-ordered entries plus a CAM searched by:
 *
 *  - store address generation (uniprocessor RAW check, all modes),
 *  - external invalidations (snooping and hybrid modes),
 *  - load issue (insulated and hybrid modes).
 *
 * Three organizations are modeled (paper §2.1):
 *  - Snooping: external invalidations search and squash (Gharachorloo
 *    et al.; MIPS R10000, Pentium Pro). Loads at the queue head are
 *    never squashed by snoops (forward progress).
 *  - Insulated: load issue searches for younger already-issued loads
 *    to the same address (Alpha 21264).
 *  - Hybrid: snoops mark matching loads; load issue searches and
 *    squashes only marked ones (IBM Power4).
 *
 * The queue never squashes directly; it returns the sequence number
 * the core must squash from, plus enough information for the
 * unnecessary-squash statistics of §5.1.
 */

#ifndef VBR_LSQ_ASSOC_LOAD_QUEUE_HPP
#define VBR_LSQ_ASSOC_LOAD_QUEUE_HPP

#include <cstdint>
#include <optional>

#include "common/circular_buffer.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "ordering/scheme.hpp"

namespace vbr
{

/** One in-flight load tracked by the CAM. */
struct LqEntry
{
    SeqNum seq = kNoSeq;
    std::uint32_t pc = 0;
    Addr addr = kNoAddr; ///< kNoAddr until issued
    unsigned size = 0;
    Word prematureValue = 0;
    bool issued = false;
    bool marked = false; ///< hybrid mode: snoop hit since issue
};

/** A squash demand produced by a CAM search. */
struct LqSquash
{
    SeqNum squashFrom = kNoSeq;
    std::uint32_t loadPc = 0;
    Word prematureValue = 0;
    Addr addr = kNoAddr;
    unsigned size = 0;
};

/** Baseline CAM-based load queue. */
class AssocLoadQueue
{
  public:
    AssocLoadQueue(std::size_t capacity, LqMode mode)
        : entries_(capacity), mode_(mode)
    {
        sc_load_issue_searches_ = &stats_.counter("load_issue_searches");
        sc_load_load_order_squashes_ = &stats_.counter("load_load_order_squashes");
        sc_raw_violation_squashes_ = &stats_.counter("raw_violation_squashes");
        sc_snoop_marks_ = &stats_.counter("snoop_marks");
        sc_snoop_searches_ = &stats_.counter("snoop_searches");
        sc_snoop_squashes_ = &stats_.counter("snoop_squashes");
        sc_store_agen_searches_ = &stats_.counter("store_agen_searches");
    }

    LqMode mode() const { return mode_; }
    bool full() const { return entries_.full(); }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return entries_.capacity(); }

    /** Allocate at dispatch (fails the dispatch stage when full). */
    void dispatch(SeqNum seq, std::uint32_t pc, unsigned size);

    /** Record the address/value when the load issues and performs. */
    void recordIssue(SeqNum seq, Addr addr, Word premature_value);

    /**
     * Store address generation: CAM search for younger issued loads
     * overlapping [addr, addr+size). Returns the oldest such load.
     * All modes perform this search.
     */
    std::optional<LqSquash> storeAgenSearch(SeqNum store_seq, Addr addr,
                                            unsigned size);

    /**
     * Load issue search (insulated and hybrid modes): find younger
     * already-issued loads to an overlapping address; insulated
     * squashes any such load, hybrid only marked ones.
     */
    std::optional<LqSquash> loadIssueSearch(SeqNum load_seq, Addr addr,
                                            unsigned size);

    /**
     * External invalidation of @p line (line-granular). Snooping mode
     * returns the oldest matching issued load; hybrid mode marks
     * matches and returns nothing. @p rob_head_seq identifies the
     * instruction at the ROB head: a load that is the oldest
     * *instruction* in the machine is non-speculative (every older
     * store has drained) and is never squashed by an external
     * invalidation — the paper's forward-progress exemption, made
     * sound for atomic store visibility.
     */
    std::optional<LqSquash> snoop(Addr line, unsigned line_bytes,
                                  SeqNum rob_head_seq);

    /** True when the entry for @p seq is snoop-marked (hybrid). */
    bool entryMarked(SeqNum seq) const;

    /** Remove the head entry at load retirement. */
    void retire(SeqNum seq);

    /** Squash: drop all entries with seq >= @p bound. */
    void squashFrom(SeqNum bound);

    /** CAM search count (for the energy comparison). */
    std::uint64_t searches() const { return searches_; }

    /** Total entries examined across all searches. */
    std::uint64_t entriesSearched() const { return entriesSearched_; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    LqSquash makeSquash(const LqEntry &e) const;

    CircularBuffer<LqEntry> entries_;
    LqMode mode_;
    // Cached stat handles (per-search paths).
    Counter *sc_load_issue_searches_ = nullptr;
    Counter *sc_load_load_order_squashes_ = nullptr;
    Counter *sc_raw_violation_squashes_ = nullptr;
    Counter *sc_snoop_marks_ = nullptr;
    Counter *sc_snoop_searches_ = nullptr;
    Counter *sc_snoop_squashes_ = nullptr;
    Counter *sc_store_agen_searches_ = nullptr;

    std::uint64_t searches_ = 0;
    std::uint64_t entriesSearched_ = 0;
    StatSet stats_;
};

} // namespace vbr

#endif // VBR_LSQ_ASSOC_LOAD_QUEUE_HPP
