#include "lsq/store_queue.hpp"

#include "common/logging.hpp"

namespace vbr
{

void
StoreQueue::dispatch(SeqNum seq, std::uint32_t pc, unsigned size)
{
    VBR_ASSERT(!entries_.full(), "dispatch into full store queue");
    SqEntry e;
    e.seq = seq;
    e.pc = pc;
    e.size = size;
    entries_.pushBack(e);
    ++unresolvedCount_; // address unknown until agen
}

void
StoreQueue::setAddress(SeqNum seq, Addr addr)
{
    SqEntry *e = find(seq);
    VBR_ASSERT(e != nullptr, "agen of unknown store");
    if (e->addr == kNoAddr && addr != kNoAddr)
        --unresolvedCount_;
    e->addr = addr;
}

void
StoreQueue::setData(SeqNum seq, Word data)
{
    SqEntry *e = find(seq);
    VBR_ASSERT(e != nullptr, "data capture of unknown store");
    e->data = data;
    e->dataValid = true;
}

void
StoreQueue::markRetired(SeqNum seq)
{
    SqEntry *e = find(seq);
    VBR_ASSERT(e != nullptr, "retire of unknown store");
    e->retiredFromRob = true;
}

SqSearchResult
StoreQueue::searchForLoad(SeqNum seq, Addr addr, unsigned size) const
{
    SqSearchResult result;
    ++(*sc_load_searches_);

    // Youngest-first over stores older than the load.
    for (std::size_t i = entries_.size(); i-- > 0;) {
        const SqEntry &e = entries_.at(i);
        if (e.seq >= seq)
            continue;
        if (e.addr == kNoAddr) {
            result.sawUnresolvedOlder = true;
            continue;
        }
        if (!rangesOverlap(e.addr, e.size, addr, size))
            continue;
        if (rangeContains(e.addr, e.size, addr, size) && e.dataValid) {
            result.kind = SqSearchResult::Kind::Forward;
            result.store = e.seq;
            unsigned shift = static_cast<unsigned>(addr - e.addr) * 8;
            Word mask = size >= 8 ? ~Word{0}
                                  : ((Word{1} << (size * 8)) - 1);
            result.value = (e.data >> shift) & mask;
            ++(*sc_forwards_);
        } else {
            result.kind = SqSearchResult::Kind::Blocked;
            result.store = e.seq;
            ++(*sc_blocked_loads_);
        }
        return result;
    }
    return result;
}

unsigned
StoreQueue::unresolvedOlderThan(SeqNum seq) const
{
    if (unresolvedCount_ == 0)
        return 0;
    unsigned n = 0;
    // Age-ordered: stop at the first entry not older than the load.
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const SqEntry &e = entries_.at(i);
        if (e.seq >= seq)
            break;
        if (e.addr == kNoAddr)
            ++n;
    }
    return n;
}

bool
StoreQueue::hasUndrainedOlderThan(SeqNum seq) const
{
    // Entries only leave the queue when they drain, so any older
    // entry still present is undrained.
    return !entries_.empty() && entries_.front().seq < seq;
}

SqEntry *
StoreQueue::head()
{
    return entries_.empty() ? nullptr : &entries_.front();
}

SqEntry *
StoreQueue::find(SeqNum seq)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_.at(i).seq == seq)
            return &entries_.at(i);
    }
    return nullptr;
}

void
StoreQueue::squashFrom(SeqNum bound)
{
    while (!entries_.empty() && entries_.back().seq >= bound) {
        if (entries_.back().addr == kNoAddr)
            --unresolvedCount_;
        entries_.popBack();
    }
}

} // namespace vbr
