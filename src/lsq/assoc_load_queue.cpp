#include "lsq/assoc_load_queue.hpp"

#include "common/logging.hpp"

namespace vbr
{

void
AssocLoadQueue::dispatch(SeqNum seq, std::uint32_t pc, unsigned size)
{
    VBR_ASSERT(!entries_.full(), "dispatch into full load queue");
    LqEntry e;
    e.seq = seq;
    e.pc = pc;
    e.size = size;
    entries_.pushBack(e);
}

void
AssocLoadQueue::recordIssue(SeqNum seq, Addr addr, Word premature_value)
{
    for (std::size_t i = entries_.size(); i-- > 0;) {
        LqEntry &e = entries_.at(i);
        if (e.seq == seq) {
            e.addr = addr;
            e.issued = true;
            e.marked = false;
            e.prematureValue = premature_value;
            return;
        }
    }
    panic("recordIssue: load not in queue");
}

LqSquash
AssocLoadQueue::makeSquash(const LqEntry &e) const
{
    return {e.seq, e.pc, e.prematureValue, e.addr, e.size};
}

std::optional<LqSquash>
AssocLoadQueue::storeAgenSearch(SeqNum store_seq, Addr addr,
                                unsigned size)
{
    ++searches_;
    ++(*sc_store_agen_searches_);
    entriesSearched_ += entries_.size();

    // Oldest-first: the squash must restart from the oldest violator.
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const LqEntry &e = entries_.at(i);
        if (e.seq <= store_seq || !e.issued)
            continue;
        if (rangesOverlap(e.addr, e.size, addr, size)) {
            ++(*sc_raw_violation_squashes_);
            return makeSquash(e);
        }
    }
    return std::nullopt;
}

std::optional<LqSquash>
AssocLoadQueue::loadIssueSearch(SeqNum load_seq, Addr addr,
                                unsigned size)
{
    if (mode_ == LqMode::Snooping)
        return std::nullopt;

    ++searches_;
    ++(*sc_load_issue_searches_);
    entriesSearched_ += entries_.size();

    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const LqEntry &e = entries_.at(i);
        if (e.seq <= load_seq || !e.issued)
            continue;
        if (!rangesOverlap(e.addr, e.size, addr, size))
            continue;
        if (mode_ == LqMode::Hybrid && !e.marked)
            continue;
        ++(*sc_load_load_order_squashes_);
        return makeSquash(e);
    }
    return std::nullopt;
}

std::optional<LqSquash>
AssocLoadQueue::snoop(Addr line, unsigned line_bytes,
                      SeqNum rob_head_seq)
{
    if (mode_ == LqMode::Insulated)
        return std::nullopt;

    ++searches_;
    ++(*sc_snoop_searches_);
    entriesSearched_ += entries_.size();

    for (std::size_t i = 0; i < entries_.size(); ++i) {
        LqEntry &e = entries_.at(i);
        if (!e.issued)
            continue;
        if (!rangesOverlap(e.addr, e.size, line, line_bytes))
            continue;
        if (mode_ == LqMode::Hybrid) {
            // The oldest instruction is architecturally performed and
            // ordered before the invalidating store: never marked.
            if (e.seq != rob_head_seq) {
                e.marked = true;
                ++(*sc_snoop_marks_);
            }
            continue;
        }
        // Forward-progress exemption: the oldest instruction in the
        // machine has already performed architecturally (all older
        // stores drained) and is ordered before the invalidating
        // store; it is never squashed.
        if (e.seq == rob_head_seq)
            continue;
        ++(*sc_snoop_squashes_);
        return makeSquash(e);
    }
    return std::nullopt;
}

bool
AssocLoadQueue::entryMarked(SeqNum seq) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const LqEntry &e = entries_.at(i);
        if (e.seq == seq)
            return e.marked;
        if (e.seq > seq)
            break;
    }
    return false;
}

void
AssocLoadQueue::retire(SeqNum seq)
{
    VBR_ASSERT(!entries_.empty() && entries_.front().seq == seq,
               "load retirement out of order");
    entries_.popFront();
}

void
AssocLoadQueue::squashFrom(SeqNum bound)
{
    while (!entries_.empty() && entries_.back().seq >= bound)
        entries_.popBack();
}

} // namespace vbr
