#include "lsq/replay_filters.hpp"

#include "common/logging.hpp"

namespace vbr
{

std::string
ReplayFilterConfig::name() const
{
    if (!noReorder && !noRecentMiss && !noRecentSnoop &&
        !noUnresolvedStore)
        return "replay-all";
    std::string s;
    auto append = [&s](const char *part) {
        if (!s.empty())
            s += "+";
        s += part;
    };
    if (noReorder)
        append("no-reorder");
    if (noRecentMiss)
        append("no-recent-miss");
    if (noRecentSnoop)
        append("no-recent-snoop");
    if (noUnresolvedStore)
        append("no-unresolved-store");
    if (weakOrderingAxis)
        append("weak-ordering");
    return s;
}

bool
ReplayFilterConfig::coversBothAxes() const
{
    bool uni = noReorder || noUnresolvedStore;
    bool cons =
        noReorder || noRecentMiss || noRecentSnoop || weakOrderingAxis;
    return uni && cons;
}

std::string
ReplayFilterConfig::validationError() const
{
    if (noReorderSchedulerSemantics && !noReorder)
        return "noReorderSchedulerSemantics selects the marking used "
               "by the no-reorder filter but noReorder is off: the "
               "flag would be silently ignored";
    if (weakOrderingAxis && (noRecentMiss || noRecentSnoop))
        return "weakOrderingAxis targets weak ordering but "
               "no-recent-miss/no-recent-snoop target SC: the "
               "recent-event verdict overrides the weak-ordering "
               "proof, silently dropping its filtering";
    bool replay_all = !noReorder && !noRecentMiss && !noRecentSnoop &&
                      !noUnresolvedStore && !weakOrderingAxis;
    if (!allowPartialCoverage && !coversBothAxes() && !replay_all)
        return "configuration '" + name() +
               "' leaves a safety axis uncovered (every load replays "
               "on that axis); set allowPartialCoverage to run such "
               "sweeps deliberately";
    return "";
}

void
ReplayFilterConfig::validate() const
{
    std::string err = validationError();
    if (!err.empty())
        panic("invalid replay-filter configuration: " + err);
}

ReplayReason
classifyReplay(const ReplayFilterConfig &config,
               const ReplayLoadInfo &info, SeqNum seq,
               const RecentEventFilterState &state)
{
    bool in_order = config.noReorderSchedulerSemantics
                        ? !info.issuedOutOfOrderSched
                        : !info.issuedOutOfOrder;

    // Uniprocessor axis: is the load proven safe w.r.t. RAW hazards?
    bool uni_safe =
        (config.noUnresolvedStore && !info.bypassedUnresolvedStore) ||
        (config.noReorder && in_order);

    // Consistency axis: proven safe w.r.t. the memory model?
    bool cons_safe = false;
    if (config.weakOrderingAxis) {
        // Weak ordering only needs same-word load-load order within
        // the thread (fences are enforced at issue): a load that
        // issued after all older loads performed cannot observe an
        // older version than any of them.
        cons_safe = !info.issuedBeforeOlderLoad;
    }
    if (config.noRecentMiss || config.noRecentSnoop) {
        bool armed = (config.noRecentMiss && state.missArmedFor(seq)) ||
                     (config.noRecentSnoop && state.snoopArmedFor(seq));
        cons_safe = !armed;
    }
    if (!cons_safe && config.noReorder && in_order)
        cons_safe = true;

    if (uni_safe && cons_safe)
        return ReplayReason::Filtered;

    // Figure 6 attribution: a replay is charged to the uniprocessor
    // axis when the load actually bypassed an unresolved store
    // address; all other replays are performed irrespective of
    // uniprocessor constraints.
    return info.bypassedUnresolvedStore ? ReplayReason::UnresolvedStore
                                        : ReplayReason::Consistency;
}

} // namespace vbr
