#include "check/constraint_graph.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace vbr
{

std::string
CheckResult::summary() const
{
    std::ostringstream os;
    os << (consistent ? "CONSISTENT" : "VIOLATION") << " (" << nodes
       << " ops, " << edges << " edges";
    if (overflowed)
        os << ", overflowed";
    os << ")";
    for (const auto &e : errors)
        os << "\n  error: " << e;
    return os.str();
}

ScChecker::ScChecker(std::size_t max_ops, ConsistencyModel model)
    : maxOps_(max_ops), model_(model)
{
}

void
ScChecker::reset()
{
    ops_.clear();
    perCore_.clear();
    overflowed_ = false;
}

void
ScChecker::onMemCommit(const MemCommitEvent &event)
{
    if (ops_.size() >= maxOps_) {
        overflowed_ = true;
        return;
    }
    Op op;
    op.core = event.core;
    op.seq = event.seq;
    op.addr = event.addr;
    op.word = event.addr & ~Addr{7};
    op.size = event.size;
    op.isRead = event.isRead;
    op.isWrite = event.isWrite;
    op.readValue = event.readValue;
    op.readVersion = event.readVersion;
    op.writeValue = event.writeValue;
    op.writeVersion = event.writeVersion;
    op.performCycle = event.performCycle;
    op.commitCycle = event.commitCycle;
    op.isFence = event.isFence;

    if (perCore_.size() <= event.core)
        perCore_.resize(event.core + 1);
    perCore_[event.core].push_back(
        static_cast<std::uint32_t>(ops_.size()));
    ops_.push_back(op);
}

namespace
{

constexpr std::uint32_t kNone = UINT32_MAX;

/** Version-sorted, deduplicated writer list for one 8-byte word.
 * ver/idx are parallel arrays; where two ops claimed one version,
 * only the earlier (the one the original attribution used) is kept. */
struct WordWriters
{
    std::vector<std::uint32_t> ver;
    std::vector<std::uint32_t> idx;

    std::uint32_t find(std::uint32_t v) const
    {
        auto it = std::lower_bound(ver.begin(), ver.end(), v);
        if (it == ver.end() || *it != v)
            return kNone;
        return idx[static_cast<std::size_t>(it - ver.begin())];
    }
};

} // namespace

CheckResult
ScChecker::check() const
{
    CheckResult result;
    result.nodes = ops_.size();
    result.overflowed = overflowed_;

    const std::uint32_t n = static_cast<std::uint32_t>(ops_.size());

    // Mutable read attribution: value-based machines commit loads
    // whose value matches several versions of a word (silent stores,
    // value locality, paper SS2.1/SS5.1). A read attribution may
    // therefore slide forward to a later version with identical
    // observed bytes when that is needed to linearize the execution;
    // a genuine violation (differing values) can never slide.
    std::vector<std::uint32_t> read_ver(n, 0);
    for (std::uint32_t i = 0; i < n; ++i)
        read_ver[i] = ops_[i].readVersion;

    // Writers per word/version (fixed). Built once into sorted
    // per-word arrays so the graph builds and the bump loop below
    // never touch a hash table; op_word[i] resolves each op's word up
    // front (kNone where the word was never written, mirroring a
    // failed writers.find()).
    std::unordered_map<Addr, std::uint32_t> word_slot;
    std::vector<WordWriters> words;
    std::vector<std::uint32_t> op_word(n, kNone);
    {
        struct PendingError
        {
            std::uint32_t op;
            unsigned rank; // duplicate-version first, then RMW
            std::string text;
        };
        std::vector<PendingError> errs;
        for (std::uint32_t i = 0; i < n; ++i) {
            const Op &op = ops_[i];
            if (!op.isWrite)
                continue;
            auto [it, inserted] = word_slot.emplace(
                op.word, static_cast<std::uint32_t>(words.size()));
            if (inserted)
                words.emplace_back();
            WordWriters &w = words[it->second];
            w.ver.push_back(op.writeVersion);
            w.idx.push_back(i);
            if (op.isRead && op.readVersion + 1 != op.writeVersion) {
                std::ostringstream os;
                os << "non-atomic RMW on word 0x" << std::hex
                   << op.word << std::dec << ": read v"
                   << op.readVersion << " wrote v" << op.writeVersion;
                errs.push_back({i, 1, os.str()});
            }
        }
        // Commit frames drain in version order per word, so each list
        // is normally already sorted; a stable sort keeps the earlier
        // writer first where a buggy producer reused a version, and
        // the later duplicates are dropped after being reported.
        for (auto &w : words) {
            std::vector<std::uint32_t> order(w.ver.size());
            for (std::uint32_t k = 0;
                 k < static_cast<std::uint32_t>(order.size()); ++k)
                order[k] = k;
            std::stable_sort(order.begin(), order.end(),
                             [&](std::uint32_t a, std::uint32_t b) {
                                 return w.ver[a] < w.ver[b];
                             });
            std::vector<std::uint32_t> ver, idx;
            ver.reserve(order.size());
            idx.reserve(order.size());
            for (std::uint32_t k : order) {
                if (!ver.empty() && ver.back() == w.ver[k]) {
                    std::ostringstream os;
                    os << "two writers produced version " << w.ver[k]
                       << " of word 0x" << std::hex
                       << ops_[w.idx[k]].word;
                    errs.push_back({w.idx[k], 0, os.str()});
                    continue;
                }
                ver.push_back(w.ver[k]);
                idx.push_back(w.idx[k]);
            }
            w.ver = std::move(ver);
            w.idx = std::move(idx);
        }
        // Emit errors in the order the old single-pass build found
        // them: ascending op index, duplicate-version before RMW.
        std::stable_sort(errs.begin(), errs.end(),
                         [](const PendingError &a,
                            const PendingError &b) {
                             return a.op != b.op ? a.op < b.op
                                                 : a.rank < b.rank;
                         });
        for (auto &e : errs)
            result.errors.push_back(std::move(e.text));
        for (std::uint32_t i = 0; i < n; ++i) {
            auto it = word_slot.find(ops_[i].word);
            if (it != word_slot.end())
                op_word[i] = it->second;
        }
    }

    // Extract the bytes a read observes / a writer provides.
    auto writer_bytes_match = [this](const Op &w, const Op &r) {
        if (!rangeContains(w.addr, w.size, r.addr, r.size))
            return false;
        unsigned shift = static_cast<unsigned>(r.addr - w.addr) * 8;
        Word mask = r.size >= 8 ? ~Word{0}
                                : ((Word{1} << (r.size * 8)) - 1);
        return ((w.writeValue >> shift) & mask) == r.readValue;
    };

    // The graph splits into a fixed part — program order (per model)
    // plus WAW version chains — and a dynamic part: each read's RAW
    // in-edge and WAR out-edge, which move when its attribution
    // slides. Only the slid read's two edges are recomputed per bump,
    // and the CSR rebuild below is pure array traversal.
    std::vector<std::uint32_t> fixed_from, fixed_to;
    fixed_from.reserve(n);
    fixed_to.reserve(n);
    auto add_fixed = [&](std::uint32_t from, std::uint32_t to) {
        if (from == to)
            return;
        fixed_from.push_back(from);
        fixed_to.push_back(to);
    };
    if (model_ == ConsistencyModel::SequentialConsistency) {
        for (const auto &seq : perCore_) {
            for (std::size_t i = 1; i < seq.size(); ++i)
                add_fixed(seq[i - 1], seq[i]);
        }
    } else if (model_ == ConsistencyModel::TotalStoreOrder) {
        // Program order minus store->load. Encoded transitively:
        // a read is ordered after the previous READ (R->R) and
        // the previous same-word or barrier op; a write is
        // ordered after the previous op of ANY kind (R->W, W->W).
        for (const auto &seq : perCore_) {
            std::uint32_t last_read = kNone;
            std::uint32_t last_any = kNone;
            std::unordered_map<Addr, std::uint32_t> last_same_word;
            for (std::uint32_t idx : seq) {
                const Op &op = ops_[idx];
                bool barrier = op.isFence || (op.isRead && op.isWrite);
                bool plain_read = op.isRead && !op.isWrite;
                if (plain_read) {
                    if (last_read != kNone)
                        add_fixed(last_read, idx);
                    auto it = last_same_word.find(op.word);
                    if (it != last_same_word.end())
                        add_fixed(it->second, idx);
                } else {
                    // Writes, fences, RMWs order after everything.
                    if (last_any != kNone)
                        add_fixed(last_any, idx);
                    if (last_read != kNone)
                        add_fixed(last_read, idx);
                }
                if (plain_read || barrier)
                    last_read = idx;
                if (!plain_read || barrier)
                    last_any = idx;
                if (!op.isFence)
                    last_same_word[op.word] = idx;
            }
        }
    } else {
        // Weak ordering: within a thread, order only (a) accesses
        // to the same word (coherence / paper Figure 1c), (b)
        // operations across a fence or atomic RMW, in both
        // directions.
        for (const auto &seq : perCore_) {
            std::unordered_map<Addr, std::uint32_t> last_same_word;
            std::uint32_t last_barrier = kNone;
            std::vector<std::uint32_t> since_barrier;
            for (std::uint32_t idx : seq) {
                const Op &op = ops_[idx];
                bool barrier = op.isFence || (op.isRead && op.isWrite);
                if (!op.isFence) {
                    auto it = last_same_word.find(op.word);
                    if (it != last_same_word.end())
                        add_fixed(it->second, idx);
                    last_same_word[op.word] = idx;
                }
                if (last_barrier != kNone)
                    add_fixed(last_barrier, idx);
                if (barrier) {
                    for (std::uint32_t prev : since_barrier)
                        add_fixed(prev, idx);
                    since_barrier.clear();
                    last_barrier = idx;
                } else {
                    since_barrier.push_back(idx);
                }
            }
        }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        const Op &op = ops_[i];
        if (!op.isWrite || op_word[i] == kNone)
            continue;
        // WAW: previous version writer precedes this one.
        std::uint32_t prev =
            words[op_word[i]].find(op.writeVersion - 1);
        if (prev != kNone)
            add_fixed(prev, i);
    }

    // Dynamic edges, refreshed per read when its attribution moves.
    std::vector<std::uint32_t> raw_src(n, kNone), war_dst(n, kNone);
    auto refresh_read_edges = [&](std::uint32_t i) {
        const Op &op = ops_[i];
        raw_src[i] = kNone;
        war_dst[i] = kNone;
        if (!op.isRead || op_word[i] == kNone)
            return;
        const WordWriters &w = words[op_word[i]];
        std::uint32_t v = read_ver[i];
        std::uint32_t src = w.find(v);
        if (src != kNone && src != i)
            raw_src[i] = src; // RAW
        std::uint32_t next = w.find(v + 1);
        if (next != kNone && next != i)
            war_dst[i] = next; // WAR
    };
    for (std::uint32_t i = 0; i < n; ++i)
        refresh_read_edges(i);

    // CSR adjacency over fixed + dynamic edges, rebuilt per round by
    // two counting passes (no per-node vectors, no hashing).
    std::vector<std::uint32_t> head, adj, indeg, cursor;
    std::size_t edges = 0;
    auto build = [&]() {
        indeg.assign(n, 0);
        head.assign(n + 1, 0);
        edges = fixed_from.size();
        for (std::size_t e = 0; e < fixed_from.size(); ++e) {
            ++head[fixed_from[e]];
            ++indeg[fixed_to[e]];
        }
        for (std::uint32_t i = 0; i < n; ++i) {
            if (raw_src[i] != kNone) {
                ++head[raw_src[i]];
                ++indeg[i];
                ++edges;
            }
            if (war_dst[i] != kNone) {
                ++head[i];
                ++indeg[war_dst[i]];
                ++edges;
            }
        }
        std::uint32_t sum = 0;
        for (std::uint32_t i = 0; i <= n; ++i) {
            std::uint32_t c = head[i];
            head[i] = sum;
            sum += c;
        }
        adj.resize(edges);
        cursor.assign(head.begin(), head.end() - 1);
        for (std::size_t e = 0; e < fixed_from.size(); ++e)
            adj[cursor[fixed_from[e]]++] = fixed_to[e];
        for (std::uint32_t i = 0; i < n; ++i) {
            if (raw_src[i] != kNone)
                adj[cursor[raw_src[i]]++] = i;
            if (war_dst[i] != kNone)
                adj[cursor[i]++] = war_dst[i];
        }
    };

    auto kahn = [&](std::vector<std::uint32_t> &residual_indeg) {
        residual_indeg = indeg;
        std::vector<std::uint32_t> q;
        q.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i)
            if (residual_indeg[i] == 0)
                q.push_back(i);
        std::size_t drained = 0;
        while (drained < q.size()) {
            std::uint32_t i = q[drained++];
            for (std::uint32_t e = head[i]; e < head[i + 1]; ++e)
                if (--residual_indeg[adj[e]] == 0)
                    q.push_back(adj[e]);
        }
        return drained;
    };

    std::vector<std::uint32_t> residual;
    std::size_t bumps = 0;
    constexpr std::size_t kMaxBumps = 200000;
    std::size_t drained = 0;
    while (true) {
        build();
        drained = kahn(residual);
        if (drained == n || bumps >= kMaxBumps)
            break;
        // Find a stuck, slidable read: its attribution jumps forward
        // to the next version whose written bytes match the observed
        // value (intermediate versions with different values are
        // skipped — the read is simply ordered after them). RMWs are
        // atomic and never slide.
        bool bumped = false;
        for (std::uint32_t i = 0; i < n && !bumped; ++i) {
            if (residual[i] == 0)
                continue;
            const Op &op = ops_[i];
            if (!op.isRead || op.isWrite)
                continue;
            if (op_word[i] == kNone)
                continue;
            const WordWriters &w = words[op_word[i]];
            auto it = std::upper_bound(w.ver.begin(), w.ver.end(),
                                       read_ver[i]);
            for (; it != w.ver.end(); ++it) {
                std::size_t k =
                    static_cast<std::size_t>(it - w.ver.begin());
                if (writer_bytes_match(ops_[w.idx[k]], op)) {
                    read_ver[i] = *it;
                    refresh_read_edges(i);
                    ++bumps;
                    bumped = true;
                    break;
                }
            }
        }
        if (!bumped)
            break;
    }
    result.edges = edges;

    // Value validation against the final attribution.
    for (std::uint32_t i = 0; i < n; ++i) {
        const Op &op = ops_[i];
        if (!op.isRead)
            continue;
        std::uint32_t v = read_ver[i];
        if (v == 0)
            continue; // initial contents unknown to the checker
        std::uint32_t w =
            op_word[i] == kNone ? kNone : words[op_word[i]].find(v);
        if (w == kNone) {
            std::ostringstream os;
            os << "read of version " << v << " of word 0x" << std::hex
               << op.word << " has no recorded writer";
            result.errors.push_back(os.str());
            continue;
        }
        const Op &writer = ops_[w];
        if (rangeContains(writer.addr, writer.size, op.addr, op.size) &&
            !writer_bytes_match(writer, op)) {
            std::ostringstream os;
            os << "value mismatch at word 0x" << std::hex << op.word
               << std::dec << " version " << v;
            result.errors.push_back(os.str());
        }
    }

    if (drained != n) {
        std::ostringstream os;
        os << "constraint graph contains a cycle: execution is not "
              "sequentially consistent; residual ops:";
        unsigned shown = 0;
        for (std::uint32_t i = 0; i < n && shown < 12; ++i) {
            if (residual[i] == 0)
                continue;
            const Op &op = ops_[i];
            os << "\n    core" << op.core << " seq" << op.seq << " "
               << (op.isRead && op.isWrite
                       ? "rmw"
                       : (op.isRead ? "read" : "write"))
               << " @0x" << std::hex << op.addr << std::dec;
            if (op.isRead)
                os << " rv" << read_ver[i] << "=" << op.readValue;
            if (op.isWrite)
                os << " wv" << op.writeVersion << "=" << op.writeValue;
            os << " perf@" << op.performCycle << " commit@"
               << op.commitCycle;
            ++shown;
        }
        result.errors.push_back(os.str());
    }
    result.consistent = drained == n && result.errors.empty();
    return result;
}

} // namespace vbr
