#include "check/constraint_graph.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace vbr
{

std::string
CheckResult::summary() const
{
    std::ostringstream os;
    os << (consistent ? "CONSISTENT" : "VIOLATION") << " (" << nodes
       << " ops, " << edges << " edges";
    if (overflowed)
        os << ", overflowed";
    os << ")";
    for (const auto &e : errors)
        os << "\n  error: " << e;
    return os.str();
}

ScChecker::ScChecker(std::size_t max_ops, ConsistencyModel model)
    : maxOps_(max_ops), model_(model)
{
}

void
ScChecker::reset()
{
    ops_.clear();
    perCore_.clear();
    overflowed_ = false;
}

void
ScChecker::onMemCommit(const MemCommitEvent &event)
{
    if (ops_.size() >= maxOps_) {
        overflowed_ = true;
        return;
    }
    Op op;
    op.core = event.core;
    op.seq = event.seq;
    op.addr = event.addr;
    op.word = event.addr & ~Addr{7};
    op.size = event.size;
    op.isRead = event.isRead;
    op.isWrite = event.isWrite;
    op.readValue = event.readValue;
    op.readVersion = event.readVersion;
    op.writeValue = event.writeValue;
    op.writeVersion = event.writeVersion;
    op.performCycle = event.performCycle;
    op.commitCycle = event.commitCycle;
    op.isFence = event.isFence;

    if (perCore_.size() <= event.core)
        perCore_.resize(event.core + 1);
    perCore_[event.core].push_back(
        static_cast<std::uint32_t>(ops_.size()));
    ops_.push_back(op);
}

CheckResult
ScChecker::check() const
{
    CheckResult result;
    result.nodes = ops_.size();
    result.overflowed = overflowed_;

    const std::uint32_t n = static_cast<std::uint32_t>(ops_.size());

    // Mutable read attribution: value-based machines commit loads
    // whose value matches several versions of a word (silent stores,
    // value locality, paper SS2.1/SS5.1). A read attribution may
    // therefore slide forward to a later version with identical
    // observed bytes when that is needed to linearize the execution;
    // a genuine violation (differing values) can never slide.
    std::vector<std::uint32_t> read_ver(n, 0);
    for (std::uint32_t i = 0; i < n; ++i)
        read_ver[i] = ops_[i].readVersion;

    // Writers per word/version (fixed).
    struct WordWriters
    {
        std::unordered_map<std::uint32_t, std::uint32_t> byVersion;
    };
    std::unordered_map<Addr, WordWriters> writers;
    for (std::uint32_t i = 0; i < n; ++i) {
        const Op &op = ops_[i];
        if (!op.isWrite)
            continue;
        auto [it, inserted] =
            writers[op.word].byVersion.emplace(op.writeVersion, i);
        if (!inserted) {
            std::ostringstream os;
            os << "two writers produced version " << op.writeVersion
               << " of word 0x" << std::hex << op.word;
            result.errors.push_back(os.str());
        }
        if (op.isRead && op.readVersion + 1 != op.writeVersion) {
            std::ostringstream os;
            os << "non-atomic RMW on word 0x" << std::hex << op.word
               << std::dec << ": read v" << op.readVersion
               << " wrote v" << op.writeVersion;
            result.errors.push_back(os.str());
        }
    }

    // Extract the bytes a read observes / a writer provides.
    auto writer_bytes_match = [this](const Op &w, const Op &r) {
        if (!rangeContains(w.addr, w.size, r.addr, r.size))
            return false;
        unsigned shift = static_cast<unsigned>(r.addr - w.addr) * 8;
        Word mask = r.size >= 8 ? ~Word{0}
                                : ((Word{1} << (r.size * 8)) - 1);
        return ((w.writeValue >> shift) & mask) == r.readValue;
    };

    std::vector<std::vector<std::uint32_t>> adj;
    std::vector<std::uint32_t> indeg;
    std::size_t edges = 0;

    auto build = [&]() {
        adj.assign(n, {});
        indeg.assign(n, 0);
        edges = 0;
        auto add_edge = [&](std::uint32_t from, std::uint32_t to) {
            if (from == to)
                return;
            adj[from].push_back(to);
            ++indeg[to];
            ++edges;
        };
        if (model_ == ConsistencyModel::SequentialConsistency) {
            for (const auto &seq : perCore_) {
                for (std::size_t i = 1; i < seq.size(); ++i)
                    add_edge(seq[i - 1], seq[i]);
            }
        } else if (model_ == ConsistencyModel::TotalStoreOrder) {
            // Program order minus store->load. Encoded transitively:
            // a read is ordered after the previous READ (R->R) and
            // the previous same-word or barrier op; a write is
            // ordered after the previous op of ANY kind (R->W, W->W).
            for (const auto &seq : perCore_) {
                std::uint32_t last_read = UINT32_MAX;
                std::uint32_t last_any = UINT32_MAX;
                std::unordered_map<Addr, std::uint32_t> last_same_word;
                for (std::uint32_t idx : seq) {
                    const Op &op = ops_[idx];
                    bool barrier =
                        op.isFence || (op.isRead && op.isWrite);
                    bool plain_read = op.isRead && !op.isWrite;
                    if (plain_read) {
                        if (last_read != UINT32_MAX)
                            add_edge(last_read, idx);
                        auto it = last_same_word.find(op.word);
                        if (it != last_same_word.end())
                            add_edge(it->second, idx);
                    } else {
                        // Writes, fences, RMWs order after everything.
                        if (last_any != UINT32_MAX)
                            add_edge(last_any, idx);
                        if (last_read != UINT32_MAX)
                            add_edge(last_read, idx);
                    }
                    if (plain_read || barrier)
                        last_read = idx;
                    if (!plain_read || barrier)
                        last_any = idx;
                    if (!op.isFence)
                        last_same_word[op.word] = idx;
                }
            }
        } else {
            // Weak ordering: within a thread, order only (a) accesses
            // to the same word (coherence / paper Figure 1c), (b)
            // operations across a fence or atomic RMW, in both
            // directions.
            for (const auto &seq : perCore_) {
                std::unordered_map<Addr, std::uint32_t> last_same_word;
                std::uint32_t last_barrier = UINT32_MAX;
                std::vector<std::uint32_t> since_barrier;
                for (std::uint32_t idx : seq) {
                    const Op &op = ops_[idx];
                    bool barrier =
                        op.isFence || (op.isRead && op.isWrite);
                    if (!op.isFence) {
                        auto it = last_same_word.find(op.word);
                        if (it != last_same_word.end())
                            add_edge(it->second, idx);
                        last_same_word[op.word] = idx;
                    }
                    if (last_barrier != UINT32_MAX)
                        add_edge(last_barrier, idx);
                    if (barrier) {
                        for (std::uint32_t prev : since_barrier)
                            add_edge(prev, idx);
                        since_barrier.clear();
                        last_barrier = idx;
                    } else {
                        since_barrier.push_back(idx);
                    }
                }
            }
        }
        for (std::uint32_t i = 0; i < n; ++i) {
            const Op &op = ops_[i];
            auto wit = writers.find(op.word);
            if (op.isWrite && wit != writers.end()) {
                // WAW: previous version writer precedes this one.
                auto prev =
                    wit->second.byVersion.find(op.writeVersion - 1);
                if (prev != wit->second.byVersion.end())
                    add_edge(prev->second, i);
            }
            if (op.isRead && wit != writers.end()) {
                std::uint32_t v = read_ver[i];
                auto w = wit->second.byVersion.find(v);
                if (w != wit->second.byVersion.end())
                    add_edge(w->second, i); // RAW
                auto next = wit->second.byVersion.find(v + 1);
                if (next != wit->second.byVersion.end())
                    add_edge(i, next->second); // WAR
            }
        }
    };

    auto kahn = [&](std::vector<std::uint32_t> &residual_indeg) {
        residual_indeg = indeg;
        std::deque<std::uint32_t> q;
        for (std::uint32_t i = 0; i < n; ++i)
            if (residual_indeg[i] == 0)
                q.push_back(i);
        std::size_t drained = 0;
        while (!q.empty()) {
            std::uint32_t i = q.front();
            q.pop_front();
            ++drained;
            for (std::uint32_t to : adj[i])
                if (--residual_indeg[to] == 0)
                    q.push_back(to);
        }
        return drained;
    };

    std::vector<std::uint32_t> residual;
    std::size_t bumps = 0;
    constexpr std::size_t kMaxBumps = 200000;
    std::size_t drained = 0;
    while (true) {
        build();
        drained = kahn(residual);
        if (drained == n || bumps >= kMaxBumps)
            break;
        // Find a stuck, slidable read: its attribution jumps forward
        // to the next version whose written bytes match the observed
        // value (intermediate versions with different values are
        // skipped — the read is simply ordered after them). RMWs are
        // atomic and never slide.
        bool bumped = false;
        for (std::uint32_t i = 0; i < n && !bumped; ++i) {
            if (residual[i] == 0)
                continue;
            const Op &op = ops_[i];
            if (!op.isRead || op.isWrite)
                continue;
            auto wit = writers.find(op.word);
            if (wit == writers.end())
                continue;
            std::uint32_t max_ver = 0;
            // vbr-analyze: det-unordered-iter(order-insensitive max reduction; no output depends on visit order)
            for (const auto &[v, w] : wit->second.byVersion) {
                (void)w;
                max_ver = std::max(max_ver, v);
            }
            for (std::uint32_t v = read_ver[i] + 1; v <= max_ver;
                 ++v) {
                auto w = wit->second.byVersion.find(v);
                if (w == wit->second.byVersion.end())
                    continue;
                if (writer_bytes_match(ops_[w->second], op)) {
                    read_ver[i] = v;
                    ++bumps;
                    bumped = true;
                    break;
                }
            }
        }
        if (!bumped)
            break;
    }
    result.edges = edges;

    // Value validation against the final attribution.
    for (std::uint32_t i = 0; i < n; ++i) {
        const Op &op = ops_[i];
        if (!op.isRead)
            continue;
        std::uint32_t v = read_ver[i];
        if (v == 0)
            continue; // initial contents unknown to the checker
        // NB: only touch byVersion behind a found wit — naming the
        // end iterator's byVersion map is UB. The short-circuit below
        // guarantees w is never examined when the word has no writers.
        auto wit = writers.find(op.word);
        using VerIt = decltype(wit->second.byVersion.cbegin());
        VerIt w{};
        if (wit != writers.end())
            w = wit->second.byVersion.find(v);
        if (wit == writers.end() ||
            w == wit->second.byVersion.end()) {
            std::ostringstream os;
            os << "read of version " << v << " of word 0x" << std::hex
               << op.word << " has no recorded writer";
            result.errors.push_back(os.str());
            continue;
        }
        const Op &writer = ops_[w->second];
        if (rangeContains(writer.addr, writer.size, op.addr, op.size) &&
            !writer_bytes_match(writer, op)) {
            std::ostringstream os;
            os << "value mismatch at word 0x" << std::hex << op.word
               << std::dec << " version " << v;
            result.errors.push_back(os.str());
        }
    }

    if (drained != n) {
        std::ostringstream os;
        os << "constraint graph contains a cycle: execution is not "
              "sequentially consistent; residual ops:";
        unsigned shown = 0;
        for (std::uint32_t i = 0; i < n && shown < 12; ++i) {
            if (residual[i] == 0)
                continue;
            const Op &op = ops_[i];
            os << "\n    core" << op.core << " seq" << op.seq << " "
               << (op.isRead && op.isWrite
                       ? "rmw"
                       : (op.isRead ? "read" : "write"))
               << " @0x" << std::hex << op.addr << std::dec;
            if (op.isRead)
                os << " rv" << read_ver[i] << "=" << op.readValue;
            if (op.isWrite)
                os << " wv" << op.writeVersion << "=" << op.writeValue;
            os << " perf@" << op.performCycle << " commit@"
               << op.commitCycle;
            ++shown;
        }
        result.errors.push_back(os.str());
    }
    result.consistent = drained == n && result.errors.empty();
    return result;
}

} // namespace vbr
