/**
 * @file
 * Constraint-graph memory consistency checker (paper §3.1, after
 * Condon & Hu / Landin et al.). Nodes are committed memory operations;
 * edges are program order plus RAW/WAR/WAW dependence order derived
 * from per-word version numbers. An execution is sequentially
 * consistent iff the graph is acyclic.
 *
 * The checker subscribes to every core's retirement stream via
 * CommitObserver. Because stores become globally visible atomically at
 * the commit-stage drain, each store is tagged with the word version
 * it produced and each load with the version it observed, making the
 * reads-from relation exact.
 */

#ifndef VBR_CHECK_CONSTRAINT_GRAPH_HPP
#define VBR_CHECK_CONSTRAINT_GRAPH_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/commit_observer.hpp"

namespace vbr
{

/** Memory model the checker validates against. */
enum class ConsistencyModel
{
    /** Sequential consistency: full program order (the paper's
     * baseline snooping LQ and value-based replay both target SC). */
    SequentialConsistency,

    /**
     * Total store order: program order minus store->load (a load may
     * be ordered before an older store to a different word — the
     * store-buffer relaxation). Same-word order, fences, and RMWs
     * are fully ordered.
     */
    TotalStoreOrder,

    /**
     * Weak ordering (paper §2.1, Alpha 21264): only operations
     * separated by a memory barrier, atomic RMWs, and operations to
     * the same word are ordered within a thread. Insulated load
     * queues enforce exactly this.
     */
    WeakOrdering,
};

/** Verdict of a consistency check. */
struct CheckResult
{
    bool consistent = false;
    std::size_t nodes = 0;
    std::size_t edges = 0;
    std::vector<std::string> errors; ///< structural problems found
    bool overflowed = false; ///< event budget exceeded; verdict partial

    std::string summary() const;
};

/** Records commit events and tests the execution for SC. */
class ScChecker : public CommitObserver
{
  public:
    /** @param max_ops hard cap on recorded operations (memory guard);
     * recording stops and the result is marked overflowed beyond it. */
    explicit ScChecker(
        std::size_t max_ops = 2'000'000,
        ConsistencyModel model =
            ConsistencyModel::SequentialConsistency);

    void onMemCommit(const MemCommitEvent &event) override;

    /** Build the constraint graph and test for a cycle. */
    CheckResult check() const;

    std::size_t operationCount() const { return ops_.size(); }

    /** Forget all recorded operations. */
    void reset();

  private:
    struct Op
    {
        CoreId core = 0;
        SeqNum seq = kNoSeq;
        Addr word = 0; ///< 8-byte-aligned word address
        Addr addr = 0;
        unsigned size = 0;
        bool isRead = false;
        bool isWrite = false;
        Word readValue = 0;
        std::uint32_t readVersion = 0;
        Word writeValue = 0;
        std::uint32_t writeVersion = 0;
        Cycle performCycle = 0;
        Cycle commitCycle = 0;
        bool isFence = false;
    };

    std::vector<Op> ops_;
    std::vector<std::vector<std::uint32_t>> perCore_; ///< op indices
    std::size_t maxOps_;
    ConsistencyModel model_;
    bool overflowed_ = false;
};

} // namespace vbr

#endif // VBR_CHECK_CONSTRAINT_GRAPH_HPP
