#include "fault/fault_config.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hpp"

namespace vbr
{

bool
FaultConfig::enabled() const
{
    return loadFlipRate > 0.0 || forwardFlipRate > 0.0 ||
           dropSnoopRate > 0.0 || delaySnoopRate > 0.0 ||
           dropInvalRate > 0.0 || delayFillRate > 0.0;
}

namespace
{

std::string
fmtRate(double rate)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", rate);
    return buf;
}

/** "key=rate" or "key=rate:cycles" for the delay classes. */
void
appendField(std::string &out, const char *key, double rate)
{
    if (rate <= 0.0)
        return;
    out += ',';
    out += key;
    out += '=';
    out += fmtRate(rate);
}

void
appendDelayField(std::string &out, const char *key, double rate,
                 Cycle cycles)
{
    if (rate <= 0.0)
        return;
    appendField(out, key, rate);
    out += ':';
    out += std::to_string(cycles);
}

double
parseRate(const std::string &spec, const std::string &value)
{
    char *end = nullptr;
    double r = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || r < 0.0 || r > 1.0)
        fatal("VBR_FAULTS \"" + spec + "\": bad rate \"" + value +
              "\" (want a probability in [0, 1])");
    return r;
}

/** Split "rate:cycles"; plain "rate" keeps the default cycle count. */
double
parseDelay(const std::string &spec, const std::string &value,
           Cycle &cycles)
{
    std::size_t colon = value.find(':');
    if (colon == std::string::npos)
        return parseRate(spec, value);
    const std::string cyc = value.substr(colon + 1);
    char *end = nullptr;
    unsigned long long c = std::strtoull(cyc.c_str(), &end, 10);
    if (end == cyc.c_str() || *end != '\0' || c == 0)
        fatal("VBR_FAULTS \"" + spec + "\": bad delay cycles \"" + cyc +
              "\"");
    cycles = static_cast<Cycle>(c);
    return parseRate(spec, value.substr(0, colon));
}

} // namespace

std::string
FaultConfig::render() const
{
    if (!enabled())
        return "";
    std::string out = "seed=" + std::to_string(seed);
    appendField(out, "loadflip", loadFlipRate);
    appendField(out, "fwdflip", forwardFlipRate);
    appendField(out, "dropsnoop", dropSnoopRate);
    appendDelayField(out, "delaysnoop", delaySnoopRate,
                     delaySnoopCycles);
    appendField(out, "dropinval", dropInvalRate);
    appendDelayField(out, "delayfill", delayFillRate, delayFillCycles);
    return out;
}

FaultConfig
FaultConfig::parse(const std::string &spec)
{
    FaultConfig cfg;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string field = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (field.empty())
            continue;
        std::size_t eq = field.find('=');
        if (eq == std::string::npos)
            fatal("VBR_FAULTS \"" + spec + "\": field \"" + field +
                  "\" is not key=value");
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "seed") {
            char *end = nullptr;
            cfg.seed = std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                fatal("VBR_FAULTS \"" + spec + "\": bad seed \"" +
                      value + "\"");
        } else if (key == "loadflip") {
            cfg.loadFlipRate = parseRate(spec, value);
        } else if (key == "fwdflip") {
            cfg.forwardFlipRate = parseRate(spec, value);
        } else if (key == "dropsnoop") {
            cfg.dropSnoopRate = parseRate(spec, value);
        } else if (key == "delaysnoop") {
            cfg.delaySnoopRate =
                parseDelay(spec, value, cfg.delaySnoopCycles);
        } else if (key == "dropinval") {
            cfg.dropInvalRate = parseRate(spec, value);
        } else if (key == "delayfill") {
            cfg.delayFillRate =
                parseDelay(spec, value, cfg.delayFillCycles);
        } else {
            fatal("VBR_FAULTS \"" + spec + "\": unknown key \"" + key +
                  "\" (want seed/loadflip/fwdflip/dropsnoop/"
                  "delaysnoop/dropinval/delayfill)");
        }
    }
    return cfg;
}

FaultConfig
FaultConfig::fromEnv()
{
    const char *spec = std::getenv("VBR_FAULTS");
    return spec ? parse(spec) : FaultConfig{};
}

} // namespace vbr
