/**
 * @file
 * Seeded, deterministic fault injector. Each potential fault site
 * (a load writeback, a snoop delivery, a fabric invalidation, an
 * external fill) asks the injector for a verdict; the verdict is a
 * pure hash of (seed, fault class, core, site identity), so a given
 * config + workload produces bitwise-identical fault sites regardless
 * of sweep parallelism, host, or wall-clock.
 *
 * The injector also owns outcome attribution for value corruptions:
 * every injected flip is tracked until the load either retires
 * (silently committed), is removed by a squash (recovered), or is
 * caught by the replay/compare stage (detected). The headline table
 * in bench/fault_detection.cpp is built from these counters.
 *
 * One injector per System; Systems are single-threaded, so no
 * synchronization is needed.
 */

#ifndef VBR_FAULT_FAULT_INJECTOR_HPP
#define VBR_FAULT_FAULT_INJECTOR_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "fault/fault_config.hpp"

namespace vbr
{

enum class FaultKind : std::uint8_t
{
    LoadValueFlip,       ///< bit flip in a memory load's premature value
    ForwardCorrupt,      ///< bit flip in a store-forwarded value
    SnoopDropped,        ///< snoop delivery to the core lost
    SnoopDelayed,        ///< snoop delivery to the core postponed
    InvalidationDropped, ///< fabric invalidation lost (stale copy)
    FillDelayed,         ///< external fill stretched
};

const char *faultKindName(FaultKind kind);

/** One injected fault, for artifacts and debugging (capped list). */
struct FaultSite
{
    FaultKind kind = FaultKind::LoadValueFlip;
    CoreId core = 0;
    Cycle cycle = 0;
    SeqNum seq = kNoSeq;
    std::uint32_t pc = 0;
    Addr addr = kNoAddr;
    Word before = 0;
    Word after = 0;
};

/** Detection taxonomy (see DESIGN.md "Fault model & resilience"). */
struct FaultOutcomes
{
    // Injection counts per class.
    std::uint64_t loadFlips = 0;
    std::uint64_t forwardFlips = 0;
    std::uint64_t snoopsDropped = 0;
    std::uint64_t snoopsDelayed = 0;
    std::uint64_t invalidationsDropped = 0;
    std::uint64_t fillsDelayed = 0;

    // Fate of value corruptions (loadFlips + forwardFlips).
    std::uint64_t detectedByCompare = 0;  ///< replay compare mismatch
    std::uint64_t caughtByCam = 0;        ///< CAM squash covered it
    std::uint64_t squashedRecovered = 0;  ///< removed by any squash
    std::uint64_t silentlyCommitted = 0;  ///< retired architecturally

    // Secondary damage: corrupted values that became wild addresses.
    std::uint64_t wildStores = 0;
    std::uint64_t wildLoads = 0;

    std::uint64_t corruptionsInjected() const
    {
        return loadFlips + forwardFlips;
    }
};

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg) : cfg_(cfg) {}

    const FaultConfig &config() const { return cfg_; }

    /** Advance the injector's clock (call first thing each tick). */
    void beginCycle(Cycle now) { now_ = now; }

    struct LoadFlip
    {
        bool flipped = false;
        Word value = 0;
    };

    /**
     * Writeback seam: maybe flip one bit of a load's premature value.
     * Returns the (possibly corrupted) value; when flipped, the site
     * is recorded and tracked until retirement or squash.
     */
    LoadFlip corruptLoadWriteback(CoreId core, SeqNum seq,
                                  std::uint32_t pc, Addr addr,
                                  unsigned size_bytes, bool forwarded,
                                  Word value);

    /** Hierarchy seam: lose the snoop delivery to the core entirely
     * (caches are already invalidated; only the LSQ/filters miss it). */
    bool shouldDropSnoop(CoreId core, Addr line);

    /** Hierarchy seam: postpone the snoop delivery; the delayed event
     * is queued internally and handed back via drainDueSnoops(). */
    bool shouldDelaySnoop(CoreId core, Addr line);

    /** Fabric seam: drop a remote invalidation, leaving a stale cache
     * copy behind (surfaces as an SWMR audit violation). */
    bool shouldDropInvalidation(CoreId core, Addr line);

    /** Hierarchy seam: extra latency to add to an external fill. */
    Cycle fillDelay(CoreId core, Addr line);

    /** Due cycle of the oldest queued delayed snoop (kNeverCycle when
     * none are queued). Due cycles are monotonic, so this is the
     * earliest cycle at which drainDueSnoops() can deliver anything —
     * the fast-forward horizon clamps to it so delayed snoops land on
     * their exact cycle. */
    Cycle
    nextDueSnoopCycle() const
    {
        return delayedSnoops_.empty() ? kNeverCycle
                                      : delayedSnoops_.front().due;
    }

    /** Deliver delayed snoops that are due; @p deliver is invoked as
     * deliver(core, line) in injection order (due cycles are
     * monotonic because the delay is a config constant). */
    template <class Fn>
    void
    drainDueSnoops(Cycle now, Fn &&deliver)
    {
        while (!delayedSnoops_.empty() &&
               delayedSnoops_.front().due <= now) {
            DelayedSnoop s = delayedSnoops_.front();
            delayedSnoops_.pop_front();
            deliver(s.core, s.line);
        }
    }

    // ---- outcome attribution ------------------------------------

    /** The replay/compare stage found the mismatch (before squash). */
    void onCompareMismatch(CoreId core, SeqNum seq);

    /** A CAM-triggered squash is about to remove seq >= bound. */
    void onCamSquash(CoreId core, SeqNum bound);

    /** Any squash removed seq >= bound on this core. */
    void onSquash(CoreId core, SeqNum bound);

    /** A load retired; if it carried a corruption, it was silent. */
    void onLoadRetired(CoreId core, SeqNum seq);

    /** A store/load with a fault-corrupted (wild) address retired. */
    void onWildStore(CoreId core);
    void onWildLoad(CoreId core);

    const FaultOutcomes &outcomes() const { return outcomes_; }
    const std::vector<FaultSite> &sites() const { return sites_; }
    std::uint64_t totalSites() const { return totalSites_; }

    /** Corruptions still pending (in flight) — neither retired nor
     * squashed when the run ended. */
    std::uint64_t inFlight() const { return pending_.size(); }

    /** Deterministic JSON summary: spec, outcomes, recorded sites. */
    JsonValue summaryJson() const;

  private:
    /** Pure decision: hash(seed, salt, a, b, c) < rate. */
    bool decide(std::uint64_t salt, std::uint64_t a, std::uint64_t b,
                std::uint64_t c, double rate) const;
    std::uint64_t siteHash(std::uint64_t salt, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) const;

    /** Per-(class, core) monotonic event counter for sites that have
     * no sequence number (snoops, invalidations, fills). */
    std::uint64_t &counter(FaultKind kind, CoreId core);

    void recordSite(const FaultSite &site);

    struct DelayedSnoop
    {
        Cycle due = 0;
        CoreId core = 0;
        Addr line = 0;
    };

    struct PendingCorruption
    {
        bool detected = false;   ///< counted as detectedByCompare
        bool camCounted = false; ///< counted as caughtByCam
    };

    FaultConfig cfg_;
    Cycle now_ = 0;
    FaultOutcomes outcomes_;
    std::vector<FaultSite> sites_;
    std::uint64_t totalSites_ = 0;
    std::deque<DelayedSnoop> delayedSnoops_;
    std::map<std::pair<CoreId, SeqNum>, PendingCorruption> pending_;
    std::map<std::pair<std::uint8_t, CoreId>, std::uint64_t> counters_;
};

} // namespace vbr

#endif // VBR_FAULT_FAULT_INJECTOR_HPP
