/**
 * @file
 * Parsed fault-injection plan: which fault classes fire, at what rate,
 * and under which seed. The spec grammar is a comma-separated list of
 * `key=value` pairs (delay faults take `rate:cycles`):
 *
 *   seed=42,loadflip=3e-4,fwdflip=1e-4,dropsnoop=0.2,
 *   delaysnoop=0.1:200,dropinval=0.01,delayfill=0.05:300
 *
 * Keys:
 *   seed      — base seed for all fault-site decisions (default 1)
 *   loadflip  — P(bit-flip) per non-forwarded load writeback value
 *   fwdflip   — P(bit-flip) per store-forwarded load writeback value
 *   dropsnoop — P(drop) per snoop/invalidation *delivery to the core*
 *               (caches still invalidate; the LSQ/filters miss it)
 *   delaysnoop— P(delay):cycles per snoop delivery to the core
 *   dropinval — P(drop) per remote cache invalidation on the fabric
 *               (leaves a stale copy; an SWMR audit violation)
 *   delayfill — P(delay):cycles added to an external fill
 *
 * An empty spec (or unset VBR_FAULTS) disables injection entirely; a
 * disabled plan draws no random numbers and perturbs nothing.
 */

#ifndef VBR_FAULT_FAULT_CONFIG_HPP
#define VBR_FAULT_FAULT_CONFIG_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace vbr
{

struct FaultConfig
{
    std::uint64_t seed = 1;

    double loadFlipRate = 0.0;    ///< premature-value bit flip (memory)
    double forwardFlipRate = 0.0; ///< premature-value bit flip (forward)

    double dropSnoopRate = 0.0;  ///< drop snoop delivery to the core
    double delaySnoopRate = 0.0; ///< delay snoop delivery to the core
    Cycle delaySnoopCycles = 200;

    double dropInvalRate = 0.0; ///< drop a fabric invalidation (stale copy)

    double delayFillRate = 0.0; ///< stretch an external fill
    Cycle delayFillCycles = 300;

    /** True when any fault class has a nonzero rate. */
    bool enabled() const;

    /**
     * True when some fault class needs a decision made on every cycle
     * (as opposed to per pipeline event). Every current class is a
     * pure event-site hash, so this is always false today; a future
     * per-cycle class must return true here, which self-disables the
     * fast-forward skip so its decision stream stays identical.
     */
    bool perCycleDecisions() const { return false; }

    /** Canonical spec string ("" when disabled); parse(render()) is
     * the identity on the enabled fields. */
    std::string render() const;

    /** Parse a spec string; fatal() on malformed input. An empty
     * string yields a disabled plan. */
    static FaultConfig parse(const std::string &spec);

    /** Plan from the VBR_FAULTS environment variable. */
    static FaultConfig fromEnv();
};

} // namespace vbr

#endif // VBR_FAULT_FAULT_CONFIG_HPP
