#include "fault/fault_injector.hpp"

namespace vbr
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LoadValueFlip:
        return "load_value_flip";
      case FaultKind::ForwardCorrupt:
        return "forward_corrupt";
      case FaultKind::SnoopDropped:
        return "snoop_dropped";
      case FaultKind::SnoopDelayed:
        return "snoop_delayed";
      case FaultKind::InvalidationDropped:
        return "invalidation_dropped";
      case FaultKind::FillDelayed:
        return "fill_delayed";
    }
    return "unknown";
}

namespace
{

/** splitmix64 finalizer: the standard strong 64-bit mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr std::uint64_t kSaltLoadFlip = 0x1f;
constexpr std::uint64_t kSaltForwardFlip = 0x2f;
constexpr std::uint64_t kSaltDropSnoop = 0x3f;
constexpr std::uint64_t kSaltDelaySnoop = 0x4f;
constexpr std::uint64_t kSaltDropInval = 0x5f;
constexpr std::uint64_t kSaltDelayFill = 0x6f;
constexpr std::uint64_t kSaltBitPick = 0x7f;

constexpr std::size_t kMaxRecordedSites = 256;

} // namespace

std::uint64_t
FaultInjector::siteHash(std::uint64_t salt, std::uint64_t a,
                        std::uint64_t b, std::uint64_t c) const
{
    std::uint64_t h = mix64(cfg_.seed ^ mix64(salt));
    h = mix64(h ^ a);
    h = mix64(h ^ b);
    h = mix64(h ^ c);
    return h;
}

bool
FaultInjector::decide(std::uint64_t salt, std::uint64_t a,
                      std::uint64_t b, std::uint64_t c,
                      double rate) const
{
    if (rate <= 0.0)
        return false;
    // Top 53 bits -> uniform double in [0, 1).
    double u = static_cast<double>(siteHash(salt, a, b, c) >> 11) *
               0x1.0p-53;
    return u < rate;
}

std::uint64_t &
FaultInjector::counter(FaultKind kind, CoreId core)
{
    return counters_[{static_cast<std::uint8_t>(kind), core}];
}

void
FaultInjector::recordSite(const FaultSite &site)
{
    ++totalSites_;
    if (sites_.size() < kMaxRecordedSites)
        sites_.push_back(site);
}

FaultInjector::LoadFlip
FaultInjector::corruptLoadWriteback(CoreId core, SeqNum seq,
                                    std::uint32_t pc, Addr addr,
                                    unsigned size_bytes, bool forwarded,
                                    Word value)
{
    LoadFlip out;
    out.value = value;
    double rate =
        forwarded ? cfg_.forwardFlipRate : cfg_.loadFlipRate;
    std::uint64_t salt = forwarded ? kSaltForwardFlip : kSaltLoadFlip;
    // Keyed on (core, seq, addr): a squash refetches the instruction
    // under a fresh seq, so re-executions draw fresh verdicts.
    if (!decide(salt, core, seq, addr, rate))
        return out;

    unsigned bits = size_bytes * 8;
    unsigned bit = static_cast<unsigned>(
        siteHash(kSaltBitPick ^ salt, core, seq, addr) % bits);
    out.value = value ^ (Word{1} << bit);
    out.flipped = true;

    FaultSite site;
    site.kind = forwarded ? FaultKind::ForwardCorrupt
                          : FaultKind::LoadValueFlip;
    site.core = core;
    site.cycle = now_;
    site.seq = seq;
    site.pc = pc;
    site.addr = addr;
    site.before = value;
    site.after = out.value;
    recordSite(site);

    if (forwarded)
        ++outcomes_.forwardFlips;
    else
        ++outcomes_.loadFlips;
    pending_[{core, seq}] = PendingCorruption{};
    return out;
}

bool
FaultInjector::shouldDropSnoop(CoreId core, Addr line)
{
    if (cfg_.dropSnoopRate <= 0.0)
        return false;
    std::uint64_t n = counter(FaultKind::SnoopDropped, core)++;
    if (!decide(kSaltDropSnoop, core, n, line, cfg_.dropSnoopRate))
        return false;
    FaultSite site;
    site.kind = FaultKind::SnoopDropped;
    site.core = core;
    site.cycle = now_;
    site.addr = line;
    recordSite(site);
    ++outcomes_.snoopsDropped;
    return true;
}

bool
FaultInjector::shouldDelaySnoop(CoreId core, Addr line)
{
    if (cfg_.delaySnoopRate <= 0.0)
        return false;
    std::uint64_t n = counter(FaultKind::SnoopDelayed, core)++;
    if (!decide(kSaltDelaySnoop, core, n, line, cfg_.delaySnoopRate))
        return false;
    delayedSnoops_.push_back(
        {now_ + cfg_.delaySnoopCycles, core, line});
    FaultSite site;
    site.kind = FaultKind::SnoopDelayed;
    site.core = core;
    site.cycle = now_;
    site.addr = line;
    recordSite(site);
    ++outcomes_.snoopsDelayed;
    return true;
}

bool
FaultInjector::shouldDropInvalidation(CoreId core, Addr line)
{
    if (cfg_.dropInvalRate <= 0.0)
        return false;
    std::uint64_t n = counter(FaultKind::InvalidationDropped, core)++;
    if (!decide(kSaltDropInval, core, n, line, cfg_.dropInvalRate))
        return false;
    FaultSite site;
    site.kind = FaultKind::InvalidationDropped;
    site.core = core;
    site.cycle = now_;
    site.addr = line;
    recordSite(site);
    ++outcomes_.invalidationsDropped;
    return true;
}

Cycle
FaultInjector::fillDelay(CoreId core, Addr line)
{
    if (cfg_.delayFillRate <= 0.0)
        return 0;
    std::uint64_t n = counter(FaultKind::FillDelayed, core)++;
    if (!decide(kSaltDelayFill, core, n, line, cfg_.delayFillRate))
        return 0;
    FaultSite site;
    site.kind = FaultKind::FillDelayed;
    site.core = core;
    site.cycle = now_;
    site.addr = line;
    recordSite(site);
    ++outcomes_.fillsDelayed;
    return cfg_.delayFillCycles;
}

void
FaultInjector::onCompareMismatch(CoreId core, SeqNum seq)
{
    auto it = pending_.find({core, seq});
    if (it == pending_.end() || it->second.detected)
        return;
    it->second.detected = true;
    ++outcomes_.detectedByCompare;
}

void
FaultInjector::onCamSquash(CoreId core, SeqNum bound)
{
    auto it = pending_.lower_bound({core, bound});
    auto end = pending_.lower_bound(
        {core + 1, static_cast<SeqNum>(0)});
    for (; it != end; ++it) {
        if (!it->second.camCounted) {
            it->second.camCounted = true;
            ++outcomes_.caughtByCam;
        }
    }
}

void
FaultInjector::onSquash(CoreId core, SeqNum bound)
{
    auto begin = pending_.lower_bound({core, bound});
    auto end = pending_.lower_bound(
        {core + 1, static_cast<SeqNum>(0)});
    for (auto it = begin; it != end; ++it)
        ++outcomes_.squashedRecovered;
    pending_.erase(begin, end);
}

void
FaultInjector::onLoadRetired(CoreId core, SeqNum seq)
{
    auto it = pending_.find({core, seq});
    if (it == pending_.end())
        return;
    ++outcomes_.silentlyCommitted;
    pending_.erase(it);
}

void
FaultInjector::onWildStore(CoreId core)
{
    (void)core;
    ++outcomes_.wildStores;
}

void
FaultInjector::onWildLoad(CoreId core)
{
    (void)core;
    ++outcomes_.wildLoads;
}

JsonValue
FaultInjector::summaryJson() const
{
    JsonValue o = JsonValue::object();
    o.set("spec", cfg_.render());

    JsonValue counts = JsonValue::object();
    counts.set("load_flips", outcomes_.loadFlips);
    counts.set("forward_flips", outcomes_.forwardFlips);
    counts.set("snoops_dropped", outcomes_.snoopsDropped);
    counts.set("snoops_delayed", outcomes_.snoopsDelayed);
    counts.set("invalidations_dropped",
               outcomes_.invalidationsDropped);
    counts.set("fills_delayed", outcomes_.fillsDelayed);
    o.set("injected", std::move(counts));

    JsonValue fate = JsonValue::object();
    fate.set("corruptions_injected", outcomes_.corruptionsInjected());
    fate.set("detected_by_compare", outcomes_.detectedByCompare);
    fate.set("caught_by_cam", outcomes_.caughtByCam);
    fate.set("squashed_recovered", outcomes_.squashedRecovered);
    fate.set("silently_committed", outcomes_.silentlyCommitted);
    fate.set("wild_stores", outcomes_.wildStores);
    fate.set("wild_loads", outcomes_.wildLoads);
    fate.set("in_flight_at_end", pending_.size());
    o.set("corruption_fate", std::move(fate));

    JsonValue arr = JsonValue::array();
    for (const FaultSite &s : sites_) {
        JsonValue j = JsonValue::object();
        j.set("kind", faultKindName(s.kind));
        j.set("core", s.core);
        j.set("cycle", s.cycle);
        if (s.seq != kNoSeq)
            j.set("seq", s.seq);
        if (s.pc != 0)
            j.set("pc", s.pc);
        if (s.addr != kNoAddr)
            j.set("addr", s.addr);
        if (s.kind == FaultKind::LoadValueFlip ||
            s.kind == FaultKind::ForwardCorrupt) {
            j.set("before", s.before);
            j.set("after", s.after);
        }
        arr.push(std::move(j));
    }
    o.set("sites_recorded", std::move(arr));
    o.set("sites_total", totalSites_);
    return o;
}

} // namespace vbr
