/**
 * @file
 * Freelist pool allocator for per-instruction hot containers
 * (incomplete-mem-op sets, replay-queue maps). Node-based containers
 * allocate and free one fixed-size node per element on the hottest
 * simulator paths (issue, writeback, retire); the general-purpose
 * heap pays locking and size-class lookup for every one. PoolArena
 * intercepts those nodes into size-keyed freelists backed by chunked
 * block allocations, so steady-state insert/erase is a pointer pop
 * and push with no heap traffic.
 *
 * Determinism: the arena hands back most-recently-freed nodes in LIFO
 * order, purely core-local, so allocation addresses never influence
 * simulated behavior (no iteration order in this codebase depends on
 * node addresses; keyed containers order by key).
 */

#ifndef VBR_COMMON_POOL_ALLOC_HPP
#define VBR_COMMON_POOL_ALLOC_HPP

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace vbr
{

/** A type-erased bump+freelist arena. One arena serves every node
 * size its containers throw at it (a container family uses only one
 * or two distinct sizes, so the size table stays a short linear
 * scan). Freed nodes are recycled per size class; backing chunks are
 * released only on arena destruction, which is fine for per-core
 * containers whose peak population is bounded by window size. */
class PoolArena
{
  public:
    PoolArena() = default;
    PoolArena(const PoolArena &) = delete;
    PoolArena &operator=(const PoolArena &) = delete;

    ~PoolArena()
    {
        for (auto &chunk : chunks_)
            ::operator delete(chunk.base, chunk.align);
    }

    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        SizeClass &sc = classFor(bytes, align);
        if (sc.freeList != nullptr) {
            void *node = sc.freeList;
            sc.freeList = *static_cast<void **>(node);
            return node;
        }
        if (sc.bumpRemaining == 0)
            refill(sc);
        --sc.bumpRemaining;
        void *node = sc.bumpNext;
        sc.bumpNext = static_cast<char *>(sc.bumpNext) + sc.stride;
        return node;
    }

    void
    deallocate(void *node, std::size_t bytes, std::size_t align)
    {
        SizeClass &sc = classFor(bytes, align);
        *static_cast<void **>(node) = sc.freeList;
        sc.freeList = node;
    }

  private:
    struct SizeClass
    {
        std::size_t stride = 0;
        std::align_val_t align{alignof(std::max_align_t)};
        void *freeList = nullptr;
        void *bumpNext = nullptr;
        std::size_t bumpRemaining = 0;
        std::size_t nextChunkNodes = 64; ///< doubles per refill
    };

    struct Chunk
    {
        void *base = nullptr;
        std::align_val_t align{alignof(std::max_align_t)};
        std::size_t size = 0;
    };

    SizeClass &
    classFor(std::size_t bytes, std::size_t align)
    {
        // A freed node stores the next-pointer in its own bytes.
        if (bytes < sizeof(void *))
            bytes = sizeof(void *);
        if (align < alignof(void *))
            align = alignof(void *);
        std::size_t stride = (bytes + align - 1) / align * align;
        for (auto &sc : classes_)
            if (sc.stride == stride &&
                sc.align == std::align_val_t{align})
                return sc;
        classes_.push_back(SizeClass{});
        SizeClass &sc = classes_.back();
        sc.stride = stride;
        sc.align = std::align_val_t{align};
        return sc;
    }

    void
    refill(SizeClass &sc)
    {
        std::size_t nodes = sc.nextChunkNodes;
        sc.nextChunkNodes *= 2;
        void *base = ::operator new(nodes * sc.stride, sc.align);
        chunks_.push_back(Chunk{base, sc.align, nodes * sc.stride});
        sc.bumpNext = base;
        sc.bumpRemaining = nodes;
    }

    std::vector<SizeClass> classes_;
    std::vector<Chunk> chunks_;
};

/** Standard-conforming allocator over a shared PoolArena. The arena
 * must outlive every container using it. Single-element requests (the
 * only kind node-based containers make) go through the pool; bulk
 * requests fall back to the global heap. */
template <typename T> class PoolAllocator
{
  public:
    using value_type = T;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;

    explicit PoolAllocator(PoolArena &arena) noexcept : arena_(&arena)
    {
    }

    template <typename U>
    PoolAllocator(const PoolAllocator<U> &other) noexcept
        : arena_(other.arena_)
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n == 1)
            return static_cast<T *>(
                arena_->allocate(sizeof(T), alignof(T)));
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{alignof(T)}));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        if (n == 1) {
            arena_->deallocate(p, sizeof(T), alignof(T));
            return;
        }
        ::operator delete(p, std::align_val_t{alignof(T)});
    }

    template <typename U>
    bool
    operator==(const PoolAllocator<U> &other) const noexcept
    {
        return arena_ == other.arena_;
    }

    template <typename U>
    bool
    operator!=(const PoolAllocator<U> &other) const noexcept
    {
        return arena_ != other.arena_;
    }

  private:
    template <typename U> friend class PoolAllocator;
    PoolArena *arena_;
};

} // namespace vbr

#endif // VBR_COMMON_POOL_ALLOC_HPP
