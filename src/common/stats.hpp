/**
 * @file
 * Minimal statistics package: named counters, running averages, and
 * histograms, grouped into a StatSet that can be dumped as text. The
 * simulator's figures are all derived from these.
 */

#ifndef VBR_COMMON_STATS_HPP
#define VBR_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vbr
{

/** Monotonically increasing event counter. */
class Counter
{
  public:
    void operator+=(std::uint64_t n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Accumulator for a per-cycle or per-event quantity whose mean is
 * reported (e.g. reorder buffer occupancy sampled every cycle).
 */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    /**
     * Record @p n identical samples of @p v at once. Bit-exact with n
     * repeated sample(v) calls for the integer-valued quantities this
     * package tracks (v*n and the running sum stay well below 2^53),
     * which is what lets fast-forwarded quiescent cycles replicate
     * their per-cycle occupancy samples in bulk.
     */
    void
    sample(double v, std::uint64_t n)
    {
        sum_ += v * static_cast<double>(n);
        count_ += n;
    }

    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    std::uint64_t count() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram with an overflow bucket. */
class Histogram
{
  public:
    Histogram() = default;

    /** @param bucket_size width of each bucket; @param buckets count. */
    Histogram(std::uint64_t bucket_size, std::size_t buckets)
        : bucketSize_(bucket_size), counts_(buckets + 1, 0)
    {
    }

    void
    sample(std::uint64_t v)
    {
        if (counts_.empty())
            return;
        std::size_t idx = bucketSize_ ? v / bucketSize_ : 0;
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
        sum_ += v;
        ++total_;
    }

    std::uint64_t total() const { return total_; }

    double
    mean() const
    {
        return total_ == 0
            ? 0.0
            : static_cast<double>(sum_) / static_cast<double>(total_);
    }

    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    std::uint64_t bucketSize() const { return bucketSize_; }

  private:
    std::uint64_t bucketSize_ = 1;
    std::vector<std::uint64_t> counts_;
    std::uint64_t sum_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of statistics. Modules register their stats at
 * construction; harnesses read individual values or dump everything.
 */
class StatSet
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    Average &average(const std::string &name) { return averages_[name]; }

    /** Read a counter (0 if never touched). Const-friendly lookup. */
    std::uint64_t get(const std::string &name) const;

    /** Read an average's mean (0.0 if never sampled). */
    double getMean(const std::string &name) const;

    /** Render "name = value" lines, sorted by name. */
    std::string dump(const std::string &prefix = "") const;

    void reset();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
};

} // namespace vbr

#endif // VBR_COMMON_STATS_HPP
