/**
 * @file
 * Fundamental scalar types shared by every vbr module.
 */

#ifndef VBR_COMMON_TYPES_HPP
#define VBR_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace vbr
{

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/**
 * Per-core dynamic instruction sequence number, assigned in program
 * (fetch) order. Sequence numbers are never reused within a run, so
 * age comparisons reduce to integer comparisons.
 */
using SeqNum = std::uint64_t;

/** Identifier of a core in a multiprocessor system. */
using CoreId = std::uint32_t;

/** A 64-bit data value as carried by registers and memory words. */
using Word = std::uint64_t;

/** Sentinel for "no sequence number" / "not in flight". */
inline constexpr SeqNum kNoSeq = std::numeric_limits<SeqNum>::max();

/** Sentinel for an invalid address. */
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Sentinel cycle meaning "never" / "not scheduled". */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/**
 * Return true when the byte ranges [a, a + a_size) and [b, b + b_size)
 * overlap. Used by every address-disambiguation structure (store queue
 * search, associative load queue search).
 */
constexpr bool
rangesOverlap(Addr a, unsigned a_size, Addr b, unsigned b_size)
{
    return a < b + b_size && b < a + a_size;
}

/**
 * Return true when [inner, inner + inner_size) is fully contained in
 * [outer, outer + outer_size). Full containment is the condition for
 * store-to-load forwarding from a single store queue entry.
 */
constexpr bool
rangeContains(Addr outer, unsigned outer_size, Addr inner,
              unsigned inner_size)
{
    return inner >= outer && inner + inner_size <= outer + outer_size;
}

} // namespace vbr

#endif // VBR_COMMON_TYPES_HPP
