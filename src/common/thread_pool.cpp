#include "common/thread_pool.hpp"

#include <utility>

namespace vbr
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_ = std::vector<WorkerSlot>(threads);
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (auto &t : threads_)
        t.join();
    // Workers only exit once every deque is empty, so all submitted
    // tasks have run. An exception captured after the last wait() is
    // intentionally dropped here: destructors must not throw.
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        workers_[nextQueue_].queue.push_back(std::move(task));
        nextQueue_ = (nextQueue_ + 1) % workers_.size();
        ++inFlight_;
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr err = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

bool
ThreadPool::takeTask(std::size_t self, std::function<void()> &out)
{
    if (!workers_[self].queue.empty()) {
        out = std::move(workers_[self].queue.front());
        workers_[self].queue.pop_front();
        return true;
    }
    for (std::size_t k = 1; k < workers_.size(); ++k) {
        std::size_t victim = (self + k) % workers_.size();
        if (!workers_[victim].queue.empty()) {
            out = std::move(workers_[victim].queue.front());
            workers_[victim].queue.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        std::function<void()> task;
        if (takeTask(self, task)) {
            lock.unlock();
            try {
                task();
            } catch (...) {
                std::lock_guard<std::mutex> guard(mutex_);
                if (!firstError_)
                    firstError_ = std::current_exception();
            }
            lock.lock();
            ++workers_[self].tasksRun;
            if (--inFlight_ == 0)
                idleCv_.notify_all();
            continue;
        }
        if (stopping_)
            return; // deques drained, shutdown requested
        workCv_.wait(lock);
    }
}

} // namespace vbr
