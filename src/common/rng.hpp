/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis
 * and property tests. A small xoshiro256** implementation is used so
 * that workloads are bit-identical across platforms and standard
 * library versions (std::mt19937 would also work, but its distribution
 * adapters are not portable across library implementations).
 */

#ifndef VBR_COMMON_RNG_HPP
#define VBR_COMMON_RNG_HPP

#include <cstdint>

#include "common/logging.hpp"

namespace vbr
{

/**
 * xoshiro256** by Blackman & Vigna (public domain reference
 * implementation), seeded through splitmix64.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialize the generator state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 to expand the seed into four state words.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        VBR_ASSERT(bound != 0, "Rng::below(0)");
        // Rejection-free multiply-shift; bias is negligible for the
        // bounds used in workload generation (<< 2^32).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        VBR_ASSERT(lo <= hi, "Rng::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return static_cast<double>(next() >> 11) *
                   (1.0 / 9007199254740992.0) < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace vbr

#endif // VBR_COMMON_RNG_HPP
