/**
 * @file
 * Fixed-capacity circular FIFO used for the reorder buffer, store
 * queue, and the value-based replay load queue. Indexable by position
 * from the head so age-ordered scans are trivial.
 */

#ifndef VBR_COMMON_CIRCULAR_BUFFER_HPP
#define VBR_COMMON_CIRCULAR_BUFFER_HPP

#include <cstddef>
#include <vector>

#include "common/logging.hpp"

namespace vbr
{

/**
 * Bounded FIFO over contiguous storage. Unlike std::deque it never
 * allocates after construction and supports O(1) indexed access from
 * the head (index 0 == oldest), which queue scans rely on.
 */
template <typename T>
class CircularBuffer
{
  public:
    explicit CircularBuffer(std::size_t capacity)
        : slots_(capacity), capacity_(capacity)
    {
        VBR_ASSERT(capacity > 0, "CircularBuffer capacity must be > 0");
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }

    /** Append a new youngest entry. Requires !full(). */
    T &
    pushBack(T value)
    {
        VBR_ASSERT(!full(), "pushBack on full CircularBuffer");
        std::size_t pos = physical(size_);
        slots_[pos] = std::move(value);
        ++size_;
        return slots_[pos];
    }

    /** Remove the oldest entry. Requires !empty(). */
    void
    popFront()
    {
        VBR_ASSERT(!empty(), "popFront on empty CircularBuffer");
        head_ = (head_ + 1) % capacity_;
        --size_;
    }

    /** Remove the youngest entry (used by squash rollback). */
    void
    popBack()
    {
        VBR_ASSERT(!empty(), "popBack on empty CircularBuffer");
        --size_;
    }

    /** Oldest entry. */
    T &front() { return slots_[head_]; }
    const T &front() const { return slots_[head_]; }

    /** Youngest entry. */
    T &back() { return slots_[physical(size_ - 1)]; }
    const T &back() const { return slots_[physical(size_ - 1)]; }

    /** Entry at distance @p i from the head (0 == oldest). */
    T &
    at(std::size_t i)
    {
        VBR_ASSERT(i < size_, "CircularBuffer index out of range");
        return slots_[physical(i)];
    }

    const T &
    at(std::size_t i) const
    {
        VBR_ASSERT(i < size_, "CircularBuffer index out of range");
        return slots_[physical(i)];
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    std::size_t
    physical(std::size_t logical) const
    {
        return (head_ + logical) % capacity_;
    }

    std::vector<T> slots_;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace vbr

#endif // VBR_COMMON_CIRCULAR_BUFFER_HPP
