/**
 * @file
 * Minimal JSON document builder + reader for the machine-readable
 * artifacts (BENCH_<name>.json, result-cache entries). Emission came
 * first and stays primary; the parser exists solely so the result
 * cache can deserialize documents this library itself wrote, and is
 * strict about exactly that dialect (no comments, no trailing commas).
 *
 * Determinism: object members keep insertion order, doubles are
 * printed with %.17g (round-trippable and bit-stable for identical
 * inputs), and there is no locale dependence — two runs producing the
 * same values produce byte-identical documents. parse() preserves the
 * Int/UInt/Double split by spelling (sign / '.'/exponent), so
 * dump(parse(dump(x))) == dump(x) for every value this library emits.
 */

#ifndef VBR_COMMON_JSON_HPP
#define VBR_COMMON_JSON_HPP

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace vbr
{

class JsonValue
{
  public:
    JsonValue() = default; // null

    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double d) : kind_(Kind::Double), double_(d) {}
    JsonValue(const char *s) : kind_(Kind::String), string_(s) {}
    JsonValue(std::string s)
        : kind_(Kind::String), string_(std::move(s))
    {
    }

    /** Any integer type maps onto int64/uint64 by signedness. */
    template <class T,
              std::enable_if_t<std::is_integral_v<T> &&
                                   !std::is_same_v<T, bool>,
                               int> = 0>
    JsonValue(T v)
    {
        if constexpr (std::is_signed_v<T>) {
            kind_ = Kind::Int;
            int_ = static_cast<std::int64_t>(v);
        } else {
            kind_ = Kind::UInt;
            uint_ = static_cast<std::uint64_t>(v);
        }
    }

    static JsonValue
    object()
    {
        JsonValue v;
        v.kind_ = Kind::Object;
        return v;
    }

    static JsonValue
    array()
    {
        JsonValue v;
        v.kind_ = Kind::Array;
        return v;
    }

    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isString() const { return kind_ == Kind::String; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    bool
    isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::UInt ||
               kind_ == Kind::Double;
    }

    /** Unsigned-integer view (Int/UInt only; 0 on sign mismatch). */
    std::uint64_t
    asU64() const
    {
        if (kind_ == Kind::UInt)
            return uint_;
        if (kind_ == Kind::Int && int_ >= 0)
            return static_cast<std::uint64_t>(int_);
        return 0;
    }

    std::int64_t
    asI64() const
    {
        return kind_ == Kind::Int ? int_
                                  : static_cast<std::int64_t>(asU64());
    }

    /** Numeric view of any number kind (0.0 otherwise). */
    double
    asDouble() const
    {
        switch (kind_) {
        case Kind::Double: return double_;
        case Kind::Int: return static_cast<double>(int_);
        case Kind::UInt: return static_cast<double>(uint_);
        default: return 0.0;
        }
    }

    bool asBool() const { return kind_ == Kind::Bool && bool_; }
    const std::string &asString() const { return string_; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Array element access (fatal-asserts on range/kind). */
    const JsonValue &at(std::size_t i) const;

    /** Ordered members of an object (empty otherwise). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /**
     * Strict parse of one JSON document (trailing whitespace allowed,
     * trailing garbage is an error). Returns false — with @p err set
     * when provided — on malformed input; @p out is then unspecified.
     * Numbers keep their emitted kind: a leading '-' parses as Int, a
     * '.', 'e' or 'E' as Double, anything else as UInt.
     */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string *err = nullptr);

    /** Set/overwrite a member (object only); keeps insertion order. */
    JsonValue &set(const std::string &key, JsonValue value);

    /** Append an element (array only). */
    JsonValue &push(JsonValue value);

    std::size_t
    size() const
    {
        return kind_ == Kind::Array ? items_.size() : members_.size();
    }

    /** Serialize; @p indent 0 = compact, otherwise pretty-printed
     * with that many spaces per level. */
    std::string dump(unsigned indent = 0) const;

    /** JSON string escaping (also used by the dumper). */
    static std::string escape(const std::string &s);

  private:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        UInt,
        Double,
        String,
        Array,
        Object,
    };

    void dumpTo(std::string &out, unsigned indent,
                unsigned depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace vbr

#endif // VBR_COMMON_JSON_HPP
