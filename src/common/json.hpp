/**
 * @file
 * Minimal JSON document builder for the machine-readable benchmark
 * reports (BENCH_<name>.json). Write-only by design: the simulator
 * never parses JSON, it only emits it, so this stays a few hundred
 * lines instead of a dependency.
 *
 * Determinism: object members keep insertion order, doubles are
 * printed with %.17g (round-trippable and bit-stable for identical
 * inputs), and there is no locale dependence — two runs producing the
 * same values produce byte-identical documents.
 */

#ifndef VBR_COMMON_JSON_HPP
#define VBR_COMMON_JSON_HPP

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace vbr
{

class JsonValue
{
  public:
    JsonValue() = default; // null

    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double d) : kind_(Kind::Double), double_(d) {}
    JsonValue(const char *s) : kind_(Kind::String), string_(s) {}
    JsonValue(std::string s)
        : kind_(Kind::String), string_(std::move(s))
    {
    }

    /** Any integer type maps onto int64/uint64 by signedness. */
    template <class T,
              std::enable_if_t<std::is_integral_v<T> &&
                                   !std::is_same_v<T, bool>,
                               int> = 0>
    JsonValue(T v)
    {
        if constexpr (std::is_signed_v<T>) {
            kind_ = Kind::Int;
            int_ = static_cast<std::int64_t>(v);
        } else {
            kind_ = Kind::UInt;
            uint_ = static_cast<std::uint64_t>(v);
        }
    }

    static JsonValue
    object()
    {
        JsonValue v;
        v.kind_ = Kind::Object;
        return v;
    }

    static JsonValue
    array()
    {
        JsonValue v;
        v.kind_ = Kind::Array;
        return v;
    }

    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Set/overwrite a member (object only); keeps insertion order. */
    JsonValue &set(const std::string &key, JsonValue value);

    /** Append an element (array only). */
    JsonValue &push(JsonValue value);

    std::size_t
    size() const
    {
        return kind_ == Kind::Array ? items_.size() : members_.size();
    }

    /** Serialize; @p indent 0 = compact, otherwise pretty-printed
     * with that many spaces per level. */
    std::string dump(unsigned indent = 0) const;

    /** JSON string escaping (also used by the dumper). */
    static std::string escape(const std::string &s);

  private:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        UInt,
        Double,
        String,
        Array,
        Object,
    };

    void dumpTo(std::string &out, unsigned indent,
                unsigned depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace vbr

#endif // VBR_COMMON_JSON_HPP
