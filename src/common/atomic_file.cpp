#include "common/atomic_file.hpp"

#include <cstdio>
#include <string>

#include <unistd.h>

namespace vbr
{

bool
atomicWriteFile(const std::string &path, const std::string &bytes)
{
    // Same directory as the destination so the final rename() cannot
    // cross a filesystem boundary; the pid suffix keeps concurrent
    // processes warming one cache directory from clobbering each
    // other's temporaries.
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return false;
    bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readFileToString(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    out.clear();
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

} // namespace vbr
