/**
 * @file
 * Work-stealing thread pool backing the sweep execution engine.
 *
 * Tasks are distributed round-robin across per-worker deques; an idle
 * worker first drains its own deque, then steals the oldest task from
 * a sibling. One mutex guards all deques — sweep tasks are entire
 * simulation runs (milliseconds to minutes), so scheduling overhead
 * is irrelevant and a single lock keeps the stealing protocol
 * trivially correct under TSan.
 *
 * Semantics:
 *  - submit() may be called from any thread, including workers;
 *  - wait() blocks until every submitted task has finished and
 *    rethrows the first exception any task raised (the remaining
 *    tasks still run to completion first);
 *  - the destructor drains all queued work before joining, so
 *    shutdown with queued tasks is deterministic: everything
 *    submitted executes exactly once.
 */

#ifndef VBR_COMMON_THREAD_POOL_HPP
#define VBR_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vbr
{

class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /**
     * Block until all submitted tasks have completed. If any task
     * threw, the first captured exception is rethrown (once).
     */
    void wait();

    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Total tasks executed (for tests; stable only after wait()). */
    std::uint64_t
    tasksRun() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::uint64_t total = 0;
        for (const WorkerSlot &w : workers_)
            total += w.tasksRun;
        return total;
    }

  private:
    /** Per-worker state, padded to a full cache line: a worker's
     * deque header and completion counter are written on every task,
     * and without the padding sibling slots share lines — the mutex
     * already serializes them, but each write would still invalidate
     * the line under every other worker mid-ping-pong. */
    struct alignas(64) WorkerSlot
    {
        std::deque<std::function<void()>> queue;
        std::uint64_t tasksRun = 0;
    };

    void workerLoop(std::size_t self);

    /** Pop own work first, then steal the oldest task from a sibling
     * deque. Caller holds mutex_. */
    bool takeTask(std::size_t self, std::function<void()> &out);

    std::vector<WorkerSlot> workers_;
    std::vector<std::thread> threads_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_; ///< workers: work or shutdown
    std::condition_variable idleCv_; ///< wait(): everything drained
    std::size_t nextQueue_ = 0;      ///< round-robin submit target
    std::size_t inFlight_ = 0;       ///< queued + running tasks
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

} // namespace vbr

#endif // VBR_COMMON_THREAD_POOL_HPP
