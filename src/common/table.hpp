/**
 * @file
 * Fixed-width text table renderer used by the benchmark harnesses to
 * print paper-style tables and figure data series.
 */

#ifndef VBR_COMMON_TABLE_HPP
#define VBR_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace vbr
{

/** Accumulates rows of cells and renders them with aligned columns. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with column padding and a separator under the header. */
    std::string render() const;

    /** Format helper: fixed-point with @p digits decimals. */
    static std::string fmt(double v, int digits = 3);

    /** Format helper: percentage with @p digits decimals. */
    static std::string pct(double v, int digits = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace vbr

#endif // VBR_COMMON_TABLE_HPP
