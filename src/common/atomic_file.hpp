/**
 * @file
 * Crash-safe file emission shared by every artifact writer (bench
 * reports, result-cache entries, failure artifacts): bytes land in a
 * same-directory temporary first and are rename()d into place, so a
 * reader can never observe a half-written file — it sees either the
 * previous content or the complete new content. rename() within one
 * directory is atomic on POSIX.
 */

#ifndef VBR_COMMON_ATOMIC_FILE_HPP
#define VBR_COMMON_ATOMIC_FILE_HPP

#include <string>

namespace vbr
{

/**
 * Atomically replace @p path with @p bytes (write to
 * `<path>.tmp.<pid>`, fsync-less flush, rename). Returns false —
 * with the temporary cleaned up — when the directory is missing or
 * unwritable; never leaves a partial file at @p path.
 */
bool atomicWriteFile(const std::string &path, const std::string &bytes);

/** Read an entire file into @p out; false when unreadable. */
bool readFileToString(const std::string &path, std::string &out);

} // namespace vbr

#endif // VBR_COMMON_ATOMIC_FILE_HPP
