/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for internal
 * simulator bugs, fatal() for user/configuration errors, and a
 * lightweight always-on assertion macro.
 */

#ifndef VBR_COMMON_LOGGING_HPP
#define VBR_COMMON_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace vbr
{

/**
 * Exception carrying a panic() message. Thrown (after printing to
 * stderr) instead of aborting outright so a guarded sweep can
 * quarantine a broken job, capture a failure artifact, and keep the
 * remaining jobs running. Uncaught it still terminates the process,
 * so standalone behavior is unchanged.
 */
class SimPanicError : public std::runtime_error
{
  public:
    explicit SimPanicError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * Report that the simulator itself is broken and throw SimPanicError.
 * Use for conditions that should be impossible regardless of
 * configuration. The message hits stderr before the throw so death
 * tests and crashing standalone runs still show it.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw SimPanicError(msg);
}

/**
 * Exit because the simulation cannot continue due to a user error
 * (bad configuration, invalid workload parameters, ...).
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Warn without stopping the simulation. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace vbr

/**
 * Always-enabled assertion: model invariants are cheap relative to the
 * timing model, and silent corruption in an ordering study is far more
 * expensive than the check.
 */
#define VBR_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::vbr::panic(std::string("assertion failed: ") + #cond +        \
                         " at " + __FILE__ + ":" +                          \
                         std::to_string(__LINE__) + ": " + (msg));          \
        }                                                                   \
    } while (0)

#endif // VBR_COMMON_LOGGING_HPP
