#include "common/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/logging.hpp"

namespace vbr
{

JsonValue &
JsonValue::set(const std::string &key, JsonValue value)
{
    VBR_ASSERT(kind_ == Kind::Object, "set() on non-object JsonValue");
    for (auto &m : members_) {
        if (m.first == key) {
            m.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

JsonValue &
JsonValue::push(JsonValue value)
{
    VBR_ASSERT(kind_ == Kind::Array, "push() on non-array JsonValue");
    items_.push_back(std::move(value));
    return *this;
}

std::string
JsonValue::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
JsonValue::dump(unsigned indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

void
JsonValue::dumpTo(std::string &out, unsigned indent,
                  unsigned depth) const
{
    const bool pretty = indent > 0;
    auto newline = [&](unsigned d) {
        if (pretty) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) * d, ' ');
        }
    };

    char buf[64];
    switch (kind_) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Kind::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
    case Kind::UInt:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(uint_));
        out += buf;
        break;
    case Kind::Double:
        // NaN/Inf are not representable in JSON; emit null like most
        // tooling does.
        if (!std::isfinite(double_)) {
            out += "null";
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", double_);
            out += buf;
        }
        break;
    case Kind::String:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
    case Kind::Array:
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
    case Kind::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += escape(members_[i].first);
            out += "\":";
            if (pretty)
                out += ' ';
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

} // namespace vbr
