#include "common/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hpp"

namespace vbr
{

JsonValue &
JsonValue::set(const std::string &key, JsonValue value)
{
    VBR_ASSERT(kind_ == Kind::Object, "set() on non-object JsonValue");
    for (auto &m : members_) {
        if (m.first == key) {
            m.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

JsonValue &
JsonValue::push(JsonValue value)
{
    VBR_ASSERT(kind_ == Kind::Array, "push() on non-array JsonValue");
    items_.push_back(std::move(value));
    return *this;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    VBR_ASSERT(kind_ == Kind::Array && i < items_.size(),
               "at() out of range or on non-array JsonValue");
    return items_[i];
}

namespace
{

/** Recursive-descent parser over the exact dialect dump() emits. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    static constexpr unsigned kMaxDepth = 64;

    bool
    fail(const std::string &why)
    {
        if (err_ != nullptr)
            *err_ = why + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // escape() only ever emits \u00xx (control chars);
                // decode the BMP anyway, reject surrogates — this
                // library never writes them.
                if (cp >= 0xd800 && cp <= 0xdfff)
                    return fail("surrogate \\u escape unsupported");
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out +=
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
            }
            default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        bool negative = false;
        bool floating = false;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            negative = true;
            ++pos_;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                if (c == '.' || c == 'e' || c == 'E')
                    floating = true;
                ++pos_;
            } else {
                break;
            }
        }
        std::string tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            return fail("bad number");
        // Strict JSON: no leading zeros ("01"), no bare "-" handled
        // above; dump() never emits either, so rejecting them keeps
        // parse ∘ dump total without admitting foreign spellings.
        std::size_t digits = negative ? 1 : 0;
        if (tok.size() > digits + 1 && tok[digits] == '0' &&
            tok[digits + 1] >= '0' && tok[digits + 1] <= '9')
            return fail("leading zero");
        errno = 0;
        if (floating) {
            char *end = nullptr;
            double d = std::strtod(tok.c_str(), &end);
            if (end == nullptr || *end != '\0')
                return fail("bad number");
            out = JsonValue(d);
            return true;
        }
        char *end = nullptr;
        if (negative) {
            long long v = std::strtoll(tok.c_str(), &end, 10);
            if (end == nullptr || *end != '\0' || errno == ERANGE)
                return fail("bad integer");
            out = JsonValue(static_cast<std::int64_t>(v));
        } else {
            unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
            if (end == nullptr || *end != '\0' || errno == ERANGE)
                return fail("bad integer");
            out = JsonValue(static_cast<std::uint64_t>(v));
        }
        return true;
    }

    bool
    parseValue(JsonValue &out, unsigned depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
        case 'n':
            out = JsonValue();
            return literal("null");
        case 't':
            out = JsonValue(true);
            return literal("true");
        case 'f':
            out = JsonValue(false);
            return literal("false");
        case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue(std::move(s));
            return true;
        }
        case '[': {
            ++pos_;
            out = JsonValue::array();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JsonValue elem;
                if (!parseValue(elem, depth + 1))
                    return false;
                out.push(std::move(elem));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                char d = text_[pos_++];
                if (d == ']')
                    return true;
                if (d != ',')
                    return fail("expected ',' or ']'");
            }
        }
        case '{': {
            ++pos_;
            out = JsonValue::object();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_++] != ':')
                    return fail("expected ':'");
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.set(key, std::move(member));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                char d = text_[pos_++];
                if (d == '}')
                    return true;
                if (d != ',')
                    return fail("expected ',' or '}'");
            }
        }
        default: return parseNumber(out);
        }
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

} // namespace

bool
JsonValue::parse(const std::string &text, JsonValue &out,
                 std::string *err)
{
    return JsonParser(text, err).parseDocument(out);
}

std::string
JsonValue::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
JsonValue::dump(unsigned indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

void
JsonValue::dumpTo(std::string &out, unsigned indent,
                  unsigned depth) const
{
    const bool pretty = indent > 0;
    auto newline = [&](unsigned d) {
        if (pretty) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) * d, ' ');
        }
    };

    char buf[64];
    switch (kind_) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Kind::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
    case Kind::UInt:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(uint_));
        out += buf;
        break;
    case Kind::Double:
        // NaN/Inf are not representable in JSON; emit null like most
        // tooling does.
        if (!std::isfinite(double_)) {
            out += "null";
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", double_);
            out += buf;
        }
        break;
    case Kind::String:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
    case Kind::Array:
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
    case Kind::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += escape(members_[i].first);
            out += "\":";
            if (pretty)
                out += ' ';
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

} // namespace vbr
