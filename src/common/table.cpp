#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace vbr
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    // Column widths over header + all rows.
    std::vector<std::size_t> width;
    auto widen = [&width](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::ostringstream os;
    auto emit = [&os, &width](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i]
               << std::string(width[i] - cells[i].size(), ' ');
            if (i + 1 < cells.size())
                os << "  ";
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < width.size(); ++i)
            total += width[i] + (i + 1 < width.size() ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
TextTable::fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
TextTable::pct(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v * 100.0);
    return buf;
}

} // namespace vbr
