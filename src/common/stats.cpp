#include "common/stats.hpp"

#include <sstream>

namespace vbr
{

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
StatSet::getMean(const std::string &name) const
{
    auto it = averages_.find(name);
    return it == averages_.end() ? 0.0 : it->second.mean();
}

std::string
StatSet::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, c] : counters_)
        os << prefix << name << " = " << c.value() << "\n";
    for (const auto &[name, a] : averages_)
        os << prefix << name << " = " << a.mean() << " (avg of "
           << a.count() << " samples)\n";
    return os.str();
}

void
StatSet::reset()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, a] : averages_)
        a.reset();
}

} // namespace vbr
