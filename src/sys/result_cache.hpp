/**
 * @file
 * Persistent, content-addressed result cache for sweep jobs
 * (DESIGN.md §12 layer 2). One JSON file per job under the cache
 * directory, named by the job's content key, with the canonical spec
 * embedded for audit:
 *
 *   <dir>/<key-hex>.json = {
 *     "schema":      "vbr-cache/2",
 *     "key":         "<key-hex>",
 *     "fingerprint": "src-sha256:<hex32>",
 *     "spec":        { canonical spec document },
 *     "result":      { "stats": {...}, "extras": {...} }
 *   }
 *
 * Defensive by construction: a lookup revalidates schema, key, build
 * fingerprint, AND byte-equality of the embedded spec against the
 * probing job's canonical spec before deserializing — so a hash
 * collision, a stale key algorithm, a corrupt/truncated entry, or an
 * entry written by a differently-built simulator all read as a miss
 * and the job simply re-simulates. Stores go through the shared
 * atomic-write helper (tmp + rename); a crashed writer can never
 * leave a half-entry that later poisons a hit. Quarantined jobs are
 * never stored (the sweep layer only stores ok results).
 *
 * The fingerprint (cmake/fingerprint.cmake) digests every .cpp/.hpp
 * under src/, which over-approximates "behavior-affecting": a
 * comment-only edit costs one cold sweep, but no simulator change
 * can ever be under-covered — the invariant DESIGN.md §13 requires.
 * VBR_CACHE_FINGERPRINT overrides the compiled-in value (tests and
 * the chaos suite fake cross-build scenarios with it); the GC tool
 * (tools/cache_gc.py) evicts entries whose fingerprint no longer
 * matches the live build.
 *
 * Disabled by default: VBR_CACHE_DIR selects the directory; unset
 * means every lookup misses and every store is a no-op, keeping the
 * classic always-simulate behavior bit-for-bit.
 */

#ifndef VBR_SYS_RESULT_CACHE_HPP
#define VBR_SYS_RESULT_CACHE_HPP

#include <string>

#include "sys/job_key.hpp"

namespace vbr
{

/** Cache-entry schema; bump to invalidate every existing entry. */
inline constexpr const char *kResultCacheSchema = "vbr-cache/2";

class ResultCache
{
  public:
    /** Disabled cache: lookups miss, stores are dropped. */
    ResultCache() = default;

    /** Cache rooted at @p dir (created, with parents, on first use).
     * Entries are stamped with and validated against
     * @p fingerprint; the default is this build's. Tests pass an
     * explicit value to model cross-build scenarios in-process. */
    explicit ResultCache(std::string dir,
                         std::string fingerprint = buildFingerprint());

    /** ${VBR_CACHE_DIR} or a disabled cache when unset/empty. */
    static ResultCache fromEnv();

    /** The live build's source fingerprint: ${VBR_CACHE_FINGERPRINT}
     * when set (cross-process test override), else the generated
     * compile-time constant. */
    static std::string buildFingerprint();

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }
    const std::string &fingerprint() const { return fingerprint_; }

    /** Entry path for a key ("" when disabled). */
    std::string entryPath(const JobKey &key) const;

    /**
     * Probe for @p spec under @p key. True only when a structurally
     * valid, schema-current entry whose embedded spec byte-equals
     * canonicalSpecBytes(spec) exists; @p out then holds the
     * deserialized result. Any validation failure is a miss.
     */
    bool lookup(const SimJobSpec &spec, const JobKey &key,
                SimJobResult &out) const;

    /** Atomically persist a completed job. False (and no partial
     * file) when the directory is unwritable. No-op when disabled. */
    bool store(const SimJobSpec &spec, const JobKey &key,
               const SimJobResult &result) const;

  private:
    std::string dir_;
    std::string fingerprint_;
};

} // namespace vbr

#endif // VBR_SYS_RESULT_CACHE_HPP
