/**
 * @file
 * Persistent, content-addressed result cache for sweep jobs
 * (DESIGN.md §12 layer 2). One JSON file per job under the cache
 * directory, named by the job's content key, with the canonical spec
 * embedded for audit:
 *
 *   <dir>/<key-hex>.json = {
 *     "schema": "vbr-cache/1",
 *     "key":    "<key-hex>",
 *     "spec":   { canonical spec document },
 *     "result": { "stats": {...}, "extras": {...} }
 *   }
 *
 * Defensive by construction: a lookup revalidates schema, key, AND
 * byte-equality of the embedded spec against the probing job's
 * canonical spec before deserializing — so a hash collision, a stale
 * key algorithm, or a corrupt/truncated entry all read as a miss and
 * the job simply re-simulates. Stores go through the shared
 * atomic-write helper (tmp + rename); a crashed writer can never
 * leave a half-entry that later poisons a hit. Quarantined jobs are
 * never stored (the sweep layer only stores ok results).
 *
 * Disabled by default: VBR_CACHE_DIR selects the directory; unset
 * means every lookup misses and every store is a no-op, keeping the
 * classic always-simulate behavior bit-for-bit.
 */

#ifndef VBR_SYS_RESULT_CACHE_HPP
#define VBR_SYS_RESULT_CACHE_HPP

#include <string>

#include "sys/job_key.hpp"

namespace vbr
{

/** Cache-entry schema; bump to invalidate every existing entry. */
inline constexpr const char *kResultCacheSchema = "vbr-cache/1";

class ResultCache
{
  public:
    /** Disabled cache: lookups miss, stores are dropped. */
    ResultCache() = default;

    /** Cache rooted at @p dir (created, with parents, on first use). */
    explicit ResultCache(std::string dir);

    /** ${VBR_CACHE_DIR} or a disabled cache when unset/empty. */
    static ResultCache fromEnv();

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Entry path for a key ("" when disabled). */
    std::string entryPath(const JobKey &key) const;

    /**
     * Probe for @p spec under @p key. True only when a structurally
     * valid, schema-current entry whose embedded spec byte-equals
     * canonicalSpecBytes(spec) exists; @p out then holds the
     * deserialized result. Any validation failure is a miss.
     */
    bool lookup(const SimJobSpec &spec, const JobKey &key,
                SimJobResult &out) const;

    /** Atomically persist a completed job. False (and no partial
     * file) when the directory is unwritable. No-op when disabled. */
    bool store(const SimJobSpec &spec, const JobKey &key,
               const SimJobResult &result) const;

  private:
    std::string dir_;
};

} // namespace vbr

#endif // VBR_SYS_RESULT_CACHE_HPP
