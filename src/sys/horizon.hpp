/**
 * @file
 * Event-horizon computation shared by every fast-forward decision in
 * the system: the uniprocessor/global quiescence skip (PR 5), the
 * per-core slack fast-forward (each core sleeping until its own wake
 * horizon), and the all-cores-asleep jump in the multiprocessor
 * two-phase tick. Factoring the min/clamp logic into one pure
 * function keeps the three consumers provably consistent and makes
 * the deadlock-poll clamping unit-testable without building a System.
 *
 * Deadlock-poll handling: the watchdog polls at stride multiples and
 * every poll strictly before some core's fire cycle is provably
 * false (commits are frozen across a quiescent region). The horizon
 * therefore clamps to the first poll that can fire. When that poll is
 * the unique strict minimum over every *tickable* horizon, the cycle
 * it lands on is itself quiescent: there is nothing to simulate at
 * the poll cycle, only the watchdog to run. computeHorizon() reports
 * this as pollOnly so the caller can account the poll cycle as
 * skipped instead of burning one real tick on it — the latent 1-tick
 * pessimism in the original skipTarget clamping.
 */

#ifndef VBR_SYS_HORIZON_HPP
#define VBR_SYS_HORIZON_HPP

#include "common/types.hpp"

namespace vbr
{

/** Inputs to the horizon computation, gathered by the caller. Every
 * "earliest" field follows the nextWakeCycle contract: strictly
 * greater than @p now, or kNeverCycle when the source is inert.
 * Undershoot is harmless (the skip is merely shorter); overshoot is
 * forbidden. */
struct HorizonInputs
{
    Cycle now = 0;
    Cycle maxCycles = kNeverCycle;

    /** Deadlock watchdog poll stride and the next scheduled poll. */
    Cycle deadlockStride = 1;
    Cycle nextDeadlockCheck = 0;

    /** Min over core + cache-hierarchy + fabric wake horizons. */
    Cycle earliestWake = kNeverCycle;

    /** Min over the auditor's structural/coherence scan schedules. */
    Cycle earliestAuditScan = kNeverCycle;

    /** Earliest fault-delayed snoop due for delivery. */
    Cycle earliestFaultSnoop = kNeverCycle;

    /** Min over non-halted cores' deadlockFireCycle(). */
    Cycle earliestDeadlockFire = kNeverCycle;
};

/** Outcome: the earliest cycle anything observable can happen at. */
struct HorizonResult
{
    /** Earliest cycle with an event (<= every input horizon). */
    Cycle target = kNeverCycle;

    /** True when target is a deadlock-watchdog poll that fires
     * strictly before every tickable horizon: the poll cycle itself
     * is quiescent and may be accounted as skipped (the caller jumps
     * *into* the poll cycle instead of one short of it). Ties go to
     * the tickable side, which keeps the behavior identical to the
     * pre-pollOnly clamping whenever real work lands on the poll
     * cycle. */
    bool pollOnly = false;
};

/** Pure min/clamp over the supplied horizons (see HorizonResult). */
HorizonResult computeHorizon(const HorizonInputs &in);

} // namespace vbr

#endif // VBR_SYS_HORIZON_HPP
