#include "sys/bench_json.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/logging.hpp"
#include "sys/sweep_runner.hpp"

namespace vbr
{

namespace
{
// Captured at static initialization so wall_ms covers the whole
// harness run even when the report object is built after the sweep.
const std::chrono::steady_clock::time_point kProgramStart =
    // vbr-analyze: det-banned-source(sanctioned wall-clock seam: wall_ms is masked from diffs by compare_bench.py)
    std::chrono::steady_clock::now();
} // namespace

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_(kProgramStart)
{
}

BenchReport &
BenchReport::meta(const std::string &key, JsonValue value)
{
    meta_.set(key, std::move(value));
    return *this;
}

BenchReport &
BenchReport::addRun(const RunStats &s)
{
    runs_.push(runStatsToJson(s));
    return *this;
}

BenchReport &
BenchReport::addRow(JsonValue row)
{
    runs_.push(std::move(row));
    return *this;
}

BenchReport &
BenchReport::metric(const std::string &key, JsonValue value)
{
    metrics_.set(key, std::move(value));
    return *this;
}

std::string
BenchReport::render() const
{
    auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
                    // vbr-analyze: det-banned-source(sanctioned wall-clock seam: wall_ms is masked from diffs by compare_bench.py)
                    std::chrono::steady_clock::now() - start_)
                    .count();
    JsonValue doc = JsonValue::object();
    doc.set("bench", name_);
    doc.set("schema", 1);
    doc.set("threads", sweepThreads());
    doc.set("wall_ms", wall);
    doc.set("meta", meta_);
    doc.set("runs", runs_);
    doc.set("metrics", metrics_);
    return doc.dump(2);
}

std::string
BenchReport::outputPath(const std::string &name)
{
    const char *dir = std::getenv("VBR_BENCH_DIR");
    std::string base = (dir != nullptr && dir[0] != '\0') ? dir : ".";
    return base + "/BENCH_" + name + ".json";
}

void
BenchReport::write() const
{
    std::string path = outputPath(name_);
    // Atomic emission (tmp + rename): a harness crashing mid-write
    // can no longer leave a torn BENCH_*.json for compare_bench.py
    // to misparse — the previous complete report survives instead.
    if (!atomicWriteFile(path, render()))
        fatal("cannot write bench report " + path);
    std::printf("[bench-json] %s\n", path.c_str());
}

} // namespace vbr
