#include "sys/horizon.hpp"

#include <algorithm>

namespace vbr
{

HorizonResult
computeHorizon(const HorizonInputs &in)
{
    // Everything that requires an actual tick to happen: a core (or
    // the memory system) making progress, an auditor scan, a fault-
    // delayed snoop delivery, or the cycle budget expiring.
    Cycle tickable = std::min(in.maxCycles, in.earliestWake);
    tickable = std::min(tickable, in.earliestAuditScan);
    tickable = std::min(tickable, in.earliestFaultSnoop);

    // First watchdog poll that can fire: polls run at stride
    // multiples, and any poll strictly before the earliest fire cycle
    // is provably false while the region stays quiescent.
    Cycle poll = kNeverCycle;
    if (in.earliestDeadlockFire != kNeverCycle) {
        const Cycle stride = std::max<Cycle>(1, in.deadlockStride);
        const Cycle fire = in.earliestDeadlockFire;
        poll = (fire / stride + (fire % stride != 0)) * stride;
        poll = std::max(poll, in.nextDeadlockCheck);
    }

    HorizonResult r;
    if (poll > in.now && poll < tickable) {
        // The poll is the unique strict minimum: its cycle holds no
        // simulatable event, only the watchdog check.
        r.target = poll;
        r.pollOnly = true;
        return r;
    }
    r.target = std::min(tickable, poll);
    return r;
}

} // namespace vbr
