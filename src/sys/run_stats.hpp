/**
 * @file
 * The statistics record every harness extracts from a finished run,
 * plus its JSON projection for the machine-readable BENCH reports.
 * Lives in src/sys (not bench/) so the sweep engine, the harnesses
 * and the tests all share one definition.
 */

#ifndef VBR_SYS_RUN_STATS_HPP
#define VBR_SYS_RUN_STATS_HPP

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "common/types.hpp"

namespace vbr
{

class System;
struct RunResult;

/** Statistics extracted from one run. */
struct RunStats
{
    std::string workload;
    std::string config;
    double ipc = 0.0;
    std::uint64_t instructions = 0;
    Cycle cycles = 0;

    std::uint64_t l1dPremature = 0; ///< incl. wrong-path loads
    std::uint64_t l1dStoreCommit = 0;
    std::uint64_t l1dReplay = 0;
    std::uint64_t l1dSwap = 0;
    std::uint64_t replaysUnresolved = 0;
    std::uint64_t replaysConsistency = 0;
    std::uint64_t replaysFiltered = 0;
    std::uint64_t committedLoads = 0;

    double robOccupancy = 0.0;

    std::uint64_t lqSearches = 0; ///< baseline CAM searches
    std::uint64_t squashLqRaw = 0;
    std::uint64_t squashLqRawUnnec = 0;
    std::uint64_t squashLqSnoop = 0;
    std::uint64_t squashLqSnoopUnnec = 0;
    std::uint64_t squashReplay = 0;
    std::uint64_t wouldbeRaw = 0;
    std::uint64_t wouldbeRawValueEq = 0;
    std::uint64_t wouldbeSnoop = 0;
    std::uint64_t wouldbeSnoopValueEq = 0;

    /** Fast-forward observability (see RunResult): cycles skipped by
     * the quiescence fast-forward and cycles actually ticked. On
     * uniprocessors they sum to cycles; multiprocessor runs sum
     * per-core clocks instead (a core asleep while a neighbour ticks
     * still counts as a skip win). Never affects any other stat. */
    Cycle skippedCycles = 0;
    Cycle tickedCycles = 0;

    std::uint64_t
    l1dTotal() const
    {
        return l1dPremature + l1dStoreCommit + l1dReplay + l1dSwap;
    }
};

/** Harvest counters from a finished system into one record. */
RunStats collectRunStats(System &sys, const RunResult &result,
                         const std::string &workload,
                         const std::string &config);

/** Flat JSON object, one member per field (insertion order fixed so
 * reports diff cleanly). */
JsonValue runStatsToJson(const RunStats &s);

/**
 * Inverse of runStatsToJson, used by the result cache: rebuild the
 * record from its JSON projection. Every field runStatsToJson emits
 * must be present with the right type (derived l1d_total is checked
 * for consistency, not stored); returns false on any mismatch so a
 * corrupt or stale cache entry reads as a miss, never as bad data.
 */
bool runStatsFromJson(const JsonValue &o, RunStats &out);

} // namespace vbr

#endif // VBR_SYS_RUN_STATS_HPP
