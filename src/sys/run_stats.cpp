#include "sys/run_stats.hpp"

#include "sys/system.hpp"

namespace vbr
{

RunStats
collectRunStats(System &sys, const RunResult &result,
                const std::string &workload, const std::string &config)
{
    RunStats s;
    s.workload = workload;
    s.config = config;
    s.instructions = result.instructions;
    s.cycles = result.cycles;
    s.ipc = result.ipc();
    s.skippedCycles = result.skippedCycles;
    s.tickedCycles = result.tickedCycles;

    double occ_sum = 0.0;
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        const StatSet &st = sys.core(c).stats();
        s.l1dPremature += st.get("l1d_accesses_premature");
        s.l1dStoreCommit += st.get("l1d_accesses_store_commit");
        s.l1dReplay += st.get("l1d_accesses_replay");
        s.l1dSwap += st.get("l1d_accesses_swap");
        s.replaysUnresolved += st.get("replays_unresolved_store");
        s.replaysConsistency += st.get("replays_consistency");
        s.replaysFiltered += st.get("replays_filtered");
        s.committedLoads += st.get("committed_loads");
        s.squashLqRaw += st.get("squashes_lq_raw");
        s.squashLqRawUnnec += st.get("squashes_lq_raw_unnecessary");
        s.squashLqSnoop += st.get("squashes_lq_snoop");
        s.squashLqSnoopUnnec +=
            st.get("squashes_lq_snoop_unnecessary");
        s.squashReplay += st.get("squashes_replay_mismatch");
        s.wouldbeRaw += st.get("wouldbe_squashes_raw");
        s.wouldbeRawValueEq +=
            st.get("wouldbe_squashes_raw_value_equal");
        s.wouldbeSnoop += st.get("wouldbe_squashes_snoop");
        s.wouldbeSnoopValueEq +=
            st.get("wouldbe_squashes_snoop_value_equal");
        occ_sum += sys.core(c).stats().getMean("rob_occupancy");
        s.lqSearches += sys.core(c).ordering().camSearches();
    }
    s.robOccupancy = occ_sum / sys.numCores();
    return s;
}

JsonValue
runStatsToJson(const RunStats &s)
{
    JsonValue o = JsonValue::object();
    o.set("workload", s.workload);
    o.set("config", s.config);
    o.set("ipc", s.ipc);
    o.set("instructions", s.instructions);
    o.set("cycles", s.cycles);
    o.set("l1d_premature", s.l1dPremature);
    o.set("l1d_store_commit", s.l1dStoreCommit);
    o.set("l1d_replay", s.l1dReplay);
    o.set("l1d_swap", s.l1dSwap);
    o.set("l1d_total", s.l1dTotal());
    o.set("replays_unresolved", s.replaysUnresolved);
    o.set("replays_consistency", s.replaysConsistency);
    o.set("replays_filtered", s.replaysFiltered);
    o.set("committed_loads", s.committedLoads);
    o.set("rob_occupancy", s.robOccupancy);
    o.set("lq_searches", s.lqSearches);
    o.set("squash_lq_raw", s.squashLqRaw);
    o.set("squash_lq_raw_unnecessary", s.squashLqRawUnnec);
    o.set("squash_lq_snoop", s.squashLqSnoop);
    o.set("squash_lq_snoop_unnecessary", s.squashLqSnoopUnnec);
    o.set("squash_replay", s.squashReplay);
    o.set("wouldbe_raw", s.wouldbeRaw);
    o.set("wouldbe_raw_value_equal", s.wouldbeRawValueEq);
    o.set("wouldbe_snoop", s.wouldbeSnoop);
    o.set("wouldbe_snoop_value_equal", s.wouldbeSnoopValueEq);
    // Appended last: purely wall-clock observability, masked by
    // tools/compare_bench.py alongside wall_ms.
    o.set("skipped_cycles", s.skippedCycles);
    o.set("ticked_cycles", s.tickedCycles);
    return o;
}

namespace
{

bool
readU64(const JsonValue &o, const char *key, std::uint64_t &out)
{
    const JsonValue *v = o.find(key);
    if (v == nullptr || !v->isNumber())
        return false;
    out = v->asU64();
    return true;
}

bool
readDouble(const JsonValue &o, const char *key, double &out)
{
    const JsonValue *v = o.find(key);
    if (v == nullptr || !v->isNumber())
        return false;
    out = v->asDouble();
    return true;
}

bool
readString(const JsonValue &o, const char *key, std::string &out)
{
    const JsonValue *v = o.find(key);
    if (v == nullptr || !v->isString())
        return false;
    out = v->asString();
    return true;
}

} // namespace

bool
runStatsFromJson(const JsonValue &o, RunStats &out)
{
    if (!o.isObject())
        return false;
    RunStats s;
    bool ok = readString(o, "workload", s.workload) &&
              readString(o, "config", s.config) &&
              readDouble(o, "ipc", s.ipc) &&
              readU64(o, "instructions", s.instructions) &&
              readU64(o, "cycles", s.cycles) &&
              readU64(o, "l1d_premature", s.l1dPremature) &&
              readU64(o, "l1d_store_commit", s.l1dStoreCommit) &&
              readU64(o, "l1d_replay", s.l1dReplay) &&
              readU64(o, "l1d_swap", s.l1dSwap) &&
              readU64(o, "replays_unresolved", s.replaysUnresolved) &&
              readU64(o, "replays_consistency",
                      s.replaysConsistency) &&
              readU64(o, "replays_filtered", s.replaysFiltered) &&
              readU64(o, "committed_loads", s.committedLoads) &&
              readDouble(o, "rob_occupancy", s.robOccupancy) &&
              readU64(o, "lq_searches", s.lqSearches) &&
              readU64(o, "squash_lq_raw", s.squashLqRaw) &&
              readU64(o, "squash_lq_raw_unnecessary",
                      s.squashLqRawUnnec) &&
              readU64(o, "squash_lq_snoop", s.squashLqSnoop) &&
              readU64(o, "squash_lq_snoop_unnecessary",
                      s.squashLqSnoopUnnec) &&
              readU64(o, "squash_replay", s.squashReplay) &&
              readU64(o, "wouldbe_raw", s.wouldbeRaw) &&
              readU64(o, "wouldbe_raw_value_equal",
                      s.wouldbeRawValueEq) &&
              readU64(o, "wouldbe_snoop", s.wouldbeSnoop) &&
              readU64(o, "wouldbe_snoop_value_equal",
                      s.wouldbeSnoopValueEq) &&
              readU64(o, "skipped_cycles", s.skippedCycles) &&
              readU64(o, "ticked_cycles", s.tickedCycles);
    if (!ok)
        return false;
    std::uint64_t total = 0;
    if (!readU64(o, "l1d_total", total) || total != s.l1dTotal())
        return false;
    out = std::move(s);
    return true;
}

} // namespace vbr
