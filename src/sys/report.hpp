/**
 * @file
 * Human-readable simulation reports: derived metrics (IPC, miss
 * rates, replay rates, squash taxonomy) plus the raw per-core,
 * per-hierarchy, and fabric statistics. Harness and example programs
 * use this instead of each reinventing stat extraction.
 */

#ifndef VBR_SYS_REPORT_HPP
#define VBR_SYS_REPORT_HPP

#include <string>

#include "sys/system.hpp"

namespace vbr
{

/** Derived whole-run metrics. */
struct ReportMetrics
{
    double ipc = 0.0;
    std::uint64_t instructions = 0;
    Cycle cycles = 0;

    double loadsPerInstr = 0.0;
    double storesPerInstr = 0.0;
    double l1dAccessesPerInstr = 0.0;
    double replaysPerInstr = 0.0;
    double replayFilterRate = 0.0; ///< filtered / (filtered+replayed)
    double branchMispredictRate = 0.0; ///< per committed branch
    double squashesPerKiloInstr = 0.0;
    double avgRobOccupancy = 0.0;

    /** Invariant-audit verdict (zeros when auditing is off). */
    std::uint64_t auditChecks = 0;
    std::uint64_t auditViolations = 0;
};

/** Compute derived metrics from a finished system. */
ReportMetrics computeMetrics(System &sys, const RunResult &result);

/**
 * Render a full report: the derived metrics followed by every raw
 * statistic of every core (and optionally hierarchies + fabric).
 */
std::string renderReport(System &sys, const RunResult &result,
                         bool include_raw = false);

} // namespace vbr

#endif // VBR_SYS_REPORT_HPP
