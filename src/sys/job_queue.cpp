#include "sys/job_queue.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/logging.hpp"

namespace vbr
{

namespace
{

const char *const kStates[] = {"pending", "leases", "done", "failed"};

/** Strip ".json" and, for lease files, the "@<owner>" suffix. */
std::string
idOfFilename(const std::string &name)
{
    std::string stem = name;
    if (stem.size() > 5 && stem.compare(stem.size() - 5, 5, ".json") == 0)
        stem.resize(stem.size() - 5);
    std::size_t at = stem.find('@');
    if (at != std::string::npos)
        stem.resize(at);
    return stem;
}

/** Copy @p doc without the claim stamps a reclaim must strip. */
JsonValue
withoutClaimStamps(const JsonValue &doc)
{
    JsonValue out = JsonValue::object();
    for (const auto &m : doc.members())
        if (m.first != "owner" && m.first != "expiry_ms")
            out.set(m.first, m.second);
    return out;
}

std::uint64_t
u64Field(const JsonValue &doc, const char *key, std::uint64_t dflt)
{
    const JsonValue *v = doc.find(key);
    return (v != nullptr && v->isNumber()) ? v->asU64() : dflt;
}

} // namespace

std::uint64_t
retryBackoffDelayMs(unsigned attempt, std::uint64_t baseMs,
                    std::uint64_t capMs)
{
    if (baseMs == 0 || attempt == 0)
        return 0;
    std::uint64_t delay = baseMs;
    for (unsigned i = 1; i < attempt; ++i) {
        if (delay >= capMs)
            break;
        delay *= 2;
    }
    return std::min(delay, capMs);
}

JobQueue::JobQueue(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    for (const char *state : kStates)
        std::filesystem::create_directories(dir_ + "/" + state, ec);
    // A failed mkdir surfaces on first use: enqueue/claim report
    // false and the caller decides whether that is fatal.
}

bool
JobQueue::validName(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::string
JobQueue::leasePath(const std::string &id,
                    const std::string &owner) const
{
    return dir_ + "/leases/" + id + "@" + owner + ".json";
}

bool
JobQueue::enqueue(const std::string &id, const JsonValue &payload)
{
    if (!validName(id))
        return false;
    JsonValue doc = JsonValue::object();
    doc.set("schema", kJobQueueSchema);
    doc.set("id", id);
    doc.set("attempts", 0u);
    doc.set("not_before_ms", 0u);
    if (payload.isObject())
        for (const auto &m : payload.members())
            if (doc.find(m.first) == nullptr)
                doc.set(m.first, m.second);
    return atomicWriteFile(statePath("pending", id), doc.dump(2));
}

std::vector<std::string>
JobQueue::listFiles(const std::string &state) const
{
    std::vector<std::string> names;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir_ + "/" + state, ec);
    if (ec)
        return names;
    for (const auto &entry : it) {
        std::string name = entry.path().filename().string();
        // Ignore in-flight temporaries from the atomic writer.
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            names.push_back(std::move(name));
    }
    std::sort(names.begin(), names.end());
    return names;
}

std::vector<std::string>
JobQueue::list(const std::string &state) const
{
    std::vector<std::string> ids;
    for (const std::string &name : listFiles(state))
        ids.push_back(idOfFilename(name));
    std::sort(ids.begin(), ids.end());
    return ids;
}

bool
JobQueue::read(const std::string &state, const std::string &id,
               JsonValue &out) const
{
    std::string text;
    if (!readFileToString(statePath(state, id), text))
        return false;
    return JsonValue::parse(text, out) && out.isObject();
}

bool
JobQueue::claim(const std::string &owner, std::uint64_t nowMs,
                std::uint64_t leaseMs, QueueTicket &out)
{
    if (!validName(owner))
        return false;
    for (const std::string &name : listFiles("pending")) {
        std::string id = idOfFilename(name);
        std::string pending = statePath("pending", id);
        std::string text;
        if (!readFileToString(pending, text))
            continue; // raced away or torn; next candidate
        JsonValue doc;
        if (!JsonValue::parse(text, doc) || !doc.isObject()) {
            // A malformed ticket would spin every claimant forever;
            // park it in failed/ so the queue stays live.
            warn("job queue: malformed ticket " + pending +
                 " moved to failed/");
            std::error_code ec;
            std::filesystem::rename(pending,
                                    statePath("failed", id), ec);
            continue;
        }
        if (u64Field(doc, "not_before_ms", 0) > nowMs)
            continue; // backing off; not due yet
        std::string lease = leasePath(id, owner);
        std::error_code ec;
        std::filesystem::rename(pending, lease, ec);
        if (ec)
            continue; // another worker won the rename
        // Stamp owner + expiry. A crash inside this window leaves a
        // lease without expiry_ms, which reclaimExpired() treats as
        // already expired — the ticket is never stranded.
        doc.set("owner", owner);
        doc.set("expiry_ms", nowMs + leaseMs);
        atomicWriteFile(lease, doc.dump(2));
        out.id = id;
        out.owner = owner;
        out.doc = std::move(doc);
        return true;
    }
    return false;
}

bool
JobQueue::heartbeat(const QueueTicket &t, std::uint64_t expiryMs)
{
    std::string lease = leasePath(t.id, t.owner);
    if (!std::filesystem::exists(lease))
        return false; // reclaimed out from under us; don't resurrect
    JsonValue doc = t.doc;
    doc.set("expiry_ms", expiryMs);
    return atomicWriteFile(lease, doc.dump(2));
}

bool
JobQueue::complete(const QueueTicket &t)
{
    if (!atomicWriteFile(statePath("done", t.id), t.doc.dump(2)))
        return false;
    std::error_code ec;
    std::filesystem::remove(leasePath(t.id, t.owner), ec);
    return true;
}

bool
JobQueue::fail(const QueueTicket &t, const std::string &error)
{
    JsonValue doc = t.doc;
    doc.set("error", error);
    if (!atomicWriteFile(statePath("failed", t.id), doc.dump(2)))
        return false;
    std::error_code ec;
    std::filesystem::remove(leasePath(t.id, t.owner), ec);
    return true;
}

bool
JobQueue::retry(const QueueTicket &t, std::uint64_t nowMs,
                std::uint64_t backoffBaseMs, unsigned maxAttempts,
                const std::string &error)
{
    unsigned attempts = t.attempts() + 1;
    if (attempts >= maxAttempts) {
        fail(t, error);
        return false;
    }
    JsonValue doc = withoutClaimStamps(t.doc);
    doc.set("attempts", attempts);
    doc.set("not_before_ms",
            nowMs + retryBackoffDelayMs(attempts, backoffBaseMs));
    doc.set("last_error", error);
    if (!atomicWriteFile(statePath("pending", t.id), doc.dump(2)))
        return false;
    std::error_code ec;
    std::filesystem::remove(leasePath(t.id, t.owner), ec);
    return true;
}

std::size_t
JobQueue::reclaimExpired(std::uint64_t nowMs)
{
    std::size_t reclaimed = 0;
    for (const std::string &name : listFiles("leases")) {
        std::string lease = dir_ + "/leases/" + name;
        std::string text;
        if (!readFileToString(lease, text))
            continue;
        JsonValue doc;
        bool parsed = JsonValue::parse(text, doc) && doc.isObject();
        // Missing or unparsable expiry reads as already expired
        // (reclaim unconditionally, at any nowMs): a claimant that
        // died inside the claim-then-stamp window (or a torn lease)
        // must not strand its ticket. Re-running a pure job is safe;
        // losing one is not.
        const JsonValue *expiry =
            parsed ? doc.find("expiry_ms") : nullptr;
        bool stamped = expiry != nullptr && expiry->isNumber();
        if (stamped && expiry->asU64() >= nowMs)
            continue;
        std::string id = idOfFilename(name);
        JsonValue fresh =
            parsed ? withoutClaimStamps(doc) : JsonValue::object();
        if (!parsed) {
            fresh.set("schema", kJobQueueSchema);
            fresh.set("id", id);
            fresh.set("attempts", 0u);
            fresh.set("not_before_ms", 0u);
        }
        fresh.set("reclaims", u64Field(fresh, "reclaims", 0) + 1);
        if (!atomicWriteFile(statePath("pending", id),
                             fresh.dump(2)))
            continue;
        std::error_code ec;
        std::filesystem::remove(lease, ec);
        ++reclaimed;
    }
    return reclaimed;
}

} // namespace vbr
