/**
 * @file
 * Durable, crash-safe job queue for the sweep service (DESIGN.md
 * §13). A queue is a directory with four states, each a
 * subdirectory, and a job is one JSON ticket file that moves between
 * them by atomic rename:
 *
 *   <queue>/pending/<id>.json          runnable (may carry a
 *                                      not_before_ms backoff stamp)
 *   <queue>/leases/<id>@<owner>.json   claimed by one worker; content
 *                                      carries the owner id and a
 *                                      heartbeat-refreshed expiry
 *   <queue>/done/<id>.json             completed
 *   <queue>/failed/<id>.json           permanently failed (attempts
 *                                      exhausted)
 *
 * Claiming is exclusive without any lock file: every claimant
 * rename()s the same pending path to its own lease path, and POSIX
 * guarantees exactly one rename of a given source succeeds — the
 * losers see ENOENT and move on. A worker that dies (kill -9, OOM,
 * host loss) simply stops heartbeating; once its lease expiry
 * lapses, any other worker reclaims the ticket back into pending/
 * and the job runs again.
 *
 * Safety does NOT depend on lease expiry being perfectly judged:
 * sweep jobs are pure (DESIGN.md §12) and every artifact/cache write
 * is atomic, so a slow-but-alive worker racing its own reclaimed
 * ticket just produces byte-identical outputs twice. Expiry is a
 * liveness mechanism, never a correctness one — which is why a lease
 * whose content lacks an expiry stamp (a claimant crashed inside the
 * claim-then-stamp window) is conservatively treated as expired.
 *
 * All methods take the current time explicitly (@p nowMs): the queue
 * itself never reads a clock, so protocol tests are fully
 * deterministic and the determinism lints stay clean. Callers pass
 * epoch milliseconds; tools/sweep_service.py speaks the identical
 * on-disk protocol from Python (same schema tag, same field names).
 */

#ifndef VBR_SYS_JOB_QUEUE_HPP
#define VBR_SYS_JOB_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace vbr
{

/** Ticket schema; bump on any incompatible field change. */
inline constexpr const char *kJobQueueSchema = "vbr-queue/1";

/** One claimed ticket: the parsed document plus claim bookkeeping. */
struct QueueTicket
{
    std::string id;    ///< ticket id (filesystem-safe)
    std::string owner; ///< worker that holds the lease
    JsonValue doc;     ///< full document incl. owner/expiry stamps

    unsigned
    attempts() const
    {
        const JsonValue *a = doc.find("attempts");
        return a == nullptr ? 0
                            : static_cast<unsigned>(a->asU64());
    }
};

class JobQueue
{
  public:
    /** Open (creating state directories as needed) the queue rooted
     * at @p dir. */
    explicit JobQueue(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * Add (or overwrite) ticket @p id with @p payload. The stored
     * document is the payload plus the protocol fields: schema, id,
     * attempts=0, not_before_ms=0. @p id must be non-empty and
     * [A-Za-z0-9._-] only. False on an invalid id or write failure.
     */
    bool enqueue(const std::string &id, const JsonValue &payload);

    /**
     * Claim the lexically-smallest due pending ticket (not_before_ms
     * <= @p nowMs) for @p owner: atomic rename into the per-worker
     * lease file, then stamp owner + expiry (@p nowMs + @p leaseMs)
     * into it. Lost rename races skip to the next candidate. False
     * when nothing is due.
     */
    bool claim(const std::string &owner, std::uint64_t nowMs,
               std::uint64_t leaseMs, QueueTicket &out);

    /**
     * Refresh @p t's lease expiry to @p expiryMs. False when the
     * lease file no longer exists (the ticket was reclaimed out from
     * under the worker) — the worker may finish its pure job safely
     * but should stop relying on the lease.
     */
    bool heartbeat(const QueueTicket &t, std::uint64_t expiryMs);

    /** Move @p t to done/ (releases the lease). */
    bool complete(const QueueTicket &t);

    /** Move @p t to failed/ with @p error (releases the lease). */
    bool fail(const QueueTicket &t, const std::string &error);

    /**
     * Failure with retry budget: attempts+1; when the new count
     * reaches @p maxAttempts the ticket fails permanently, otherwise
     * it re-enters pending/ stamped not-runnable before @p nowMs +
     * backoff, where backoff follows the deterministic exponential
     * schedule retryBackoffDelayMs(attempts, @p backoffBaseMs).
     * Returns true when the ticket was requeued (false = failed/).
     */
    bool retry(const QueueTicket &t, std::uint64_t nowMs,
               std::uint64_t backoffBaseMs, unsigned maxAttempts,
               const std::string &error);

    /**
     * Return every lease whose expiry lapsed (expiry_ms < @p nowMs,
     * or missing — see the header note) to pending/, incrementing
     * its "reclaims" counter and stripping the dead owner's stamps.
     * Any worker may call this; concurrent reclaims of one lease are
     * idempotent. Returns the number of tickets reclaimed.
     */
    std::size_t reclaimExpired(std::uint64_t nowMs);

    /** Sorted ticket ids in @p state ("pending", "leases", "done",
     * "failed"); lease ids are reported without the owner suffix. */
    std::vector<std::string> list(const std::string &state) const;

    /** Parse + validate the ticket file for @p id in @p state; false
     * when absent or malformed. */
    bool read(const std::string &state, const std::string &id,
              JsonValue &out) const;

    /** True iff every character is in [A-Za-z0-9._-] and @p s is
     * non-empty (ids and owners must survive as filenames and around
     * the '@' separator). */
    static bool validName(const std::string &s);

    /** Lease path for (@p id, @p owner). */
    std::string leasePath(const std::string &id,
                          const std::string &owner) const;

    std::string
    statePath(const std::string &state, const std::string &id) const
    {
        return dir_ + "/" + state + "/" + id + ".json";
    }

  private:
    /** Sorted filenames (not paths) in @p state. */
    std::vector<std::string> listFiles(const std::string &state) const;

    std::string dir_;
};

/**
 * The deterministic exponential-backoff schedule shared by guarded
 * sweep retries and queue requeues: delay before re-execution number
 * @p attempt (1-based) is baseMs * 2^(attempt-1), saturating at
 * @p capMs. A base of 0 disables the delay entirely.
 */
std::uint64_t retryBackoffDelayMs(unsigned attempt,
                                  std::uint64_t baseMs,
                                  std::uint64_t capMs = 8000);

} // namespace vbr

#endif // VBR_SYS_JOB_QUEUE_HPP
