#include "sys/job_key.hpp"

#include <cstdio>
#include <filesystem>
#include <memory>

#include "check/constraint_graph.hpp"
#include "common/logging.hpp"
#include "fault/fault_injector.hpp"
#include "sys/sweep_runner.hpp"
#include "trace/trace_replay.hpp"
#include "trace/trace_writer.hpp"

namespace vbr
{

namespace
{

/** FNV-1a-64 accumulator. */
class Fnv
{
  public:
    explicit Fnv(std::uint64_t basis) : h_(basis) {}

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 1099511628211ULL;
        }
    }

    void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
    void str(const std::string &s) { bytes(s.data(), s.size()); }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_;
};

constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;
/** Second, independent basis for the key's high half. */
constexpr std::uint64_t kFnvBasisHi =
    kFnvBasis ^ 0x9e3779b97f4a7c15ULL;

JsonValue
cacheConfigJson(const CacheConfig &c)
{
    JsonValue o = JsonValue::object();
    o.set("name", c.name);
    o.set("size_bytes", c.sizeBytes);
    o.set("assoc", c.assoc);
    o.set("line_bytes", c.lineBytes);
    o.set("latency", c.latency);
    return o;
}

JsonValue
coreConfigJson(const CoreConfig &c)
{
    JsonValue o = JsonValue::object();
    o.set("fetch_width", c.fetchWidth);
    o.set("dispatch_width", c.dispatchWidth);
    o.set("issue_width", c.issueWidth);
    o.set("commit_width", c.commitWidth);
    o.set("front_end_depth", c.frontEndDepth);
    o.set("rob_entries", c.robEntries);
    o.set("iq_entries", c.iqEntries);
    o.set("lq_entries", c.lqEntries);
    o.set("sq_entries", c.sqEntries);
    o.set("int_alus", c.intAlus);
    o.set("int_mul_divs", c.intMulDivs);
    o.set("fp_alus", c.fpAlus);
    o.set("fp_mul_divs", c.fpMulDivs);
    o.set("load_ports", c.loadPorts);
    o.set("scheme", static_cast<int>(c.scheme));
    o.set("lq_mode", static_cast<int>(c.lqMode));
    o.set("dep_predictor", static_cast<int>(c.depPredictor));
    JsonValue f = JsonValue::object();
    f.set("no_reorder", c.filters.noReorder);
    f.set("no_reorder_sched", c.filters.noReorderSchedulerSemantics);
    f.set("weak_ordering_axis", c.filters.weakOrderingAxis);
    f.set("no_recent_miss", c.filters.noRecentMiss);
    f.set("no_recent_snoop", c.filters.noRecentSnoop);
    f.set("no_unresolved_store", c.filters.noUnresolvedStore);
    f.set("allow_partial_coverage", c.filters.allowPartialCoverage);
    o.set("filters", std::move(f));
    o.set("replays_per_cycle", c.replaysPerCycle);
    o.set("commit_ports", c.commitPorts);
    o.set("exclusive_store_prefetch", c.exclusiveStorePrefetch);
    o.set("shadow_lq_stats", c.shadowLqStats);
    o.set("enable_value_prediction", c.enableValuePrediction);
    o.set("unsafe_disable_ordering", c.unsafeDisableOrdering);
    JsonValue bp = JsonValue::object();
    bp.set("bimodal_entries", c.branchPredictor.bimodalEntries);
    bp.set("gshare_entries", c.branchPredictor.gshareEntries);
    bp.set("selector_entries", c.branchPredictor.selectorEntries);
    bp.set("ras_entries", c.branchPredictor.rasEntries);
    bp.set("btb_entries", c.branchPredictor.btbEntries);
    bp.set("btb_assoc", c.branchPredictor.btbAssoc);
    o.set("branch_predictor", std::move(bp));
    o.set("deadlock_threshold", c.deadlockThreshold);
    o.set("commit_trace_depth", c.commitTraceDepth);
    return o;
}

JsonValue
systemConfigJson(const SystemConfig &c)
{
    JsonValue o = JsonValue::object();
    o.set("cores", c.cores);
    o.set("core", coreConfigJson(c.core));
    JsonValue h = JsonValue::object();
    h.set("l1i", cacheConfigJson(c.hierarchy.l1i));
    h.set("l1d", cacheConfigJson(c.hierarchy.l1d));
    h.set("l2i", cacheConfigJson(c.hierarchy.l2i));
    h.set("l2d", cacheConfigJson(c.hierarchy.l2d));
    h.set("l3", cacheConfigJson(c.hierarchy.l3));
    JsonValue pf = JsonValue::object();
    pf.set("enabled", c.hierarchy.prefetcher.enabled);
    pf.set("table_entries", c.hierarchy.prefetcher.tableEntries);
    pf.set("degree", c.hierarchy.prefetcher.degree);
    pf.set("confidence_threshold",
           c.hierarchy.prefetcher.confidenceThreshold);
    h.set("prefetcher", std::move(pf));
    o.set("hierarchy", std::move(h));
    JsonValue fab = JsonValue::object();
    fab.set("addr_latency", c.fabric.addrLatency);
    fab.set("data_latency", c.fabric.dataLatency);
    fab.set("mem_latency", c.fabric.memLatency);
    fab.set("line_bytes", c.fabric.lineBytes);
    o.set("fabric", std::move(fab));
    o.set("track_versions", c.trackVersions);
    o.set("dma_invalidation_rate", c.dmaInvalidationRate);
    o.set("dma_seed", c.dmaSeed);
    o.set("max_cycles", c.maxCycles);
    o.set("audit", static_cast<int>(c.audit));
    o.set("deadlock_check_stride", c.deadlockCheckStride);
    // Canonical string form: parse(render()) is the identity, so
    // the rendered spec is as precise as the struct itself.
    o.set("faults", c.faults.render());
    // Deliberately absent (see the header's soundness note):
    // fastForward, perCoreFastForward, mpThreads, jobName,
    // failArtifactDir, auditPanic.
    return o;
}

} // namespace

std::uint64_t
programDigest(const Program &prog)
{
    Fnv h(kFnvBasis);
    h.u64(prog.code().size());
    for (const Instruction &inst : prog.code())
        h.u64(inst.encode());
    h.u64(prog.threads().size());
    for (const ThreadSpec &t : prog.threads()) {
        h.u64(t.entryPc);
        for (Word r : t.initRegs)
            h.u64(static_cast<std::uint64_t>(r));
    }
    h.u64(prog.dataInits().size());
    for (const DataInit &d : prog.dataInits()) {
        h.u64(d.addr);
        h.u64(d.bytes.size());
        h.bytes(d.bytes.data(), d.bytes.size());
    }
    h.u64(prog.warmRanges().size());
    for (const auto &r : prog.warmRanges()) {
        h.u64(r.first);
        h.u64(r.second);
    }
    h.u64(prog.codeBase());
    h.u64(prog.memorySize());
    return h.value();
}

JsonValue
canonicalSpecJson(const SimJobSpec &spec)
{
    VBR_ASSERT(spec.program != nullptr,
               "SimJobSpec without a program");
    JsonValue o = JsonValue::object();
    o.set("schema", kJobSpecSchema);
    o.set("workload", spec.workload);
    o.set("config", spec.config);
    o.set("system", systemConfigJson(spec.system));
    JsonValue p = JsonValue::object();
    p.set("code", spec.program->code().size());
    p.set("threads", spec.program->threads().size());
    p.set("data_inits", spec.program->dataInits().size());
    p.set("warm_ranges", spec.program->warmRanges().size());
    p.set("code_base", spec.program->codeBase());
    p.set("memory_size", spec.program->memorySize());
    char digest[24];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(
                      programDigest(*spec.program)));
    p.set("digest", digest);
    o.set("program", std::move(p));
    o.set("attach_sc_checker", spec.attachScChecker);
    JsonValue harvest = JsonValue::array();
    for (const std::string &name : spec.harvestStats)
        harvest.push(name);
    o.set("harvest", std::move(harvest));
    if (spec.mode == SimJobMode::TraceReplay) {
        // Appended only in replay mode so every Full-mode spec's
        // canonical bytes — and therefore the pinned golden keys —
        // are unchanged from before the trace tier existed.
        o.set("mode", "trace-replay");
        char td[24];
        std::snprintf(td, sizeof(td), "%016llx",
                      static_cast<unsigned long long>(
                          spec.traceDigest));
        o.set("trace_digest", td);
    }
    return o;
}

std::string
traceFilePath(const SimJobSpec &spec)
{
    return spec.system.traceDir + "/" +
           FailureArtifact::sanitizeJobName(spec.system.jobName) +
           "." + jobKey(spec).hex() + ".vbrtrace";
}

std::string
canonicalSpecBytes(const SimJobSpec &spec)
{
    return canonicalSpecJson(spec).dump(0);
}

std::string
JobKey::hex() const
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

JobKey
jobKey(const SimJobSpec &spec)
{
    std::string bytes = canonicalSpecBytes(spec);
    Fnv lo(kFnvBasis);
    lo.str(bytes);
    Fnv hi(kFnvBasisHi);
    hi.str(bytes);
    return {hi.value(), lo.value()};
}

std::uint64_t
extraStat(const SimJobResult &r, const std::string &name)
{
    for (const auto &e : r.extras)
        if (e.first == name)
            return e.second;
    return 0;
}

JsonValue
simJobResultToJson(const SimJobResult &r)
{
    JsonValue o = JsonValue::object();
    o.set("stats", runStatsToJson(r.stats));
    JsonValue extras = JsonValue::object();
    for (const auto &e : r.extras)
        extras.set(e.first, e.second);
    o.set("extras", std::move(extras));
    return o;
}

bool
simJobResultFromJson(const JsonValue &v, SimJobResult &out)
{
    if (!v.isObject())
        return false;
    const JsonValue *stats = v.find("stats");
    const JsonValue *extras = v.find("extras");
    if (stats == nullptr || extras == nullptr || !extras->isObject())
        return false;
    SimJobResult r;
    if (!runStatsFromJson(*stats, r.stats))
        return false;
    for (const auto &m : extras->members()) {
        if (!m.second.isNumber())
            return false;
        r.extras.emplace_back(m.first, m.second.asU64());
    }
    out = std::move(r);
    return true;
}

const std::vector<std::string> &
maskedResultFields()
{
    // Sorted; must match tools/bench_mask.json byte for byte —
    // job_key_test.cpp diffs the two lists.
    static const std::vector<std::string> kMasked = {
        "artifact",        "cpu_time_ns",    "full_ms",
        "items_per_second", "iterations",    "real_time_ns",
        "replay_ms",       "replay_speedup", "skipped_cycles",
        "threads",         "ticked_cycles",  "wall_ms",
    };
    return kMasked;
}

namespace
{

bool
isMaskedField(const std::string &key)
{
    for (const std::string &m : maskedResultFields())
        if (m == key)
            return true;
    return false;
}

} // namespace

std::string
canonicalResultBytes(const SimJobResult &r)
{
    JsonValue full = simJobResultToJson(r);
    JsonValue stats = JsonValue::object();
    const JsonValue *src = full.find("stats");
    for (const auto &m : src->members())
        if (!isMaskedField(m.first))
            stats.set(m.first, m.second);
    JsonValue o = JsonValue::object();
    o.set("stats", std::move(stats));
    o.set("extras", *full.find("extras"));
    return o.dump(0);
}

namespace
{

/** The TraceReplay tier: one streaming pass instead of a
 * simulation. Throws TraceError on any malformed or mismatched
 * trace; the caller maps that to the guarded/unguarded protocol. */
SimJobResult
replayJobOrThrow(const SimJobSpec &spec)
{
    TraceReplaySpec rs;
    rs.program = spec.program.get();
    rs.programDigest = programDigest(*spec.program);
    rs.scheme = spec.system.core.scheme;
    rs.filters = spec.system.core.filters;
    rs.attachScChecker = spec.attachScChecker;
    TraceReplayResult r = replayTraceFile(spec.tracePath, rs);
    if (spec.traceDigest != 0 &&
        r.trailer.fileDigest != spec.traceDigest)
        throw TraceError(
            "trace content does not match the spec's digest");
    // The reconstruction invariants are part of the equivalence
    // contract (DESIGN.md §14): a replay whose memory image or word
    // versions diverge from the producing run is a wrong verdict,
    // not a degraded one.
    if (!r.memDigestMatch)
        throw TraceError("replayed final memory image diverges from "
                         "the trace trailer digest");
    if (r.versionMismatches != 0)
        throw TraceError("replayed word versions diverge from the "
                         "trace's recorded versions");

    SimJobResult out;
    RunStats &s = out.stats;
    s.workload = spec.workload;
    s.config = spec.config;
    s.instructions = r.trailer.instructions;
    s.cycles = r.trailer.cycles;
    s.ipc = s.cycles == 0 ? 0.0
                          : static_cast<double>(s.instructions) /
                                static_cast<double>(s.cycles);
    s.replaysUnresolved = r.replaysUnresolved;
    s.replaysConsistency = r.replaysConsistency;
    s.replaysFiltered = r.replaysFiltered;
    s.committedLoads = r.committedLoads;
    s.squashLqRaw = r.squashLqRaw;
    s.squashLqRawUnnec = r.squashLqRawUnnec;
    s.squashLqSnoop = r.squashLqSnoop;
    s.squashLqSnoopUnnec = r.squashLqSnoopUnnec;
    s.squashReplay = r.squashReplay;
    // Micro-architectural counters (cache traffic, occupancies) stay
    // zero: the replay tier deliberately does not model them.

    out.extras.emplace_back("trace:commit_frames", r.commitFrames);
    out.extras.emplace_back("trace:ordering_frames",
                            r.orderingFrames);
    out.extras.emplace_back("trace:final_mem_digest",
                            r.finalMemDigest);
    if (rs.scheme == OrderingScheme::ValueReplay) {
        out.extras.emplace_back("policy:filtered", r.policyFiltered);
        out.extras.emplace_back("policy:unresolved",
                                r.policyUnresolved);
        out.extras.emplace_back("policy:consistency",
                                r.policyConsistency);
        out.extras.emplace_back("policy:mismatches",
                                r.policyMismatches);
    }
    if (r.checkerRan) {
        out.extras.emplace_back("checker:consistent",
                                r.checker.consistent ? 1 : 0);
        out.extras.emplace_back("checker:errors",
                                r.checker.errors.size());
    }
    return out;
}

SimJobResult
runTraceReplayJob(const SimJobSpec &spec, bool guarded)
{
    try {
        return replayJobOrThrow(spec);
    } catch (const TraceError &e) {
        std::string msg = "trace replay of " + spec.tracePath +
                          " failed: " + e.what();
        if (!guarded)
            fatal(msg);
        FailureArtifact fa;
        fa.job = spec.system.jobName;
        fa.kind = "trace";
        fa.error = msg;
        JsonValue ctx = JsonValue::object();
        ctx.set("workload", spec.workload);
        ctx.set("config", spec.config);
        ctx.set("trace_path", spec.tracePath);
        char td[24];
        std::snprintf(td, sizeof(td), "%016llx",
                      static_cast<unsigned long long>(
                          spec.traceDigest));
        ctx.set("trace_digest", td);
        fa.context = std::move(ctx);
        throw SweepJobError(std::move(fa));
    }
}

} // namespace

SimJobResult
runSimJob(const SimJobSpec &spec, bool guarded)
{
    VBR_ASSERT(spec.program != nullptr,
               "SimJobSpec without a program");
    if (spec.mode == SimJobMode::TraceReplay)
        return runTraceReplayJob(spec, guarded);
    System sys(spec.system, *spec.program);
    std::unique_ptr<ScChecker> checker;
    if (spec.attachScChecker) {
        checker = std::make_unique<ScChecker>();
        sys.setObserver(checker.get());
    }
    std::unique_ptr<TraceWriter> tracer;
    if (!spec.system.traceDir.empty()) {
        TraceHeader th;
        th.cores = spec.system.cores;
        th.memorySize = spec.program->memorySize();
        th.versionsTracked = spec.system.trackVersions;
        th.producerScheme =
            static_cast<unsigned>(spec.system.core.scheme);
        th.programDigest = programDigest(*spec.program);
        th.label = spec.system.jobName;
        std::error_code ec;
        std::filesystem::create_directories(spec.system.traceDir, ec);
        tracer = std::make_unique<TraceWriter>(traceFilePath(spec), th);
        sys.setTraceCapture(tracer.get(), tracer.get());
    }
    RunResult r = sys.run();
    const std::string label =
        (spec.system.cores > 1 ? "MP workload " : "workload ") +
        spec.workload;
    if (r.hostCancelled) {
        std::string msg = label + " exceeded the host wall-clock "
                                  "budget under " +
                          spec.config;
        if (guarded)
            throw SweepJobError(
                sys.makeFailureArtifact("timeout", msg));
        fatal(msg);
    }
    if (r.deadlocked) {
        std::string msg =
            label + " deadlocked under " + spec.config;
        if (guarded)
            throw SweepJobError(
                sys.makeFailureArtifact("deadlock", msg));
        fatal(msg);
    }
    if (!r.allHalted) {
        if (guarded)
            throw SweepJobError(sys.makeFailureArtifact(
                "cycle-budget", label +
                                    " exhausted its cycle budget "
                                    "under " +
                                    spec.config));
        fatal(label + " did not halt under " + spec.config);
    }
    if (tracer &&
        !tracer->finalize(r.cycles, r.instructions,
                          memoryImageDigest(sys.memory())))
        warn("failed to write trace " + tracer->path());

    SimJobResult out;
    out.stats = collectRunStats(sys, r, spec.workload, spec.config);
    // Extras in a fixed order: requested counters, then the fault
    // taxonomy (when an injector ran), then the checker verdict.
    for (const std::string &name : spec.harvestStats)
        out.extras.emplace_back("stat:" + name, sys.totalStat(name));
    if (const FaultInjector *fi = sys.faultInjector()) {
        const FaultOutcomes &fo = fi->outcomes();
        out.extras.emplace_back("fault:load_flips", fo.loadFlips);
        out.extras.emplace_back("fault:forward_flips",
                                fo.forwardFlips);
        out.extras.emplace_back("fault:snoops_dropped",
                                fo.snoopsDropped);
        out.extras.emplace_back("fault:snoops_delayed",
                                fo.snoopsDelayed);
        out.extras.emplace_back("fault:invalidations_dropped",
                                fo.invalidationsDropped);
        out.extras.emplace_back("fault:fills_delayed",
                                fo.fillsDelayed);
        out.extras.emplace_back("fault:detected_by_compare",
                                fo.detectedByCompare);
        out.extras.emplace_back("fault:caught_by_cam", fo.caughtByCam);
        out.extras.emplace_back("fault:squashed_recovered",
                                fo.squashedRecovered);
        out.extras.emplace_back("fault:silently_committed",
                                fo.silentlyCommitted);
        out.extras.emplace_back("fault:wild_stores", fo.wildStores);
        out.extras.emplace_back("fault:wild_loads", fo.wildLoads);
        out.extras.emplace_back("fault:in_flight", fi->inFlight());
    }
    if (checker) {
        CheckResult cr = checker->check();
        out.extras.emplace_back("checker:consistent",
                                cr.consistent ? 1 : 0);
        out.extras.emplace_back("checker:errors", cr.errors.size());
    }
    return out;
}

} // namespace vbr
