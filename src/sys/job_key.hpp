/**
 * @file
 * Job identity layer of the sweep service (DESIGN.md §12): every
 * sweep job is a pure function of its spec — workload program,
 * machine configuration, fault plan, scale-derived parameters — so a
 * canonical serialization of that spec names the result forever.
 *
 * The cache-soundness invariant: the canonical spec covers EVERY
 * input that can affect the job's canonical result bytes. Knobs that
 * are proven result-invariant elsewhere in the suite are deliberately
 * excluded so they do not fragment the key space:
 *
 *   - fastForward / perCoreFastForward (PR 5/PR 7 parity gates:
 *     bitwise-identical reports, only skipped/ticked cycles move —
 *     and those are masked fields),
 *   - mpThreads (two-phase tick is thread-count-invisible),
 *   - jobName / failArtifactDir / auditPanic (failure-path labels;
 *     failed jobs are never cached).
 *
 * job_key_test.cpp pins both directions: goldens for key stability,
 * and include/exclude coverage for the invariant.
 *
 * Hashing is FNV-1a over the canonical bytes — no wall clock, no
 * pointer values, no iteration over unordered containers anywhere in
 * this layer (enforced by tools/analyze.py's determinism checks).
 */

#ifndef VBR_SYS_JOB_KEY_HPP
#define VBR_SYS_JOB_KEY_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "sys/run_stats.hpp"
#include "sys/system.hpp"

namespace vbr
{

/** Canonical-spec schema; bump on any serialization change AND on
 * intentional simulator-behavior changes so stale cache entries miss
 * instead of serving results the current simulator would not
 * reproduce. */
inline constexpr const char *kJobSpecSchema = "vbr-job/1";

/** Which execution tier resolves a spec into a result. */
enum class SimJobMode
{
    /** Simulate cycle by cycle (the default). */
    Full,

    /** Ordering-only fast tier: replay a captured vbr-trace/1 file
     * through the §3 policy + consistency checker instead of
     * simulating (src/trace/trace_replay.hpp). Verdict-identical to
     * the producing Full run, an order of magnitude faster. */
    TraceReplay,
};

/**
 * The complete description of one sweep job. Everything the
 * simulation reads flows through here — SystemConfig (machine, fault
 * plan, audit level), the built Program (shared across jobs of one
 * workload), and the harvest plan for extra counters.
 */
struct SimJobSpec
{
    std::string workload; ///< row label (also RunStats.workload)
    std::string config;   ///< machine label (also RunStats.config)
    SystemConfig system;
    std::shared_ptr<const Program> program;

    /** Attach an ScChecker for the run and harvest its verdict into
     * extras ("checker:consistent", "checker:errors"). */
    bool attachScChecker = false;

    /** Per-core counter names summed via System::totalStat into
     * extras ("stat:<name>"). Full mode only (the replay tier has no
     * live cores to harvest). */
    std::vector<std::string> harvestStats;

    /** Execution tier; see SimJobMode. */
    SimJobMode mode = SimJobMode::Full;

    /** Trace file to replay (TraceReplay mode only). Excluded from
     * the key: traceDigest names the content, not its location. */
    std::string tracePath;

    /** Canonical digest of the trace content (its trailer
     * fileDigest); folded into the JobKey so cached replay-tier
     * results key on the exact bytes replayed. */
    std::uint64_t traceDigest = 0;
};

/**
 * Where a Full-mode spec's capture lands when system.traceDir is set:
 * <traceDir>/<sanitized jobName>.<jobKey hex>.vbrtrace. The key in
 * the name keeps captures of distinct specs from colliding even when
 * their job names match. Call with the producing (Full-mode) spec.
 */
std::string traceFilePath(const SimJobSpec &spec);

/** 128-bit content key (two independent FNV-1a-64 passes). */
struct JobKey
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    /** 32 lowercase hex chars; the cache filename stem. */
    std::string hex() const;

    bool
    operator==(const JobKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const JobKey &o) const { return !(*this == o); }
};

/** Canonical spec document (schema + every key-relevant input; the
 * program appears as counts + content digest, not inline). */
JsonValue canonicalSpecJson(const SimJobSpec &spec);

/** Compact dump of canonicalSpecJson — the exact bytes hashed into
 * the key and embedded in cache entries for audit. */
std::string canonicalSpecBytes(const SimJobSpec &spec);

/** Content key of a spec. */
JobKey jobKey(const SimJobSpec &spec);

/** FNV-1a-64 digest of a program's full content (instructions via
 * Instruction::encode, threads, data inits, warm ranges, layout). */
std::uint64_t programDigest(const Program &prog);

/** What a sweep job produces: the standard stats record plus the
 * ordered extra counters the spec's harvest plan requested (fault
 * outcomes and checker verdicts harvest automatically when active). */
struct SimJobResult
{
    RunStats stats;
    std::vector<std::pair<std::string, std::uint64_t>> extras;
};

/** Value of a named extra (0 when absent). */
std::uint64_t extraStat(const SimJobResult &r, const std::string &name);

JsonValue simJobResultToJson(const SimJobResult &r);

/** Inverse of simJobResultToJson; false on malformed input. */
bool simJobResultFromJson(const JsonValue &v, SimJobResult &out);

/**
 * Nondeterministic report fields excluded from canonical result
 * bytes, sorted. Must agree with tools/bench_mask.json (the single
 * source compare_bench.py loads); job_key_test.cpp asserts equality.
 */
const std::vector<std::string> &maskedResultFields();

/**
 * The job's identity-relevant result bytes: compact JSON of stats and
 * extras with the masked fields removed. Cache hits are required to
 * reproduce a recomputation's canonical bytes exactly.
 */
std::string canonicalResultBytes(const SimJobResult &r);

/**
 * Execute one spec to completion. @p guarded selects the failure
 * protocol: guarded jobs throw SweepJobError (with a full failure
 * artifact) on deadlock or cycle-budget exhaustion so the sweep can
 * quarantine them; unguarded jobs fatal() like the classic harness
 * path. Never returns a partial result.
 */
SimJobResult runSimJob(const SimJobSpec &spec, bool guarded);

} // namespace vbr

#endif // VBR_SYS_JOB_KEY_HPP
