/**
 * @file
 * Host-cancellation seam between the sweep runner's per-job watchdog
 * and the simulation loop. The runner installs a per-attempt atomic
 * flag on the worker thread before invoking a guarded job;
 * System::run() polls it once per tick and winds down cleanly when
 * the watchdog raises it (RunResult::hostCancelled), which the job
 * layer turns into a kind:"timeout" quarantine.
 *
 * The token is thread-local, so the flag never appears in SimJobSpec
 * or the job key — host wall-clock budgets are a runner policy, not
 * a simulation input — and a run without an installed token pays one
 * TLS load + branch per tick.
 */

#ifndef VBR_SYS_CANCEL_TOKEN_HPP
#define VBR_SYS_CANCEL_TOKEN_HPP

#include <atomic>

namespace vbr
{

/** Install @p flag as the calling thread's cancellation token
 * (nullptr uninstalls). The flag must outlive the installation. */
void setHostCancelToken(const std::atomic<bool> *flag);

/** True when a token is installed and raised. */
bool hostCancelRequested();

} // namespace vbr

#endif // VBR_SYS_CANCEL_TOKEN_HPP
