#include "sys/report.hpp"

#include <sstream>

namespace vbr
{

ReportMetrics
computeMetrics(System &sys, const RunResult &result)
{
    ReportMetrics m;
    m.instructions = result.instructions;
    m.cycles = result.cycles;
    m.ipc = result.ipc();

    std::uint64_t loads = sys.totalStat("committed_loads");
    std::uint64_t stores = sys.totalStat("committed_stores");
    std::uint64_t branches = sys.totalStat("committed_branches");
    std::uint64_t mispredicts =
        sys.totalStat("branch_mispredicts_committed");
    std::uint64_t replays = sys.totalStat("replays_total");
    std::uint64_t filtered = sys.totalStat("replays_filtered");
    std::uint64_t squashes = sys.totalStat("squashes_total");
    std::uint64_t l1d = sys.totalStat("l1d_accesses_premature") +
                        sys.totalStat("l1d_accesses_store_commit") +
                        sys.totalStat("l1d_accesses_replay") +
                        sys.totalStat("l1d_accesses_swap");

    double instr = m.instructions ? static_cast<double>(m.instructions)
                                  : 1.0;
    m.loadsPerInstr = loads / instr;
    m.storesPerInstr = stores / instr;
    m.l1dAccessesPerInstr = l1d / instr;
    m.replaysPerInstr = replays / instr;
    m.replayFilterRate =
        (replays + filtered) == 0
            ? 0.0
            : static_cast<double>(filtered) /
                  static_cast<double>(replays + filtered);
    m.branchMispredictRate =
        branches == 0 ? 0.0
                      : static_cast<double>(mispredicts) /
                            static_cast<double>(branches);
    m.squashesPerKiloInstr = squashes / instr * 1000.0;

    double occ = 0.0;
    for (unsigned c = 0; c < sys.numCores(); ++c)
        occ += sys.core(c).stats().getMean("rob_occupancy");
    m.avgRobOccupancy = occ / sys.numCores();

    if (const InvariantAuditor *aud = sys.auditor()) {
        m.auditChecks = aud->checksPerformed();
        m.auditViolations = aud->violationCount();
    }
    return m;
}

std::string
renderReport(System &sys, const RunResult &result, bool include_raw)
{
    ReportMetrics m = computeMetrics(sys, result);
    std::ostringstream os;
    os << "=== simulation report ===\n";
    os << "cycles:            " << m.cycles << "\n";
    os << "instructions:      " << m.instructions << "\n";
    os << "IPC:               " << m.ipc << "\n";
    os << "loads/instr:       " << m.loadsPerInstr << "\n";
    os << "stores/instr:      " << m.storesPerInstr << "\n";
    os << "L1D accesses/instr:" << m.l1dAccessesPerInstr << "\n";
    os << "replays/instr:     " << m.replaysPerInstr << "\n";
    os << "replay filter rate:" << m.replayFilterRate << "\n";
    os << "br mispredict rate:" << m.branchMispredictRate << "\n";
    os << "squashes/kinstr:   " << m.squashesPerKiloInstr << "\n";
    os << "avg ROB occupancy: " << m.avgRobOccupancy << "\n";

    if (const InvariantAuditor *aud = sys.auditor()) {
        os << "audit checks:      " << m.auditChecks << "\n";
        os << "audit violations:  " << m.auditViolations << "\n";
        if (aud->violationCount() != 0)
            os << aud->renderViolations();
    }

    if (include_raw) {
        for (unsigned c = 0; c < sys.numCores(); ++c) {
            os << "\n--- core " << c << " ---\n";
            os << sys.core(c).stats().dump("core." );
            os << sys.core(c).hierarchy().stats().dump("mem.");
            os << sys.core(c).storeQueue().stats().dump("sq.");
            if (const StatSet *cam = sys.core(c).ordering().camStats())
                os << cam->dump("lq.");
        }
        os << "\n--- fabric ---\n";
        os << sys.fabric().stats().dump("fabric.");
    }
    return os.str();
}

} // namespace vbr
