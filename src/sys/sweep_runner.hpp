/**
 * @file
 * Sweep execution engine: fans a (workload x configuration) job grid
 * over a work-stealing thread pool and returns results in submission
 * order, so a parallel sweep is a drop-in replacement for the old
 * serial loops — same result order, bitwise-identical tables.
 *
 * Why this is safe: each job builds its own System (cores, caches,
 * memory image, RNG, stats) from value-captured specs; the simulator
 * core has no mutable global state, and shared Program objects are
 * only read. Determinism therefore holds per job regardless of which
 * worker runs it or in what order jobs finish.
 *
 * Thread count comes from VBR_THREADS (default: hardware
 * concurrency). With one thread the runner executes jobs inline on
 * the calling thread — no pool is created, which keeps single-thread
 * runs valgrind/strace-friendly and exactly equivalent to the old
 * serial code path.
 */

#ifndef VBR_SYS_SWEEP_RUNNER_HPP
#define VBR_SYS_SWEEP_RUNNER_HPP

#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_pool.hpp"

namespace vbr
{

/** Worker count for sweeps: VBR_THREADS if set (clamped to >= 1),
 * else std::thread::hardware_concurrency(). */
unsigned sweepThreads();

class SweepRunner
{
  public:
    explicit SweepRunner(unsigned threads = sweepThreads())
        : threads_(threads == 0 ? 1 : threads)
    {
    }

    unsigned threads() const { return threads_; }

    /**
     * Execute all @p jobs and return their results indexed exactly as
     * submitted. Jobs must be independent; a thrown exception
     * propagates to the caller after the remaining jobs drain.
     */
    template <class R>
    std::vector<R>
    run(std::vector<std::function<R()>> jobs) const
    {
        std::vector<R> results(jobs.size());
        if (threads_ <= 1 || jobs.size() <= 1) {
            for (std::size_t i = 0; i < jobs.size(); ++i)
                results[i] = jobs[i]();
            return results;
        }
        ThreadPool pool(threads_);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            // Each task writes only its own pre-sized slot, so the
            // result vector needs no lock.
            pool.submit([&results, &jobs, i] {
                results[i] = jobs[i]();
            });
        }
        pool.wait();
        return results;
    }

  private:
    unsigned threads_;
};

} // namespace vbr

#endif // VBR_SYS_SWEEP_RUNNER_HPP
