/**
 * @file
 * Sweep execution engine: fans a (workload x configuration) job grid
 * over a work-stealing thread pool and returns results in submission
 * order, so a parallel sweep is a drop-in replacement for the old
 * serial loops — same result order, bitwise-identical tables.
 *
 * Why this is safe: each job builds its own System (cores, caches,
 * memory image, RNG, stats) from value-captured specs; the simulator
 * core has no mutable global state, and shared Program objects are
 * only read. Determinism therefore holds per job regardless of which
 * worker runs it or in what order jobs finish.
 *
 * Thread count comes from VBR_THREADS (default: hardware
 * concurrency). With one thread the runner executes jobs inline on
 * the calling thread — no pool is created, which keeps single-thread
 * runs valgrind/strace-friendly and exactly equivalent to the old
 * serial code path.
 */

#ifndef VBR_SYS_SWEEP_RUNNER_HPP
#define VBR_SYS_SWEEP_RUNNER_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "sys/job_key.hpp"
#include "sys/result_cache.hpp"
#include "verify/failure_artifact.hpp"

namespace vbr
{

/** Worker count for sweeps: VBR_THREADS if set (clamped to >= 1),
 * else std::thread::hardware_concurrency(). */
unsigned sweepThreads();

/** ${VBR_JOB_TIMEOUT_MS:-0}: per-job wall-clock budget for guarded
 * sweeps in milliseconds; 0 disables the watchdog. */
std::uint64_t jobTimeoutMsFromEnv();

/** ${VBR_RETRY_BACKOFF_MS:-250}: base of the deterministic
 * exponential-backoff schedule guarded retries follow (delay before
 * retry k is base * 2^(k-1), capped); 0 restores immediate
 * re-execution. */
std::uint64_t retryBackoffMsFromEnv();

/** Sleep for the backoff delay before retry number @p attempt
 * (no-op when @p baseMs is 0). Host-side only. */
void sweepBackoffSleep(unsigned attempt, std::uint64_t baseMs);

/**
 * Deterministic sweep partition (DESIGN.md §12 layer 3): shard i of
 * N owns the jobs whose submission index is congruent to i mod N.
 * Ownership depends only on submission order — never on timing or
 * host — so the union of all shards' outputs is bitwise-equal to an
 * unsharded run, and two shards never simulate the same job.
 */
struct ShardSpec
{
    unsigned index = 0;
    unsigned count = 1;

    bool active() const { return count > 1; }

    bool
    owns(std::size_t job_index) const
    {
        return count <= 1 || job_index % count == index;
    }

    /** Parse "i/N" (0 <= i < N). False on malformed input. */
    static bool parse(const std::string &text, ShardSpec &out);

    /** ${VBR_SHARD:-0/1}; fatal() on a malformed value — a silently
     * ignored shard spec would simulate N times the intended work. */
    static ShardSpec fromEnv();
};

/** One quarantined job of a guarded sweep. */
struct SweepFailure
{
    std::size_t index = 0;    ///< submission index of the failed job
    std::string name;         ///< job name (artifact label)
    std::string kind;         ///< "deadlock" | "timeout" | ...
    std::string error;        ///< what() of the final failure
    unsigned attempts = 0;    ///< executions before quarantine
    std::string artifactPath; ///< FAIL_*.json path ("" = not written)

    /** Distinguishes the two ways artifactPath can be empty: false
     * means no artifact was requested (artifactDir unset), true means
     * a write was attempted and failed (the runner also warn()s). */
    bool artifactWriteFailed = false;
};

/**
 * Thrown by guarded jobs that can describe their own failure (e.g. a
 * harness that caught a deadlock or cycle-budget overrun and built an
 * artifact from the dying System). The runner writes the carried
 * artifact instead of synthesizing a bare-exception one.
 */
class SweepJobError : public std::runtime_error
{
  public:
    explicit SweepJobError(FailureArtifact artifact)
        : std::runtime_error(artifact.error),
          artifact_(std::move(artifact))
    {
    }

    const FailureArtifact &artifact() const { return artifact_; }

  private:
    FailureArtifact artifact_;
};

/** A named job for runGuarded (the name labels its artifact). */
template <class R> struct GuardedJob
{
    std::string name;
    std::function<R()> fn;
};

/** Guarded-sweep result: per-slot results plus the quarantine list. */
template <class R> struct SweepOutcome
{
    std::vector<R> results; ///< results[i] meaningful iff ok[i]
    std::vector<bool> ok;   ///< per submission index
    std::vector<SweepFailure> quarantined; ///< submission order

    bool allOk() const { return quarantined.empty(); }
};

/** How a spec job's slot was resolved (see SpecSweepOutcome). */
enum class JobSource : std::uint8_t
{
    Simulated,   ///< executed here
    CacheHit,    ///< deserialized from the result cache
    Skipped,     ///< owned by another shard, not in cache
    Quarantined, ///< executed and failed (guarded sweeps only)
};

/** Outcome of a spec sweep, indexed by submission order. */
struct SpecSweepOutcome
{
    std::vector<SimJobResult> results; ///< meaningful iff ok[i]
    std::vector<std::uint8_t> ok;
    std::vector<JobSource> source;
    std::vector<SweepFailure> quarantined; ///< submission order
    std::size_t simulated = 0;
    std::size_t cacheHits = 0;
    std::size_t skipped = 0;
    std::size_t storeFailures = 0; ///< ok results the cache rejected

    /** Every slot resolved (no skips, no quarantines). */
    bool
    complete() const
    {
        for (std::uint8_t f : ok)
            if (f == 0)
                return false;
        return true;
    }

    bool allOk() const { return quarantined.empty(); }
};

/** Options for runGuarded. */
struct GuardOptions
{
    /** Where FAIL_*.json artifacts land ("" = don't write any). */
    std::string artifactDir = defaultFailArtifactDir();

    /** Re-executions granted after a first failure. Retries are
     * bounded and deterministic: a job rebuilds its whole System, so
     * a deterministic failure fails identically on retry and the
     * retry only rescues host-level flakes (e.g. bad_alloc). */
    unsigned retries = 1;

    /** Per-attempt wall-clock budget in milliseconds; 0 disables the
     * watchdog. An attempt that overruns is cancelled cooperatively
     * (the simulation loop polls hostCancelRequested()) and counts
     * as a failure of kind "timeout". Host time never reaches the
     * simulation, so results of non-timed-out jobs are unaffected. */
    std::uint64_t timeoutMs = jobTimeoutMsFromEnv();

    /** Base of the exponential delay inserted before each retry
     * (retryBackoffDelayMs); 0 retries immediately. The delay only
     * spaces out host-level re-execution — it is invisible to job
     * results. */
    std::uint64_t backoffBaseMs = retryBackoffMsFromEnv();
};

/**
 * Wall-clock watchdog for guarded sweeps: one monitor thread arms a
 * deadline per running attempt and raises that attempt's
 * cancellation token when it lapses. Workers call beginAttempt()
 * before invoking the job (installs the slot's token on the calling
 * thread via setHostCancelToken) and endAttempt() after, which
 * reports whether the watchdog fired. Slots are indexed by
 * submission index, so concurrent jobs never share a flag.
 */
class JobWatchdog
{
  public:
    /** Start the monitor for @p slots jobs with @p timeoutMs per
     * attempt (> 0; callers skip construction when disabled). */
    JobWatchdog(std::uint64_t timeoutMs, std::size_t slots);
    ~JobWatchdog();

    JobWatchdog(const JobWatchdog &) = delete;
    JobWatchdog &operator=(const JobWatchdog &) = delete;

    /** Arm slot @p index and install its token on this thread. */
    void beginAttempt(std::size_t index);

    /** Disarm slot @p index, uninstall the token, and return whether
     * the deadline lapsed during the attempt. */
    bool endAttempt(std::size_t index);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Options for SweepRunner::runSpecs. */
struct SpecSweepOptions
{
    /** Consulted before executing and filled after (null or a
     * disabled cache = classic always-simulate behavior). */
    const ResultCache *cache = nullptr;

    /** Job partition; non-owned jobs resolve from cache or skip. */
    ShardSpec shard;

    /** Failure protocol: guarded sweeps quarantine failing jobs
     * (FAIL_*.json via @ref guard) instead of fatal()ing. */
    bool guarded = false;
    GuardOptions guard;
};

class SweepRunner
{
  public:
    explicit SweepRunner(unsigned threads = sweepThreads())
        : threads_(threads == 0 ? 1 : threads)
    {
    }

    unsigned threads() const { return threads_; }

    /**
     * Execute all @p jobs and return their results indexed exactly as
     * submitted. Jobs must be independent; a thrown exception
     * propagates to the caller after the remaining jobs drain.
     */
    template <class R>
    std::vector<R>
    run(std::vector<std::function<R()>> jobs) const
    {
        std::vector<R> results(jobs.size());
        if (threads_ <= 1 || jobs.size() <= 1) {
            for (std::size_t i = 0; i < jobs.size(); ++i)
                results[i] = jobs[i]();
            return results;
        }
        ThreadPool pool(threads_);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            // Each task writes only its own pre-sized slot, so the
            // result vector needs no lock.
            pool.submit([&results, &jobs, i] {
                results[i] = jobs[i]();
            });
        }
        pool.wait();
        return results;
    }

    /**
     * Failure-isolating variant of run(): a job that throws (panic,
     * deadlock artifact, plain exception) is retried once and, if it
     * fails again, quarantined with a FAIL_<name>.json artifact — the
     * sweep still completes and returns every healthy job's result.
     * Exceptions never cross thread-pool task boundaries, and both
     * results and the quarantine list come back in submission order,
     * so the outcome is identical at any VBR_THREADS.
     */
    template <class R>
    SweepOutcome<R>
    runGuarded(std::vector<GuardedJob<R>> jobs,
               const GuardOptions &opts = GuardOptions()) const
    {
        SweepOutcome<R> out;
        out.results.resize(jobs.size());
        // Byte flags, not vector<bool>: concurrent jobs complete on
        // different workers, and packed bits would turn each
        // `ok[i] = true` into a read-modify-write race on the word
        // the neighbouring jobs' bits live in. Distinct bytes are
        // distinct memory locations — race-free by the memory model.
        std::vector<std::uint8_t> ok(jobs.size(), 0);
        // Per-slot failure records, compacted afterwards so the
        // quarantine order does not depend on completion order.
        std::vector<SweepFailure> failures(jobs.size());

        std::unique_ptr<JobWatchdog> watchdog;
        if (opts.timeoutMs > 0 && !jobs.empty())
            watchdog = std::make_unique<JobWatchdog>(opts.timeoutMs,
                                                     jobs.size());

        auto guard = [&](std::size_t i) {
            runOneGuarded<R>(jobs[i], i, opts, watchdog.get(),
                             out.results[i], ok[i], failures[i]);
        };

        if (threads_ <= 1 || jobs.size() <= 1) {
            for (std::size_t i = 0; i < jobs.size(); ++i)
                guard(i);
        } else {
            ThreadPool pool(threads_);
            for (std::size_t i = 0; i < jobs.size(); ++i)
                pool.submit([&guard, i] { guard(i); });
            pool.wait();
        }

        out.ok.assign(ok.begin(), ok.end());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            if (!out.ok[i])
                out.quarantined.push_back(std::move(failures[i]));
        return out;
    }

    /**
     * The sweep service entry point: resolve every spec job through
     * the three service layers — cache lookup first (any thread
     * count, byte-identical to recomputation by the cache's spec
     * revalidation), then shard-filtered execution of the misses on
     * this runner (inline when threads() <= 1), then a serial,
     * submission-ordered store pass that persists each newly
     * simulated ok result. Non-owned jobs that miss the cache come
     * back as JobSource::Skipped with ok[i] == 0; quarantined and
     * failed jobs are never stored.
     */
    SpecSweepOutcome
    runSpecs(const std::vector<SimJobSpec> &specs,
             const SpecSweepOptions &opts = SpecSweepOptions()) const;

  private:
    /** Run one guarded job with bounded retry; on final failure fill
     * @p failure and write its artifact. Never throws. */
    template <class R>
    void
    runOneGuarded(const GuardedJob<R> &job, std::size_t index,
                  const GuardOptions &opts, JobWatchdog *watchdog,
                  R &result, std::uint8_t &okFlag,
                  SweepFailure &failure) const
    {
        FailureArtifact artifact;
        for (unsigned attempt = 1;; ++attempt) {
            if (attempt > 1)
                sweepBackoffSleep(attempt - 1, opts.backoffBaseMs);
            if (watchdog != nullptr)
                watchdog->beginAttempt(index);
            bool threw = false;
            try {
                result = job.fn();
            } catch (const SweepJobError &e) {
                threw = true;
                artifact = e.artifact();
            } catch (const std::exception &e) {
                // SimPanicError lands here too: simulator panics are
                // quarantined, not fatal, inside a guarded sweep.
                threw = true;
                artifact = FailureArtifact{};
                artifact.kind = "exception";
                artifact.error = e.what();
            } catch (...) {
                threw = true;
                artifact = FailureArtifact{};
                artifact.kind = "exception";
                artifact.error = "unknown exception";
            }
            bool timedOut = watchdog != nullptr &&
                            watchdog->endAttempt(index);
            if (!threw) {
                okFlag = 1;
                return;
            }
            if (timedOut && artifact.kind != "timeout") {
                // The job surfaced the cancellation as some generic
                // failure; label the quarantine with its real cause.
                artifact.kind = "timeout";
            }
            if (attempt > opts.retries) {
                failure.index = index;
                failure.name = job.name;
                failure.kind = artifact.kind;
                failure.error = artifact.error;
                failure.attempts = attempt;
                artifact.job = job.name;
                if (!opts.artifactDir.empty()) {
                    failure.artifactPath =
                        artifact.writeTo(opts.artifactDir);
                    failure.artifactWriteFailed =
                        failure.artifactPath.empty();
                }
                return;
            }
        }
    }

    unsigned threads_;
};

} // namespace vbr

#endif // VBR_SYS_SWEEP_RUNNER_HPP
