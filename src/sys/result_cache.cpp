#include "sys/result_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <utility>

#include "common/atomic_file.hpp"
#include "vbr_fingerprint.hpp"

namespace vbr
{

ResultCache::ResultCache(std::string dir, std::string fingerprint)
    : dir_(std::move(dir)), fingerprint_(std::move(fingerprint))
{
    if (!dir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        // A failed mkdir surfaces naturally: every store fails, every
        // lookup misses — the sweep still runs, just uncached.
    }
}

ResultCache
ResultCache::fromEnv()
{
    const char *dir = std::getenv("VBR_CACHE_DIR");
    if (dir == nullptr || dir[0] == '\0')
        return ResultCache();
    return ResultCache(dir);
}

std::string
ResultCache::buildFingerprint()
{
    const char *env = std::getenv("VBR_CACHE_FINGERPRINT");
    if (env != nullptr && env[0] != '\0')
        return env;
    return kBuildFingerprint;
}

std::string
ResultCache::entryPath(const JobKey &key) const
{
    if (dir_.empty())
        return "";
    return dir_ + "/" + key.hex() + ".json";
}

bool
ResultCache::lookup(const SimJobSpec &spec, const JobKey &key,
                    SimJobResult &out) const
{
    if (dir_.empty())
        return false;
    std::string text;
    if (!readFileToString(entryPath(key), text))
        return false;
    JsonValue doc;
    if (!JsonValue::parse(text, doc) || !doc.isObject())
        return false;
    const JsonValue *schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != kResultCacheSchema)
        return false;
    const JsonValue *stored_key = doc.find("key");
    if (stored_key == nullptr || !stored_key->isString() ||
        stored_key->asString() != key.hex())
        return false;
    // Entries from a differently-built simulator are misses: the
    // spec may be identical while the simulator's behavior is not.
    const JsonValue *fp = doc.find("fingerprint");
    if (fp == nullptr || !fp->isString() ||
        fp->asString() != fingerprint_)
        return false;
    // The embedded spec must reproduce this job's canonical bytes
    // exactly: this turns hash collisions and serialization drift
    // into misses instead of wrong results.
    const JsonValue *stored_spec = doc.find("spec");
    if (stored_spec == nullptr ||
        stored_spec->dump(0) != canonicalSpecBytes(spec))
        return false;
    const JsonValue *result = doc.find("result");
    if (result == nullptr)
        return false;
    return simJobResultFromJson(*result, out);
}

bool
ResultCache::store(const SimJobSpec &spec, const JobKey &key,
                   const SimJobResult &result) const
{
    if (dir_.empty())
        return false;
    JsonValue doc = JsonValue::object();
    doc.set("schema", kResultCacheSchema);
    doc.set("key", key.hex());
    doc.set("fingerprint", fingerprint_);
    doc.set("spec", canonicalSpecJson(spec));
    doc.set("result", simJobResultToJson(result));
    return atomicWriteFile(entryPath(key), doc.dump(2));
}

} // namespace vbr
