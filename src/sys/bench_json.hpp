/**
 * @file
 * Machine-readable benchmark reports. Every harness builds one
 * BenchReport, feeds it the per-run statistics (or analytic rows) and
 * derived metrics, and writes BENCH_<name>.json next to its stdout
 * table, giving the perf trajectory a stable, parseable schema:
 *
 *   {
 *     "bench":   "<harness name>",
 *     "schema":  1,
 *     "threads": <sweep worker count>,
 *     "wall_ms": <wall-clock of the harness, steady_clock>,
 *     "meta":    { "scale": ..., "mp_cores": ..., ... },
 *     "runs":    [ { per-run RunStats or analytic row }, ... ],
 *     "metrics": { "<derived metric>": value, ... }
 *   }
 *
 * Everything except "threads" and "wall_ms" is deterministic for a
 * given build + environment knobs; those two fields are the only ones
 * a comparison must mask.
 *
 * Output directory: $VBR_BENCH_DIR if set, else the current working
 * directory.
 */

#ifndef VBR_SYS_BENCH_JSON_HPP
#define VBR_SYS_BENCH_JSON_HPP

#include <chrono>
#include <string>

#include "common/json.hpp"
#include "sys/run_stats.hpp"

namespace vbr
{

class BenchReport
{
  public:
    /** Starts the wall clock. @p name becomes BENCH_<name>.json. */
    explicit BenchReport(std::string name);

    /** Record an environment/config knob under "meta". */
    BenchReport &meta(const std::string &key, JsonValue value);

    /** Append one simulated run to "runs". */
    BenchReport &addRun(const RunStats &s);

    /** Append an arbitrary row to "runs" (analytic harnesses). */
    BenchReport &addRow(JsonValue row);

    /** Record a derived metric under "metrics". */
    BenchReport &metric(const std::string &key, JsonValue value);

    /** Serialize the report; wall_ms is measured at this call. */
    std::string render() const;

    /** Render + write to outputPath(); prints the path to stdout and
     * calls fatal() if the file cannot be written. */
    void write() const;

    /** ${VBR_BENCH_DIR:-.}/BENCH_<name>.json */
    static std::string outputPath(const std::string &name);

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    JsonValue meta_ = JsonValue::object();
    JsonValue runs_ = JsonValue::array();
    JsonValue metrics_ = JsonValue::object();
};

} // namespace vbr

#endif // VBR_SYS_BENCH_JSON_HPP
