/**
 * @file
 * A full simulated system: N out-of-order cores, each with a private
 * cache hierarchy, connected by an invalidation-based coherence fabric
 * over a Gigaplane-XB-like interconnect, sharing one memory image.
 * A configurable DMA agent injects the coherent-I/O invalidations the
 * paper observes in uniprocessor runs.
 */

#ifndef VBR_SYS_SYSTEM_HPP
#define VBR_SYS_SYSTEM_HPP

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/ooo_core.hpp"
#include "fault/fault_config.hpp"
#include "fault/fault_injector.hpp"
#include "isa/program.hpp"
#include "mem/coherence.hpp"
#include "mem/hierarchy.hpp"
#include "mem/memory_image.hpp"
#include "sys/horizon.hpp"
#include "verify/auditor.hpp"
#include "verify/failure_artifact.hpp"

namespace vbr
{

/** Default for SystemConfig::fastForward: the VBR_FASTFWD
 * environment variable ("0" disables; unset or anything else
 * enables). */
bool fastForwardFromEnv();

/** Default for SystemConfig::mpThreads: the VBR_MP_THREADS
 * environment variable (unset/unparsable = 1 = serial). */
unsigned mpThreadsFromEnv();

/** Default for SystemConfig::perCoreFastForward: the
 * VBR_FASTFWD_PERCORE environment variable ("0" disables; unset or
 * anything else enables). */
bool perCoreFastForwardFromEnv();

/** Default for SystemConfig::traceDir: the VBR_TRACE_DIR environment
 * variable (unset = empty = capture off). */
std::string traceDirFromEnv();

/** Whole-system configuration. */
struct SystemConfig
{
    unsigned cores = 1;
    CoreConfig core;
    HierarchyConfig hierarchy;
    FabricConfig fabric;

    /** Track per-word versions (required by the SC checker). */
    bool trackVersions = false;

    /** Per-cycle probability of a coherent-I/O (DMA) invalidation of
     * a random data line; models the paper's uniprocessor snoops. */
    double dmaInvalidationRate = 0.0;
    std::uint64_t dmaSeed = 12345;

    /** Stop simulation after this many cycles even if not halted. */
    Cycle maxCycles = 200'000'000;

    /** Invariant-audit level (default from the VBR_AUDIT build
     * option); Off disables the auditor entirely. */
    AuditLevel audit = kDefaultAuditLevel;

    /** Abort on the first audit violation (tests relax this). */
    bool auditPanic = true;

    /** Poll the per-core deadlock watchdog only every this many
     * cycles: the watchdog is level-triggered (it stays raised until
     * a commit clears it), so a coarse stride only delays detection
     * of an already-dead run, never misses one. Must be well below
     * CoreConfig::deadlockThreshold. */
    Cycle deadlockCheckStride = 256;

    /** Fault-injection plan; defaults to $VBR_FAULTS (disabled when
     * unset). A disabled plan allocates no injector and perturbs
     * nothing — goldens stay bitwise-identical. */
    FaultConfig faults = FaultConfig::fromEnv();

    /** Quiescence-aware cycle skipping (event-horizon fast-forward):
     * when every core reports a quiescent tick, run() advances now_
     * directly to the earliest next-event horizon instead of spinning
     * tick(). Simulated behavior and every stat stay bit-identical;
     * only wall time changes. Defaults to $VBR_FASTFWD ("0"
     * disables). Self-disables when dmaInvalidationRate > 0 (per-
     * cycle RNG draws) or the fault plan needs per-cycle decisions. */
    bool fastForward = fastForwardFromEnv();

    /** Per-core slack fast-forward (multiprocessor runs only): a
     * quiescent core whose own wake horizon lies beyond the next
     * cycle goes to sleep and stops ticking, its local clock lagging
     * now_ until a wake or an external delivery syncs it. Outcomes
     * and stats stay bit-identical; only which cores burn wall time
     * each cycle changes. Requires fastForward; defaults to
     * $VBR_FASTFWD_PERCORE ("0" disables). */
    bool perCoreFastForward = perCoreFastForwardFromEnv();

    /** Worker threads for the MP compute phase (phase 1 of the
     * two-phase tick). The tick protocol is thread-count-independent
     * by construction, so any value produces bitwise-identical
     * results; 1 (the default, from $VBR_MP_THREADS) runs phase 1
     * serially with no pool. */
    unsigned mpThreads = mpThreadsFromEnv();

    /** When non-empty, the job layer captures a vbr-trace/1 file of
     * every committed memory operation into this directory (see
     * src/trace/). Off by default: the capture hook is a null
     * pointer the commit path already tests, so disabled capture is
     * provably zero-impact. Defaults to $VBR_TRACE_DIR. Excluded
     * from the JobKey (a side output, not a simulation input). */
    std::string traceDir = traceDirFromEnv();

    /** Job label used in failure artifacts (FAIL_<jobName>.json). */
    std::string jobName = "run";

    /** When non-empty, run() writes a failure artifact here if the
     * deadlock watchdog fires. Guarded sweeps leave this empty and
     * write artifacts themselves from makeFailureArtifact(). */
    std::string failArtifactDir;
};

/** Result of running a system to completion. */
struct RunResult
{
    bool allHalted = false;
    bool deadlocked = false;

    /** True when the run was wound down by the host cancellation
     * token (sweep watchdog timeout), not by the workload. Partial
     * stats are internally consistent but must not be reported as a
     * completed run; the job layer quarantines them. */
    bool hostCancelled = false;
    Cycle cycles = 0;
    std::uint64_t instructions = 0; ///< total committed across cores
    std::uint64_t auditViolations = 0; ///< invariant-audit failures

    /** Simulated cycles fast-forwarded over (0 when skipping is off
     * or never triggered) and cycles actually ticked. Uniprocessor
     * runs count system cycles (they sum to cycles); multiprocessor
     * runs sum per-core clocks, so a core asleep while its neighbor
     * ticks still shows up as a skip win. */
    Cycle skippedCycles = 0;
    Cycle tickedCycles = 0;

    double
    ipc() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(instructions) /
                  static_cast<double>(cycles);
    }
};

/** N cores + coherence + shared memory, stepped in lockstep. */
class System
{
  public:
    System(const SystemConfig &config, const Program &prog);

    /** Run until all cores halt, a deadlock is detected, or the cycle
     * budget expires. */
    RunResult run();

    /** Advance one cycle across all cores. */
    void tick();

    MemoryImage &memory() { return *mem_; }
    OooCore &core(unsigned i) { return *cores_[i]; }
    unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }
    CoherenceFabric &fabric() { return *fabric_; }
    Cycle now() const { return now_; }

    /** Subscribe a commit observer (e.g. the SC checker) to all cores. */
    void setObserver(CommitObserver *observer);

    /** Attach trace capture to all cores (either pointer may be
     * null). Capture pins the MP tick to the serial path so frames
     * arrive in true global commit order. */
    void setTraceCapture(CommitObserver *commits,
                         OrderingEventSink *events);

    /** The invariant auditor, or nullptr when audit == Off. */
    InvariantAuditor *auditor() { return auditor_.get(); }
    const InvariantAuditor *auditor() const { return auditor_.get(); }

    /** Sum of a named counter across all cores. */
    std::uint64_t totalStat(const std::string &name) const;

    /** The fault injector, or nullptr when injection is disabled. */
    FaultInjector *faultInjector() { return faults_.get(); }
    const FaultInjector *faultInjector() const { return faults_.get(); }

    /** Build a failure artifact capturing this system's state: job
     * name, config/seed context, fault summary, and the last-N
     * committed instructions per core. */
    FailureArtifact makeFailureArtifact(const std::string &kind,
                                        const std::string &error) const;

    /** Number of cores currently in per-core sleep (MP runs with
     * perCoreFastForward; 0 otherwise). Test observability. */
    unsigned sleepingCores() const { return sleepingCores_; }

  private:
    /** The PR 5 serial tick (uniprocessor path, bit-for-bit). */
    void tickUni();

    /** The two-phase multiprocessor tick: serial front phase (begin-
     * of-cycle work + commit, core-index order, live memory), then a
     * compute phase for every awake core against frozen coherence
     * state (parallel when eligible), then serial coherence
     * application in core-index order. */
    void tickMp();

    /** True when phase 1 may run on the thread pool this tick
     * (mpThreads > 1, no fault injector, no tracer attached — those
     * share mutable state across cores). */
    bool parallelEligible() const;

    /** Sync every sleeping core's local clock to @p c (end of run /
     * audit scans; cores stay asleep). */
    void syncSleepers(Cycle c);

    SystemConfig config_;
    std::unique_ptr<MemoryImage> mem_;
    std::unique_ptr<CoherenceFabric> fabric_;
    std::vector<std::unique_ptr<CacheHierarchy>> hierarchies_;
    std::vector<std::unique_ptr<OooCore>> cores_;
    std::unique_ptr<InvariantAuditor> auditor_;
    std::unique_ptr<FaultInjector> faults_;
    Rng dmaRng_;
    Cycle now_ = 0;

    /** Incremental halt tracking: tick() records each core's
     * not-halted -> halted transition so run() compares one counter
     * per cycle instead of polling every core. */
    std::vector<bool> coreHalted_;
    unsigned haltedCores_ = 0;

    /** True when the last tick() changed any core's state (read
     * after all cores ticked, so cross-core deliveries count). */
    bool lastTickActive_ = true;

    /** True when trace capture is attached (pins the MP compute
     * phase to serial so the trace byte order is canonical). */
    bool traceCapture_ = false;

    /** Cycles fast-forwarded over so far (see RunResult). */
    Cycle skippedCycles_ = 0;

    // --- per-core slack fast-forward state (MP runs only) -------------

    /** Enabled for this run (set in run(): skip conditions hold,
     * cores > 1, and config_.perCoreFastForward). */
    bool perCoreSleep_ = false;

    /** Per-core sleep flag + the wake horizon it was proven
     * quiescent through (exclusive: the core must tick at wakeAt). */
    std::vector<bool> coreAsleep_;
    std::vector<Cycle> coreWakeAt_;
    unsigned sleepingCores_ = 0;

    /** Lazily created pool for the parallel compute phase. */
    std::unique_ptr<ThreadPool> pool_;

    /** Next cycle the deadlock watchdog polls at — precomputed so
     * the run loop compares instead of computing now_ % stride, and
     * the fast-forward skip clamps to the first poll that can fire. */
    Cycle nextDeadlockCheck_ = 0;

    /** Earliest cycle the fast-forward may advance to from @p now
     * (min over core horizons, audit scans, due fault snoops, the
     * first deadlock poll that can fire, and maxCycles), via the
     * shared computeHorizon() helper. */
    HorizonResult skipHorizon(Cycle now, Cycle stride) const;
};

} // namespace vbr

#endif // VBR_SYS_SYSTEM_HPP
