#include "sys/system.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "isa/opcode.hpp"

namespace vbr
{

System::System(const SystemConfig &config, const Program &prog)
    : config_(config), dmaRng_(config.dmaSeed),
      coreHalted_(config.cores, false)
{
    VBR_ASSERT(config.cores >= 1, "system needs at least one core");
    VBR_ASSERT(prog.threads().size() >= config.cores,
               "program does not define enough threads");

    mem_ = std::make_unique<MemoryImage>(prog.memorySize(),
                                         config.trackVersions);
    mem_->applyInits(prog);

    fabric_ = std::make_unique<CoherenceFabric>(config.fabric);
    for (unsigned i = 0; i < config.cores; ++i) {
        hierarchies_.push_back(std::make_unique<CacheHierarchy>(
            config.hierarchy, i, *fabric_));
        // Pre-warm the program's steady-state ranges before the core
        // attaches (no filter events are generated either way).
        unsigned lb = hierarchies_[i]->lineBytes();
        for (auto [begin, end] : prog.warmRanges()) {
            for (Addr line = begin & ~static_cast<Addr>(lb - 1);
                 line < end; line += lb)
                hierarchies_[i]->warmLine(line);
        }
        cores_.push_back(std::make_unique<OooCore>(
            config.core, prog, *mem_, *hierarchies_[i], i));
    }

    if (config.faults.enabled()) {
        faults_ = std::make_unique<FaultInjector>(config.faults);
        fabric_->setFaultInjector(faults_.get());
        for (unsigned i = 0; i < config.cores; ++i) {
            hierarchies_[i]->setFaultInjector(faults_.get());
            cores_[i]->setFaultInjector(faults_.get());
        }
    }

    if (config.audit != AuditLevel::Off) {
        AuditConfig ac;
        ac.level = config.audit;
        ac.panicOnViolation = config.auditPanic;
        ac.artifactDir = config.failArtifactDir;
        ac.jobLabel = config.jobName;
        auditor_ = std::make_unique<InvariantAuditor>(ac);
        for (auto &core : cores_) {
            auditor_->registerCore(core->coreId());
            core->setAuditor(auditor_.get());
        }
    }
}

void
System::setObserver(CommitObserver *observer)
{
    for (auto &core : cores_)
        core->setObserver(observer);
}

void
System::tick()
{
    ++now_;
    if (faults_) {
        faults_->beginCycle(now_);
        // Deliver snoop notifications whose fault delay expired. Cores
        // have not ticked yet this cycle, so the delivery lands while
        // the core is quiescent, as the LSQ seam requires.
        faults_->drainDueSnoops(now_, [&](CoreId c, Addr line) {
            cores_[c]->onExternalInvalidation(line);
        });
    }
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i]->tick(now_);
        if (!coreHalted_[i] && cores_[i]->halted()) {
            coreHalted_[i] = true;
            ++haltedCores_;
        }
    }

    if (auditor_) {
        if (auditor_->scanDue(now_)) {
            for (auto &core : cores_)
                core->auditStructures(*auditor_);
        }
        if (auditor_->coherenceScanDue(now_))
            auditor_->scanCoherence(*fabric_, now_);
    }

    if (config_.dmaInvalidationRate > 0.0 &&
        dmaRng_.chance(config_.dmaInvalidationRate)) {
        Addr line = dmaRng_.below(mem_->size()) &
                    ~static_cast<Addr>(config_.hierarchy.l1d.lineBytes -
                                       1);
        fabric_->dmaInvalidate(line);
    }
}

RunResult
System::run()
{
    RunResult result;
    const Cycle stride = std::max<Cycle>(1, config_.deadlockCheckStride);
    while (now_ < config_.maxCycles) {
        if (haltedCores_ == cores_.size()) {
            result.allHalted = true;
            break;
        }
        // The deadlock watchdog is level-triggered, so polling it on
        // a coarse stride delays detection by at most stride-1 cycles
        // of an already-dead run.
        if (now_ % stride == 0) {
            bool any_deadlock = false;
            for (auto &core : cores_) {
                if (core->deadlocked(now_)) {
                    any_deadlock = true;
                    break;
                }
            }
            if (any_deadlock) {
                result.deadlocked = true;
                if (!config_.failArtifactDir.empty())
                    makeFailureArtifact(
                        "deadlock",
                        "no instruction committed for " +
                            std::to_string(
                                config_.core.deadlockThreshold) +
                            " cycles")
                        .writeTo(config_.failArtifactDir);
                break;
            }
        }
        tick();
    }

    result.cycles = now_;
    for (auto &core : cores_)
        result.instructions += core->instructionsCommitted();

    if (auditor_) {
        // Final structural sweep so short runs (or Sampled level) get
        // at least one end-state scan.
        for (auto &core : cores_)
            core->auditStructures(*auditor_);
        auditor_->scanCoherence(*fabric_, now_);
        result.auditViolations = auditor_->violationCount();
    }
    return result;
}

FailureArtifact
System::makeFailureArtifact(const std::string &kind,
                            const std::string &error) const
{
    FailureArtifact art;
    art.job = config_.jobName;
    art.kind = kind;
    art.error = error;

    JsonValue ctx = JsonValue::object();
    ctx.set("cycle", now_);
    ctx.set("cores", static_cast<std::uint64_t>(cores_.size()));
    ctx.set("scheme", config_.core.scheme == OrderingScheme::ValueReplay
                          ? "vbr"
                          : "assoc_lq");
    ctx.set("dma_seed", config_.dmaSeed);
    ctx.set("max_cycles", config_.maxCycles);
    ctx.set("fault_spec", config_.faults.render());
    if (faults_)
        ctx.set("faults", faults_->summaryJson());
    if (auditor_)
        ctx.set("audit_violations", auditor_->violationCount());
    JsonValue committed = JsonValue::array();
    for (const auto &core : cores_)
        committed.push(core->instructionsCommitted());
    ctx.set("instructions_committed", std::move(committed));
    art.context = std::move(ctx);

    JsonValue trace = JsonValue::array();
    for (const auto &core : cores_) {
        JsonValue per_core = JsonValue::object();
        per_core.set("core",
                     static_cast<std::uint64_t>(core->coreId()));
        JsonValue entries = JsonValue::array();
        for (const CommitTraceEntry &e : core->commitTrace()) {
            JsonValue j = JsonValue::object();
            j.set("seq", e.seq);
            j.set("pc", static_cast<std::uint64_t>(e.pc));
            j.set("cycle", e.cycle);
            j.set("op", std::string(opcodeName(e.op)));
            entries.push(std::move(j));
        }
        per_core.set("entries", std::move(entries));
        trace.push(std::move(per_core));
    }
    art.commitTrace = std::move(trace);
    return art;
}

std::uint64_t
System::totalStat(const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->stats().get(name);
    return total;
}

} // namespace vbr
