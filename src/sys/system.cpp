#include "sys/system.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"
#include "isa/opcode.hpp"

namespace vbr
{

bool
fastForwardFromEnv()
{
    const char *env = std::getenv("VBR_FASTFWD");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

System::System(const SystemConfig &config, const Program &prog)
    : config_(config), dmaRng_(config.dmaSeed),
      coreHalted_(config.cores, false)
{
    VBR_ASSERT(config.cores >= 1, "system needs at least one core");
    VBR_ASSERT(prog.threads().size() >= config.cores,
               "program does not define enough threads");

    mem_ = std::make_unique<MemoryImage>(prog.memorySize(),
                                         config.trackVersions);
    mem_->applyInits(prog);

    fabric_ = std::make_unique<CoherenceFabric>(config.fabric);
    for (unsigned i = 0; i < config.cores; ++i) {
        hierarchies_.push_back(std::make_unique<CacheHierarchy>(
            config.hierarchy, i, *fabric_));
        // Pre-warm the program's steady-state ranges before the core
        // attaches (no filter events are generated either way).
        unsigned lb = hierarchies_[i]->lineBytes();
        for (auto [begin, end] : prog.warmRanges()) {
            for (Addr line = begin & ~static_cast<Addr>(lb - 1);
                 line < end; line += lb)
                hierarchies_[i]->warmLine(line);
        }
        cores_.push_back(std::make_unique<OooCore>(
            config.core, prog, *mem_, *hierarchies_[i], i));
    }

    if (config.faults.enabled()) {
        faults_ = std::make_unique<FaultInjector>(config.faults);
        fabric_->setFaultInjector(faults_.get());
        for (unsigned i = 0; i < config.cores; ++i) {
            hierarchies_[i]->setFaultInjector(faults_.get());
            cores_[i]->setFaultInjector(faults_.get());
        }
    }

    if (config.audit != AuditLevel::Off) {
        AuditConfig ac;
        ac.level = config.audit;
        ac.panicOnViolation = config.auditPanic;
        ac.artifactDir = config.failArtifactDir;
        ac.jobLabel = config.jobName;
        auditor_ = std::make_unique<InvariantAuditor>(ac);
        for (auto &core : cores_) {
            auditor_->registerCore(core->coreId());
            core->setAuditor(auditor_.get());
        }
    }
}

void
System::setObserver(CommitObserver *observer)
{
    for (auto &core : cores_)
        core->setObserver(observer);
}

void
System::tick()
{
    ++now_;
    // Reset every activity flag before anything can be delivered, so
    // an external event landing on a core that already ticked (or has
    // not ticked yet) still counts as this cycle's activity.
    for (auto &core : cores_)
        core->resetActivity();
    if (faults_) {
        faults_->beginCycle(now_);
        // Deliver snoop notifications whose fault delay expired. Cores
        // have not ticked yet this cycle, so the delivery lands while
        // the core is quiescent, as the LSQ seam requires.
        faults_->drainDueSnoops(now_, [&](CoreId c, Addr line) {
            cores_[c]->onExternalInvalidation(line);
        });
    }
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i]->tick(now_);
        if (!coreHalted_[i] && cores_[i]->halted()) {
            coreHalted_[i] = true;
            ++haltedCores_;
        }
    }
    // Read the flags only after every core ticked: core i's drain can
    // invalidate core j's line after core j already ticked.
    lastTickActive_ = false;
    for (auto &core : cores_)
        lastTickActive_ |= core->activeThisTick();

    if (auditor_) {
        if (auditor_->scanDue(now_)) {
            for (auto &core : cores_)
                core->auditStructures(*auditor_);
        }
        if (auditor_->coherenceScanDue(now_))
            auditor_->scanCoherence(*fabric_, now_);
    }

    if (config_.dmaInvalidationRate > 0.0 &&
        dmaRng_.chance(config_.dmaInvalidationRate)) {
        Addr line = dmaRng_.below(mem_->size()) &
                    ~static_cast<Addr>(config_.hierarchy.l1d.lineBytes -
                                       1);
        fabric_->dmaInvalidate(line);
    }
}

Cycle
System::skipTarget(Cycle now, Cycle stride) const
{
    Cycle target = config_.maxCycles;
    for (const auto &core : cores_)
        target = std::min(target, core->nextWakeCycle(now));

    // The memory system's own horizons (kNeverCycle today: the model
    // is functional-with-latency and all timing lives in core-side
    // timers; the seam keeps a future event-queue honest).
    target = std::min(target, fabric_->nextWakeCycle(now));
    for (const auto &h : hierarchies_)
        target = std::min(target, h->nextWakeCycle(now));

    // Auditor scans must run on their exact schedule (the performed-
    // check count is reported). Full-level audit makes this now + 1,
    // which naturally disables skipping.
    if (auditor_) {
        target = std::min(target, auditor_->nextScanCycle(now));
        target =
            std::min(target, auditor_->nextCoherenceScanCycle(now));
    }

    // Fault-delayed snoops must be delivered on their due cycle.
    if (faults_)
        target = std::min(target, faults_->nextDueSnoopCycle());

    // Deadlock watchdog: polls at stride multiples are all false
    // until some core's fire cycle is reached (no commits happen in a
    // quiescent region, so fire cycles are frozen). Clamp to the
    // first poll that can fire, skipping the provably-false ones.
    Cycle fire = kNeverCycle;
    for (const auto &core : cores_)
        fire = std::min(fire, core->deadlockFireCycle());
    if (fire != kNeverCycle) {
        Cycle poll = (fire / stride + (fire % stride != 0)) * stride;
        target = std::min(target, std::max(poll, nextDeadlockCheck_));
    }
    return target;
}

RunResult
System::run()
{
    RunResult result;
    const Cycle stride = std::max<Cycle>(1, config_.deadlockCheckStride);
    const bool skip_enabled = config_.fastForward &&
                              config_.dmaInvalidationRate <= 0.0 &&
                              !config_.faults.perCycleDecisions();
    // First watchdog poll at or after the current cycle (satellite of
    // the fast-forward work: a comparison instead of a modulo in the
    // hottest loop).
    nextDeadlockCheck_ = now_ - now_ % stride;
    while (now_ < config_.maxCycles) {
        if (haltedCores_ == cores_.size()) {
            result.allHalted = true;
            break;
        }
        // The deadlock watchdog is level-triggered, so polling it on
        // a coarse stride delays detection by at most stride-1 cycles
        // of an already-dead run.
        if (now_ == nextDeadlockCheck_) {
            nextDeadlockCheck_ += stride;
            bool any_deadlock = false;
            for (auto &core : cores_) {
                if (core->deadlocked(now_)) {
                    any_deadlock = true;
                    break;
                }
            }
            if (any_deadlock) {
                result.deadlocked = true;
                if (!config_.failArtifactDir.empty())
                    makeFailureArtifact(
                        "deadlock",
                        "no instruction committed for " +
                            std::to_string(
                                config_.core.deadlockThreshold) +
                            " cycles")
                        .writeTo(config_.failArtifactDir);
                break;
            }
        }
        tick();

        if (skip_enabled && !lastTickActive_) {
            // Every core is quiescent: nothing observable can happen
            // before the earliest next-event horizon. Land one cycle
            // short so the next tick() executes the horizon cycle
            // itself. Each skipped cycle replicates exactly the
            // bookkeeping a quiescent tick would have performed, so
            // every stat stays bit-identical.
            Cycle target = skipTarget(now_, stride);
            if (target > now_ + 1) {
                Cycle n = target - 1 - now_;
                for (std::size_t i = 0; i < cores_.size(); ++i) {
                    if (!coreHalted_[i])
                        cores_[i]->applySkippedCycles(n);
                }
                skippedCycles_ += n;
                now_ = target - 1;
                // Skipped polls are provably false (skipTarget
                // clamps to the first one that could fire).
                if (nextDeadlockCheck_ <= now_)
                    nextDeadlockCheck_ =
                        (now_ / stride + 1) * stride;
            }
        }
    }

    result.cycles = now_;
    result.skippedCycles = skippedCycles_;
    result.tickedCycles = now_ - skippedCycles_;
    for (auto &core : cores_)
        result.instructions += core->instructionsCommitted();

    if (auditor_) {
        // Final structural sweep so short runs (or Sampled level) get
        // at least one end-state scan.
        for (auto &core : cores_)
            core->auditStructures(*auditor_);
        auditor_->scanCoherence(*fabric_, now_);
        result.auditViolations = auditor_->violationCount();
    }
    return result;
}

FailureArtifact
System::makeFailureArtifact(const std::string &kind,
                            const std::string &error) const
{
    FailureArtifact art;
    art.job = config_.jobName;
    art.kind = kind;
    art.error = error;

    JsonValue ctx = JsonValue::object();
    ctx.set("cycle", now_);
    ctx.set("cores", static_cast<std::uint64_t>(cores_.size()));
    ctx.set("scheme", config_.core.scheme == OrderingScheme::ValueReplay
                          ? "vbr"
                          : "assoc_lq");
    ctx.set("dma_seed", config_.dmaSeed);
    ctx.set("max_cycles", config_.maxCycles);
    ctx.set("fault_spec", config_.faults.render());
    if (faults_)
        ctx.set("faults", faults_->summaryJson());
    if (auditor_)
        ctx.set("audit_violations", auditor_->violationCount());
    JsonValue committed = JsonValue::array();
    for (const auto &core : cores_)
        committed.push(core->instructionsCommitted());
    ctx.set("instructions_committed", std::move(committed));
    art.context = std::move(ctx);

    JsonValue trace = JsonValue::array();
    for (const auto &core : cores_) {
        JsonValue per_core = JsonValue::object();
        per_core.set("core",
                     static_cast<std::uint64_t>(core->coreId()));
        JsonValue entries = JsonValue::array();
        for (const CommitTraceEntry &e : core->commitTrace()) {
            JsonValue j = JsonValue::object();
            j.set("seq", e.seq);
            j.set("pc", static_cast<std::uint64_t>(e.pc));
            j.set("cycle", e.cycle);
            j.set("op", std::string(opcodeName(e.op)));
            entries.push(std::move(j));
        }
        per_core.set("entries", std::move(entries));
        trace.push(std::move(per_core));
    }
    art.commitTrace = std::move(trace);
    return art;
}

std::uint64_t
System::totalStat(const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->stats().get(name);
    return total;
}

} // namespace vbr
