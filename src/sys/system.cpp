#include "sys/system.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"
#include "isa/opcode.hpp"
#include "sys/cancel_token.hpp"

namespace vbr
{

bool
fastForwardFromEnv()
{
    const char *env = std::getenv("VBR_FASTFWD");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

unsigned
mpThreadsFromEnv()
{
    const char *env = std::getenv("VBR_MP_THREADS");
    if (env == nullptr)
        return 1;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || v == 0)
        return 1;
    return static_cast<unsigned>(std::min<unsigned long>(v, 64));
}

bool
perCoreFastForwardFromEnv()
{
    const char *env = std::getenv("VBR_FASTFWD_PERCORE");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

std::string
traceDirFromEnv()
{
    const char *env = std::getenv("VBR_TRACE_DIR");
    return env == nullptr ? std::string{} : std::string{env};
}

System::System(const SystemConfig &config, const Program &prog)
    : config_(config), dmaRng_(config.dmaSeed),
      coreHalted_(config.cores, false),
      coreAsleep_(config.cores, false),
      coreWakeAt_(config.cores, kNeverCycle)
{
    VBR_ASSERT(config.cores >= 1, "system needs at least one core");
    VBR_ASSERT(prog.threads().size() >= config.cores,
               "program does not define enough threads");

    mem_ = std::make_unique<MemoryImage>(prog.memorySize(),
                                         config.trackVersions);
    mem_->applyInits(prog);

    fabric_ = std::make_unique<CoherenceFabric>(config.fabric);
    for (unsigned i = 0; i < config.cores; ++i) {
        hierarchies_.push_back(std::make_unique<CacheHierarchy>(
            config.hierarchy, i, *fabric_));
        // Pre-warm the program's steady-state ranges before the core
        // attaches (no filter events are generated either way).
        unsigned lb = hierarchies_[i]->lineBytes();
        for (auto [begin, end] : prog.warmRanges()) {
            for (Addr line = begin & ~static_cast<Addr>(lb - 1);
                 line < end; line += lb)
                hierarchies_[i]->warmLine(line);
        }
        cores_.push_back(std::make_unique<OooCore>(
            config.core, prog, *mem_, *hierarchies_[i], i));
    }

    if (config.faults.enabled()) {
        faults_ = std::make_unique<FaultInjector>(config.faults);
        fabric_->setFaultInjector(faults_.get());
        for (unsigned i = 0; i < config.cores; ++i) {
            hierarchies_[i]->setFaultInjector(faults_.get());
            cores_[i]->setFaultInjector(faults_.get());
        }
    }

    if (config.audit != AuditLevel::Off) {
        AuditConfig ac;
        ac.level = config.audit;
        ac.panicOnViolation = config.auditPanic;
        ac.artifactDir = config.failArtifactDir;
        ac.jobLabel = config.jobName;
        auditor_ = std::make_unique<InvariantAuditor>(ac);
        for (auto &core : cores_) {
            auditor_->registerCore(core->coreId());
            core->setAuditor(auditor_.get());
        }
    }
}

void
System::setObserver(CommitObserver *observer)
{
    for (auto &core : cores_)
        core->setObserver(observer);
}

void
System::setTraceCapture(CommitObserver *commits,
                        OrderingEventSink *events)
{
    for (auto &core : cores_)
        core->setTraceCapture(commits, events);
    traceCapture_ = commits != nullptr || events != nullptr;
}

void
System::tick()
{
    if (cores_.size() == 1)
        tickUni();
    else
        tickMp();
}

void
System::tickUni()
{
    ++now_;
    // Reset every activity flag before anything can be delivered, so
    // an external event landing on a core that already ticked (or has
    // not ticked yet) still counts as this cycle's activity.
    for (auto &core : cores_)
        core->resetActivity();
    if (faults_) {
        faults_->beginCycle(now_);
        // Deliver snoop notifications whose fault delay expired. Cores
        // have not ticked yet this cycle, so the delivery lands while
        // the core is quiescent, as the LSQ seam requires.
        faults_->drainDueSnoops(now_, [&](CoreId c, Addr line) {
            cores_[c]->onExternalInvalidation(line);
        });
    }
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i]->tick(now_);
        if (!coreHalted_[i] && cores_[i]->halted()) {
            coreHalted_[i] = true;
            ++haltedCores_;
        }
    }
    // Read the flags only after every core ticked: core i's drain can
    // invalidate core j's line after core j already ticked.
    lastTickActive_ = false;
    for (auto &core : cores_)
        lastTickActive_ |= core->activeThisTick();

    if (auditor_) {
        if (auditor_->scanDue(now_)) {
            for (auto &core : cores_)
                core->auditStructures(*auditor_);
        }
        if (auditor_->coherenceScanDue(now_))
            auditor_->scanCoherence(*fabric_, now_);
    }

    if (config_.dmaInvalidationRate > 0.0 &&
        dmaRng_.chance(config_.dmaInvalidationRate)) {
        Addr line = dmaRng_.below(mem_->size()) &
                    ~static_cast<Addr>(config_.hierarchy.l1d.lineBytes -
                                       1);
        fabric_->dmaInvalidate(line);
    }
}

bool
System::parallelEligible() const
{
    // The fault injector's counters and a pipeline tracer's stream
    // are shared-mutable across cores; phase 1 must stay serial when
    // either is attached. The serial fallback is identical by
    // construction. Trace capture also pins the serial path: the
    // writer's byte stream is shared-mutable, and serial phase order
    // is what makes trace files canonical across thread counts.
    if (config_.mpThreads <= 1 || faults_ || traceCapture_)
        return false;
    for (const auto &core : cores_)
        if (core->hasTracer())
            return false;
    return true;
}

void
System::syncSleepers(Cycle c)
{
    for (std::size_t i = 0; i < cores_.size(); ++i)
        if (coreAsleep_[i])
            cores_[i]->syncTo(c);
}

void
System::tickMp()
{
    ++now_;
    for (std::size_t i = 0; i < cores_.size(); ++i)
        if (!coreAsleep_[i])
            cores_[i]->resetActivity();

    // A sleeping core that a pre-tick fault snoop touches must catch
    // up to the previous cycle first — it wakes and ticks this cycle.
    if (sleepingCores_ > 0) {
        for (std::size_t i = 0; i < cores_.size(); ++i)
            if (coreAsleep_[i])
                cores_[i]->setSyncHorizon(now_ - 1);
    }
    if (faults_) {
        faults_->beginCycle(now_);
        faults_->drainDueSnoops(now_, [&](CoreId c, Addr line) {
            cores_[c]->onExternalInvalidation(line);
        });
    }
    // Wake sleepers that are due this cycle, or that a fault snoop
    // just touched (their activity flag is set; a timer wake's flag
    // is still false, exactly as if the core had ticked quiescently
    // until now).
    if (sleepingCores_ > 0) {
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if (!coreAsleep_[i])
                continue;
            if (coreWakeAt_[i] <= now_ ||
                cores_[i]->activeThisTick()) {
                cores_[i]->syncTo(now_ - 1);
                cores_[i]->setSyncHorizon(kNeverCycle);
                coreAsleep_[i] = false;
                --sleepingCores_;
            }
        }
    }
    // Phase A (serial, core-index order, live fabric): per-cycle flag
    // resets, begin-of-cycle backend work, and the commit stage — the
    // exact stage prefix of the serial tick, so per-core intra-cycle
    // timing matches it. Store drains and SWAPs mutate memory here,
    // one core at a time; invalidations they raise deliver direct —
    // including onto sleeping cores. A sleeping victim this loop has
    // not reached yet must wake and tick THIS cycle: the serial
    // reference ticks it after the delivery in the same cycle, so its
    // reaction (post-squash refetch, replay marking) starts now, not
    // next cycle. Sleepers therefore keep the previous cycle as their
    // sync horizon until the loop passes them (the delivery handler
    // consumed it; the wake here is then a no-op sync).
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (coreAsleep_[i]) {
            if (!cores_[i]->activeThisTick()) {
                // The loop is passing this sleeper by: its (quiescent)
                // front half of the current cycle is now in the past.
                // A higher-index core's phase-A delivery lands between
                // the victim's two halves — in the serial reference
                // the victim's dispatch/fetch for this cycle run
                // *after* the delivery, in phase B. So the handler
                // must replay through the previous cycle, run
                // tickFront for this one, and leave the back half to
                // the phase B sweep below (quiescent-cycle replay
                // would wrongly re-apply the pre-delivery stall pin).
                cores_[i]->setSyncHorizonFrontTick(now_);
                continue;
            }
            // Touched by an earlier core's phase A delivery (the
            // handler consumed the now_-1 horizon pre-delivery).
            cores_[i]->syncTo(now_ - 1);
            cores_[i]->setSyncHorizon(kNeverCycle);
            coreAsleep_[i] = false;
            --sleepingCores_;
        }
        cores_[i]->tickFront(now_);
    }

    // Sleepers a phase-A delivery touched *after* the loop passed
    // them consumed the front-tick horizon (quiescent catch-up plus
    // tickFront, both pre-delivery): wake them without another
    // tickFront so they run this cycle's phase B on post-delivery
    // state. The rest sleep on with a plain full-cycle horizon — the
    // only deliveries left this cycle come from applyDeferredOps,
    // which the serial reference orders after the victim's whole
    // tick, so full quiescent replay is exact for them.
    if (sleepingCores_ > 0) {
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if (!coreAsleep_[i])
                continue;
            if (cores_[i]->activeThisTick()) {
                cores_[i]->setSyncHorizon(kNeverCycle);
                coreAsleep_[i] = false;
                --sleepingCores_;
            } else {
                cores_[i]->setSyncHorizon(now_);
            }
        }
    }

    // Phase B (compute): every core that entered the cycle unhalted
    // runs the remaining stages against frozen post-commit coherence
    // state (a core that halted *during* phase A still runs phase B,
    // matching the serial tick; coreHalted_ lags one phase, so the
    // predicate below sees entry state). Fabric requests are logged
    // and answered from a directory preview, so cores neither mutate
    // shared state nor observe each other — the phase parallelizes
    // with bitwise-identical outcomes.
    fabric_->beginDeferred();
    if (parallelEligible()) {
        if (!pool_)
            pool_ = std::make_unique<ThreadPool>(config_.mpThreads);
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if (coreAsleep_[i] || coreHalted_[i])
                continue;
            OooCore *core = cores_[i].get();
            const Cycle now = now_;
            pool_->submit([core, now] { core->tickBack(now); });
        }
        pool_->wait();
    } else {
        for (std::size_t i = 0; i < cores_.size(); ++i)
            if (!coreAsleep_[i] && !coreHalted_[i])
                cores_[i]->tickBack(now_);
    }
    fabric_->endDeferred();

    // Flush every core's buffered phase-B auditor events before
    // applying coherence traffic: applyDeferredOps deliveries can
    // raise direct auditor events on a *different* core (e.g. an
    // invalidation-triggered squash), and those must not overtake
    // that victim's still-buffered compute-phase events.
    for (std::size_t i = 0; i < cores_.size(); ++i)
        if (!coreAsleep_[i] && !coreHalted_[i])
            cores_[i]->flushDeferredAudit();

    // End of cycle (serial, core-index order): apply each core's
    // logged coherence traffic against the live directory.
    // Invalidation deliveries go direct from here on.
    for (std::size_t i = 0; i < cores_.size(); ++i)
        if (!coreAsleep_[i])
            fabric_->applyDeferredOps(static_cast<CoreId>(i));

    // Halt transitions (halted_ flips in phase A's commit stage;
    // recorded only now so the halting core's final phase B ran).
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (!coreHalted_[i] && cores_[i]->halted()) {
            coreHalted_[i] = true;
            ++haltedCores_;
        }
    }

    lastTickActive_ = false;
    for (auto &core : cores_)
        lastTickActive_ |= core->activeThisTick();

    // A phase-2 delivery to a sleeping core synced it to this cycle
    // (via the published horizon) and set its activity flag: wake it
    // so it ticks normally from the next cycle.
    if (sleepingCores_ > 0) {
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if (coreAsleep_[i] && cores_[i]->activeThisTick()) {
                cores_[i]->syncTo(now_);
                cores_[i]->setSyncHorizon(kNeverCycle);
                coreAsleep_[i] = false;
                --sleepingCores_;
            }
        }
    }

    if (auditor_) {
        if (auditor_->scanDue(now_)) {
            // Structural scans read each core's local clock: bring
            // sleepers up to date (they stay asleep — syncing is the
            // same bookkeeping their skipped cycles get anyway).
            syncSleepers(now_);
            for (auto &core : cores_)
                core->auditStructures(*auditor_);
        }
        if (auditor_->coherenceScanDue(now_))
            auditor_->scanCoherence(*fabric_, now_);
    }

    if (config_.dmaInvalidationRate > 0.0 &&
        dmaRng_.chance(config_.dmaInvalidationRate)) {
        Addr line = dmaRng_.below(mem_->size()) &
                    ~static_cast<Addr>(config_.hierarchy.l1d.lineBytes -
                                       1);
        fabric_->dmaInvalidate(line);
    }

    // Sleep decisions: a quiescent, awake, non-halted core whose own
    // wake horizon lies beyond the next cycle stops ticking until the
    // horizon (or an external delivery) reaches it. kNeverCycle means
    // delivery-only wake — the deadlock watchdog and the cycle budget
    // still bound the run.
    if (perCoreSleep_) {
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if (coreAsleep_[i] || coreHalted_[i] ||
                cores_[i]->activeThisTick())
                continue;
            Cycle wake =
                std::min(cores_[i]->nextWakeCycle(now_),
                         hierarchies_[i]->nextWakeCycle(now_));
            if (wake > now_ + 1) {
                coreAsleep_[i] = true;
                coreWakeAt_[i] = wake;
                ++sleepingCores_;
            }
        }
    }
}

HorizonResult
System::skipHorizon(Cycle now, Cycle stride) const
{
    HorizonInputs in;
    in.now = now;
    in.maxCycles = config_.maxCycles;
    in.deadlockStride = stride;
    in.nextDeadlockCheck = nextDeadlockCheck_;

    // Per-core wake horizons plus the memory system's own (kNeverCycle
    // today: the model is functional-with-latency and all timing lives
    // in core-side timers; the seam keeps a future event-queue honest).
    Cycle wake = fabric_->nextWakeCycle(now);
    for (const auto &core : cores_)
        wake = std::min(wake, core->nextWakeCycle(now));
    for (const auto &h : hierarchies_)
        wake = std::min(wake, h->nextWakeCycle(now));
    in.earliestWake = wake;

    // Auditor scans must run on their exact schedule (the performed-
    // check count is reported). Full-level audit makes this now + 1,
    // which naturally disables skipping.
    if (auditor_)
        in.earliestAuditScan =
            std::min(auditor_->nextScanCycle(now),
                     auditor_->nextCoherenceScanCycle(now));

    // Fault-delayed snoops must be delivered on their due cycle.
    if (faults_)
        in.earliestFaultSnoop = faults_->nextDueSnoopCycle();

    // Commits are frozen across a quiescent region, so the earliest
    // deadlock fire cycle is exact.
    Cycle fire = kNeverCycle;
    for (const auto &core : cores_)
        fire = std::min(fire, core->deadlockFireCycle());
    in.earliestDeadlockFire = fire;

    return computeHorizon(in);
}

RunResult
System::run()
{
    RunResult result;
    const Cycle stride = std::max<Cycle>(1, config_.deadlockCheckStride);
    const bool skip_enabled = config_.fastForward &&
                              config_.dmaInvalidationRate <= 0.0 &&
                              !config_.faults.perCycleDecisions();
    // Per-core slack fast-forward only makes sense under the same
    // conditions as the global skip, with more than one core to
    // de-synchronize. Manual tick() users never enable it.
    perCoreSleep_ = skip_enabled && cores_.size() > 1 &&
                    config_.perCoreFastForward;
    // First watchdog poll at or after the current cycle (satellite of
    // the fast-forward work: a comparison instead of a modulo in the
    // hottest loop).
    nextDeadlockCheck_ = now_ - now_ % stride;
    while (now_ < config_.maxCycles) {
        if (haltedCores_ == cores_.size()) {
            result.allHalted = true;
            break;
        }
        // Cooperative watchdog cancellation (one TLS load + branch
        // per loop iteration; fast-forward spans cross the loop top
        // once per span, so this does not scale with skipped work).
        if (hostCancelRequested()) {
            result.hostCancelled = true;
            break;
        }
        // The deadlock watchdog is level-triggered, so polling it on
        // a coarse stride delays detection by at most stride-1 cycles
        // of an already-dead run.
        if (now_ == nextDeadlockCheck_) {
            nextDeadlockCheck_ += stride;
            bool any_deadlock = false;
            for (auto &core : cores_) {
                if (core->deadlocked(now_)) {
                    any_deadlock = true;
                    break;
                }
            }
            if (any_deadlock) {
                result.deadlocked = true;
                if (!config_.failArtifactDir.empty())
                    makeFailureArtifact(
                        "deadlock",
                        "no instruction committed for " +
                            std::to_string(
                                config_.core.deadlockThreshold) +
                            " cycles")
                        .writeTo(config_.failArtifactDir);
                break;
            }
        }
        tick();

        if (skip_enabled && !lastTickActive_ && !perCoreSleep_) {
            // Every core is quiescent: nothing observable can happen
            // before the earliest next-event horizon. Land one cycle
            // short so the next tick() executes the horizon cycle
            // itself. Each skipped cycle replicates exactly the
            // bookkeeping a quiescent tick would have performed, so
            // every stat stays bit-identical.
            HorizonResult hz = skipHorizon(now_, stride);
            if (hz.pollOnly) {
                // The horizon is a deadlock poll landing strictly
                // before every tickable event: the poll cycle itself
                // is quiescent, so skip *into* it and let the loop
                // top run the watchdog — no real tick wasted on a
                // provably-empty cycle.
                Cycle n = hz.target - now_;
                for (std::size_t i = 0; i < cores_.size(); ++i) {
                    if (!coreHalted_[i])
                        cores_[i]->applySkippedCycles(n);
                }
                skippedCycles_ += n;
                now_ = hz.target;
                nextDeadlockCheck_ = hz.target;
            } else if (hz.target > now_ + 1) {
                Cycle n = hz.target - 1 - now_;
                for (std::size_t i = 0; i < cores_.size(); ++i) {
                    if (!coreHalted_[i])
                        cores_[i]->applySkippedCycles(n);
                }
                skippedCycles_ += n;
                now_ = hz.target - 1;
                // Skipped polls are provably false (the horizon
                // clamps to the first one that could fire).
                if (nextDeadlockCheck_ <= now_)
                    nextDeadlockCheck_ =
                        (now_ / stride + 1) * stride;
            }
        } else if (perCoreSleep_ && sleepingCores_ > 0 &&
                   sleepingCores_ + haltedCores_ == cores_.size()) {
            // Per-core sleep has put every non-halted core to sleep:
            // jump the global clock to the earliest horizon. Sleeping
            // cores sync lazily (on wake, at audit scans, or at the
            // end of the run), so no per-core bookkeeping happens
            // here. skipHorizon() remains exact for sleepers — their
            // timers froze when they slept, so nextWakeCycle(now_)
            // still reports the horizons coreWakeAt_ was built from.
            HorizonResult hz = skipHorizon(now_, stride);
            if (hz.pollOnly) {
                now_ = hz.target;
                nextDeadlockCheck_ = hz.target;
            } else if (hz.target > now_ + 1) {
                now_ = hz.target - 1;
                if (nextDeadlockCheck_ <= now_)
                    nextDeadlockCheck_ =
                        (now_ / stride + 1) * stride;
            }
        }
    }

    // Bring any still-sleeping cores up to the final cycle before
    // results and final scans read their clocks and stats. now_ never
    // passes a sleeper's proven-quiescent horizon (wakes happen at
    // tick start), so the sync is sound.
    if (sleepingCores_ > 0)
        syncSleepers(now_);

    result.cycles = now_;
    if (cores_.size() == 1) {
        result.skippedCycles = skippedCycles_;
        result.tickedCycles = now_ - skippedCycles_;
    } else {
        // MP runs account per core: cores tick and skip on their own
        // local clocks under per-core sleep, so the system-level
        // counter no longer tells the story. Σ(ticked + skipped) is
        // invariant across skip modes and thread counts.
        for (auto &core : cores_) {
            result.skippedCycles += core->skippedCycles();
            result.tickedCycles += core->tickedCycles();
        }
    }
    for (auto &core : cores_)
        result.instructions += core->instructionsCommitted();

    if (auditor_) {
        // Final structural sweep so short runs (or Sampled level) get
        // at least one end-state scan.
        for (auto &core : cores_)
            core->auditStructures(*auditor_);
        auditor_->scanCoherence(*fabric_, now_);
        result.auditViolations = auditor_->violationCount();
    }
    return result;
}

FailureArtifact
System::makeFailureArtifact(const std::string &kind,
                            const std::string &error) const
{
    FailureArtifact art;
    art.job = config_.jobName;
    art.kind = kind;
    art.error = error;

    JsonValue ctx = JsonValue::object();
    ctx.set("cycle", now_);
    ctx.set("cores", static_cast<std::uint64_t>(cores_.size()));
    ctx.set("scheme", config_.core.scheme == OrderingScheme::ValueReplay
                          ? "vbr"
                          : "assoc_lq");
    ctx.set("dma_seed", config_.dmaSeed);
    ctx.set("max_cycles", config_.maxCycles);
    ctx.set("fault_spec", config_.faults.render());
    if (faults_)
        ctx.set("faults", faults_->summaryJson());
    if (auditor_)
        ctx.set("audit_violations", auditor_->violationCount());
    JsonValue committed = JsonValue::array();
    for (const auto &core : cores_)
        committed.push(core->instructionsCommitted());
    ctx.set("instructions_committed", std::move(committed));
    art.context = std::move(ctx);

    JsonValue trace = JsonValue::array();
    for (const auto &core : cores_) {
        JsonValue per_core = JsonValue::object();
        per_core.set("core",
                     static_cast<std::uint64_t>(core->coreId()));
        JsonValue entries = JsonValue::array();
        for (const CommitTraceEntry &e : core->commitTrace()) {
            JsonValue j = JsonValue::object();
            j.set("seq", e.seq);
            j.set("pc", static_cast<std::uint64_t>(e.pc));
            j.set("cycle", e.cycle);
            j.set("op", std::string(opcodeName(e.op)));
            entries.push(std::move(j));
        }
        per_core.set("entries", std::move(entries));
        trace.push(std::move(per_core));
    }
    art.commitTrace = std::move(trace);
    return art;
}

std::uint64_t
System::totalStat(const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->stats().get(name);
    return total;
}

} // namespace vbr
