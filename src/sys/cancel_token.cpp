#include "sys/cancel_token.hpp"

namespace vbr
{

namespace
{
thread_local const std::atomic<bool> *tlsCancelFlag = nullptr;
} // namespace

void
setHostCancelToken(const std::atomic<bool> *flag)
{
    tlsCancelFlag = flag;
}

bool
hostCancelRequested()
{
    return tlsCancelFlag != nullptr &&
           tlsCancelFlag->load(std::memory_order_relaxed);
}

} // namespace vbr
