#include "sys/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <thread>

#include "common/logging.hpp"
#include "sys/cancel_token.hpp"
#include "sys/job_queue.hpp"

namespace vbr
{

namespace
{

/** Non-negative integer env var, or @p dflt when unset/malformed. */
std::uint64_t
u64FromEnv(const char *name, std::uint64_t dflt)
{
    const char *s = std::getenv(name);
    if (s == nullptr || *s == '\0')
        return dflt;
    std::uint64_t value = 0;
    for (const char *p = s; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return dflt;
        std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
        if (value > (std::numeric_limits<std::uint64_t>::max() -
                     digit) / 10)
            return dflt; // overflow: treat like malformed
        value = value * 10 + digit;
    }
    return value;
}

} // namespace

unsigned
sweepThreads()
{
    if (const char *s = std::getenv("VBR_THREADS")) {
        int n = std::atoi(s);
        return n < 1 ? 1u : static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
}

std::uint64_t
jobTimeoutMsFromEnv()
{
    return u64FromEnv("VBR_JOB_TIMEOUT_MS", 0);
}

std::uint64_t
retryBackoffMsFromEnv()
{
    return u64FromEnv("VBR_RETRY_BACKOFF_MS", 250);
}

void
sweepBackoffSleep(unsigned attempt, std::uint64_t baseMs)
{
    std::uint64_t delay = retryBackoffDelayMs(attempt, baseMs);
    if (delay == 0)
        return;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

/**
 * Monitor internals. The watchdog reads the host's steady clock —
 * the second sanctioned wall-clock consumer besides bench_json: its
 * only effect on results is turning an over-budget attempt into a
 * kind:"timeout" quarantine, and timed-out jobs are never cached or
 * merged, so host time still cannot leak into any report byte.
 */
struct JobWatchdog::Impl
{
    struct Slot
    {
        std::atomic<bool> cancel{false};
        /** Steady-clock deadline in ms; -1 = no attempt running. */
        std::atomic<std::int64_t> deadlineMs{-1};
    };

    Impl(std::uint64_t timeoutMs, std::size_t n)
        : timeout(static_cast<std::int64_t>(timeoutMs)), slots(n)
    {
    }

    std::int64_t timeout;
    std::vector<Slot> slots;
    std::mutex mutex;
    std::condition_variable cv;
    bool stop = false;
    std::thread monitor;

    static std::int64_t
    nowMs()
    {
        // vbr-analyze: det-banned-source(watchdog deadline clock; cannot reach results — timed-out jobs are quarantined, never cached or merged)
        auto t = std::chrono::steady_clock::now();
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   t.time_since_epoch())
            .count();
    }

    void
    loop()
    {
        // Poll at ~1/8 of the budget so overruns are caught within
        // ~12% of the timeout, but never busier than 1ms or lazier
        // than 250ms.
        std::int64_t poll =
            std::max<std::int64_t>(1,
                                   std::min<std::int64_t>(
                                       timeout / 8 + 1, 250));
        std::unique_lock<std::mutex> lock(mutex);
        while (!stop) {
            cv.wait_for(lock, std::chrono::milliseconds(poll));
            if (stop)
                return;
            std::int64_t now = nowMs();
            for (Slot &s : slots) {
                std::int64_t d =
                    s.deadlineMs.load(std::memory_order_acquire);
                if (d >= 0 && now >= d)
                    s.cancel.store(true, std::memory_order_release);
            }
        }
    }
};

JobWatchdog::JobWatchdog(std::uint64_t timeoutMs, std::size_t slots)
    : impl_(std::make_unique<Impl>(timeoutMs, slots))
{
    Impl *impl = impl_.get();
    impl->monitor = std::thread([impl] { impl->loop(); });
}

JobWatchdog::~JobWatchdog()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stop = true;
    }
    impl_->cv.notify_all();
    impl_->monitor.join();
}

void
JobWatchdog::beginAttempt(std::size_t index)
{
    Impl::Slot &slot = impl_->slots[index];
    slot.cancel.store(false, std::memory_order_release);
    slot.deadlineMs.store(Impl::nowMs() + impl_->timeout,
                          std::memory_order_release);
    setHostCancelToken(&slot.cancel);
}

bool
JobWatchdog::endAttempt(std::size_t index)
{
    Impl::Slot &slot = impl_->slots[index];
    slot.deadlineMs.store(-1, std::memory_order_release);
    setHostCancelToken(nullptr);
    return slot.cancel.load(std::memory_order_acquire);
}

bool
ShardSpec::parse(const std::string &text, ShardSpec &out)
{
    // Hand-rolled instead of sscanf("%u"): scanf's behavior on a
    // value outside unsigned's range is undefined, and a shard spec
    // comes straight from the environment.
    std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size())
        return false;
    std::uint64_t parts[2] = {0, 0};
    const std::string fields[2] = {text.substr(0, slash),
                                   text.substr(slash + 1)};
    for (int f = 0; f < 2; ++f) {
        for (char c : fields[f]) {
            if (c < '0' || c > '9')
                return false; // rejects whitespace, signs, hex, ...
            parts[f] = parts[f] * 10 + static_cast<unsigned>(c - '0');
            if (parts[f] >
                std::numeric_limits<unsigned>::max())
                return false;
        }
    }
    if (parts[1] == 0 || parts[0] >= parts[1])
        return false;
    out.index = static_cast<unsigned>(parts[0]);
    out.count = static_cast<unsigned>(parts[1]);
    return true;
}

ShardSpec
ShardSpec::fromEnv()
{
    const char *s = std::getenv("VBR_SHARD");
    if (s == nullptr || s[0] == '\0')
        return ShardSpec();
    ShardSpec shard;
    if (!parse(s, shard))
        fatal(std::string("malformed VBR_SHARD '") + s +
              "' (want i/N with 0 <= i < N)");
    return shard;
}

SpecSweepOutcome
SweepRunner::runSpecs(const std::vector<SimJobSpec> &specs,
                      const SpecSweepOptions &opts) const
{
    const std::size_t n = specs.size();
    SpecSweepOutcome out;
    out.results.resize(n);
    out.ok.assign(n, 0);
    out.source.assign(n, JobSource::Skipped);

    const bool use_cache =
        opts.cache != nullptr && opts.cache->enabled();

    // Phase 1 (serial): content keys + cache lookups, in submission
    // order. A hit resolves the slot for every shard — hits are how
    // non-owned jobs get their results in a warm sharded run.
    std::vector<JobKey> keys(use_cache ? n : 0);
    std::vector<std::size_t> to_run;
    for (std::size_t i = 0; i < n; ++i) {
        if (use_cache) {
            keys[i] = jobKey(specs[i]);
            if (opts.cache->lookup(specs[i], keys[i],
                                   out.results[i])) {
                out.ok[i] = 1;
                out.source[i] = JobSource::CacheHit;
                ++out.cacheHits;
                continue;
            }
        }
        if (!opts.shard.owns(i)) {
            ++out.skipped;
            continue;
        }
        to_run.push_back(i);
    }

    // Phase 2: execute the owned misses on this runner's pool.
    if (opts.guarded) {
        std::vector<GuardedJob<SimJobResult>> jobs;
        jobs.reserve(to_run.size());
        for (std::size_t i : to_run)
            jobs.push_back({specs[i].system.jobName, [&specs, i] {
                                return runSimJob(specs[i], true);
                            }});
        SweepOutcome<SimJobResult> guarded =
            runGuarded(std::move(jobs), opts.guard);
        for (std::size_t k = 0; k < to_run.size(); ++k) {
            std::size_t i = to_run[k];
            if (guarded.ok[k]) {
                out.results[i] = std::move(guarded.results[k]);
                out.ok[i] = 1;
                out.source[i] = JobSource::Simulated;
                ++out.simulated;
            } else {
                out.source[i] = JobSource::Quarantined;
            }
        }
        for (SweepFailure &f : guarded.quarantined) {
            f.index = to_run[f.index]; // back to submission index
            out.quarantined.push_back(std::move(f));
        }
    } else {
        std::vector<std::function<SimJobResult()>> jobs;
        jobs.reserve(to_run.size());
        for (std::size_t i : to_run)
            jobs.push_back(
                [&specs, i] { return runSimJob(specs[i], false); });
        std::vector<SimJobResult> results = run(std::move(jobs));
        for (std::size_t k = 0; k < to_run.size(); ++k) {
            std::size_t i = to_run[k];
            out.results[i] = std::move(results[k]);
            out.ok[i] = 1;
            out.source[i] = JobSource::Simulated;
            ++out.simulated;
        }
    }

    // Phase 3 (serial, submission order): persist newly simulated ok
    // results. Quarantined/failed jobs never reach the cache. A
    // store failure never fails the sweep (the result is already in
    // hand) but is counted and warned so operators notice a cache
    // that silently stopped absorbing work.
    if (use_cache)
        for (std::size_t i : to_run)
            if (out.ok[i] &&
                !opts.cache->store(specs[i], keys[i],
                                   out.results[i])) {
                ++out.storeFailures;
                warn("sweep: result cache store failed for job '" +
                     specs[i].system.jobName + "'");
            }

    return out;
}

} // namespace vbr
