#include "sys/sweep_runner.hpp"

#include <cstdlib>
#include <thread>

namespace vbr
{

unsigned
sweepThreads()
{
    if (const char *s = std::getenv("VBR_THREADS")) {
        int n = std::atoi(s);
        return n < 1 ? 1u : static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
}

} // namespace vbr
