#include "sys/sweep_runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/logging.hpp"

namespace vbr
{

unsigned
sweepThreads()
{
    if (const char *s = std::getenv("VBR_THREADS")) {
        int n = std::atoi(s);
        return n < 1 ? 1u : static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
}

bool
ShardSpec::parse(const std::string &text, ShardSpec &out)
{
    unsigned index = 0;
    unsigned count = 0;
    char trailing = '\0';
    if (std::sscanf(text.c_str(), "%u/%u%c", &index, &count,
                    &trailing) != 2)
        return false;
    if (count == 0 || index >= count)
        return false;
    out.index = index;
    out.count = count;
    return true;
}

ShardSpec
ShardSpec::fromEnv()
{
    const char *s = std::getenv("VBR_SHARD");
    if (s == nullptr || s[0] == '\0')
        return ShardSpec();
    ShardSpec shard;
    if (!parse(s, shard))
        fatal(std::string("malformed VBR_SHARD '") + s +
              "' (want i/N with 0 <= i < N)");
    return shard;
}

SpecSweepOutcome
SweepRunner::runSpecs(const std::vector<SimJobSpec> &specs,
                      const SpecSweepOptions &opts) const
{
    const std::size_t n = specs.size();
    SpecSweepOutcome out;
    out.results.resize(n);
    out.ok.assign(n, 0);
    out.source.assign(n, JobSource::Skipped);

    const bool use_cache =
        opts.cache != nullptr && opts.cache->enabled();

    // Phase 1 (serial): content keys + cache lookups, in submission
    // order. A hit resolves the slot for every shard — hits are how
    // non-owned jobs get their results in a warm sharded run.
    std::vector<JobKey> keys(use_cache ? n : 0);
    std::vector<std::size_t> to_run;
    for (std::size_t i = 0; i < n; ++i) {
        if (use_cache) {
            keys[i] = jobKey(specs[i]);
            if (opts.cache->lookup(specs[i], keys[i],
                                   out.results[i])) {
                out.ok[i] = 1;
                out.source[i] = JobSource::CacheHit;
                ++out.cacheHits;
                continue;
            }
        }
        if (!opts.shard.owns(i)) {
            ++out.skipped;
            continue;
        }
        to_run.push_back(i);
    }

    // Phase 2: execute the owned misses on this runner's pool.
    if (opts.guarded) {
        std::vector<GuardedJob<SimJobResult>> jobs;
        jobs.reserve(to_run.size());
        for (std::size_t i : to_run)
            jobs.push_back({specs[i].system.jobName, [&specs, i] {
                                return runSimJob(specs[i], true);
                            }});
        SweepOutcome<SimJobResult> guarded =
            runGuarded(std::move(jobs), opts.guard);
        for (std::size_t k = 0; k < to_run.size(); ++k) {
            std::size_t i = to_run[k];
            if (guarded.ok[k]) {
                out.results[i] = std::move(guarded.results[k]);
                out.ok[i] = 1;
                out.source[i] = JobSource::Simulated;
                ++out.simulated;
            } else {
                out.source[i] = JobSource::Quarantined;
            }
        }
        for (SweepFailure &f : guarded.quarantined) {
            f.index = to_run[f.index]; // back to submission index
            out.quarantined.push_back(std::move(f));
        }
    } else {
        std::vector<std::function<SimJobResult()>> jobs;
        jobs.reserve(to_run.size());
        for (std::size_t i : to_run)
            jobs.push_back(
                [&specs, i] { return runSimJob(specs[i], false); });
        std::vector<SimJobResult> results = run(std::move(jobs));
        for (std::size_t k = 0; k < to_run.size(); ++k) {
            std::size_t i = to_run[k];
            out.results[i] = std::move(results[k]);
            out.ok[i] = 1;
            out.source[i] = JobSource::Simulated;
            ++out.simulated;
        }
    }

    // Phase 3 (serial, submission order): persist newly simulated ok
    // results. Quarantined/failed jobs never reach the cache.
    if (use_cache)
        for (std::size_t i : to_run)
            if (out.ok[i])
                opts.cache->store(specs[i], keys[i], out.results[i]);

    return out;
}

} // namespace vbr
