// Dispatch/rename stage of OooCore.

#include "core/ooo_core.hpp"

#include "isa/semantics.hpp"
#include "verify/auditor.hpp"

namespace vbr
{

void
OooCore::dispatchStage(Cycle now)
{
    for (unsigned n = 0; n < config_.dispatchWidth; ++n) {
        if (frontEnd_.empty() || frontEnd_.front().readyCycle > now)
            break;
        if (rob_.size() >= config_.robEntries) {
            // vbr-analyze: quiescent(ROB-full stall accounting; applySkippedCycles replicates it per skipped cycle)
            ++(*sc_dispatch_stalls_rob_);
            // vbr-analyze: quiescent(records which stall to replicate during the skip)
            dispatchStallThisTick_ = sc_dispatch_stalls_rob_;
            break;
        }

        const FetchedInst &f = frontEnd_.front();
        const Opcode op = f.inst.op;
        bool is_load = isLoad(op);
        bool is_store = isStore(op);
        bool is_swap = op == Opcode::SWAP;
        bool is_membar = op == Opcode::MEMBAR;
        bool needs_iq = !(op == Opcode::NOP || op == Opcode::HALT ||
                          is_membar || is_swap);

        if (needs_iq && iq_.size() >= config_.iqEntries) {
            // vbr-analyze: quiescent(IQ-full stall accounting; applySkippedCycles replicates it per skipped cycle)
            ++(*sc_dispatch_stalls_iq_);
            // vbr-analyze: quiescent(records which stall to replicate during the skip)
            dispatchStallThisTick_ = sc_dispatch_stalls_iq_;
            break;
        }
        if (is_load && ordering_->loadQueueFull()) {
            // vbr-analyze: quiescent(LQ-full stall accounting; applySkippedCycles replicates it per skipped cycle)
            ++(*sc_dispatch_stalls_loadq_);
            // vbr-analyze: quiescent(records which stall to replicate during the skip)
            dispatchStallThisTick_ = sc_dispatch_stalls_loadq_;
            break;
        }
        if (is_store && sq_.full()) {
            // vbr-analyze: quiescent(SQ-full stall accounting; applySkippedCycles replicates it per skipped cycle)
            ++(*sc_dispatch_stalls_sq_);
            // vbr-analyze: quiescent(records which stall to replicate during the skip)
            dispatchStallThisTick_ = sc_dispatch_stalls_sq_;
            break;
        }

        DynInst d;
        d.seq = nextSeq_++;
        d.pc = f.pc;
        d.inst = f.inst;
        d.isLoadOp = is_load;
        d.isStoreOp = is_store;
        d.isSwapOp = is_swap;
        d.isMembarOp = is_membar;
        d.isCtrlOp = isControl(op);
        d.predTaken = f.predTaken;
        d.predTarget = f.predTarget;
        d.predSnap = f.snap;
        d.fetchCycle = now;

        if (f.inst.readsRa() && f.inst.ra != 0)
            d.srcA = renameMap_[f.inst.ra];
        if (f.inst.readsRb() && f.inst.rb != 0)
            d.srcB = renameMap_[f.inst.rb];
        if (f.inst.writesRd()) {
            renameMap_[f.inst.rd] = d.seq;
            regWriters_[f.inst.rd].push_back(d.seq);
        }

        if (op == Opcode::NOP || op == Opcode::HALT || is_membar)
            d.executed = true;

        // Watermark bookkeeping (seqs are monotonic: end() hints).
        if (is_load || is_swap)
            incompleteMemOps_.insert(incompleteMemOps_.end(), d.seq);
        if (is_load || is_store || is_swap)
            unscheduledMemOps_.insert(unscheduledMemOps_.end(),
                                      d.seq);

        if (is_load)
            ordering_->dispatchLoad(d.seq, d.pc, memSize(op));
        if (is_store) {
            sq_.dispatch(d.seq, d.pc, memSize(op));
            depPred_->notifyStoreDispatched(d.pc, d.seq);
            if (AuditEventSink *a = auditSink())
                a->onStoreDispatched(coreId(), d.seq);
        }
        if (is_swap || is_membar)
            fences_.push_back(d.seq);

        // Initial readiness: architectural source, or an in-flight
        // producer that has already executed.
        auto producer_done = [this](SeqNum producer) {
            if (producer == kNoSeq)
                return true;
            const DynInst *p = findInst(producer);
            return p == nullptr || p->executed;
        };
        d.aReady = !f.inst.readsRa() || producer_done(d.srcA);
        d.bReady = !f.inst.readsRb() || producer_done(d.srcB);

        bool to_iq = needs_iq;
        rob_.push_back(d);
        if (to_iq) {
            rob_.back().inIssueQueue = true;
            iq_.push_back({rob_.back().seq, &rob_.back()});
        }
        frontEnd_.pop_front();
        ++(*sc_dispatched_instructions_);
        activityThisTick_ = true;
        trace(TraceKind::Dispatch, rob_.back());
    }
}

} // namespace vbr
