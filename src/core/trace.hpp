/**
 * @file
 * Pipeline tracing. A PipelineTracer subscribed to a core receives
 * one event per pipeline milestone per dynamic instruction, enabling
 * pipeview-style visualization, debugging, and invariant checking
 * (tests assert fetch <= dispatch <= issue <= writeback <= commit and
 * that replay events appear exactly where the configuration says
 * they must).
 */

#ifndef VBR_CORE_TRACE_HPP
#define VBR_CORE_TRACE_HPP

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace vbr
{

/** Pipeline milestones reported to tracers. */
enum class TraceKind : std::uint8_t
{
    Dispatch,     ///< renamed into the window
    Issue,        ///< began execution (loads: premature access)
    Writeback,    ///< completed execution
    ReplayIssued, ///< replay access through the commit port
    Commit,       ///< retired
    Squash,       ///< removed by a squash (any cause)
};

/** One trace record. */
struct TraceEvent
{
    TraceKind kind = TraceKind::Dispatch;
    Cycle cycle = 0;
    CoreId core = 0;
    SeqNum seq = kNoSeq;
    std::uint32_t pc = 0;
    Instruction inst;
};

/** Subscriber interface. */
class PipelineTracer
{
  public:
    virtual ~PipelineTracer() = default;
    virtual void onTrace(const TraceEvent &event) = 0;
};

/** Tracer that stores every event (tests, offline analysis). */
class RecordingTracer : public PipelineTracer
{
  public:
    // vbr-analyze: quiescent(observer-side recording buffer, not simulator state)
    void
    onTrace(const TraceEvent &event) override
    {
        events_.push_back(event);
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    // vbr-analyze: quiescent(test-harness buffer reset, not simulator state)
    void clear() { events_.clear(); }

  private:
    std::vector<TraceEvent> events_;
};

/** Tracer that renders human-readable lines through a sink. */
class TextTracer : public PipelineTracer
{
  public:
    /** @param sink called once per formatted line. */
    explicit TextTracer(std::function<void(const std::string &)> sink)
        : sink_(std::move(sink))
    {
    }

    void
    onTrace(const TraceEvent &event) override
    {
        static const char *names[] = {"dispatch", "issue",
                                      "writeback", "replay",
                                      "commit", "squash"};
        std::ostringstream os;
        os << event.cycle << " c" << event.core << " #" << event.seq
           << " " << names[static_cast<unsigned>(event.kind)] << " @"
           << event.pc << " " << event.inst.disassemble();
        sink_(os.str());
    }

  private:
    std::function<void(const std::string &)> sink_;
};

} // namespace vbr

#endif // VBR_CORE_TRACE_HPP
