// Issue/execute stage of OooCore: load and store issue, store-data
// capture, and the select loop over the issue queue. Memory-ordering
// consequences of an issue (CAM searches, replay-queue recording)
// are delegated to the ordering backend.

#include "core/ooo_core.hpp"

#include "isa/semantics.hpp"
#include "mem/memory_image.hpp"

namespace vbr
{

void
OooCore::issueLoad(DynInst &inst, Cycle now)
{
    Addr addr = effectiveAddr(inst.inst, readOperand(inst.srcA,
                                                     inst.inst.ra));
    unsigned size = memSize(inst.inst.op);
    inst.memAddr = addr;
    inst.memSize = size;
    inst.addrValid = (addr % size == 0) && (addr + size <= mem_.size());

    SqSearchResult res = sq_.searchForLoad(inst.seq, addr, size);
    if (res.kind == SqSearchResult::Kind::Blocked) {
        // Value prediction turns the stall into speculation: execute
        // with the predicted value; the mandatory replay validates.
        std::optional<Word> predicted;
        if (valuePred_)
            predicted = valuePred_->predict(inst.pc);
        if (!predicted) {
            inst.blockedOnStore = res.store;
            ++(*sc_loads_blocked_on_store_);
            activityThisTick_ = true; // one-time gate transition
            return; // stays in the issue queue
        }
        inst.valuePredicted = true;
        inst.replayInfo.bypassedUnresolvedStore = true;
        inst.replayInfo.issuedOutOfOrder = true;
        inst.replayInfo.issuedOutOfOrderSched = true;
        inst.replayInfo.issuedBeforeOlderLoad = true;
        inst.prematureValue = *predicted;
        inst.prematureVersion = 0;
        inst.sampleCycle = now;
        inst.destValue = *predicted;
        inst.issued = true;
        inst.inIssueQueue = false;
        unscheduledMemOps_.erase(inst.seq);
        pendingWb_.emplace(now + 1, inst.seq);
        ++(*sc_loads_issued_);
        ++(*sc_loads_value_predicted_);
        activityThisTick_ = true;
        trace(TraceKind::Issue, inst);
        ordering_->onLoadIssued(inst, now);
        return;
    }

    inst.replayInfo.bypassedUnresolvedStore = res.sawUnresolvedOlder;
    inst.replayInfo.issuedOutOfOrder = olderMemOpIncomplete(inst.seq);
    inst.replayInfo.issuedOutOfOrderSched =
        olderMemOpUnscheduled(inst.seq);
    // incompleteMemOps_ holds exactly the unexecuted loads/SWAPs;
    // this load is in it with seq == inst.seq, so strict < excludes
    // it (this used to be another front-to-back ROB walk).
    inst.replayInfo.issuedBeforeOlderLoad =
        !incompleteMemOps_.empty() &&
        *incompleteMemOps_.begin() < inst.seq;
    if (res.sawUnresolvedOlder)
        ++(*sc_loads_bypassing_unresolved_store_);
    if (inst.replayInfo.issuedOutOfOrder)
        ++(*sc_loads_issued_out_of_order_);

    unsigned lat = 1;
    if (res.kind == SqSearchResult::Kind::Forward) {
        inst.forwarded = true;
        inst.forwardStore = res.store;
        inst.prematureValue = res.value;
        inst.prematureVersion = 0; // resolved at commit via the store
        ++(*sc_loads_forwarded_);
    } else {
        if (inst.addrValid) {
            MemAccess acc = hierarchy_.read(addr, inst.pc);
            lat = acc.latency;
            ++(*sc_l1d_accesses_premature_);
        }
        inst.prematureValue = readMemSafe(addr, size);
        inst.prematureVersion = versionSafe(addr);
    }
    inst.sampleCycle = now;
    inst.destValue = inst.prematureValue;
    inst.issued = true;
    inst.inIssueQueue = false;
    unscheduledMemOps_.erase(inst.seq);
    pendingWb_.emplace(now + lat, inst.seq);
    ++(*sc_loads_issued_);
    activityThisTick_ = true;
    trace(TraceKind::Issue, inst);

    // Backend reaction: CAM record + ordering searches (baseline) or
    // replay-queue recording (value mode). May squash younger ops.
    ordering_->onLoadIssued(inst, now);
}

void
OooCore::issueStore(DynInst &inst, Cycle now)
{
    // Split store issue: address generation happens as soon as the
    // base register is ready; the data operand is captured separately
    // when it becomes available. Early agen is what keeps the
    // unresolved-store windows short (and the no-unresolved-store
    // filter effective).
    Word a = readOperand(inst.srcA, inst.inst.ra);
    Addr addr = effectiveAddr(inst.inst, a);
    unsigned size = memSize(inst.inst.op);
    inst.memAddr = addr;
    inst.memSize = size;
    inst.addrValid = (addr % size == 0) && (addr + size <= mem_.size());

    sq_.setAddress(inst.seq, addr);
    inst.issued = true;
    inst.inIssueQueue = false;
    unscheduledMemOps_.erase(inst.seq);
    ++(*sc_stores_issued_);
    activityThisTick_ = true;
    trace(TraceKind::Issue, inst);

    bool data_known = !inst.inst.readsRb() || inst.bReady;
    Word data = 0;
    if (data_known) {
        data = readOperand(inst.srcB, inst.inst.rb);
        inst.storeData = data;
        sq_.setData(inst.seq, data);
        pendingWb_.emplace(now + 1, inst.seq);
    } else {
        pendingStoreData_.push_back(&inst);
        ++(*sc_stores_agen_before_data_);
    }

    // Exclusive prefetch so the drain at commit usually hits.
    if (inst.addrValid && config_.exclusiveStorePrefetch) {
        MemAccess acc = hierarchy_.acquireOwnership(addr);
        if (SqEntry *e = sq_.find(inst.seq))
            e->ownershipReadyCycle = now + acc.latency;
    }

    // Backend reaction: the baseline's CAM RAW search (may squash) or
    // the value mode's shadow CAM statistics.
    ordering_->onStoreAgen(inst, data_known, now);
}

void
OooCore::captureStoreData(Cycle now)
{
    for (std::size_t i = 0; i < pendingStoreData_.size();) {
        DynInst *st = pendingStoreData_[i];
        if (!st->bReady) {
            ++i;
            continue;
        }
        Word data = readOperand(st->srcB, st->inst.rb);
        st->storeData = data;
        sq_.setData(st->seq, data);
        pendingWb_.emplace(now + 1, st->seq);
        activityThisTick_ = true;
        pendingStoreData_[i] = pendingStoreData_.back();
        pendingStoreData_.pop_back();
    }
}

void
OooCore::issueStage(Cycle now)
{
    unsigned alu = config_.intAlus;
    unsigned muldiv = config_.intMulDivs;
    unsigned fpalu = config_.fpAlus;
    unsigned fpmul = config_.fpMulDivs;
    unsigned loads = config_.loadPorts;
    unsigned issued = 0;

    for (std::size_t i = 0; i < iq_.size() && issued < config_.issueWidth;) {
        DynInst *inst = iq_[i].inst;

        // Stores only need the address operand to issue (agen); the
        // data operand is captured when it arrives.
        bool eligible = inst->isStoreOp
                            ? inst->aReady
                            : operandsReady(*inst);
        if (!eligible) {
            ++i;
            continue;
        }

        FuClass fu = fuClass(inst->inst.op);
        unsigned *pool = nullptr;
        switch (fu) {
          case FuClass::IntAlu:
          case FuClass::StorePort:
            pool = &alu;
            break;
          case FuClass::IntMul:
          case FuClass::IntDiv:
            pool = &muldiv;
            break;
          case FuClass::FpAlu:
            pool = &fpalu;
            break;
          case FuClass::FpMul:
          case FuClass::FpDiv:
            pool = &fpmul;
            break;
          case FuClass::LoadPort:
            pool = &loads;
            break;
          case FuClass::None:
            pool = nullptr;
            break;
        }
        if (pool && *pool == 0) {
            ++i;
            continue;
        }

        if (inst->isLoadOp) {
            // Ordering gates for speculative load issue.
            if (olderFenceInFlight(inst->seq)) {
                ++i;
                continue;
            }
            if (inst->blockedOnStore != kNoSeq) {
                DynInst *blocker = findInst(inst->blockedOnStore);
                if (blocker && !blocker->executed) {
                    ++i;
                    continue;
                }
                // vbr-analyze: quiescent(re-derivable eligibility cache; the enabling writeback noted)
                inst->blockedOnStore = kNoSeq;
            }
            // Backend hold (e.g. rule-3: a post-squash suppressed
            // load may only issue as the oldest instruction).
            if (ordering_->holdLoadIssue(*inst)) {
                ++i;
                continue;
            }
            DepAdvice advice = depPred_->adviseLoad(inst->pc);
            if (advice.waitForAllStores &&
                sq_.unresolvedOlderThan(inst->seq) > 0) {
                ++i;
                continue;
            }
            if (advice.waitForStore != kNoSeq &&
                advice.waitForStore < inst->seq) {
                DynInst *st = findInst(advice.waitForStore);
                if (st && st->isStoreOp && !st->executed) {
                    ++i;
                    continue;
                }
            }
            issueLoad(*inst, now);
            if (!inst->issued && !squashedThisCycle_) {
                ++i; // blocked on a store: stays in the queue
                continue;
            }
        } else if (inst->isStoreOp) {
            if (olderFenceInFlight(inst->seq)) {
                ++i;
                continue;
            }
            issueStore(*inst, now);
        } else {
            // ALU / FP / control.
            Word a = readOperand(inst->srcA, inst->inst.ra);
            Word b = readOperand(inst->srcB, inst->inst.rb);
            if (inst->isCtrlOp) {
                inst->actualTaken = evalBranchTaken(inst->inst, a, b);
                inst->actualTarget = controlTarget(inst->inst, a);
                if (inst->inst.op == Opcode::JAL)
                    inst->destValue = inst->pc + 1;
            } else {
                inst->destValue = evalAlu(inst->inst, a, b);
            }
            inst->issued = true;
            inst->inIssueQueue = false;
            pendingWb_.emplace(now + fuLatency(fu), inst->seq);
            activityThisTick_ = true;
            trace(TraceKind::Issue, *inst);
        }

        // A squash during issue (load-load ordering or RAW violation)
        // only removes *younger* entries, so index i and everything
        // before it remain valid.
        if (inst->issued) {
            if (pool)
                --*pool;
            ++issued;
            activityThisTick_ = true;
            iq_.erase(iq_.begin() + static_cast<std::ptrdiff_t>(i));
            // no ++i: the erase shifted the next candidate into slot i
        }
        if (squashedThisCycle_)
            break; // the window was rearranged; stop issuing
    }
    // vbr-analyze: quiescent(idle-cycle zero samples are replicated by applySkippedCycles)
    (*sc_issued_per_cycle_).sample(issued);
}

} // namespace vbr
