/**
 * @file
 * The out-of-order superscalar core. Pipeline:
 *
 *   fetch -> (frontEndDepth cycles) -> dispatch/rename -> issue ->
 *   execute -> writeback -> [replay -> compare] -> commit
 *
 * The core owns the scheme-neutral machinery — ROB, issue queue,
 * rename, store queue, branch prediction, the commit-stage port —
 * and delegates every memory-ordering decision to a pluggable
 * MemoryOrderingUnit (src/ordering/): the baseline CAM load queue or
 * the paper's value-based replay pipe. The pipeline stages contain
 * zero scheme-specific branches; they invoke the backend hooks at
 * fixed points (see ordering/memory_ordering_unit.hpp for the
 * contract). Each stage lives in its own translation unit
 * (fetch.cpp, dispatch.cpp, issue.cpp, writeback.cpp, backend.cpp,
 * commit.cpp, squash.cpp).
 *
 * Memory ordering events of interest:
 *  - premature load execution at issue (store-queue search, cache
 *    access, dependence-predictor gating);
 *  - store address generation (exclusive ownership prefetch + the
 *    backend's RAW check);
 *  - store drain at the commit-stage port = global visibility;
 *  - load replay through the same commit-stage port (value mode);
 *  - external invalidations/fills routed to the backend (snooping
 *    CAM searches or replay-filter arming).
 */

#ifndef VBR_CORE_OOO_CORE_HPP
#define VBR_CORE_OOO_CORE_HPP

#include <deque>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "common/pool_alloc.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/commit_observer.hpp"
#include "core/core_config.hpp"
#include "core/dyn_inst.hpp"
#include "core/trace.hpp"
#include "isa/program.hpp"
#include "lsq/store_queue.hpp"
#include "mem/hierarchy.hpp"
#include "ordering/memory_ordering_unit.hpp"
#include "predict/branch_predictor.hpp"
#include "predict/dep_predictor.hpp"
#include "predict/value_predictor.hpp"
#include "verify/audit_sink.hpp"

namespace vbr
{

class MemoryImage;
class InvariantAuditor;
class FaultInjector;

/** One retired instruction, kept in a small per-core ring so failure
 * artifacts can show the last-N committed instructions. */
struct CommitTraceEntry
{
    SeqNum seq = kNoSeq;
    std::uint32_t pc = 0;
    Cycle cycle = 0;
    Opcode op = Opcode::HALT;
};

/** One simulated core executing one thread of a Program. */
class OooCore final : public MemEventClient, private OrderingHost
{
  public:
    OooCore(const CoreConfig &config, const Program &prog,
            MemoryImage &mem, CacheHierarchy &hierarchy,
            unsigned thread_id);

    /** Advance one clock cycle. Returns the activity flag as of the
     * end of this core's tick; the System reads activeThisTick()
     * after ALL cores ticked instead, because a later-ticking core
     * can still deliver an invalidation here. */
    bool tick(Cycle now);

    // --- two-phase multiprocessor tick (see DESIGN.md §10) ------------
    //
    // For cores > 1 the System splits each cycle into a serial front
    // phase (begin-of-cycle work + the commit stage, run per core in
    // core-index order against live memory) and a compute phase (the
    // remaining stages, run against frozen post-commit coherence
    // state — parallelizable across cores). The per-core stage order
    // is exactly the serial tick()'s; only cross-core delivery timing
    // is batched. The split is always active in MP mode, so outcomes
    // are thread-count-independent by construction.

    /** Phase A (serial, core-index order): per-cycle flag resets,
     * begin-of-cycle backend work (deferred snoop searches), and the
     * commit stage — store drains, SWAP execution, retirement —
     * against live memory. One core runs at a time, so RMW atomicity
     * and cross-core drain order need no locking. Returns false when
     * the core entered the cycle halted (phase B must be skipped). */
    bool tickFront(Cycle now);

    /** Phase B: every remaining stage (backend, writeback, store-data
     * capture, issue, dispatch, fetch) plus end-of-tick samples. No
     * memory or directory state is mutated; coherence fabric requests
     * are logged for end-of-cycle application and answered from a
     * preview of the frozen directory, so concurrent cores neither
     * mutate shared state nor observe each other. Returns the
     * activity verdict accumulated across both phases. */
    bool tickBack(Cycle now);

    /** Flush any phase-B buffered auditor events. The System calls
     * this for every core that ran phase B (core-index order) before
     * applying deferred coherence ops: deliveries during another
     * core's applyDeferredOps slot can raise direct auditor events on
     * this core, and those must not overtake the buffered
     * compute-phase events. */
    void flushDeferredAudit();

    // --- per-core slack fast-forward ----------------------------------

    /** Advance a sleeping core's local clock to cycle @p c by
     * accounting the intervening cycles as skipped (no-op when the
     * core is halted or already at/past @p c). Callers must only pass
     * horizons the core was proven quiescent through. */
    void syncTo(Cycle c);

    /** Publish the horizon this sleeping core may lazily sync to when
     * an external delivery arrives (kNeverCycle while awake). The
     * System sets it each global cycle a core sleeps through. Plain
     * horizons replay every cycle through @p c as fully quiescent. */
    // vbr-analyze: quiescent(sleep bookkeeping; deliveries wake via onExternalInvalidation)
    void setSyncHorizon(Cycle c)
    {
        syncHorizon_ = c;
        syncHorizonFrontTick_ = false;
    }

    /** Publish cycle @p c as a *front-tick* horizon: a delivery
     * consuming it replays quiescent cycles through c-1, then runs
     * tickFront(c) for real before the delivery is processed. The
     * System publishes this once phase A has passed a sleeper by:
     * a later phase-A delivery lands between the victim's front and
     * back halves of cycle c, so the victim's dispatch/fetch (and
     * their stall + occupancy accounting) for c run post-delivery in
     * phase B — the quiescent-replay model would wrongly re-apply the
     * pre-delivery stall pin to cycle c. */
    // vbr-analyze: quiescent(sleep bookkeeping; deliveries wake via onExternalInvalidation)
    void setSyncHorizonFrontTick(Cycle c)
    {
        syncHorizon_ = c;
        syncHorizonFrontTick_ = true;
    }

    /** The core-local clock (== the global clock while awake; lags it
     * while the core sleeps under per-core fast-forward). */
    Cycle localCycle() const { return cycles_; }

    /** Cycles this core accounted via skip (global or per-core). */
    Cycle skippedCycles() const { return skippedCycles_; }

    /** Cycles this core actually ticked while not halted. */
    Cycle tickedCycles() const { return tickedCycles_; }

    /** True when a pipeline tracer is attached (shared-mutable, so
     * the System falls back to serial phase 1). */
    bool hasTracer() const { return tracer_ != nullptr; }

    /** Clear the activity flag. The System calls this on every core
     * at the start of its own tick, before fault-delayed snoops are
     * delivered, so any external event delivered in cycle N counts as
     * cycle-N activity regardless of core tick order. */
    // vbr-analyze: quiescent(this is the activity protocol itself: the per-tick flag reset)
    void resetActivity() { activityThisTick_ = false; }

    /** True when the core changed any state since resetActivity():
     * fetched, dispatched, issued, wrote back, retired, squashed,
     * armed a new timer, or observed an external event. False means
     * the tick was quiescent — a pure re-poll of closed gates whose
     * repetition is a no-op until a timer below nextWakeCycle() fires
     * or another component acts on this core. */
    bool activeThisTick() const { return activityThisTick_; }

    /**
     * Earliest future cycle at which this core can make progress on
     * its own: pending writebacks, front-end/icache readiness, store
     * ownership ETAs, the ROB head's compare/ownership timer, the
     * dependence predictor's periodic clear, and the ordering
     * backend's own horizon. kNeverCycle when every gate is
     * event-driven (or the core is halted) — the core then only wakes
     * through another component's activity. Valid only right after a
     * quiescent tick; undershoot is harmless, overshoot is forbidden
     * (no observable transition may occur strictly before the
     * reported horizon).
     */
    Cycle nextWakeCycle(Cycle now) const;

    /**
     * Account @p n skipped quiescent cycles: replicates exactly the
     * per-cycle bookkeeping a quiescent tick performs (cycle counter,
     * ROB/IQ occupancy and issued-per-cycle samples, and the one
     * dispatch stall counter the last tick bumped) so every core stat
     * is bit-identical to ticking those cycles. Only call right
     * after a tick that returned false on a non-halted core.
     */
    void applySkippedCycles(Cycle n);

    /** True once HALT has committed. */
    bool halted() const { return halted_; }

    /** Subscribe the consistency checker (may be null). */
    // vbr-analyze: quiescent(construction-time wiring, never called mid-run)
    void setObserver(CommitObserver *observer) { observer_ = observer; }

    /** Subscribe a pipeline tracer (may be null). */
    // vbr-analyze: quiescent(construction-time wiring, never called mid-run)
    void setTracer(PipelineTracer *tracer) { tracer_ = tracer; }

    /** Register with the invariant auditor (may be null). The core
     * reports pipeline events (store dispatch/drain, replay issue,
     * squashes, commits) and submits its structures for scanning. */
    // vbr-analyze: quiescent(construction-time wiring, never called mid-run)
    void setAuditor(InvariantAuditor *auditor) { auditor_ = auditor; }

    /** Attach the fault injector (may be null = no injection). */
    // vbr-analyze: quiescent(construction-time wiring, never called mid-run)
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    /** Attach trace capture: a second commit-event subscriber plus
     * the ordering-event sink (either may be null). Zero-cost when
     * unset — the commit path tests the same pointer gate it already
     * tests for the checker/auditor. */
    // vbr-analyze: quiescent(construction-time wiring, never called mid-run)
    void
    setTraceCapture(CommitObserver *commits, OrderingEventSink *events)
    {
        traceObserver_ = commits;
        orderingSink_ = events;
    }

    /** Last-N committed instructions, oldest first (for artifacts). */
    const std::deque<CommitTraceEntry> &commitTrace() const
    {
        return commitTrace_;
    }

    /** Submit the ROB and LSQ structures to the auditor's structural
     * scans (driven by the System on the audit schedule). */
    void auditStructures(InvariantAuditor &auditor) const;

    CoreId coreId() const override { return hierarchy_.coreId(); }

    std::uint64_t instructionsCommitted() const { return committed_; }
    Cycle cyclesRun() const { return cycles_; }

    /** Committed architectural register value (for co-simulation). */
    Word archReg(unsigned r) const { return retiredRegs_[r]; }

    StatSet &stats() override { return stats_; }
    const StatSet &stats() const { return stats_; }

    CacheHierarchy &hierarchy() override { return hierarchy_; }
    StoreQueue &storeQueue() override { return sq_; }

    /** The memory-ordering backend (reporting / stats seam). */
    MemoryOrderingUnit &ordering() { return *ordering_; }
    const MemoryOrderingUnit &ordering() const { return *ordering_; }

    DependencePredictor &depPredictor() override { return *depPred_; }
    ValuePredictor *valuePredictor() { return valuePred_.get(); }
    BranchPredictor &branchPredictor() { return bp_; }

    /** True if no instruction has committed for deadlockThreshold
     * cycles while not halted (watchdog for harnesses). */
    bool deadlocked(Cycle now) const;

    /** First cycle at which deadlocked() can become true given the
     * current last-commit cycle (kNeverCycle when halted). Commits
     * only push this later, so during a quiescent skip region —
     * where no commits happen — it is exact, letting the skip jump
     * over provably-false watchdog polls. */
    Cycle
    deadlockFireCycle() const
    {
        return halted_ ? kNeverCycle
                       : lastCommitCycle_ + config_.deadlockThreshold +
                             1;
    }

    // MemEventClient interface (called by the cache hierarchy).
    void onExternalInvalidation(Addr line) override;
    void onInclusionVictim(Addr line) override;
    void onExternalFill(Addr line) override;

  private:
    struct FetchedInst
    {
        std::uint32_t pc = 0;
        Instruction inst;
        bool predTaken = false;
        std::uint32_t predTarget = 0;
        PredictorSnapshot snap;
        Cycle readyCycle = 0;
    };

    // --- pipeline stages (called in back-to-front order; one
    //     translation unit each) ---------------------------------------
    void commitStage(Cycle now);    ///< commit.cpp
    void writebackStage(Cycle now); ///< writeback.cpp
    void issueStage(Cycle now);     ///< issue.cpp
    void dispatchStage(Cycle now);  ///< dispatch.cpp
    void fetchStage(Cycle now);     ///< fetch.cpp

    // --- helpers ------------------------------------------------------
    DynInst *findInst(SeqNum seq) override;
    const DynInst *findInst(SeqNum seq) const;
    bool operandsReady(const DynInst &inst) const;
    Word readOperand(SeqNum producer, unsigned arch_reg) const;
    bool olderFenceInFlight(SeqNum seq) const;
    bool olderMemOpIncomplete(SeqNum seq) const;
    bool olderMemOpUnscheduled(SeqNum seq) const;
    void issueLoad(DynInst &inst, Cycle now);
    void issueStore(DynInst &inst, Cycle now);
    void captureStoreData(Cycle now);
    bool retireHead(Cycle now);
    bool tryExecuteSwapAtHead(DynInst &head, Cycle now);
    void doBranchMispredict(DynInst &branch, Cycle now);
    void squashFrom(SeqNum bound, std::uint32_t new_fetch_pc,
                    const PredictorSnapshot &snap) override;

    Word readMemSafe(Addr addr, unsigned size) const override;
    std::uint32_t versionSafe(Addr addr) const override;
    SeqNum youngestInWindow() const override;
    void noteCommit(Cycle now);
    void wakeDependents(SeqNum producer);

    // --- the rest of the OrderingHost seam (backend.cpp) --------------
    const CoreConfig &coreConfig() const override { return config_; }
    Cycle coreCycle() const override { return cycles_; }
    std::deque<DynInst> &robWindow() override { return rob_; }
    AuditEventSink *auditorHook() override { return auditSink(); }
    FaultInjector *faultInjector() override { return faults_; }
    void traceEvent(TraceKind kind, const DynInst &inst) override;
    bool replayPortAvailable() const override;
    void takeReplayPort() override;
    void noteActivity() override { activityThisTick_ = true; }
    OrderingEventSink *orderingEventSink() override
    {
        return orderingSink_;
    }

    CoreConfig config_;
    const Program &prog_;
    MemoryImage &mem_;
    CacheHierarchy &hierarchy_;

    // Front end.
    std::uint32_t fetchPc_ = 0;
    bool haltFetched_ = false;
    Cycle fetchStallUntil_ = 0;
    Addr lastFetchLine_ = kNoAddr;
    std::deque<FetchedInst> frontEnd_;
    BranchPredictor bp_;

    // Window.
    std::deque<DynInst> rob_;

    /** Issue-queue entry: seq + a stable pointer into the ROB deque
     * (std::deque never relocates surviving elements on push_back/
     * pop_front/pop_back, so the pointer is valid while the entry is
     * in flight). */
    struct IqEntry
    {
        SeqNum seq = kNoSeq;
        DynInst *inst = nullptr;
    };
    std::vector<IqEntry> iq_;
    StoreQueue sq_;

    /** The pluggable memory-ordering backend (CAM or value replay). */
    std::unique_ptr<MemoryOrderingUnit> ordering_;

    std::unique_ptr<DependencePredictor> depPred_;
    std::unique_ptr<ValuePredictor> valuePred_; ///< optional
    std::vector<SeqNum> fences_; ///< in-flight SWAP/MEMBAR seqs

    /// Stores past agen whose data operand is still in flight.
    std::vector<DynInst *> pendingStoreData_;

    // Completion events: (cycle, seq), lazily invalidated on squash.
    // A binary heap over a reused vector: no per-event node
    // allocation on the writeback path (a multimap pays one per
    // instruction).
    std::priority_queue<std::pair<Cycle, SeqNum>,
                        std::vector<std::pair<Cycle, SeqNum>>,
                        std::greater<>>
        pendingWb_;

    /// Reused writeback scratch (cleared, never shrunk, per tick).
    std::vector<SeqNum> wbScratch_;

    // ----- incremental ordering watermarks ---------------------------
    // These replace per-issue full-ROB walks. Invariants:
    //  - incompleteMemOps_: seqs of in-flight loads/SWAPs with
    //    !executed (MEMBARs execute at dispatch and never enter);
    //  - unscheduledMemOps_: seqs of in-flight loads/stores with
    //    !issued plus SWAPs with !executed.
    // Pool-backed: one node churns per memory instruction on the
    // issue/writeback/retire hot paths (see common/pool_alloc.hpp).
    PoolArena memOpArena_;
    using PooledSeqSet =
        std::set<SeqNum, std::less<SeqNum>, PoolAllocator<SeqNum>>;
    PooledSeqSet incompleteMemOps_;
    PooledSeqSet unscheduledMemOps_;

    /** Per-architectural-register stacks of in-flight writer seqs in
     * age order (youngest at the back == renameMap_[r]). Squash pops
     * the back, retire pops the front: no post-squash ROB rescan. */
    std::array<std::deque<SeqNum>, kNumArchRegs> regWriters_;

    // Rename.
    std::array<SeqNum, kNumArchRegs> renameMap_;
    std::array<Word, kNumArchRegs> retiredRegs_ = {};

    // Recently drained store versions, for forwarded-load commit
    // events: (seq, version) in drain order.
    std::deque<std::pair<SeqNum, std::uint32_t>> drainedVersions_;

    // Commit-port arbitration (stores + replay loads share the
    // commit-stage ports; stores have priority).
    unsigned commitPortsUsed_ = 0;
    unsigned replaysThisCycle_ = 0;

    bool
    commitPortAvailable() const
    {
        return commitPortsUsed_ < config_.commitPorts;
    }

    CommitObserver *observer_ = nullptr;
    InvariantAuditor *auditor_ = nullptr;
    PipelineTracer *tracer_ = nullptr;
    FaultInjector *faults_ = nullptr;
    CommitObserver *traceObserver_ = nullptr;
    OrderingEventSink *orderingSink_ = nullptr;

    /** True when any commit-event subscriber is attached (gates the
     * event-struct fill on the retirement path). */
    bool
    wantCommitEvents() const
    {
        return observer_ != nullptr || auditor_ != nullptr ||
               traceObserver_ != nullptr;
    }

    /** Phase-1 buffer for auditor events (see AuditEventSink). */
    DeferredAuditSink deferredAudit_;

    /** Where pipeline events report: the deferred buffer during the
     * (potentially parallel) compute phase, the auditor directly
     * otherwise. Null when auditing is off. */
    AuditEventSink *auditSink();

    /** Ring of the last config_.commitTraceDepth retirements. */
    std::deque<CommitTraceEntry> commitTrace_;

    /** Deliver a commit event to the checker and the auditor. */
    void emitCommit(const MemCommitEvent &event);

    void
    trace(TraceKind kind, const DynInst &inst)
    {
        if (!tracer_)
            return;
        TraceEvent ev;
        ev.kind = kind;
        ev.cycle = cycles_;
        ev.core = coreId();
        ev.seq = inst.seq;
        ev.pc = inst.pc;
        ev.inst = inst.inst;
        tracer_->onTrace(ev);
    }

    SeqNum nextSeq_ = 1;
    std::uint64_t committed_ = 0;
    Cycle cycles_ = 0;
    Cycle lastCommitCycle_ = 0;
    bool halted_ = false;
    bool squashedThisCycle_ = false;

    /** True while this core runs its compute phase (tickBack): audit
     * events defer, and no commit-side mutation may occur. */
    bool mpPhase1_ = false;

    /** Lazy-sync horizon while sleeping (see setSyncHorizon). */
    Cycle syncHorizon_ = kNeverCycle;

    /** When set, consuming the horizon runs tickFront(horizon) after
     * syncing to horizon-1 (see setSyncHorizonFrontTick). */
    bool syncHorizonFrontTick_ = false;

    /** Catch a sleeping core's local clock up before an external
     * delivery is processed, so event stamps and ordering-backend
     * state see the correct cycle. */
    void syncToHorizon();

    /** Local tick/skip accounting (Σ across cores is the MP run's
     * cycle identity; see RunResult). */
    Cycle tickedCycles_ = 0;
    Cycle skippedCycles_ = 0;

    /** Set by any state-changing pipeline work this tick; reset at
     * tick start. tick() returns it as the quiescence verdict. */
    bool activityThisTick_ = false;

    /** The dispatch stall counter the current tick bumped (nullptr
     * when dispatch did not stall on a full structure). A quiescent
     * tick bumps exactly one such counter per cycle, so skipped
     * cycles replicate it via applySkippedCycles(). */
    Counter *dispatchStallThisTick_ = nullptr;


    // Cached stat handles (bound once in the constructor). The
    // ordering backend registers and owns its own counters.
    Counter *sc_branch_mispredicts_committed_ = nullptr;
    Counter *sc_committed_branches_ = nullptr;
    Counter *sc_committed_instructions_ = nullptr;
    Counter *sc_committed_loads_ = nullptr;
    Counter *sc_committed_stores_ = nullptr;
    Counter *sc_cycles_ = nullptr;
    Counter *sc_dispatch_stalls_iq_ = nullptr;
    Counter *sc_dispatch_stalls_loadq_ = nullptr;
    Counter *sc_dispatch_stalls_rob_ = nullptr;
    Counter *sc_dispatch_stalls_sq_ = nullptr;
    Counter *sc_dispatched_instructions_ = nullptr;
    Counter *sc_external_fills_seen_ = nullptr;
    Counter *sc_external_invalidations_seen_ = nullptr;
    Counter *sc_fetched_instructions_ = nullptr;
    Counter *sc_icache_stalls_ = nullptr;
    Counter *sc_inclusion_victims_seen_ = nullptr;
    Counter *sc_l1d_accesses_premature_ = nullptr;
    Counter *sc_l1d_accesses_store_commit_ = nullptr;
    Counter *sc_l1d_accesses_swap_ = nullptr;
    Counter *sc_loads_blocked_on_store_ = nullptr;
    Counter *sc_loads_bypassing_unresolved_store_ = nullptr;
    Counter *sc_loads_forwarded_ = nullptr;
    Counter *sc_loads_issued_ = nullptr;
    Counter *sc_loads_value_predicted_ = nullptr;
    Counter *sc_value_predictions_committed_ = nullptr;
    Counter *sc_loads_issued_out_of_order_ = nullptr;
    Counter *sc_squashes_branch_ = nullptr;
    Counter *sc_squashes_total_ = nullptr;
    Counter *sc_stores_issued_ = nullptr;
    Counter *sc_stores_agen_before_data_ = nullptr;
    Average *sc_iq_occupancy_ = nullptr;
    Average *sc_issued_per_cycle_ = nullptr;
    Average *sc_rob_occupancy_ = nullptr;

    StatSet stats_;
};

} // namespace vbr

#endif // VBR_CORE_OOO_CORE_HPP
