#include "core/ooo_core.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "isa/semantics.hpp"
#include "mem/memory_image.hpp"
#include "verify/auditor.hpp"

namespace vbr
{

OooCore::OooCore(const CoreConfig &config, const Program &prog,
                 MemoryImage &mem, CacheHierarchy &hierarchy,
                 unsigned thread_id)
    : config_(config),
      prog_(prog),
      mem_(mem),
      hierarchy_(hierarchy),
      bp_(config.branchPredictor),
      sq_(config.sqEntries)
{
    VBR_ASSERT(thread_id < prog.threads().size(),
               "thread id out of range");
    const ThreadSpec &spec = prog.threads()[thread_id];
    fetchPc_ = spec.entryPc;
    retiredRegs_ = spec.initRegs;
    retiredRegs_[0] = 0;
    renameMap_.fill(kNoSeq);

    if (config_.scheme == OrderingScheme::AssocLoadQueue) {
        lq_ = std::make_unique<AssocLoadQueue>(config_.lqEntries,
                                               config_.lqMode);
    } else {
        // Reject contradictory filter pairings before simulating:
        // they silently drop filtering rather than failing.
        config_.filters.validate();
        rq_ = std::make_unique<ReplayQueue>(config_.lqEntries);
    }

    if (config_.depPredictor == DepPredictorKind::StoreSet)
        depPred_ = std::make_unique<StoreSetPredictor>();
    else
        depPred_ = std::make_unique<SimpleDepPredictor>();

    if (config_.enableValuePrediction) {
        VBR_ASSERT(rq_ != nullptr,
                   "value prediction requires the replay machinery "
                   "for validation");
        valuePred_ = std::make_unique<ValuePredictor>();
    }

    hierarchy_.setClient(this);

    // Cache stat handles once: string-keyed lookups are far too
    // slow for per-cycle/per-instruction paths (map nodes are stable).
    sc_branch_mispredicts_committed_ = &stats_.counter("branch_mispredicts_committed");
    sc_committed_branches_ = &stats_.counter("committed_branches");
    sc_committed_instructions_ = &stats_.counter("committed_instructions");
    sc_committed_loads_ = &stats_.counter("committed_loads");
    sc_committed_stores_ = &stats_.counter("committed_stores");
    sc_cycles_ = &stats_.counter("cycles");
    sc_dispatch_stalls_iq_ = &stats_.counter("dispatch_stalls_iq");
    sc_dispatch_stalls_lq_ = &stats_.counter("dispatch_stalls_lq");
    sc_dispatch_stalls_rob_ = &stats_.counter("dispatch_stalls_rob");
    sc_dispatch_stalls_sq_ = &stats_.counter("dispatch_stalls_sq");
    sc_dispatched_instructions_ = &stats_.counter("dispatched_instructions");
    sc_external_fills_seen_ = &stats_.counter("external_fills_seen");
    sc_external_invalidations_seen_ = &stats_.counter("external_invalidations_seen");
    sc_fetched_instructions_ = &stats_.counter("fetched_instructions");
    sc_icache_stalls_ = &stats_.counter("icache_stalls");
    sc_inclusion_victims_seen_ = &stats_.counter("inclusion_victims_seen");
    sc_l1d_accesses_premature_ = &stats_.counter("l1d_accesses_premature");
    sc_l1d_accesses_replay_ = &stats_.counter("l1d_accesses_replay");
    sc_l1d_accesses_store_commit_ = &stats_.counter("l1d_accesses_store_commit");
    sc_l1d_accesses_swap_ = &stats_.counter("l1d_accesses_swap");
    sc_loads_blocked_on_store_ = &stats_.counter("loads_blocked_on_store");
    sc_loads_bypassing_unresolved_store_ = &stats_.counter("loads_bypassing_unresolved_store");
    sc_loads_forwarded_ = &stats_.counter("loads_forwarded");
    sc_loads_issued_ = &stats_.counter("loads_issued");
    sc_loads_value_predicted_ =
        &stats_.counter("loads_value_predicted");
    sc_value_predictions_committed_ =
        &stats_.counter("value_predictions_committed");
    sc_loads_issued_out_of_order_ = &stats_.counter("loads_issued_out_of_order");
    sc_replay_cache_misses_ = &stats_.counter("replay_cache_misses");
    sc_replays_consistency_ = &stats_.counter("replays_consistency");
    sc_replays_filtered_ = &stats_.counter("replays_filtered");
    sc_replays_suppressed_rule3_ = &stats_.counter("replays_suppressed_rule3");
    sc_replays_total_ = &stats_.counter("replays_total");
    sc_replays_late_ = &stats_.counter("replays_late");
    sc_replays_unresolved_store_ = &stats_.counter("replays_unresolved_store");
    sc_squashes_branch_ = &stats_.counter("squashes_branch");
    sc_squashes_lq_loadload_ = &stats_.counter("squashes_lq_loadload");
    sc_squashes_lq_raw_ = &stats_.counter("squashes_lq_raw");
    sc_squashes_lq_raw_unnecessary_ = &stats_.counter("squashes_lq_raw_unnecessary");
    sc_squashes_lq_snoop_ = &stats_.counter("squashes_lq_snoop");
    sc_squashes_lq_snoop_unnecessary_ = &stats_.counter("squashes_lq_snoop_unnecessary");
    sc_squashes_replay_consistency_ = &stats_.counter("squashes_replay_consistency");
    sc_squashes_replay_mismatch_ = &stats_.counter("squashes_replay_mismatch");
    sc_squashes_replay_raw_ = &stats_.counter("squashes_replay_raw");
    sc_squashes_total_ = &stats_.counter("squashes_total");
    sc_stores_issued_ = &stats_.counter("stores_issued");
    sc_stores_agen_before_data_ =
        &stats_.counter("stores_agen_before_data");
    sc_wouldbe_squashes_raw_ = &stats_.counter("wouldbe_squashes_raw");
    sc_wouldbe_squashes_raw_value_equal_ = &stats_.counter("wouldbe_squashes_raw_value_equal");
    sc_wouldbe_squashes_snoop_ = &stats_.counter("wouldbe_squashes_snoop");
    sc_wouldbe_squashes_snoop_value_equal_ = &stats_.counter("wouldbe_squashes_snoop_value_equal");
    sc_iq_occupancy_ = &stats_.average("iq_occupancy");
    sc_issued_per_cycle_ = &stats_.average("issued_per_cycle");
    sc_rob_occupancy_ = &stats_.average("rob_occupancy");
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

DynInst *
OooCore::findInst(SeqNum seq)
{
    auto it = std::lower_bound(
        rob_.begin(), rob_.end(), seq,
        [](const DynInst &d, SeqNum s) { return d.seq < s; });
    if (it != rob_.end() && it->seq == seq)
        return &*it;
    return nullptr;
}

const DynInst *
OooCore::findInst(SeqNum seq) const
{
    return const_cast<OooCore *>(this)->findInst(seq);
}

Word
OooCore::readOperand(SeqNum producer, unsigned arch_reg) const
{
    if (arch_reg == 0)
        return 0;
    if (producer != kNoSeq) {
        if (const DynInst *p = findInst(producer)) {
            VBR_ASSERT(p->executed, "operand read before producer done");
            return p->destValue;
        }
        // Producer already retired; its value is architectural now and
        // cannot have been overwritten by a younger writer (younger
        // writers retire after this consumer).
    }
    return retiredRegs_[arch_reg];
}

bool
OooCore::operandsReady(const DynInst &inst) const
{
    return inst.aReady && inst.bReady;
}

void
OooCore::wakeDependents(SeqNum producer)
{
    for (IqEntry &e : iq_) {
        if (e.inst->srcA == producer)
            e.inst->aReady = true;
        if (e.inst->srcB == producer)
            e.inst->bReady = true;
    }
    for (DynInst *st : pendingStoreData_) {
        if (st->srcB == producer)
            st->bReady = true;
    }
}

bool
OooCore::olderFenceInFlight(SeqNum seq) const
{
    return !fences_.empty() && fences_.front() < seq;
}

bool
OooCore::olderMemOpIncomplete(SeqNum seq) const
{
    // "Incomplete" follows the point where the operation performs:
    // loads at execute, stores at drain (global visibility). The
    // oldest-incomplete watermark stands in for the old ROB walk.
    if (sq_.hasUndrainedOlderThan(seq))
        return true;
    return !incompleteMemOps_.empty() &&
           *incompleteMemOps_.begin() < seq;
}

bool
OooCore::olderMemOpUnscheduled(SeqNum seq) const
{
    // The paper's scheduler view of "executed in order": the load
    // issues after every older memory operation has itself issued
    // (loads performed their access, stores generated the address).
    return !unscheduledMemOps_.empty() &&
           *unscheduledMemOps_.begin() < seq;
}

Word
OooCore::readMemSafe(Addr addr, unsigned size) const
{
    if (addr % size != 0 || addr + size > mem_.size())
        return 0; // wrong-path garbage address
    return mem_.read(addr, size);
}

std::uint32_t
OooCore::versionSafe(Addr addr) const
{
    if (!mem_.trackingVersions() || addr + 8 > mem_.size())
        return 0;
    return mem_.version(addr & ~Addr{7});
}

SeqNum
OooCore::youngestInWindow() const
{
    return rob_.empty() ? kNoSeq : rob_.back().seq;
}

void
OooCore::noteCommit(Cycle now)
{
    lastCommitCycle_ = now;
}

void
OooCore::emitCommit(const MemCommitEvent &event)
{
    if (observer_)
        observer_->onMemCommit(event);
    if (auditor_)
        auditor_->onMemCommit(event);
}

void
OooCore::auditStructures(InvariantAuditor &auditor) const
{
    auditor.scanRob(coreId(), rob_, cycles_);
    auditor.scanStoreQueue(coreId(), sq_, cycles_);
    if (rq_)
        auditor.scanReplayQueue(coreId(), *rq_, cycles_);
}

bool
OooCore::deadlocked(Cycle now) const
{
    return !halted_ && now > lastCommitCycle_ &&
           now - lastCommitCycle_ > config_.deadlockThreshold;
}

// ---------------------------------------------------------------------
// Memory-system event callbacks
// ---------------------------------------------------------------------

void
OooCore::onExternalInvalidation(Addr line)
{
    ++(*sc_external_invalidations_seen_);
    filterState_.armSnoop(youngestInWindow());
    if (lq_) {
        // External invalidations only arrive while this core is
        // quiescent (they originate from another core's tick or from
        // DMA), so the LQ search-and-squash is safe to run
        // synchronously — and must be, to preserve the
        // invalidate-before-visible ordering contract.
        handleSnoopLine(line);
    }
    if (rq_ && config_.shadowLqStats)
        shadowSnoopStats(line);
}

void
OooCore::handleSnoopLine(Addr line)
{
    SeqNum head_seq = rob_.empty() ? kNoSeq : rob_.front().seq;
    auto squash = lq_->snoop(line, hierarchy_.lineBytes(), head_seq);
    if (squash && !config_.unsafeDisableOrdering)
        handleLqSquash(*squash, 0, 0, kNoAddr, 0, true, cycles_);
}

void
OooCore::onInclusionVictim(Addr line)
{
    ++(*sc_inclusion_victims_seen_);
    // In a multiprocessor, a castout line can be written remotely
    // without this core ever seeing the invalidation (it no longer
    // holds the line), so both the snooping LQ and the snoop filter
    // must treat the castout as a snoop — the paper's castout caveat.
    // In a uniprocessor there is no hidden writer (DMA in this model
    // only invalidates), so the conservatism would be pure overhead.
    if (hierarchy_.numSystemCores() > 1) {
        filterState_.armSnoop(youngestInWindow());
        if (lq_)
            pendingSnoopLines_.push_back(line);
    }
}

void
OooCore::onExternalFill(Addr /* line */)
{
    ++(*sc_external_fills_seen_);
    filterState_.armMiss(youngestInWindow());
}

// ---------------------------------------------------------------------
// Squash machinery
// ---------------------------------------------------------------------

void
OooCore::squashFrom(SeqNum bound, std::uint32_t new_fetch_pc,
                    const PredictorSnapshot &snap)
{
    // pendingStoreData_ points into rob_; filter it before the pops
    // below free the squashed entries' deque nodes.
    std::erase_if(pendingStoreData_,
                  [bound](const DynInst *d) { return d->seq >= bound; });
    incompleteMemOps_.erase(incompleteMemOps_.lower_bound(bound),
                            incompleteMemOps_.end());
    unscheduledMemOps_.erase(unscheduledMemOps_.lower_bound(bound),
                             unscheduledMemOps_.end());
    issuedLoads_.erase(issuedLoads_.lower_bound(bound),
                       issuedLoads_.end());
    while (!rob_.empty() && rob_.back().seq >= bound) {
        const DynInst &b = rob_.back();
        if (b.isStoreOp)
            depPred_->notifyStoreRemoved(b.pc, b.seq);
        if (b.inst.writesRd()) {
            // The squashed writer is the youngest for its register,
            // so it sits at the back of the stack; the map falls back
            // to the next-youngest survivor.
            auto &writers = regWriters_[b.inst.rd];
            if (!writers.empty() && writers.back() == b.seq)
                writers.pop_back();
            renameMap_[b.inst.rd] =
                writers.empty() ? kNoSeq : writers.back();
        }
        trace(TraceKind::Squash, b);
        rob_.pop_back();
    }
    backendEntered_ = std::min(backendEntered_, rob_.size());
    sq_.squashFrom(bound);
    if (lq_)
        lq_->squashFrom(bound);
    if (rq_)
        rq_->squashFrom(bound);

    std::erase_if(iq_, [bound](const IqEntry &e) { return e.seq >= bound; });
    std::erase_if(fences_, [bound](SeqNum s) { return s >= bound; });

    frontEnd_.clear();
    haltFetched_ = false;
    fetchPc_ = new_fetch_pc;
    fetchStallUntil_ = cycles_ + 1; // redirect bubble
    lastFetchLine_ = kNoAddr;

    bp_.restore(snap);
    squashedThisCycle_ = true;
    ++(*sc_squashes_total_);
    if (auditor_)
        auditor_->onSquash(coreId(), bound, cycles_);
}

void
OooCore::doBranchMispredict(DynInst &branch, Cycle now)
{
    (void)now;
    ++(*sc_squashes_branch_);
    std::uint32_t resteer =
        branch.actualTaken ? branch.actualTarget : branch.pc + 1;
    PredictorSnapshot snap = branch.predSnap;
    bool cond = isCondBranch(branch.inst.op);
    bool taken = branch.actualTaken;
    bool is_return = branch.inst.op == Opcode::JR &&
                     branch.inst.ra == kLinkReg;
    squashFrom(branch.seq + 1, resteer, snap);
    if (cond) {
        // Redo the speculative history update with the real outcome.
        bp_.notifyResolvedBranch(taken);
    } else if (is_return) {
        // restore() rolled the RAS pop back; execution resumes past
        // the return, so re-apply it.
        bp_.popRas();
    }
}

void
OooCore::doReplaySquash(DynInst &load, Cycle now)
{
    (void)now;
    ++(*sc_squashes_replay_mismatch_);
    if (load.replayInfo.bypassedUnresolvedStore)
        ++(*sc_squashes_replay_raw_);
    else
        ++(*sc_squashes_replay_consistency_);

    // Rule 3 (§3): do not replay this load again after recovery, to
    // guarantee forward progress under contention.
    ++replaySuppress_[load.pc];

    // Train the dependence predictor; value-based replay cannot name
    // the conflicting store (§3), hence kUnknownStorePc.
    if (load.replayInfo.bypassedUnresolvedStore)
        depPred_->trainViolation(load.pc,
                                 DependencePredictor::kUnknownStorePc);

    if (auditor_)
        auditor_->onReplaySquash(coreId(), load.seq, load.pc, cycles_);
    squashFrom(load.seq, load.pc, load.predSnap);
}

void
OooCore::handleLqSquash(const LqSquash &squash, std::uint32_t store_pc,
                        Word store_value, Addr store_addr,
                        unsigned store_size, bool is_snoop, Cycle now)
{
    (void)now;
    DynInst *load = findInst(squash.squashFrom);
    VBR_ASSERT(load != nullptr, "LQ squash of unknown load");

    // §5.1 statistics: was this squash unnecessary, i.e. did the
    // premature load actually read the value it would read now?
    if (is_snoop) {
        ++(*sc_squashes_lq_snoop_);
        if (squash.addr != kNoAddr &&
            squash.prematureValue ==
                readMemSafe(squash.addr, squash.size))
            ++(*sc_squashes_lq_snoop_unnecessary_);
    } else {
        ++(*sc_squashes_lq_raw_);
        if (rangeContains(store_addr, store_size, squash.addr,
                          squash.size)) {
            unsigned shift =
                static_cast<unsigned>(squash.addr - store_addr) * 8;
            Word mask = squash.size >= 8
                            ? ~Word{0}
                            : ((Word{1} << (squash.size * 8)) - 1);
            Word would_read = (store_value >> shift) & mask;
            if (would_read == squash.prematureValue)
                ++(*sc_squashes_lq_raw_unnecessary_);
        }
        depPred_->trainViolation(squash.loadPc, store_pc);
    }

    squashFrom(squash.squashFrom, squash.loadPc, load->predSnap);
}

// ---------------------------------------------------------------------
// Shadow CAM statistics (§5.1 avoided squashes, value mode only)
// ---------------------------------------------------------------------

void
OooCore::shadowStoreAgenStats(const DynInst &store, bool data_known)
{
    if (!rq_)
        return;
    // Non-architectural scan: what would a conventional CAM have
    // squashed on this store agen? Only issued younger loads can
    // match, so walk the age-ordered issued-load index instead of
    // the whole window.
    for (auto it = issuedLoads_.upper_bound(store.seq);
         it != issuedLoads_.end(); ++it) {
        const DynInst &d = *it->second;
        if (!rangesOverlap(d.memAddr, d.memSize, store.memAddr,
                           store.memSize))
            continue;
        ++(*sc_wouldbe_squashes_raw_);
        // Value-equality (the paper's store value locality) can only
        // be judged when the store's data was known at agen time.
        if (data_known &&
            rangeContains(store.memAddr, store.memSize, d.memAddr,
                          d.memSize)) {
            unsigned shift =
                static_cast<unsigned>(d.memAddr - store.memAddr) * 8;
            Word mask = d.memSize >= 8
                            ? ~Word{0}
                            : ((Word{1} << (d.memSize * 8)) - 1);
            if (((store.storeData >> shift) & mask) == d.prematureValue)
                ++(*sc_wouldbe_squashes_raw_value_equal_);
        }
        break; // conventional CAM squashes from the oldest match
    }
}

void
OooCore::shadowSnoopStats(Addr line)
{
    bool head = true;
    for (const auto &[seq, dp] : issuedLoads_) {
        const DynInst &d = *dp;
        bool overlaps = rangesOverlap(d.memAddr, d.memSize, line,
                                      hierarchy_.lineBytes());
        if (overlaps && !head) {
            ++(*sc_wouldbe_squashes_snoop_);
            if (d.prematureValue == readMemSafe(d.memAddr, d.memSize))
                ++(*sc_wouldbe_squashes_snoop_value_equal_);
            break;
        }
        head = false;
    }
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
OooCore::fetchStage(Cycle now)
{
    if (haltFetched_ || now < fetchStallUntil_)
        return;
    std::size_t cap = static_cast<std::size_t>(config_.frontEndDepth) *
                      config_.fetchWidth;
    for (unsigned slot = 0; slot < config_.fetchWidth; ++slot) {
        if (frontEnd_.size() >= cap)
            break;

        const Instruction &si = prog_.fetch(fetchPc_);
        Addr caddr = prog_.codeAddr(fetchPc_);
        Addr cline = hierarchy_.lineAddr(caddr);
        if (cline != lastFetchLine_) {
            unsigned lat = hierarchy_.fetchInst(caddr);
            if (lat > 1) {
                // I-cache miss: stall fetch until the line arrives.
                fetchStallUntil_ = now + lat;
                ++(*sc_icache_stalls_);
                return;
            }
            lastFetchLine_ = cline;
        }

        FetchedInst f;
        f.pc = fetchPc_;
        f.inst = si;
        f.snap = bp_.snapshot();
        f.readyCycle = now + config_.frontEndDepth;

        bool taken = false;
        if (isControl(si.op)) {
            BranchPrediction pred = bp_.predict(fetchPc_, si);
            f.predTaken = pred.taken;
            f.predTarget = pred.target;
            taken = pred.taken;
        }
        frontEnd_.push_back(f);
        ++(*sc_fetched_instructions_);

        if (si.op == Opcode::HALT) {
            haltFetched_ = true;
            break;
        }
        fetchPc_ = taken ? f.predTarget : fetchPc_ + 1;
        if (taken)
            break; // fetch stops at the first taken branch per cycle
    }
}

// ---------------------------------------------------------------------
// Dispatch / rename
// ---------------------------------------------------------------------

void
OooCore::dispatchStage(Cycle now)
{
    for (unsigned n = 0; n < config_.dispatchWidth; ++n) {
        if (frontEnd_.empty() || frontEnd_.front().readyCycle > now)
            break;
        if (rob_.size() >= config_.robEntries) {
            ++(*sc_dispatch_stalls_rob_);
            break;
        }

        const FetchedInst &f = frontEnd_.front();
        const Opcode op = f.inst.op;
        bool is_load = isLoad(op);
        bool is_store = isStore(op);
        bool is_swap = op == Opcode::SWAP;
        bool is_membar = op == Opcode::MEMBAR;
        bool needs_iq = !(op == Opcode::NOP || op == Opcode::HALT ||
                          is_membar || is_swap);

        if (needs_iq && iq_.size() >= config_.iqEntries) {
            ++(*sc_dispatch_stalls_iq_);
            break;
        }
        if (is_load &&
            ((lq_ && lq_->full()) || (rq_ && rq_->full()))) {
            ++(*sc_dispatch_stalls_lq_);
            break;
        }
        if (is_store && sq_.full()) {
            ++(*sc_dispatch_stalls_sq_);
            break;
        }

        DynInst d;
        d.seq = nextSeq_++;
        d.pc = f.pc;
        d.inst = f.inst;
        d.isLoadOp = is_load;
        d.isStoreOp = is_store;
        d.isSwapOp = is_swap;
        d.isMembarOp = is_membar;
        d.isCtrlOp = isControl(op);
        d.predTaken = f.predTaken;
        d.predTarget = f.predTarget;
        d.predSnap = f.snap;
        d.fetchCycle = now;

        if (f.inst.readsRa() && f.inst.ra != 0)
            d.srcA = renameMap_[f.inst.ra];
        if (f.inst.readsRb() && f.inst.rb != 0)
            d.srcB = renameMap_[f.inst.rb];
        if (f.inst.writesRd()) {
            renameMap_[f.inst.rd] = d.seq;
            regWriters_[f.inst.rd].push_back(d.seq);
        }

        if (op == Opcode::NOP || op == Opcode::HALT || is_membar)
            d.executed = true;

        // Watermark bookkeeping (seqs are monotonic: end() hints).
        if (is_load || is_swap)
            incompleteMemOps_.insert(incompleteMemOps_.end(), d.seq);
        if (is_load || is_store || is_swap)
            unscheduledMemOps_.insert(unscheduledMemOps_.end(),
                                      d.seq);

        if (is_load) {
            if (lq_)
                lq_->dispatch(d.seq, d.pc, memSize(op));
            else
                rq_->dispatch(d.seq, d.pc, memSize(op));
        }
        if (is_store) {
            sq_.dispatch(d.seq, d.pc, memSize(op));
            depPred_->notifyStoreDispatched(d.pc, d.seq);
            if (auditor_)
                auditor_->onStoreDispatched(coreId(), d.seq);
        }
        if (is_swap || is_membar)
            fences_.push_back(d.seq);

        // Initial readiness: architectural source, or an in-flight
        // producer that has already executed.
        auto producer_done = [this](SeqNum producer) {
            if (producer == kNoSeq)
                return true;
            const DynInst *p = findInst(producer);
            return p == nullptr || p->executed;
        };
        d.aReady = !f.inst.readsRa() || producer_done(d.srcA);
        d.bReady = !f.inst.readsRb() || producer_done(d.srcB);

        bool to_iq = needs_iq;
        rob_.push_back(d);
        if (to_iq) {
            rob_.back().inIssueQueue = true;
            iq_.push_back({rob_.back().seq, &rob_.back()});
        }
        frontEnd_.pop_front();
        ++(*sc_dispatched_instructions_);
        trace(TraceKind::Dispatch, rob_.back());
    }
}

// ---------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------

void
OooCore::issueLoad(DynInst &inst, Cycle now)
{
    Addr addr = effectiveAddr(inst.inst, readOperand(inst.srcA,
                                                     inst.inst.ra));
    unsigned size = memSize(inst.inst.op);
    inst.memAddr = addr;
    inst.memSize = size;
    inst.addrValid = (addr % size == 0) && (addr + size <= mem_.size());

    SqSearchResult res = sq_.searchForLoad(inst.seq, addr, size);
    if (res.kind == SqSearchResult::Kind::Blocked) {
        // Value prediction turns the stall into speculation: execute
        // with the predicted value; the mandatory replay validates.
        std::optional<Word> predicted;
        if (valuePred_)
            predicted = valuePred_->predict(inst.pc);
        if (!predicted) {
            inst.blockedOnStore = res.store;
            ++(*sc_loads_blocked_on_store_);
            return; // stays in the issue queue
        }
        inst.valuePredicted = true;
        inst.replayInfo.bypassedUnresolvedStore = true;
        inst.replayInfo.issuedOutOfOrder = true;
        inst.replayInfo.issuedOutOfOrderSched = true;
        inst.replayInfo.issuedBeforeOlderLoad = true;
        inst.prematureValue = *predicted;
        inst.prematureVersion = 0;
        inst.sampleCycle = now;
        inst.destValue = *predicted;
        inst.issued = true;
        inst.inIssueQueue = false;
        unscheduledMemOps_.erase(inst.seq);
        if (trackIssuedLoads() && addr != kNoAddr)
            issuedLoads_.emplace(inst.seq, &inst);
        pendingWb_.emplace(now + 1, inst.seq);
        ++(*sc_loads_issued_);
        ++(*sc_loads_value_predicted_);
        trace(TraceKind::Issue, inst);
        if (rq_)
            rq_->recordIssue(inst.seq, addr, inst.prematureValue, false,
                             inst.replayInfo);
        return;
    }

    inst.replayInfo.bypassedUnresolvedStore = res.sawUnresolvedOlder;
    inst.replayInfo.issuedOutOfOrder = olderMemOpIncomplete(inst.seq);
    inst.replayInfo.issuedOutOfOrderSched =
        olderMemOpUnscheduled(inst.seq);
    // incompleteMemOps_ holds exactly the unexecuted loads/SWAPs;
    // this load is in it with seq == inst.seq, so strict < excludes
    // it (this used to be another front-to-back ROB walk).
    inst.replayInfo.issuedBeforeOlderLoad =
        !incompleteMemOps_.empty() &&
        *incompleteMemOps_.begin() < inst.seq;
    if (res.sawUnresolvedOlder)
        ++(*sc_loads_bypassing_unresolved_store_);
    if (inst.replayInfo.issuedOutOfOrder)
        ++(*sc_loads_issued_out_of_order_);

    unsigned lat = 1;
    if (res.kind == SqSearchResult::Kind::Forward) {
        inst.forwarded = true;
        inst.forwardStore = res.store;
        inst.prematureValue = res.value;
        inst.prematureVersion = 0; // resolved at commit via the store
        ++(*sc_loads_forwarded_);
    } else {
        if (inst.addrValid) {
            MemAccess acc = hierarchy_.read(addr, inst.pc);
            lat = acc.latency;
            ++(*sc_l1d_accesses_premature_);
        }
        inst.prematureValue = readMemSafe(addr, size);
        inst.prematureVersion = versionSafe(addr);
    }
    inst.sampleCycle = now;
    inst.destValue = inst.prematureValue;
    inst.issued = true;
    inst.inIssueQueue = false;
    unscheduledMemOps_.erase(inst.seq);
    if (trackIssuedLoads() && addr != kNoAddr)
        issuedLoads_.emplace(inst.seq, &inst);
    pendingWb_.emplace(now + lat, inst.seq);
    ++(*sc_loads_issued_);
    trace(TraceKind::Issue, inst);

    if (lq_) {
        lq_->recordIssue(inst.seq, addr, inst.prematureValue);
        auto ll_squash = lq_->loadIssueSearch(inst.seq, addr, size);
        if (ll_squash && !config_.unsafeDisableOrdering) {
            auto &squash = ll_squash;
            ++(*sc_squashes_lq_loadload_);
            DynInst *victim = findInst(squash->squashFrom);
            VBR_ASSERT(victim != nullptr, "load-load squash target");
            PredictorSnapshot snap = victim->predSnap;
            std::uint32_t pc = victim->pc;
            squashFrom(squash->squashFrom, pc, snap);
        }
    } else {
        rq_->recordIssue(inst.seq, addr, inst.prematureValue,
                         inst.forwarded, inst.replayInfo);
    }
}

void
OooCore::issueStore(DynInst &inst, Cycle now)
{
    // Split store issue: address generation happens as soon as the
    // base register is ready; the data operand is captured separately
    // when it becomes available. Early agen is what keeps the
    // unresolved-store windows short (and the no-unresolved-store
    // filter effective).
    Word a = readOperand(inst.srcA, inst.inst.ra);
    Addr addr = effectiveAddr(inst.inst, a);
    unsigned size = memSize(inst.inst.op);
    inst.memAddr = addr;
    inst.memSize = size;
    inst.addrValid = (addr % size == 0) && (addr + size <= mem_.size());

    sq_.setAddress(inst.seq, addr);
    inst.issued = true;
    inst.inIssueQueue = false;
    unscheduledMemOps_.erase(inst.seq);
    ++(*sc_stores_issued_);
    trace(TraceKind::Issue, inst);

    bool data_known = !inst.inst.readsRb() || inst.bReady;
    Word data = 0;
    if (data_known) {
        data = readOperand(inst.srcB, inst.inst.rb);
        inst.storeData = data;
        sq_.setData(inst.seq, data);
        pendingWb_.emplace(now + 1, inst.seq);
    } else {
        pendingStoreData_.push_back(&inst);
        ++(*sc_stores_agen_before_data_);
    }

    // Exclusive prefetch so the drain at commit usually hits.
    if (inst.addrValid && config_.exclusiveStorePrefetch) {
        MemAccess acc = hierarchy_.acquireOwnership(addr);
        if (SqEntry *e = sq_.find(inst.seq))
            e->ownershipReadyCycle = now + acc.latency;
    }

    if (lq_) {
        // Baseline RAW check: CAM search for younger issued loads at
        // address generation. When the store data is not yet known,
        // the value-equality (unnecessary-squash) statistic treats
        // the squash as necessary.
        auto squash = lq_->storeAgenSearch(inst.seq, addr, size);
        if (squash && !config_.unsafeDisableOrdering)
            handleLqSquash(*squash, inst.pc,
                           data_known ? data : ~Word{0}, addr,
                           data_known ? size : 0, false, now);
    } else if (config_.shadowLqStats) {
        shadowStoreAgenStats(inst, data_known);
    }
}

void
OooCore::captureStoreData(Cycle now)
{
    for (std::size_t i = 0; i < pendingStoreData_.size();) {
        DynInst *st = pendingStoreData_[i];
        if (!st->bReady) {
            ++i;
            continue;
        }
        Word data = readOperand(st->srcB, st->inst.rb);
        st->storeData = data;
        sq_.setData(st->seq, data);
        pendingWb_.emplace(now + 1, st->seq);
        pendingStoreData_[i] = pendingStoreData_.back();
        pendingStoreData_.pop_back();
    }
}

void
OooCore::issueStage(Cycle now)
{
    unsigned alu = config_.intAlus;
    unsigned muldiv = config_.intMulDivs;
    unsigned fpalu = config_.fpAlus;
    unsigned fpmul = config_.fpMulDivs;
    unsigned loads = config_.loadPorts;
    unsigned issued = 0;

    for (std::size_t i = 0; i < iq_.size() && issued < config_.issueWidth;) {
        DynInst *inst = iq_[i].inst;

        // Stores only need the address operand to issue (agen); the
        // data operand is captured when it arrives.
        bool eligible = inst->isStoreOp
                            ? inst->aReady
                            : operandsReady(*inst);
        if (!eligible) {
            ++i;
            continue;
        }

        FuClass fu = fuClass(inst->inst.op);
        unsigned *pool = nullptr;
        switch (fu) {
          case FuClass::IntAlu:
          case FuClass::StorePort:
            pool = &alu;
            break;
          case FuClass::IntMul:
          case FuClass::IntDiv:
            pool = &muldiv;
            break;
          case FuClass::FpAlu:
            pool = &fpalu;
            break;
          case FuClass::FpMul:
          case FuClass::FpDiv:
            pool = &fpmul;
            break;
          case FuClass::LoadPort:
            pool = &loads;
            break;
          case FuClass::None:
            pool = nullptr;
            break;
        }
        if (pool && *pool == 0) {
            ++i;
            continue;
        }

        if (inst->isLoadOp) {
            // Ordering gates for speculative load issue.
            if (olderFenceInFlight(inst->seq)) {
                ++i;
                continue;
            }
            if (inst->blockedOnStore != kNoSeq) {
                DynInst *blocker = findInst(inst->blockedOnStore);
                if (blocker && !blocker->executed) {
                    ++i;
                    continue;
                }
                inst->blockedOnStore = kNoSeq;
            }
            // Rule 3 (§3): a load whose replay will be suppressed
            // after a replay squash must perform non-speculatively:
            // it issues only as the oldest uncommitted instruction,
            // so its premature read is architecturally ordered (all
            // older loads' replays completed, all older stores
            // drained). Skipping its replay is then sound, and
            // forward progress is guaranteed.
            if (rq_ && !replaySuppress_.empty()) {
                auto sup = replaySuppress_.find(inst->pc);
                if (sup != replaySuppress_.end() && sup->second > 0 &&
                    rob_.front().seq != inst->seq) {
                    ++i;
                    continue;
                }
            }
            DepAdvice advice = depPred_->adviseLoad(inst->pc);
            if (advice.waitForAllStores &&
                sq_.unresolvedOlderThan(inst->seq) > 0) {
                ++i;
                continue;
            }
            if (advice.waitForStore != kNoSeq &&
                advice.waitForStore < inst->seq) {
                DynInst *st = findInst(advice.waitForStore);
                if (st && st->isStoreOp && !st->executed) {
                    ++i;
                    continue;
                }
            }
            issueLoad(*inst, now);
            if (!inst->issued && !squashedThisCycle_) {
                ++i; // blocked on a store: stays in the queue
                continue;
            }
        } else if (inst->isStoreOp) {
            if (olderFenceInFlight(inst->seq)) {
                ++i;
                continue;
            }
            issueStore(*inst, now);
        } else {
            // ALU / FP / control.
            Word a = readOperand(inst->srcA, inst->inst.ra);
            Word b = readOperand(inst->srcB, inst->inst.rb);
            if (inst->isCtrlOp) {
                inst->actualTaken = evalBranchTaken(inst->inst, a, b);
                inst->actualTarget = controlTarget(inst->inst, a);
                if (inst->inst.op == Opcode::JAL)
                    inst->destValue = inst->pc + 1;
            } else {
                inst->destValue = evalAlu(inst->inst, a, b);
            }
            inst->issued = true;
            inst->inIssueQueue = false;
            pendingWb_.emplace(now + fuLatency(fu), inst->seq);
            trace(TraceKind::Issue, *inst);
        }

        // A squash during issue (load-load ordering or RAW violation)
        // only removes *younger* entries, so index i and everything
        // before it remain valid.
        if (inst->issued) {
            if (pool)
                --*pool;
            ++issued;
            iq_.erase(iq_.begin() + static_cast<std::ptrdiff_t>(i));
            // no ++i: the erase shifted the next candidate into slot i
        }
        if (squashedThisCycle_)
            break; // the window was rearranged; stop issuing
    }
    (*sc_issued_per_cycle_).sample(issued);
}

// ---------------------------------------------------------------------
// Writeback
// ---------------------------------------------------------------------

void
OooCore::writebackStage(Cycle now)
{
    // Collect everything completing this cycle, oldest first, so an
    // older branch mispredict squashes younger completions cleanly.
    wbScratch_.clear();
    while (!pendingWb_.empty() && pendingWb_.top().first <= now) {
        wbScratch_.push_back(pendingWb_.top().second);
        pendingWb_.pop();
    }
    std::sort(wbScratch_.begin(), wbScratch_.end());

    for (SeqNum seq : wbScratch_) {
        DynInst *inst = findInst(seq);
        if (!inst || !inst->issued || inst->executed)
            continue; // squashed (and possibly re-allocated) meanwhile
        inst->executed = true;
        if (inst->isLoadOp || inst->isSwapOp)
            incompleteMemOps_.erase(seq);
        if (inst->inst.writesRd())
            wakeDependents(seq);
        trace(TraceKind::Writeback, *inst);

        if (inst->isCtrlOp) {
            bool mispredict =
                inst->predTaken != inst->actualTaken ||
                (inst->actualTaken &&
                 inst->predTarget != inst->actualTarget);
            if (mispredict)
                doBranchMispredict(*inst, now);
        }
    }
}

// ---------------------------------------------------------------------
// Back end: replay / compare stage entry (value mode)
// ---------------------------------------------------------------------

void
OooCore::backendStage(Cycle now)
{
    // Entry into the replay stage is strictly in ROB order, so the
    // already-entered instructions form a prefix; resume at the
    // cursor instead of rescanning the window from the front.
    unsigned entered = 0;
    while (entered < config_.commitWidth &&
           backendEntered_ < rob_.size()) {
        DynInst &inst = rob_[backendEntered_];
        if (inst.isSwapOp) {
            // SWAP executes at the head and bypasses the replay pipe.
            inst.enteredBackend = true;
            inst.compareReadyCycle = now;
            ++backendEntered_;
            ++entered;
            continue;
        }
        if (!inst.executed)
            break; // in-order entry into the replay stage

        if (inst.isLoadOp && inst.issued) {
            if (!inst.replayDecided) {
                inst.replayReason = classifyReplay(
                    config_.filters, inst.replayInfo, inst.seq,
                    filterState_);
                inst.willReplay =
                    inst.replayReason != ReplayReason::Filtered;
                if (inst.valuePredicted) {
                    // The replay IS the value-speculation validation:
                    // never filtered, never rule-3 suppressed.
                    inst.willReplay = true;
                    inst.replayDecided = true;
                }
                if (config_.unsafeDisableOrdering)
                    inst.willReplay = false; // failure injection
                if (inst.willReplay && !inst.valuePredicted) {
                    auto it = replaySuppress_.find(inst.pc);
                    if (it != replaySuppress_.end() && it->second > 0) {
                        // Rule 3: forward progress after replay squash.
                        inst.willReplay = false;
                        inst.rule3Suppressed = true;
                        ++(*sc_replays_suppressed_rule3_);
                    }
                }
                inst.replayDecided = true;
            }

            if (inst.willReplay) {
                // Constraint 1: all prior stores in the cache.
                if (sq_.hasUndrainedOlderThan(inst.seq))
                    break;
                // Constraint 2: in-order, limited replay bandwidth on
                // the shared commit-stage port (stores have priority).
                if (!commitPortAvailable() ||
                    replaysThisCycle_ >= config_.replaysPerCycle)
                    break;

                unsigned lat = 1;
                if (inst.addrValid) {
                    MemAccess acc =
                        hierarchy_.read(inst.memAddr, inst.pc);
                    lat = acc.latency;
                    ++(*sc_l1d_accesses_replay_);
                    if (!acc.l1Hit)
                        ++(*sc_replay_cache_misses_);
                }
                inst.replayValue =
                    readMemSafe(inst.memAddr, inst.memSize);
                inst.replayVersion = versionSafe(inst.memAddr);
                inst.sampleCycle = now;
                inst.replayIssued = true;
                inst.compareReadyCycle = now + lat + 1;
                ++commitPortsUsed_;
                ++replaysThisCycle_;

                ++(*sc_replays_total_);
                trace(TraceKind::ReplayIssued, inst);
                if (auditor_)
                    auditor_->onReplayIssued(coreId(), inst.seq,
                                             inst.pc,
                                             inst.valuePredicted,
                                             false, now);
                if (inst.replayReason == ReplayReason::UnresolvedStore)
                    ++(*sc_replays_unresolved_store_);
                else
                    ++(*sc_replays_consistency_);
            } else {
                inst.compareReadyCycle = now + 2;
                ++(*sc_replays_filtered_);
            }
        } else {
            // Non-loads flow through replay and compare unchanged.
            inst.compareReadyCycle = now + 2;
        }
        inst.enteredBackend = true;
        ++backendEntered_;
        ++entered;
    }
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

bool
OooCore::tryExecuteSwapAtHead(DynInst &head, Cycle now)
{
    if (!commitPortAvailable())
        return false;

    Word a = retiredRegs_[head.inst.ra];
    Word data = retiredRegs_[head.inst.rb];
    Addr addr = effectiveAddr(head.inst, a);
    head.memAddr = addr;
    head.memSize = 8;
    head.storeData = data;
    VBR_ASSERT(addr % 8 == 0 && addr + 8 <= mem_.size(),
               "SWAP with invalid address reached commit");

    if (!head.ownershipRequested) {
        head.ownershipRequested = true;
        if (!hierarchy_.ownsLine(addr)) {
            MemAccess acc = hierarchy_.acquireOwnership(addr);
            head.compareReadyCycle = now + acc.latency;
            return false;
        }
        head.compareReadyCycle = now;
    }
    if (now < head.compareReadyCycle)
        return false;
    // The transfer latency is paid. If a competitor stole the line
    // meanwhile, our queued request is serviced now — the silent
    // re-acquisition prevents ownership livelock under contention.
    if (!hierarchy_.ownsLine(addr))
        hierarchy_.acquireOwnership(addr);

    // Atomic read-modify-write at the global visibility point.
    head.prematureValue = mem_.read(addr, 8);
    head.prematureVersion = versionSafe(addr);
    mem_.write(addr, 8, data);
    head.replayVersion = versionSafe(addr); // version written
    head.destValue = head.prematureValue;
    head.executed = true;
    incompleteMemOps_.erase(head.seq);
    unscheduledMemOps_.erase(head.seq);
    if (head.inst.writesRd())
        wakeDependents(head.seq);
    ++commitPortsUsed_;
    ++(*sc_l1d_accesses_swap_);
    return true;
}

bool
OooCore::retireHead(Cycle now)
{
    DynInst &head = rob_.front();

    if (head.isSwapOp && !head.executed) {
        if (!tryExecuteSwapAtHead(head, now))
            return false;
    }
    if (!head.executed)
        return false;

    // Value-replay mode: everything but SWAP flows through the replay
    // and compare stages before retiring.
    if (rq_ && !head.isSwapOp) {
        if (!head.enteredBackend || now < head.compareReadyCycle)
            return false;
    }

    // A load that was filtered at replay-stage entry may have been
    // overtaken by an arming event (external invalidation or fill)
    // while stalled before commit; the paper forces loads to replay
    // "during each cycle that the flag is set", so the decision is
    // re-validated here and a late replay is issued through the
    // commit port if needed. Rule-3-suppressed loads are exempt (they
    // sampled as the oldest instruction and are ordered).
    if (rq_ && head.isLoadOp && head.issued && head.replayDecided &&
        !head.willReplay && !head.replayIssued &&
        !head.rule3Suppressed && !config_.unsafeDisableOrdering) {
        ReplayReason late = classifyReplay(
            config_.filters, head.replayInfo, head.seq, filterState_);
        if (late != ReplayReason::Filtered) {
            if (!commitPortAvailable() ||
                replaysThisCycle_ >= config_.replaysPerCycle)
                return false;
            unsigned lat = 1;
            if (head.addrValid) {
                MemAccess acc = hierarchy_.read(head.memAddr, head.pc);
                lat = acc.latency;
                ++(*sc_l1d_accesses_replay_);
            }
            head.replayValue = readMemSafe(head.memAddr, head.memSize);
            head.replayVersion = versionSafe(head.memAddr);
            head.sampleCycle = now;
            head.replayIssued = true;
            head.willReplay = true;
            head.compareReadyCycle = now + lat + 1;
            ++commitPortsUsed_;
            ++replaysThisCycle_;
            ++(*sc_replays_total_);
            ++(*sc_replays_late_);
            trace(TraceKind::ReplayIssued, head);
            if (auditor_)
                auditor_->onReplayIssued(coreId(), head.seq, head.pc,
                                         head.valuePredicted,
                                         true, now);
            if (late == ReplayReason::UnresolvedStore)
                ++(*sc_replays_unresolved_store_);
            else
                ++(*sc_replays_consistency_);
            return false; // wait for the compare stage
        }
    }
    if (rq_ && head.isLoadOp && head.replayIssued &&
        now < head.compareReadyCycle)
        return false;

    // Compare stage verdict.
    if (head.isLoadOp && head.replayIssued &&
        head.replayValue != head.prematureValue) {
        doReplaySquash(head, now);
        return false;
    }

    // Hybrid (Power4-like) load queue: a load marked by a snoop since
    // it issued may have observed a since-invalidated value; it is
    // squashed and re-executed at retirement. (Marks are never placed
    // on the oldest instruction, guaranteeing forward progress.)
    if (head.isLoadOp && lq_ && lq_->mode() == LqMode::Hybrid &&
        !config_.unsafeDisableOrdering && lq_->entryMarked(head.seq)) {
        ++(*sc_squashes_lq_snoop_);
        if (head.prematureValue ==
            readMemSafe(head.memAddr, head.memSize))
            ++(*sc_squashes_lq_snoop_unnecessary_);
        squashFrom(head.seq, head.pc, head.predSnap);
        return false;
    }

    if (head.isStoreOp) {
        if (!commitPortAvailable())
            return false;
        SqEntry *e = sq_.head();
        VBR_ASSERT(e && e->seq == head.seq, "SQ head mismatch");
        VBR_ASSERT(head.addrValid,
                   "store with invalid address reached commit");
        if (!head.ownershipRequested) {
            head.ownershipRequested = true;
            if (!hierarchy_.ownsLine(head.memAddr)) {
                MemAccess acc =
                    hierarchy_.acquireOwnership(head.memAddr);
                e->ownershipReadyCycle = now + acc.latency;
                return false;
            }
            // Exclusive prefetch at agen may still be in flight.
            e->ownershipReadyCycle =
                std::max(e->ownershipReadyCycle, now);
        }
        if (now < e->ownershipReadyCycle)
            return false;
        // Latency paid; service the queued request even if the line
        // was stolen meanwhile (prevents ownership livelock).
        if (!hierarchy_.ownsLine(head.memAddr))
            hierarchy_.acquireOwnership(head.memAddr);

        // Drain: the store becomes globally visible here.
        mem_.write(head.memAddr, head.memSize, head.storeData);
        std::uint32_t wv = versionSafe(head.memAddr);
        ++commitPortsUsed_;
        ++(*sc_l1d_accesses_store_commit_);

        drainedVersions_.emplace_back(head.seq, wv);
        std::size_t max_hist = config_.robEntries + config_.sqEntries + 64;
        while (drainedVersions_.size() > max_hist)
            drainedVersions_.pop_front();

        if (observer_ || auditor_) {
            MemCommitEvent ev;
            ev.core = coreId();
            ev.seq = head.seq;
            ev.pc = head.pc;
            ev.addr = head.memAddr;
            ev.size = head.memSize;
            ev.isWrite = true;
            ev.writeValue = head.storeData;
            ev.writeVersion = wv;
            ev.performCycle = now;
            ev.commitCycle = now;
            emitCommit(ev);
        }
        if (auditor_)
            auditor_->onStoreDrained(coreId(), head.seq, now);
        sq_.popFront();
        ++(*sc_committed_stores_);
    }

    if (head.isLoadOp) {
        VBR_ASSERT(head.addrValid,
                   "load with invalid address reached commit");
        // Reads-from attribution: always the premature sample. A
        // matching replay proves the premature value was still valid,
        // and attributing the (wall-clock) premature version avoids
        // false constraint-graph cycles when silent stores advance
        // the version without changing the value (§2.1 value
        // locality). Mismatching replays squash and never commit.
        std::uint32_t rv = head.prematureVersion;
        if (head.forwarded) {
            rv = 0;
            for (auto it = drainedVersions_.rbegin();
                 it != drainedVersions_.rend(); ++it) {
                if (it->first == head.forwardStore) {
                    rv = it->second;
                    break;
                }
            }
        }
        if (observer_ || auditor_) {
            MemCommitEvent ev;
            ev.core = coreId();
            ev.seq = head.seq;
            ev.pc = head.pc;
            ev.addr = head.memAddr;
            ev.size = head.memSize;
            ev.isRead = true;
            ev.readValue = head.prematureValue;
            ev.readVersion = rv;
            ev.performCycle = head.sampleCycle;
            ev.commitCycle = now;
            emitCommit(ev);
        }
        if (auditor_)
            auditor_->onLoadCommit(coreId(), head.seq, head.pc,
                                   head.replayIssued,
                                   head.compareReadyCycle, now);
        if (valuePred_) {
            valuePred_->train(head.pc, head.prematureValue);
            if (head.valuePredicted)
                ++(*sc_value_predictions_committed_);
        }
        if (lq_)
            lq_->retire(head.seq);
        else
            rq_->retire(head.seq);
        if (trackIssuedLoads())
            issuedLoads_.erase(head.seq);
        auto it = replaySuppress_.find(head.pc);
        if (it != replaySuppress_.end()) {
            if (it->second > 0)
                --it->second;
            if (it->second == 0)
                replaySuppress_.erase(it);
        }
        ++(*sc_committed_loads_);
    }

    if (head.isSwapOp && (observer_ || auditor_)) {
        MemCommitEvent ev;
        ev.core = coreId();
        ev.seq = head.seq;
        ev.pc = head.pc;
        ev.addr = head.memAddr;
        ev.size = head.memSize;
        ev.isRead = true;
        ev.isWrite = true;
        ev.readValue = head.prematureValue;
        ev.readVersion = head.prematureVersion;
        ev.writeValue = head.storeData;
        ev.writeVersion = head.replayVersion;
        ev.performCycle = now;
        ev.commitCycle = now;
        emitCommit(ev);
    }

    if (head.isMembarOp && (observer_ || auditor_)) {
        MemCommitEvent ev;
        ev.core = coreId();
        ev.seq = head.seq;
        ev.pc = head.pc;
        ev.isFence = true;
        ev.performCycle = now;
        ev.commitCycle = now;
        emitCommit(ev);
    }

    if (head.isCtrlOp) {
        bp_.update(head.pc, head.inst, head.actualTaken,
                   head.actualTarget, head.predSnap);
        ++(*sc_committed_branches_);
        if (isCondBranch(head.inst.op) &&
            (head.predTaken != head.actualTaken))
            ++(*sc_branch_mispredicts_committed_);
    }

    if (head.inst.writesRd()) {
        retiredRegs_[head.inst.rd] = head.destValue;
        // The retiring writer is the oldest in flight for its
        // register, i.e. the front of the writer stack. Younger
        // in-flight writers keep the rename mapping alive.
        auto &writers = regWriters_[head.inst.rd];
        if (!writers.empty() && writers.front() == head.seq)
            writers.pop_front();
        if (writers.empty())
            renameMap_[head.inst.rd] = kNoSeq;
    }
    if (head.isStoreOp)
        depPred_->notifyStoreRemoved(head.pc, head.seq);
    if ((head.isSwapOp || head.isMembarOp) && !fences_.empty() &&
        fences_.front() == head.seq)
        fences_.erase(fences_.begin());

    if (head.inst.op == Opcode::HALT)
        halted_ = true;

    trace(TraceKind::Commit, head);
    // Prefix invariant: the head entered the backend iff the entered
    // prefix is non-empty (SWAPs can retire without ever entering).
    if (backendEntered_ > 0)
        --backendEntered_;
    rob_.pop_front();
    ++committed_;
    noteCommit(now);
    ++(*sc_committed_instructions_);
    return true;
}

void
OooCore::commitStage(Cycle now)
{
    commitPortsUsed_ = 0;
    replaysThisCycle_ = 0;

    for (unsigned n = 0; n < config_.commitWidth; ++n) {
        if (rob_.empty() || halted_)
            break;
        if (!retireHead(now))
            break;
        if (squashedThisCycle_)
            break;
    }
}

// ---------------------------------------------------------------------
// Tick
// ---------------------------------------------------------------------

void
OooCore::tick(Cycle now)
{
    cycles_ = now;
    if (halted_)
        return;

    squashedThisCycle_ = false;
    depPred_->tick(now);

    // Deliver deferred inclusion-victim searches to the baseline
    // load queue (deferred because they are triggered by this core's
    // own cache accesses mid-stage).
    if (lq_ && !pendingSnoopLines_.empty()) {
        std::vector<Addr> lines;
        lines.swap(pendingSnoopLines_);
        for (Addr line : lines)
            handleSnoopLine(line);
    }

    commitStage(now);
    if (rq_)
        backendStage(now);
    writebackStage(now);
    captureStoreData(now);
    issueStage(now);
    dispatchStage(now);
    fetchStage(now);

    (*sc_rob_occupancy_).sample(
        static_cast<double>(rob_.size()));
    (*sc_iq_occupancy_).sample(
        static_cast<double>(iq_.size()));
    ++(*sc_cycles_);
}

} // namespace vbr
