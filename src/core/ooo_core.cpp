#include "core/ooo_core.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "isa/semantics.hpp"
#include "mem/memory_image.hpp"
#include "verify/auditor.hpp"

namespace vbr
{

OooCore::OooCore(const CoreConfig &config, const Program &prog,
                 MemoryImage &mem, CacheHierarchy &hierarchy,
                 unsigned thread_id)
    : config_(config),
      prog_(prog),
      mem_(mem),
      hierarchy_(hierarchy),
      bp_(config.branchPredictor),
      sq_(config.sqEntries),
      incompleteMemOps_(PoolAllocator<SeqNum>(memOpArena_)),
      unscheduledMemOps_(PoolAllocator<SeqNum>(memOpArena_))
{
    VBR_ASSERT(thread_id < prog.threads().size(),
               "thread id out of range");
    const ThreadSpec &spec = prog.threads()[thread_id];
    fetchPc_ = spec.entryPc;
    retiredRegs_ = spec.initRegs;
    retiredRegs_[0] = 0;
    renameMap_.fill(kNoSeq);

    // The backend registers the scheme counters and validates its own
    // configuration (e.g. the replay filter pairings).
    ordering_ = makeMemoryOrderingUnit(config_, *this);

    if (config_.depPredictor == DepPredictorKind::StoreSet)
        depPred_ = std::make_unique<StoreSetPredictor>();
    else
        depPred_ = std::make_unique<SimpleDepPredictor>();

    if (config_.enableValuePrediction) {
        VBR_ASSERT(ordering_->validatesValueSpeculation(),
                   "value prediction requires the replay machinery "
                   "for validation");
        valuePred_ = std::make_unique<ValuePredictor>();
    }

    hierarchy_.setClient(this);

    // Cache stat handles once: string-keyed lookups are far too
    // slow for per-cycle/per-instruction paths (map nodes are stable).
    sc_branch_mispredicts_committed_ = &stats_.counter("branch_mispredicts_committed");
    sc_committed_branches_ = &stats_.counter("committed_branches");
    sc_committed_instructions_ = &stats_.counter("committed_instructions");
    sc_committed_loads_ = &stats_.counter("committed_loads");
    sc_committed_stores_ = &stats_.counter("committed_stores");
    sc_cycles_ = &stats_.counter("cycles");
    sc_dispatch_stalls_iq_ = &stats_.counter("dispatch_stalls_iq");
    sc_dispatch_stalls_loadq_ = &stats_.counter("dispatch_stalls_lq");
    sc_dispatch_stalls_rob_ = &stats_.counter("dispatch_stalls_rob");
    sc_dispatch_stalls_sq_ = &stats_.counter("dispatch_stalls_sq");
    sc_dispatched_instructions_ = &stats_.counter("dispatched_instructions");
    sc_external_fills_seen_ = &stats_.counter("external_fills_seen");
    sc_external_invalidations_seen_ = &stats_.counter("external_invalidations_seen");
    sc_fetched_instructions_ = &stats_.counter("fetched_instructions");
    sc_icache_stalls_ = &stats_.counter("icache_stalls");
    sc_inclusion_victims_seen_ = &stats_.counter("inclusion_victims_seen");
    sc_l1d_accesses_premature_ = &stats_.counter("l1d_accesses_premature");
    sc_l1d_accesses_store_commit_ = &stats_.counter("l1d_accesses_store_commit");
    sc_l1d_accesses_swap_ = &stats_.counter("l1d_accesses_swap");
    sc_loads_blocked_on_store_ = &stats_.counter("loads_blocked_on_store");
    sc_loads_bypassing_unresolved_store_ = &stats_.counter("loads_bypassing_unresolved_store");
    sc_loads_forwarded_ = &stats_.counter("loads_forwarded");
    sc_loads_issued_ = &stats_.counter("loads_issued");
    sc_loads_value_predicted_ =
        &stats_.counter("loads_value_predicted");
    sc_value_predictions_committed_ =
        &stats_.counter("value_predictions_committed");
    sc_loads_issued_out_of_order_ = &stats_.counter("loads_issued_out_of_order");
    sc_squashes_branch_ = &stats_.counter("squashes_branch");
    sc_squashes_total_ = &stats_.counter("squashes_total");
    sc_stores_issued_ = &stats_.counter("stores_issued");
    sc_stores_agen_before_data_ =
        &stats_.counter("stores_agen_before_data");
    sc_iq_occupancy_ = &stats_.average("iq_occupancy");
    sc_issued_per_cycle_ = &stats_.average("issued_per_cycle");
    sc_rob_occupancy_ = &stats_.average("rob_occupancy");
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

DynInst *
OooCore::findInst(SeqNum seq)
{
    auto it = std::lower_bound(
        rob_.begin(), rob_.end(), seq,
        [](const DynInst &d, SeqNum s) { return d.seq < s; });
    if (it != rob_.end() && it->seq == seq)
        return &*it;
    return nullptr;
}

const DynInst *
OooCore::findInst(SeqNum seq) const
{
    return const_cast<OooCore *>(this)->findInst(seq);
}

Word
OooCore::readOperand(SeqNum producer, unsigned arch_reg) const
{
    if (arch_reg == 0)
        return 0;
    if (producer != kNoSeq) {
        if (const DynInst *p = findInst(producer)) {
            VBR_ASSERT(p->executed, "operand read before producer done");
            return p->destValue;
        }
        // Producer already retired; its value is architectural now and
        // cannot have been overwritten by a younger writer (younger
        // writers retire after this consumer).
    }
    return retiredRegs_[arch_reg];
}

bool
OooCore::operandsReady(const DynInst &inst) const
{
    return inst.aReady && inst.bReady;
}

// vbr-analyze: caller-notes(retireHead and writebackStage note the producing event)
void
OooCore::wakeDependents(SeqNum producer)
{
    for (IqEntry &e : iq_) {
        if (e.inst->srcA == producer)
            e.inst->aReady = true;
        if (e.inst->srcB == producer)
            e.inst->bReady = true;
    }
    for (DynInst *st : pendingStoreData_) {
        if (st->srcB == producer)
            st->bReady = true;
    }
}

bool
OooCore::olderFenceInFlight(SeqNum seq) const
{
    return !fences_.empty() && fences_.front() < seq;
}

bool
OooCore::olderMemOpIncomplete(SeqNum seq) const
{
    // "Incomplete" follows the point where the operation performs:
    // loads at execute, stores at drain (global visibility). The
    // oldest-incomplete watermark stands in for the old ROB walk.
    if (sq_.hasUndrainedOlderThan(seq))
        return true;
    return !incompleteMemOps_.empty() &&
           *incompleteMemOps_.begin() < seq;
}

bool
OooCore::olderMemOpUnscheduled(SeqNum seq) const
{
    // The paper's scheduler view of "executed in order": the load
    // issues after every older memory operation has itself issued
    // (loads performed their access, stores generated the address).
    return !unscheduledMemOps_.empty() &&
           *unscheduledMemOps_.begin() < seq;
}

Word
OooCore::readMemSafe(Addr addr, unsigned size) const
{
    if (addr % size != 0 || addr + size > mem_.size())
        return 0; // wrong-path garbage address
    return mem_.read(addr, size);
}

std::uint32_t
OooCore::versionSafe(Addr addr) const
{
    if (!mem_.trackingVersions() || addr + 8 > mem_.size())
        return 0;
    return mem_.version(addr & ~Addr{7});
}

SeqNum
OooCore::youngestInWindow() const
{
    return rob_.empty() ? kNoSeq : rob_.back().seq;
}

// vbr-analyze: caller-notes(only called from retireHead, which notes on every retirement)
void
OooCore::noteCommit(Cycle now)
{
    lastCommitCycle_ = now;
}

AuditEventSink *
OooCore::auditSink()
{
    if (mpPhase1_ && auditor_)
        return &deferredAudit_;
    return auditor_;
}

void
OooCore::emitCommit(const MemCommitEvent &event)
{
    if (observer_)
        observer_->onMemCommit(event);
    if (auditor_)
        auditor_->onMemCommit(event);
    if (traceObserver_)
        traceObserver_->onMemCommit(event);
}

void
OooCore::auditStructures(InvariantAuditor &auditor) const
{
    auditor.scanRob(coreId(), rob_, cycles_);
    auditor.scanStoreQueue(coreId(), sq_, cycles_);
    ordering_->auditStructures(auditor, coreId(), cycles_);
}

bool
OooCore::deadlocked(Cycle now) const
{
    return !halted_ && now > lastCommitCycle_ &&
           now - lastCommitCycle_ > config_.deadlockThreshold;
}

// ---------------------------------------------------------------------
// Memory-system event callbacks
// ---------------------------------------------------------------------

void
OooCore::onExternalInvalidation(Addr line)
{
    // A sleeping core must reach the published horizon before the
    // delivery is processed: the ordering backend stamps arming/search
    // state with cycles_, and the invalidation semantically lands at
    // the horizon cycle, not at the stale local clock.
    syncToHorizon();
    activityThisTick_ = true;
    ++(*sc_external_invalidations_seen_);
    ordering_->onExternalInvalidation(line);
}

void
OooCore::onInclusionVictim(Addr line)
{
    activityThisTick_ = true;
    ++(*sc_inclusion_victims_seen_);
    // In a multiprocessor, a castout line can be written remotely
    // without this core ever seeing the invalidation (it no longer
    // holds the line), so the backend must treat the castout as a
    // snoop — the paper's castout caveat. In a uniprocessor there is
    // no hidden writer (DMA in this model only invalidates), so the
    // conservatism would be pure overhead.
    if (hierarchy_.numSystemCores() > 1)
        ordering_->onInclusionVictim(line);
}

void
OooCore::onExternalFill(Addr line)
{
    activityThisTick_ = true;
    ++(*sc_external_fills_seen_);
    ordering_->onExternalFill(line);
}

// ---------------------------------------------------------------------
// Tick
// ---------------------------------------------------------------------

// vbr-analyze: quiescent(per-cycle bookkeeping here is replicated bit-exactly by applySkippedCycles; real work notes inside the stages)
bool
OooCore::tick(Cycle now)
{
    cycles_ = now;
    if (halted_)
        return false;
    ++tickedCycles_;

    // External events delivered before this core's tick (fault-delayed
    // snoops, an earlier-ticking core's invalidations) already set the
    // flag; keep it so this tick reports active.
    squashedThisCycle_ = false;
    dispatchStallThisTick_ = nullptr;
    depPred_->tick(now);

    // Begin-of-cycle backend work (e.g. deferred snoop searches,
    // deferred because they are triggered by this core's own cache
    // accesses mid-stage).
    ordering_->beginCycle(now);

    commitStage(now);
    ordering_->backendStage(now);
    writebackStage(now);
    captureStoreData(now);
    issueStage(now);
    dispatchStage(now);
    fetchStage(now);

    (*sc_rob_occupancy_).sample(
        static_cast<double>(rob_.size()));
    (*sc_iq_occupancy_).sample(
        static_cast<double>(iq_.size()));
    ++(*sc_cycles_);
    return activityThisTick_;
}

// vbr-analyze: quiescent(per-cycle bookkeeping is replicated by applySkippedCycles; real work notes inside the stages)
bool
OooCore::tickFront(Cycle now)
{
    cycles_ = now;
    if (halted_)
        return false;
    ++tickedCycles_;

    squashedThisCycle_ = false;
    dispatchStallThisTick_ = nullptr;
    depPred_->tick(now);
    ordering_->beginCycle(now);
    commitStage(now);
    return true;
}

// vbr-analyze: quiescent(per-cycle bookkeeping is replicated by applySkippedCycles; real work notes inside the stages)
bool
OooCore::tickBack(Cycle now)
{
    mpPhase1_ = true;
    ordering_->backendStage(now);
    writebackStage(now);
    captureStoreData(now);
    issueStage(now);
    dispatchStage(now);
    fetchStage(now);
    mpPhase1_ = false;

    (*sc_rob_occupancy_).sample(static_cast<double>(rob_.size()));
    (*sc_iq_occupancy_).sample(static_cast<double>(iq_.size()));
    ++(*sc_cycles_);
    return activityThisTick_;
}

void
OooCore::flushDeferredAudit()
{
    if (auditor_ && !deferredAudit_.empty())
        deferredAudit_.flushTo(*auditor_);
}

void
OooCore::syncTo(Cycle c)
{
    if (!halted_ && cycles_ < c)
        applySkippedCycles(c - cycles_);
}

// vbr-analyze: quiescent(lazy clock sync for a sleeping core: consumes the published horizon and replays skipped-cycle bookkeeping; front-tick horizons run the quiescent tickFront the serial reference already ran this cycle, still before any delivery is processed)
void
OooCore::syncToHorizon()
{
    if (syncHorizon_ == kNeverCycle)
        return;
    Cycle h = syncHorizon_;
    bool front = syncHorizonFrontTick_;
    syncHorizon_ = kNeverCycle;
    syncHorizonFrontTick_ = false;
    if (front) {
        // The serial reference ran this core's tickFront(h) before
        // the delivery now being processed — on the identical
        // pre-delivery state the core was proven quiescent in, so
        // re-running it here is the same no-op plus bookkeeping. The
        // cycle's back half is NOT replayed: the System puts this
        // core into phase B, where dispatch/fetch and the occupancy
        // samples see the post-delivery state, exactly as serial.
        syncTo(h - 1);
        tickFront(h);
    } else {
        syncTo(h);
    }
}

// ---------------------------------------------------------------------
// Fast-forward (quiescence skip) support
// ---------------------------------------------------------------------

Cycle
OooCore::nextWakeCycle(Cycle now) const
{
    if (halted_)
        return kNeverCycle;

    Cycle wake = kNeverCycle;
    auto clamp = [&wake, now](Cycle c) {
        if (c > now && c < wake)
            wake = c;
    };

    // Execution/writeback completions. After a tick every due entry
    // was drained, so the top (if any) is strictly in the future;
    // stale squashed entries only cause harmless undershoot.
    if (!pendingWb_.empty())
        clamp(pendingWb_.top().first);

    // Front end: the next fetched instruction becoming dispatchable,
    // and (independently) the icache stall expiring — fetch refills
    // the queue even while older entries wait. A front instruction
    // that is already ready but could not dispatch is a structural
    // stall — only retirement (activity) can clear it, so it
    // contributes no timer (clamp() ignores cycles <= now).
    if (!frontEnd_.empty())
        clamp(frontEnd_.front().readyCycle);
    if (!haltFetched_)
        clamp(fetchStallUntil_);

    // Store ownership ETA at the store queue head (drain gate at
    // commit); older-entry ETAs are covered once the head drains
    // (activity re-evaluates).
    if (!sq_.empty())
        clamp(sq_.at(0).ownershipReadyCycle);

    // The ROB head's own timer: replay-compare readiness, the
    // backend's fixed replay/compare passage, or a SWAP's ownership
    // wait — every head-blocking wait the commit stage polls.
    if (!rob_.empty())
        clamp(rob_.front().compareReadyCycle);

    // Periodic dependence-predictor table clear (can unblock loads
    // the wait-table holds, and its schedule is observable).
    clamp(depPred_->nextEventCycle());

    // The ordering backend's own deferred work.
    clamp(ordering_->nextWakeCycle(now));

    return wake;
}

// vbr-analyze: quiescent(this IS the fast-forward bookkeeping; it runs only across proven-idle spans)
void
OooCore::applySkippedCycles(Cycle n)
{
    cycles_ += n;
    skippedCycles_ += n;
    (*sc_cycles_) += n;
    (*sc_rob_occupancy_).sample(static_cast<double>(rob_.size()), n);
    (*sc_iq_occupancy_).sample(static_cast<double>(iq_.size()), n);
    (*sc_issued_per_cycle_).sample(0.0, n);
    if (dispatchStallThisTick_)
        (*dispatchStallThisTick_) += n;
}

} // namespace vbr
