// Writeback stage of OooCore.

#include "core/ooo_core.hpp"

#include <algorithm>

namespace vbr
{

void
OooCore::writebackStage(Cycle now)
{
    // Collect everything completing this cycle, oldest first, so an
    // older branch mispredict squashes younger completions cleanly.
    wbScratch_.clear();
    while (!pendingWb_.empty() && pendingWb_.top().first <= now) {
        wbScratch_.push_back(pendingWb_.top().second);
        pendingWb_.pop();
    }
    std::sort(wbScratch_.begin(), wbScratch_.end());

    for (SeqNum seq : wbScratch_) {
        DynInst *inst = findInst(seq);
        if (!inst || !inst->issued || inst->executed)
            continue; // squashed (and possibly re-allocated) meanwhile
        inst->executed = true;
        if (inst->isLoadOp || inst->isSwapOp)
            incompleteMemOps_.erase(seq);
        if (inst->inst.writesRd())
            wakeDependents(seq);
        trace(TraceKind::Writeback, *inst);

        if (inst->isCtrlOp) {
            bool mispredict =
                inst->predTaken != inst->actualTaken ||
                (inst->actualTaken &&
                 inst->predTarget != inst->actualTarget);
            if (mispredict)
                doBranchMispredict(*inst, now);
        }
    }
}

} // namespace vbr
