// Writeback stage of OooCore.

#include "core/ooo_core.hpp"

#include <algorithm>

#include "fault/fault_injector.hpp"

namespace vbr
{

void
OooCore::writebackStage(Cycle now)
{
    // Collect everything completing this cycle, oldest first, so an
    // older branch mispredict squashes younger completions cleanly.
    // vbr-analyze: quiescent(clearing cycle-local scratch; completions note below)
    wbScratch_.clear();
    while (!pendingWb_.empty() && pendingWb_.top().first <= now) {
        // Conservative: even draining only stale (squashed) events
        // mutates the heap, and nextWakeCycle reads its top.
        activityThisTick_ = true;
        wbScratch_.push_back(pendingWb_.top().second);
        pendingWb_.pop();
    }
    // vbr-analyze: quiescent(sorting cycle-local scratch)
    std::sort(wbScratch_.begin(), wbScratch_.end());

    for (SeqNum seq : wbScratch_) {
        DynInst *inst = findInst(seq);
        if (!inst || !inst->issued || inst->executed)
            continue; // squashed (and possibly re-allocated) meanwhile
        activityThisTick_ = true;
        inst->executed = true;
        if (inst->isLoadOp || inst->isSwapOp)
            incompleteMemOps_.erase(seq);
        // Fault seam: flip a bit in the load's premature value just
        // before it becomes architecturally visible to dependents.
        // The replay/compare stage re-reads memory at commit, so a
        // value backend detects the mismatch; a CAM backend has no
        // value check and commits the corruption.
        if (faults_ && inst->isLoadOp) {
            FaultInjector::LoadFlip flip = faults_->corruptLoadWriteback(
                coreId(), inst->seq, inst->pc, inst->memAddr,
                inst->memSize, inst->forwarded, inst->prematureValue);
            if (flip.flipped) {
                inst->prematureValue = flip.value;
                inst->destValue = flip.value;
            }
        }
        if (inst->inst.writesRd())
            wakeDependents(seq);
        trace(TraceKind::Writeback, *inst);

        if (inst->isCtrlOp) {
            bool mispredict =
                inst->predTaken != inst->actualTaken ||
                (inst->actualTaken &&
                 inst->predTarget != inst->actualTarget);
            if (mispredict)
                doBranchMispredict(*inst, now);
        }
    }
}

} // namespace vbr
