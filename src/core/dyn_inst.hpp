/**
 * @file
 * A dynamic (in-flight) instruction in the out-of-order window.
 */

#ifndef VBR_CORE_DYN_INST_HPP
#define VBR_CORE_DYN_INST_HPP

#include <cstdint>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "lsq/replay_filters.hpp"
#include "predict/branch_predictor.hpp"

namespace vbr
{

/** One entry of the reorder buffer. */
struct DynInst
{
    SeqNum seq = kNoSeq;
    std::uint32_t pc = 0;
    Instruction inst;

    // Cached classification.
    bool isLoadOp = false;
    bool isStoreOp = false;
    bool isSwapOp = false;
    bool isMembarOp = false;
    bool isCtrlOp = false;

    // Renamed sources: producing in-flight instruction or kNoSeq when
    // the value comes from architectural state.
    SeqNum srcA = kNoSeq;
    SeqNum srcB = kNoSeq;

    // Operand readiness, maintained by event-driven wakeup: set at
    // dispatch when the producer is done, or by the producer's
    // writeback. (Avoids per-cycle producer lookups in the scheduler.)
    bool aReady = true;
    bool bReady = true;

    // Execution state.
    bool inIssueQueue = false;
    bool issued = false;
    bool executed = false;
    Word destValue = 0;

    // Memory operation state.
    Addr memAddr = kNoAddr;
    unsigned memSize = 0;
    Word storeData = 0;
    bool addrValid = false; ///< in-bounds, aligned (wrong path may not be)
    Word prematureValue = 0;
    std::uint32_t prematureVersion = 0;
    bool forwarded = false;      ///< premature value from store queue
    SeqNum forwardStore = kNoSeq;
    SeqNum blockedOnStore = kNoSeq; ///< partial-overlap retry target
    ReplayLoadInfo replayInfo;

    // Control state.
    bool predTaken = false;
    std::uint32_t predTarget = 0;
    bool actualTaken = false;
    std::uint32_t actualTarget = 0;
    PredictorSnapshot predSnap;

    /** Set once the (store/SWAP) line-ownership request was issued;
     * after the latency elapses the operation proceeds even if a
     * competitor momentarily stole the line (the request is modeled
     * as queued at the directory, preventing ownership livelock). */
    bool ownershipRequested = false;

    // Back-end (replay/compare) state.
    bool enteredBackend = false;
    bool replayDecided = false;
    bool willReplay = false;
    ReplayReason replayReason = ReplayReason::Filtered;
    bool replayIssued = false;
    bool rule3Suppressed = false; ///< replay skipped for progress
    bool valuePredicted = false;  ///< premature value from the VP
    /** Recent-miss/snoop filter arming observed at the (last) replay
     * classification — captured so the trace can re-derive it. */
    bool missArmedAtClassify = false;
    bool snoopArmedAtClassify = false;
    Word replayValue = 0;
    std::uint32_t replayVersion = 0;
    Cycle compareReadyCycle = 0;

    Cycle fetchCycle = 0;
    Cycle sampleCycle = 0; ///< when the committed value was sampled
};

} // namespace vbr

#endif // VBR_CORE_DYN_INST_HPP
