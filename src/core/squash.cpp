// Squash/recovery machinery of OooCore: the host-level squash that
// trims the window and every scheme-neutral structure, and the
// branch-mispredict recovery built on it. Scheme-specific recovery
// (CAM / replay-queue trimming, replay suppression) happens in the
// ordering backend's squashFrom hook.

#include "core/ooo_core.hpp"

#include <algorithm>

#include "fault/fault_injector.hpp"
#include "isa/semantics.hpp"
#include "verify/auditor.hpp"

namespace vbr
{

void
OooCore::squashFrom(SeqNum bound, std::uint32_t new_fetch_pc,
                    const PredictorSnapshot &snap)
{
    // pendingStoreData_ points into rob_; filter it before the pops
    // below free the squashed entries' deque nodes.
    std::erase_if(pendingStoreData_,
                  [bound](const DynInst *d) { return d->seq >= bound; });
    incompleteMemOps_.erase(incompleteMemOps_.lower_bound(bound),
                            incompleteMemOps_.end());
    unscheduledMemOps_.erase(unscheduledMemOps_.lower_bound(bound),
                             unscheduledMemOps_.end());
    while (!rob_.empty() && rob_.back().seq >= bound) {
        const DynInst &b = rob_.back();
        if (b.isStoreOp)
            depPred_->notifyStoreRemoved(b.pc, b.seq);
        if (b.inst.writesRd()) {
            // The squashed writer is the youngest for its register,
            // so it sits at the back of the stack; the map falls back
            // to the next-youngest survivor.
            auto &writers = regWriters_[b.inst.rd];
            if (!writers.empty() && writers.back() == b.seq)
                writers.pop_back();
            renameMap_[b.inst.rd] =
                writers.empty() ? kNoSeq : writers.back();
        }
        trace(TraceKind::Squash, b);
        rob_.pop_back();
    }
    sq_.squashFrom(bound);
    ordering_->squashFrom(bound);

    std::erase_if(iq_, [bound](const IqEntry &e) { return e.seq >= bound; });
    std::erase_if(fences_, [bound](SeqNum s) { return s >= bound; });

    frontEnd_.clear();
    haltFetched_ = false;
    fetchPc_ = new_fetch_pc;
    fetchStallUntil_ = cycles_ + 1; // redirect bubble
    lastFetchLine_ = kNoAddr;

    bp_.restore(snap);
    squashedThisCycle_ = true;
    activityThisTick_ = true;
    ++(*sc_squashes_total_);
    if (AuditEventSink *a = auditSink())
        a->onSquash(coreId(), bound, cycles_);
    // Fault attribution: corruptions riding on squashed loads were
    // recovered (the instructions re-execute with fresh values).
    if (faults_)
        faults_->onSquash(coreId(), bound);
}

void
OooCore::doBranchMispredict(DynInst &branch, Cycle now)
{
    (void)now;
    ++(*sc_squashes_branch_);
    std::uint32_t resteer =
        branch.actualTaken ? branch.actualTarget : branch.pc + 1;
    PredictorSnapshot snap = branch.predSnap;
    bool cond = isCondBranch(branch.inst.op);
    bool taken = branch.actualTaken;
    bool is_return = branch.inst.op == Opcode::JR &&
                     branch.inst.ra == kLinkReg;
    squashFrom(branch.seq + 1, resteer, snap);
    if (cond) {
        // Redo the speculative history update with the real outcome.
        bp_.notifyResolvedBranch(taken);
    } else if (is_return) {
        // restore() rolled the RAS pop back; execution resumes past
        // the return, so re-apply it.
        bp_.popRas();
    }
}

} // namespace vbr
