/**
 * @file
 * Retirement-side observation interface. The constraint-graph memory
 * consistency checker subscribes to committed memory operations; the
 * events carry the version of the memory word the operation observed
 * or produced, which identifies reads-from relations exactly.
 */

#ifndef VBR_CORE_COMMIT_OBSERVER_HPP
#define VBR_CORE_COMMIT_OBSERVER_HPP

#include <cstdint>

#include "common/types.hpp"

namespace vbr
{

/** A committed memory operation. SWAP commits as one atomic event
 * with both read and write halves populated. */
struct MemCommitEvent
{
    CoreId core = 0;
    SeqNum seq = kNoSeq;
    std::uint32_t pc = 0;
    Addr addr = kNoAddr;
    unsigned size = 0;

    bool isRead = false;
    bool isWrite = false;
    /** MEMBAR retirement marker (no data); RMWs set read+write. */
    bool isFence = false;

    Word readValue = 0;
    std::uint32_t readVersion = 0;  ///< word version observed

    Word writeValue = 0;
    std::uint32_t writeVersion = 0; ///< word version produced

    /** Cycle the value was (last) sampled/produced: premature or
     * replay sample for loads, drain for stores. */
    Cycle performCycle = 0;
    /** Cycle the instruction retired. */
    Cycle commitCycle = 0;
};

/** Subscriber to committed memory operations. */
class CommitObserver
{
  public:
    virtual ~CommitObserver() = default;
    virtual void onMemCommit(const MemCommitEvent &event) = 0;
};

} // namespace vbr

#endif // VBR_CORE_COMMIT_OBSERVER_HPP
