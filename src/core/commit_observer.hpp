/**
 * @file
 * Retirement-side observation interface. The constraint-graph memory
 * consistency checker subscribes to committed memory operations; the
 * events carry the version of the memory word the operation observed
 * or produced, which identifies reads-from relations exactly.
 */

#ifndef VBR_CORE_COMMIT_OBSERVER_HPP
#define VBR_CORE_COMMIT_OBSERVER_HPP

#include <cstdint>

#include "common/types.hpp"

namespace vbr
{

/** Ordering-relevant facts about a committed load, packed so the
 * trace layer can re-derive the §3 replay classification offline.
 * Stores/fences carry 0. */
namespace order_flags
{
constexpr std::uint16_t kReplayIssued = 1u << 0;
constexpr std::uint16_t kReplayFiltered = 1u << 1;
constexpr std::uint16_t kReasonUnresolved = 1u << 2;
constexpr std::uint16_t kRule3Suppressed = 1u << 3;
constexpr std::uint16_t kValuePredicted = 1u << 4;
constexpr std::uint16_t kForwarded = 1u << 5;
constexpr std::uint16_t kBypassedUnresolvedStore = 1u << 6;
constexpr std::uint16_t kIssuedOutOfOrder = 1u << 7;
constexpr std::uint16_t kIssuedOutOfOrderSched = 1u << 8;
constexpr std::uint16_t kIssuedBeforeOlderLoad = 1u << 9;
constexpr std::uint16_t kMissArmed = 1u << 10;
constexpr std::uint16_t kSnoopArmed = 1u << 11;
/** Replay classified Consistency (neither reason bit = Filtered). */
constexpr std::uint16_t kReasonConsistency = 1u << 12;
} // namespace order_flags

/** A committed memory operation. SWAP commits as one atomic event
 * with both read and write halves populated. */
struct MemCommitEvent
{
    CoreId core = 0;
    SeqNum seq = kNoSeq;
    std::uint32_t pc = 0;
    Addr addr = kNoAddr;
    unsigned size = 0;

    bool isRead = false;
    bool isWrite = false;
    /** MEMBAR retirement marker (no data); RMWs set read+write. */
    bool isFence = false;

    Word readValue = 0;
    std::uint32_t readVersion = 0;  ///< word version observed

    Word writeValue = 0;
    std::uint32_t writeVersion = 0; ///< word version produced

    /** Cycle the value was (last) sampled/produced: premature or
     * replay sample for loads, drain for stores. */
    Cycle performCycle = 0;
    /** Cycle the instruction retired. */
    Cycle commitCycle = 0;

    /** order_flags::* bits (loads only; 0 for stores/fences). */
    std::uint16_t orderFlags = 0;
};

/** Counter-increment sites inside the ordering backends. Replays and
 * squashes happen to in-flight instructions that may never commit, so
 * commit frames alone cannot reproduce the ordering statistics — the
 * trace layer records these events at the exact increment sites. */
enum class OrderingEventKind : std::uint8_t
{
    ReplayUnresolved = 0,  ///< replay issued, unresolved-store reason
    ReplayConsistency = 1, ///< replay issued, consistency reason
    ReplayFiltered = 2,    ///< replay filtered (compare skipped)
    SquashReplay = 3,      ///< value-replay mismatch squash
    SquashLqRaw = 4,       ///< assoc-LQ store-search RAW squash
    SquashLqSnoop = 5,     ///< assoc-LQ snoop-mark squash
    WildLoad = 6,          ///< fault grace path: wild-address load
    WildStore = 7,         ///< fault grace path: wild-address store
};

/** An ordering decision, emitted where the statistic is counted. */
struct OrderingEvent
{
    OrderingEventKind kind = OrderingEventKind::ReplayFiltered;
    CoreId core = 0;
    SeqNum seq = kNoSeq;
    std::uint32_t pc = 0;
    Cycle cycle = 0;
    /** Squash was value-unnecessary (memory already matched). */
    bool unnecessary = false;
};

/** Subscriber to ordering decisions (trace capture). */
class OrderingEventSink
{
  public:
    virtual ~OrderingEventSink() = default;
    virtual void onOrderingEvent(const OrderingEvent &event) = 0;
};

/** Subscriber to committed memory operations. */
class CommitObserver
{
  public:
    virtual ~CommitObserver() = default;
    virtual void onMemCommit(const MemCommitEvent &event) = 0;
};

} // namespace vbr

#endif // VBR_CORE_COMMIT_OBSERVER_HPP
