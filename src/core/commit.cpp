// Commit stage of OooCore: SWAP execution at the head, retirement,
// and the commit loop. The ordering backend gets the final word on
// every retirement (preCommit) and observes it (onRetire).

#include "core/ooo_core.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "fault/fault_injector.hpp"
#include "isa/semantics.hpp"
#include "mem/memory_image.hpp"
#include "verify/auditor.hpp"

namespace vbr
{

namespace
{

/** Pack a retiring load's ordering facts for trace capture. The bits
 * are exactly what the replay tier needs to re-run classifyReplay()
 * offline: the issue-time ReplayLoadInfo, the recent-event arming
 * observed at the (last) classification, and the verdict itself. */
std::uint16_t
loadOrderFlags(const DynInst &head)
{
    using namespace order_flags;
    std::uint16_t f = 0;
    if (head.replayIssued)
        f |= kReplayIssued;
    if (head.replayDecided && !head.willReplay)
        f |= kReplayFiltered;
    if (head.replayReason == ReplayReason::UnresolvedStore)
        f |= kReasonUnresolved;
    else if (head.replayReason == ReplayReason::Consistency)
        f |= kReasonConsistency;
    if (head.rule3Suppressed)
        f |= kRule3Suppressed;
    if (head.valuePredicted)
        f |= kValuePredicted;
    if (head.forwarded)
        f |= kForwarded;
    if (head.replayInfo.bypassedUnresolvedStore)
        f |= kBypassedUnresolvedStore;
    if (head.replayInfo.issuedOutOfOrder)
        f |= kIssuedOutOfOrder;
    if (head.replayInfo.issuedOutOfOrderSched)
        f |= kIssuedOutOfOrderSched;
    if (head.replayInfo.issuedBeforeOlderLoad)
        f |= kIssuedBeforeOlderLoad;
    if (head.missArmedAtClassify)
        f |= kMissArmed;
    if (head.snoopArmedAtClassify)
        f |= kSnoopArmed;
    return f;
}

} // namespace

bool
OooCore::tryExecuteSwapAtHead(DynInst &head, Cycle now)
{
    if (!commitPortAvailable())
        return false;

    Word a = retiredRegs_[head.inst.ra];
    Word data = retiredRegs_[head.inst.rb];
    Addr addr = effectiveAddr(head.inst, a);
    VBR_ASSERT(addr % 8 == 0 && addr + 8 <= mem_.size(),
               "SWAP with invalid address reached commit");

    if (!head.ownershipRequested) {
        // Arming the ownership request mutates the fabric and a
        // timer even when the SWAP then waits. The operands are
        // latched here too: nothing older can retire while the SWAP
        // sits at the head, so they cannot change on re-polls.
        activityThisTick_ = true;
        head.memAddr = addr;
        head.memSize = 8;
        head.storeData = data;
        head.ownershipRequested = true;
        if (!hierarchy_.ownsLine(addr)) {
            MemAccess acc = hierarchy_.acquireOwnership(addr);
            head.compareReadyCycle = now + acc.latency;
            return false;
        }
        head.compareReadyCycle = now;
    }
    if (now < head.compareReadyCycle)
        return false;
    // The transfer latency is paid. If a competitor stole the line
    // meanwhile, our queued request is serviced now — the silent
    // re-acquisition prevents ownership livelock under contention.
    if (!hierarchy_.ownsLine(addr))
        hierarchy_.acquireOwnership(addr);

    // Atomic read-modify-write at the global visibility point.
    head.prematureValue = mem_.read(addr, 8);
    head.prematureVersion = versionSafe(addr);
    mem_.write(addr, 8, data);
    head.replayVersion = versionSafe(addr); // version written
    head.destValue = head.prematureValue;
    head.executed = true;
    incompleteMemOps_.erase(head.seq);
    unscheduledMemOps_.erase(head.seq);
    if (head.inst.writesRd())
        wakeDependents(head.seq);
    ++commitPortsUsed_;
    ++(*sc_l1d_accesses_swap_);
    activityThisTick_ = true;
    return true;
}

bool
OooCore::retireHead(Cycle now)
{
    DynInst &head = rob_.front();

    if (head.isSwapOp && !head.executed) {
        if (!tryExecuteSwapAtHead(head, now))
            return false;
    }
    if (!head.executed)
        return false;

    // Backend verdict: replay/compare gates, late replays, mismatch
    // or snoop-mark squashes. False = stall (or squash was issued).
    if (!ordering_->preCommit(head, now))
        return false;

    if (head.isStoreOp && faults_ && !head.addrValid) {
        // Fault-injection grace path: a corrupted load propagated
        // into this store's address (wild address). The store cannot
        // drain; retire it without a memory effect so the corrupted
        // run can complete and be measured. The auditor mirror still
        // needs the drain notification to stay in sync.
        SqEntry *e = sq_.head();
        VBR_ASSERT(e && e->seq == head.seq, "SQ head mismatch");
        if (AuditEventSink *a = auditSink())
            a->onStoreDrained(coreId(), head.seq, now);
        sq_.popFront();
        faults_->onWildStore(coreId());
        ++(*sc_committed_stores_);
        if (orderingSink_) {
            // No commit frame is emitted for a wild op, yet it bumps
            // the committed counter — the trace records it as an
            // ordering event so replay reproduces the totals.
            OrderingEvent oe;
            oe.kind = OrderingEventKind::WildStore;
            oe.core = coreId();
            oe.seq = head.seq;
            oe.pc = head.pc;
            oe.cycle = now;
            orderingSink_->onOrderingEvent(oe);
        }
    } else if (head.isStoreOp) {
        if (!commitPortAvailable())
            return false;
        SqEntry *e = sq_.head();
        VBR_ASSERT(e && e->seq == head.seq, "SQ head mismatch");
        VBR_ASSERT(head.addrValid,
                   "store with invalid address reached commit");
        if (!head.ownershipRequested) {
            activityThisTick_ = true; // ownership request armed
            head.ownershipRequested = true;
            if (!hierarchy_.ownsLine(head.memAddr)) {
                MemAccess acc =
                    hierarchy_.acquireOwnership(head.memAddr);
                e->ownershipReadyCycle = now + acc.latency;
                return false;
            }
            // Exclusive prefetch at agen may still be in flight.
            e->ownershipReadyCycle =
                std::max(e->ownershipReadyCycle, now);
        }
        if (now < e->ownershipReadyCycle)
            return false;
        // Latency paid; service the queued request even if the line
        // was stolen meanwhile (prevents ownership livelock).
        if (!hierarchy_.ownsLine(head.memAddr))
            hierarchy_.acquireOwnership(head.memAddr);

        // Drain: the store becomes globally visible here.
        mem_.write(head.memAddr, head.memSize, head.storeData);
        std::uint32_t wv = versionSafe(head.memAddr);
        ++commitPortsUsed_;
        ++(*sc_l1d_accesses_store_commit_);

        drainedVersions_.emplace_back(head.seq, wv);
        std::size_t max_hist = config_.robEntries + config_.sqEntries + 64;
        while (drainedVersions_.size() > max_hist)
            drainedVersions_.pop_front();

        if (wantCommitEvents()) {
            MemCommitEvent ev;
            ev.core = coreId();
            ev.seq = head.seq;
            ev.pc = head.pc;
            ev.addr = head.memAddr;
            ev.size = head.memSize;
            ev.isWrite = true;
            ev.writeValue = head.storeData;
            ev.writeVersion = wv;
            ev.performCycle = now;
            ev.commitCycle = now;
            emitCommit(ev);
        }
        if (AuditEventSink *a = auditSink())
            a->onStoreDrained(coreId(), head.seq, now);
        sq_.popFront();
        ++(*sc_committed_stores_);
    }

    if (head.isLoadOp && faults_ && !head.addrValid) {
        // Fault-injection grace path: wild-address load (corrupted
        // base register). Its premature value is already whatever
        // readMemSafe returned; retire without emitting a commit
        // event (there is no meaningful reads-from attribution).
        faults_->onWildLoad(coreId());
        faults_->onLoadRetired(coreId(), head.seq);
        ++(*sc_committed_loads_);
        if (orderingSink_) {
            OrderingEvent oe;
            oe.kind = OrderingEventKind::WildLoad;
            oe.core = coreId();
            oe.seq = head.seq;
            oe.pc = head.pc;
            oe.cycle = now;
            orderingSink_->onOrderingEvent(oe);
        }
    } else if (head.isLoadOp) {
        VBR_ASSERT(head.addrValid,
                   "load with invalid address reached commit");
        // Reads-from attribution: always the premature sample. A
        // matching replay proves the premature value was still valid,
        // and attributing the (wall-clock) premature version avoids
        // false constraint-graph cycles when silent stores advance
        // the version without changing the value (§2.1 value
        // locality). Mismatching replays squash and never commit.
        std::uint32_t rv = head.prematureVersion;
        if (head.forwarded) {
            rv = 0;
            for (auto it = drainedVersions_.rbegin();
                 it != drainedVersions_.rend(); ++it) {
                if (it->first == head.forwardStore) {
                    rv = it->second;
                    break;
                }
            }
        }
        if (wantCommitEvents()) {
            MemCommitEvent ev;
            ev.core = coreId();
            ev.seq = head.seq;
            ev.pc = head.pc;
            ev.addr = head.memAddr;
            ev.size = head.memSize;
            ev.isRead = true;
            ev.readValue = head.prematureValue;
            ev.readVersion = rv;
            ev.performCycle = head.sampleCycle;
            ev.commitCycle = now;
            ev.orderFlags = loadOrderFlags(head);
            emitCommit(ev);
        }
        if (AuditEventSink *a = auditSink())
            a->onLoadCommit(coreId(), head.seq, head.pc,
                            head.replayIssued,
                            head.compareReadyCycle, now);
        if (valuePred_) {
            valuePred_->train(head.pc, head.prematureValue);
            if (head.valuePredicted)
                ++(*sc_value_predictions_committed_);
        }
        // Fault attribution: if this load carried an injected
        // corruption that no mechanism caught, it is now silent.
        if (faults_)
            faults_->onLoadRetired(coreId(), head.seq);
        ++(*sc_committed_loads_);
    }

    if (head.isSwapOp && wantCommitEvents()) {
        MemCommitEvent ev;
        ev.core = coreId();
        ev.seq = head.seq;
        ev.pc = head.pc;
        ev.addr = head.memAddr;
        ev.size = head.memSize;
        ev.isRead = true;
        ev.isWrite = true;
        ev.readValue = head.prematureValue;
        ev.readVersion = head.prematureVersion;
        ev.writeValue = head.storeData;
        ev.writeVersion = head.replayVersion;
        ev.performCycle = now;
        ev.commitCycle = now;
        emitCommit(ev);
    }

    if (head.isMembarOp && wantCommitEvents()) {
        MemCommitEvent ev;
        ev.core = coreId();
        ev.seq = head.seq;
        ev.pc = head.pc;
        ev.isFence = true;
        ev.performCycle = now;
        ev.commitCycle = now;
        emitCommit(ev);
    }

    if (head.isCtrlOp) {
        bp_.update(head.pc, head.inst, head.actualTaken,
                   head.actualTarget, head.predSnap);
        ++(*sc_committed_branches_);
        if (isCondBranch(head.inst.op) &&
            (head.predTaken != head.actualTaken))
            ++(*sc_branch_mispredicts_committed_);
    }

    if (head.inst.writesRd()) {
        retiredRegs_[head.inst.rd] = head.destValue;
        // The retiring writer is the oldest in flight for its
        // register, i.e. the front of the writer stack. Younger
        // in-flight writers keep the rename mapping alive.
        auto &writers = regWriters_[head.inst.rd];
        if (!writers.empty() && writers.front() == head.seq)
            writers.pop_front();
        if (writers.empty())
            renameMap_[head.inst.rd] = kNoSeq;
    }
    if (head.isStoreOp)
        depPred_->notifyStoreRemoved(head.pc, head.seq);
    if ((head.isSwapOp || head.isMembarOp) && !fences_.empty() &&
        fences_.front() == head.seq)
        fences_.erase(fences_.begin());

    if (head.inst.op == Opcode::HALT)
        halted_ = true;

    // Backend bookkeeping: queue retirement, suppression bleed-off.
    ordering_->onRetire(head);

    if (config_.commitTraceDepth > 0) {
        commitTrace_.push_back(
            {head.seq, head.pc, now, head.inst.op});
        if (commitTrace_.size() > config_.commitTraceDepth)
            commitTrace_.pop_front();
    }

    trace(TraceKind::Commit, head);
    rob_.pop_front();
    ++committed_;
    noteCommit(now);
    ++(*sc_committed_instructions_);
    activityThisTick_ = true;
    return true;
}

void
OooCore::commitStage(Cycle now)
{
    // vbr-analyze: quiescent(per-cycle port reset; skipped cycles use no ports)
    commitPortsUsed_ = 0;
    // vbr-analyze: quiescent(per-cycle replay-port reset; skipped cycles replay nothing)
    replaysThisCycle_ = 0;

    for (unsigned n = 0; n < config_.commitWidth; ++n) {
        if (rob_.empty() || halted_)
            break;
        if (!retireHead(now))
            break; // retireHead notes activity on every retirement
        if (squashedThisCycle_)
            break;
    }
}

} // namespace vbr
